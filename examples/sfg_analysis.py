"""DPI/SFG walkthrough: symbolic transfer function of a real amplifier.

Reproduces Section 3's analysis chain on a two-stage Miller amplifier:
build the signal-flow graph by the driving-point-impedance method, apply
Mason's rule for the *symbolic* transfer function, extract small-signal
values from a DC simulation, and form the numerical transfer function —
then cross-check poles and the famous Miller RHP zero.

Run with::

    python examples/sfg_analysis.py
"""

import numpy as np

from repro.analysis import linearize, solve_dc
from repro.circuit.builder import CircuitBuilder
from repro.sfg import build_sfg, mason_gain, small_signal_bindings


def main() -> None:
    gm1, gm2 = 1e-3, 4e-3
    r1, r2 = 200e3, 100e3
    c1, c2, cc = 0.1e-12, 2e-12, 0.5e-12

    b = CircuitBuilder("miller")
    b.v("in", "gnd", ac=1.0)
    b.r("in", "gnd", 1e6)
    b.vccs("gnd", "x", "in", "gnd", gm=gm1)
    b.r("x", "gnd", r1)
    b.c("x", "gnd", c1)
    b.vccs("gnd", "out", "x", "gnd", gm=-gm2)
    b.r("out", "gnd", r2)
    b.c("out", "gnd", c2)
    b.c("x", "out", cc)
    circuit = b.build()

    graph, source = build_sfg(circuit)
    print(f"Signal-flow graph: {graph!r}")
    print(f"  forward paths in->out: {len(graph.forward_paths(source, 'out'))}")
    print(f"  loops: {len(graph.loops())}\n")

    h = mason_gain(graph, source, "out")
    print("Symbolic transfer function (Mason's rule):")
    print(f"  free symbols: {sorted(h.free_symbols())}\n")

    op = solve_dc(circuit)
    bindings = small_signal_bindings(circuit, op)
    a0 = h.dc_gain(bindings)
    poles = sorted(h.poles(bindings), key=abs)
    zeros = h.zeros(bindings)
    print("Numerical transfer function (bindings from DC simulation):")
    print(f"  DC gain: {a0:.1f} (analytic gm1 r1 gm2 r2 = {gm1*r1*gm2*r2:.1f})")
    print(f"  dominant pole: {abs(poles[0])/2/np.pi:.3e} Hz")
    print(f"  non-dominant pole: {abs(poles[1])/2/np.pi:.3e} Hz")
    rhp = [z for z in zeros if z.real > 0]
    print(f"  RHP zero: {rhp[0].real/2/np.pi:.3e} Hz "
          f"(gm2/(2 pi Cc) = {gm2/(2*np.pi*cc):.3e} Hz)\n")

    # Cross-check against the direct MNA AC solve at a few frequencies.
    from repro.analysis import ac_transfer

    lin = linearize(circuit, op)
    freqs = np.array([1e4, 1e6, 1e8])
    mna = ac_transfer(lin, "out", freqs)
    print("Cross-validation vs direct MNA AC solve:")
    for f, expected in zip(freqs, mna):
        got = h(2j * np.pi * f, bindings)
        print(f"  {f:9.0f} Hz: SFG {abs(got):10.3f}  MNA {abs(expected):10.3f}  "
              f"delta {abs(got-expected)/abs(expected):.2e}")


if __name__ == "__main__":
    main()
