"""Extension study: how the optimum topology moves with sample rate.

The paper fixes 40 MSPS; its methodology, however, is a reusable flow.
This example sweeps the conversion rate for a 13-bit target as a *campaign*
— a one-axis :class:`repro.CampaignGrid` run as a single batch — and
watches the optimum configuration and its power: at low rates settling is
easy and capacitors dominate; at high rates the settling (gm) burden
amplifies the feedback-factor penalty of aggressive front stages.

Run with::

    python examples/rate_sweep.py
    python examples/rate_sweep.py --backend process   # pooled evaluation
    python examples/rate_sweep.py --backend thread

The ``--backend`` choice rides on the same :class:`repro.FlowConfig` every
flow entry point takes; the campaign shares the chosen backend across the
whole sweep (one pool, not one per rate point) and serial/thread/process
produce identical tables.
"""

import argparse

from repro import CampaignGrid, FlowConfig, run_campaign
from repro.engine.backend import BACKENDS


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--backend",
        choices=sorted(BACKENDS),
        default="serial",
        help="execution backend for the batched sweep (default: serial)",
    )
    args = parser.parse_args()

    grid = CampaignGrid(
        resolutions=(13,),
        sample_rates_hz=tuple(r * 1e6 for r in (10, 20, 40, 60, 80)),
    )
    campaign = run_campaign(grid, config=FlowConfig(backend=args.backend))

    print("13-bit optimum vs sample rate (analytic flow):\n")
    print("  rate [MSPS]   optimum      total [mW]   runner-up")
    for scenario in campaign.scenarios:
        best, second = scenario.topology.evaluations[:2]
        rate_msps = scenario.scenario.spec.sample_rate_hz / 1e6
        print(
            f"  {rate_msps:11.0f}   {best.label:10s} {best.total_power*1e3:9.2f}"
            f"     {second.label} (+{(second.total_power-best.total_power)*1e3:.2f} mW)"
        )

    print("\nCampaign comparison across the same sweep:\n")
    print(campaign.report())

    print("\nDetail at the paper's 40 MSPS point:")
    from repro.power import candidate_power
    from repro.power.report import stage_table
    from repro.specs.adc import AdcSpec

    spec = AdcSpec(resolution_bits=13, sample_rate_hz=40e6)
    best = campaign.topology_by_resolution(sample_rate_hz=40e6)[13].best
    print(stage_table(candidate_power(spec, best.candidate)))


if __name__ == "__main__":
    main()
