"""Extension study: how the optimum topology moves with sample rate.

The paper fixes 40 MSPS; its methodology, however, is a reusable flow.
This example sweeps the conversion rate for a 13-bit target and watches
the optimum configuration and its power: at low rates settling is easy and
capacitors dominate; at high rates the settling (gm) burden amplifies the
feedback-factor penalty of aggressive front stages.

Run with::

    python examples/rate_sweep.py

Pass ``--parallel`` to fan each rate point's candidate evaluations out
over the process-pool backend (one pool shared across the whole sweep);
the knob rides on the same :class:`repro.FlowConfig` every flow entry
point takes.
"""

import argparse

from repro import AdcSpec, FlowConfig, optimize_topology
from repro.power.report import stage_table


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--parallel",
        action="store_true",
        help="evaluate candidates through the process-pool backend",
    )
    args = parser.parse_args()
    config = FlowConfig(backend="process" if args.parallel else "serial")
    backend = config.make_backend()

    print("13-bit optimum vs sample rate (analytic flow):\n")
    print("  rate [MSPS]   optimum      total [mW]   runner-up")
    try:
        for rate_msps in (10, 20, 40, 60, 80):
            spec = AdcSpec(resolution_bits=13, sample_rate_hz=rate_msps * 1e6)
            result = optimize_topology(spec, config=config, backend=backend)
            best, second = result.evaluations[0], result.evaluations[1]
            print(
                f"  {rate_msps:11d}   {best.label:10s} {best.total_power*1e3:9.2f}"
                f"     {second.label} (+{(second.total_power-best.total_power)*1e3:.2f} mW)"
            )
    finally:
        backend.close()

    print("\nDetail at the paper's 40 MSPS point:")
    spec = AdcSpec(resolution_bits=13, sample_rate_hz=40e6)
    from repro.power import candidate_power

    best = optimize_topology(spec).best
    print(stage_table(candidate_power(spec, best.candidate)))


if __name__ == "__main__":
    main()
