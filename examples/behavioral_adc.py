"""Behavioral validation: does the chosen topology actually convert?

Builds the 13-bit 4-3-2 pipeline at the bit level (sub-ADC decisions,
MDAC residues, redundancy, digital correction plus an ideal backend), runs
a coherent sine test, and shows that comparator offsets within the
redundancy margin cost essentially nothing — the property the per-stage
redundant bit pays for.

Run with::

    python examples/behavioral_adc.py
"""

import numpy as np

from repro.behavioral import BehavioralPipeline, StageErrorModel, enob, sfdr_db, sndr_db
from repro.behavioral.signals import full_scale_sine
from repro.enumeration import PipelineCandidate


def report(name: str, pipeline: BehavioralPipeline, cycles: int = 479, n: int = 4096):
    signal = full_scale_sine(n, cycles, pipeline.full_scale)
    codes = pipeline.convert_array(signal)
    print(f"  {name:34s} SNDR={sndr_db(codes, cycles):6.2f} dB  "
          f"ENOB={enob(codes, cycles):5.2f} bits  SFDR={sfdr_db(codes, cycles):6.1f} dB")


def main() -> None:
    cand = PipelineCandidate((4, 3, 2), 13, 7)
    print(f"Candidate {cand.label}: stage gains {[cand.stage_gain(i) for i in range(3)]}, "
          f"backend resolves {cand.total_bits - cand.frontend_bits} bits\n")

    print("Coherent sine test (4096 points, bin 479):")
    report("ideal pipeline", BehavioralPipeline(cand))

    rng = np.random.default_rng(11)
    offset_errors = []
    for m in cand.resolutions:
        tol = 2.0 / 2 ** (m + 1)
        offsets = tuple(rng.uniform(-0.8 * tol, 0.8 * tol, 2**m - 2))
        offset_errors.append(StageErrorModel(comparator_offsets=offsets))
    report(
        "comparator offsets at 80% of margin",
        BehavioralPipeline(cand, stage_errors=tuple(offset_errors)),
    )

    dac_errors = []
    for m in cand.resolutions:
        errs = tuple(rng.normal(0.0, 1.5e-3, 2**m - 1))
        dac_errors.append(StageErrorModel(dac_level_errors=errs))
    report(
        "1.5 mV rms DAC (capacitor) errors",
        BehavioralPipeline(cand, stage_errors=tuple(dac_errors)),
    )

    noise_errors = tuple(
        StageErrorModel(noise_rms=70e-6 / (1 if i == 0 else 8))
        for i in range(3)
    )
    rng2 = np.random.default_rng(7)
    pipeline = BehavioralPipeline(cand, stage_errors=noise_errors)
    signal = full_scale_sine(4096, 479, 2.0)
    codes = np.array([pipeline.convert(float(v), rng2) for v in signal])
    print(f"  {'kT/C-budget thermal noise':34s} SNDR={sndr_db(codes, 479):6.2f} dB  "
          f"ENOB={enob(codes, 479):5.2f} bits")
    print("\nRedundancy absorbs sub-ADC errors; DAC mismatch and noise do the damage —")
    print("exactly the budget split repro.specs enforces.")


if __name__ == "__main__":
    main()
