"""Block synthesis walkthrough: size one MDAC opamp transistor-by-transistor.

Demonstrates the Section 3 hybrid flow on the 3-bit, 10-bit-accuracy stage
of the 13-bit 4-3-2 pipeline: DPI/SFG-reduced design space, annealing on
equation metrics (DC op + numerical transfer function), then nonlinear
transient verification of the settling, and finally a retarget to a harder
spec.

Run with::

    python examples/synthesize_block.py
"""

from repro import AdcSpec, PipelineCandidate, plan_stages
from repro.synth import retarget_mdac, synthesize_mdac
from repro.tech import CMOS025


def main() -> None:
    spec = AdcSpec(resolution_bits=13)
    plan = plan_stages(spec, PipelineCandidate((4, 3, 2), 13, 7))
    mdac = plan.mdacs[1]

    print("Block spec (3-bit MDAC at 10-bit input accuracy):")
    print(f"  residue gain        : {mdac.gain}")
    print(f"  feedback factor     : {mdac.beta:.3f}")
    print(f"  effective load      : {mdac.c_eff*1e15:.0f} fF")
    print(f"  required gm         : {mdac.gm_required*1e3:.2f} mS")
    print(f"  min DC gain         : {mdac.dc_gain_min:.0f}")
    print(f"  settling error spec : {mdac.settling_error:.2e} in "
          f"{(mdac.linear_settling_time + mdac.slew_time)*1e9:.1f} ns\n")

    result = synthesize_mdac(mdac, CMOS025, budget=300, seed=3)
    sizing = result.final.sizing
    print("Synthesized two-stage Miller opamp:")
    print(f"  input pair   : W={sizing.w_input*1e6:.1f} um, L={sizing.l_input*1e6:.2f} um")
    print(f"  second stage : W={sizing.w_stage2*1e6:.1f} um")
    print(f"  tail current : {sizing.i_tail*1e6:.0f} uA "
          f"(stage 2: {sizing.i_stage2*1e6:.0f} uA)")
    print(f"  Miller cap   : {sizing.c_comp*1e12:.2f} pF")
    print(f"  -> {result.summary()}")
    print(f"  evaluations  : {result.equation_evals} equation, "
          f"{result.transient_evals} transient (the hybrid economy)\n")

    harder = plan_stages(spec, PipelineCandidate((3, 3, 3), 13, 7)).mdacs[1]
    warm = retarget_mdac(result, harder, CMOS025, budget=60)
    print("Retargeted to the 3-bit, 11-bit-accuracy spec (warm start):")
    print(f"  -> {warm.summary()}")
    print(f"  evaluations  : {warm.equation_evals} "
          f"(vs {result.equation_evals} cold — the paper's 'one day vs weeks')")


if __name__ == "__main__":
    main()
