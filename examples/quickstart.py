"""Quickstart: find the minimum-power topology for a 13-bit 40 MSPS ADC.

Runs the paper's full designer-driven flow in its fast (analytic) mode:
enumerate the front-end candidates, translate the system spec into
per-stage block specs, evaluate power, and rank.

Run with::

    python examples/quickstart.py
"""

from repro import AdcSpec, optimize_topology


def main() -> None:
    spec = AdcSpec(resolution_bits=13, sample_rate_hz=40e6)
    print(f"Target: {spec.resolution_bits}-bit, {spec.sample_rate_hz/1e6:.0f} MSPS, "
          f"{spec.tech.name}, {spec.tech.vdd} V")
    print(f"Quantization-limited SNR: {spec.ideal_snr_db():.1f} dB\n")

    result = optimize_topology(spec)

    print("Front-end candidates (stages resolving the first "
          f"{spec.resolution_bits - 7} effective bits), ranked by power:")
    for label, mw in result.power_table():
        marker = "  <- optimum" if label == result.best.label else ""
        print(f"  {label:14s} {mw:7.2f} mW{marker}")

    best = result.best
    print(f"\nOptimum configuration: {best.label} (paper: 4-3-2)")
    print("Per-stage detail:")
    for mdac, power_w in zip(best.plan.mdacs, best.stage_powers):
        caps = mdac.caps
        print(
            f"  stage {mdac.stage_index + 1}: {mdac.stage_bits}-bit, gain {mdac.gain}, "
            f"input accuracy {mdac.input_accuracy_bits} bits, "
            f"C_s={caps.total*1e15:.0f} fF ({caps.binding_constraint}-bound), "
            f"gm={mdac.gm_required*1e3:.2f} mS -> {power_w*1e3:.2f} mW"
        )


if __name__ == "__main__":
    main()
