"""Command-line interface: regenerate the paper's figures, explore single
specs, or sweep whole design-space grids as campaigns.

Examples::

    repro-adc fig1                # analytic stage powers, 13-bit
    repro-adc fig1 --synthesis    # transistor-level synthesis (slower)
    repro-adc fig2
    repro-adc fig3 --backend process
    repro-adc runtime
    repro-adc explore --bits 12
    repro-adc campaign --bits 10-13 --rates 20,40,60 --out campaign-out
    repro-adc campaign --bits 10-13 --out campaign-out --resume
    repro-adc campaign --bits 10-13 --shard 1/2 --out shard1
    repro-adc merge shard1 shard2 --out merged

Every flow command accepts the execution-engine flags (``--backend``,
``--workers``, ``--cache-dir``, ``--budget``, ``--retarget-budget``,
``--no-verify``); they assemble the :class:`~repro.engine.config.FlowConfig`
threaded through every entry point.
"""

from __future__ import annotations

import argparse
import os
import sys

from repro.campaign import (
    CampaignGrid,
    merge_shards,
    parse_int_axis,
    parse_rate_axis,
    parse_shard,
    run_campaign,
)
from repro.engine.backend import BACKENDS
from repro.engine.config import FlowConfig
from repro.experiments import (
    fig1_stage_powers,
    fig2_total_power,
    fig3_designer_rules,
    format_fig1,
    format_fig2,
    format_fig3,
    format_runtime,
    retarget_economy,
)
from repro.flow.topology import optimize_topology
from repro.specs.adc import AdcSpec

#: --help epilog: the engine knobs in FlowConfig terms, kept in sync with
#: :class:`repro.engine.config.FlowConfig` (see tests/campaign/test_cli.py).
EPILOG = """\
execution engine (every flow command):
  --backend {serial,thread,process} maps the flow's fan-out points
  (candidate evaluation, synthesis waves, resolution sweeps) over the
  chosen executor; --workers bounds the pool.  --cache-dir enables the
  content-fingerprinted persistent block cache (default: the
  REPRO_ADC_CACHE environment variable), so warm reruns skip synthesis.
  --budget / --retarget-budget set the cold and warm-start annealer
  evaluation budgets; --no-verify skips the transient verifier.
  --eval-kernel picks the equation-evaluation kernel (compiled MNA
  templates + batched AC solves by default; 'legacy' is the reference
  walk — results are bit-identical, see docs/performance.md) and
  --speculation batches optimizer proposals speculatively.  The same
  knobs form FlowConfig in the Python API.

campaigns:
  repro-adc campaign expands --bits x --rates x --modes into a scenario
  grid and runs it as one batch: one backend, one persistent cache and one
  warm-start donor pool shared across all scenarios.  Results land in
  --out as results.jsonl, report.txt, manifest.json and meta.json.  With
  --out the run is checkpointed per scenario: a killed campaign rerun with
  --resume replays completed scenarios byte-identically and only executes
  the rest (the manifest refuses a store built for a different
  grid/config).  --shard K/N runs the K-th of N deterministic slices of
  the grid on this machine; repro-adc merge SHARD_DIR... --out DIR fuses
  the shard stores into the single-run store, byte-identical to an
  unsharded run.  --backend queue executes through a crash-tolerant
  file-backed work queue (leases/acks under the store, --queue-dir to
  relocate), so interrupted scenarios also resume at task granularity.

docs: docs/architecture.md (layer map), docs/engine.md (backends, waves,
fingerprints).
"""


def _engine_parent() -> argparse.ArgumentParser:
    """Shared execution-engine flags, attached to every flow command."""
    parent = argparse.ArgumentParser(add_help=False)
    group = parent.add_argument_group("execution engine")
    group.add_argument(
        "--backend",
        choices=sorted(BACKENDS),
        default="serial",
        help="execution backend for candidate/sweep/synthesis fan-out",
    )
    group.add_argument(
        "--workers", type=int, default=None, help="pool worker count (default: CPUs)"
    )
    group.add_argument(
        "--cache-dir",
        default=os.environ.get("REPRO_ADC_CACHE"),
        help="persistent block-cache directory (env REPRO_ADC_CACHE)",
    )
    group.add_argument(
        "--budget", type=int, default=400, help="cold-synthesis annealer budget"
    )
    group.add_argument(
        "--retarget-budget", type=int, default=80, help="warm-start budget"
    )
    group.add_argument(
        "--no-verify",
        action="store_true",
        help="skip the transient verification of synthesized blocks",
    )
    group.add_argument(
        "--eval-kernel",
        choices=("compiled", "legacy"),
        default="compiled",
        help="equation-evaluation kernel (bit-identical results; "
        "'legacy' keeps the reference per-element walk for A/B timing)",
    )
    group.add_argument(
        "--speculation",
        type=int,
        default=0,
        help="speculative proposal-batch depth for the optimizers (0 = off)",
    )
    group.add_argument(
        "--queue-dir",
        default=None,
        metavar="DIR",
        help="lease/ack directory for --backend queue (default: inside the "
        "campaign --out store, or a temporary directory)",
    )
    return parent


def _flow_config(args: argparse.Namespace) -> FlowConfig:
    """Assemble the FlowConfig from parsed engine flags."""
    return FlowConfig(
        backend=args.backend,
        max_workers=args.workers,
        cache_dir=args.cache_dir,
        queue_dir=args.queue_dir,
        budget=args.budget,
        retarget_budget=args.retarget_budget,
        verify_transient=not args.no_verify,
        eval_kernel=args.eval_kernel,
        eval_speculation=args.speculation,
    )


def main(argv: list[str] | None = None) -> int:
    """Entry point for the ``repro-adc`` command."""
    parser = argparse.ArgumentParser(
        prog="repro-adc",
        description="Designer-driven pipelined-ADC topology optimization (DATE 2005 reproduction)",
        epilog=EPILOG,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    sub = parser.add_subparsers(dest="command", required=True)
    engine = _engine_parent()

    p_fig1 = sub.add_parser(
        "fig1", parents=[engine], help="stage power per 13-bit candidate"
    )
    p_fig1.add_argument("--synthesis", action="store_true", help="use transistor-level synthesis")

    sub.add_parser("fig2", parents=[engine], help="total front-end power, K=10..13")
    sub.add_parser("fig3", parents=[engine], help="designer decision rules")

    p_rt = sub.add_parser("runtime", help="cold vs retargeted synthesis effort")
    p_rt.add_argument("--budget", type=int, default=400)

    p_explore = sub.add_parser(
        "explore", parents=[engine], help="rank candidates for one resolution"
    )
    p_explore.add_argument("--bits", type=int, default=13)
    p_explore.add_argument("--rate", type=float, default=40e6, help="sample rate [Hz]")
    p_explore.add_argument(
        "--synthesis", action="store_true", help="use transistor-level synthesis"
    )

    p_camp = sub.add_parser(
        "campaign",
        parents=[engine],
        help="run a resolution x rate x mode grid as one batch",
        description=(
            "Expand a design-space grid into scenarios and run them as one "
            "batch sharing a backend, a persistent block cache and a "
            "cross-scenario warm-start donor pool; writes results.jsonl and "
            "a figure-of-merit comparison report."
        ),
    )
    p_camp.add_argument(
        "--bits",
        default="10-13",
        help="resolution axis: N, N-M or comma list (default 10-13)",
    )
    p_camp.add_argument(
        "--rates",
        default="40",
        help="sample-rate axis in MSPS, comma list (default 40)",
    )
    p_camp.add_argument(
        "--modes",
        default="analytic",
        help="flow-mode axis: comma list of analytic/synthesis (default analytic)",
    )
    p_camp.add_argument(
        "--out",
        default=None,
        metavar="DIR",
        help="results-store directory (default: report to stdout only)",
    )
    p_camp.add_argument(
        "--quiet",
        action="store_true",
        help="suppress per-scenario progress lines",
    )
    p_camp.add_argument(
        "--resume",
        action="store_true",
        help="replay the store's completed-scenario checkpoints and run "
        "only the rest (requires --out; refuses a mismatched manifest)",
    )
    p_camp.add_argument(
        "--shard",
        default="1/1",
        metavar="K/N",
        help="run only the K-th of N deterministic grid slices "
        "(default 1/1 = the whole grid); fuse stores with repro-adc merge",
    )

    p_merge = sub.add_parser(
        "merge",
        help="fuse shard stores into one campaign store",
        description=(
            "Validate that the given shard stores belong to the same "
            "campaign (matching grid/config manifests, every shard present "
            "exactly once) and write the merged results store — "
            "byte-identical to a single unsharded run."
        ),
    )
    p_merge.add_argument(
        "stores", nargs="+", metavar="SHARD_DIR", help="shard store directories"
    )
    p_merge.add_argument(
        "--out",
        default=None,
        metavar="DIR",
        help="merged-store directory (default: print the report only)",
    )

    args = parser.parse_args(argv)

    if args.command == "fig1":
        mode = "synthesis" if args.synthesis else "analytic"
        print(format_fig1(fig1_stage_powers(mode=mode, config=_flow_config(args))))
    elif args.command == "fig2":
        print(format_fig2(fig2_total_power(config=_flow_config(args))))
    elif args.command == "fig3":
        print(format_fig3(fig3_designer_rules(config=_flow_config(args))))
    elif args.command == "runtime":
        print(format_runtime(retarget_economy(cold_budget=args.budget)))
    elif args.command == "explore":
        spec = AdcSpec(resolution_bits=args.bits, sample_rate_hz=args.rate)
        mode = "synthesis" if args.synthesis else "analytic"
        result = optimize_topology(spec, mode=mode, config=_flow_config(args))
        print(f"{args.bits}-bit, {args.rate/1e6:.0f} MSPS front-end candidates:")
        for label, mw in result.power_table():
            print(f"  {label:14s} {mw:7.2f} mW")
        print(f"optimum: {result.best.label}")
        if mode == "synthesis":
            print(f"unique blocks synthesized: {result.unique_blocks}")
    elif args.command == "campaign":
        grid = CampaignGrid(
            resolutions=parse_int_axis(args.bits),
            sample_rates_hz=parse_rate_axis(args.rates),
            modes=tuple(m.strip() for m in args.modes.split(",") if m.strip()),
        )
        shard = parse_shard(args.shard)
        if args.resume and args.out is None:
            parser.error("--resume requires --out (the store to resume)")

        def _progress(scenario_result) -> None:
            record = scenario_result.record
            note = " [replayed]" if scenario_result.replayed else ""
            print(
                f"[{record.index + 1}/{grid.size}] {record.label}: "
                f"winner {record.winner}, "
                f"{record.winner_power_w * 1e3:.2f} mW "
                f"({scenario_result.wall_seconds:.2f} s){note}",
                file=sys.stderr,
            )

        campaign = run_campaign(
            grid,
            config=_flow_config(args),
            progress=None if args.quiet else _progress,
            store_dir=args.out,
            resume=args.resume,
            shard=shard,
        )
        print(campaign.report())
        if args.out is not None:
            if campaign.replayed_scenarios:
                print(
                    f"resumed: {campaign.replayed_scenarios} scenario(s) "
                    "replayed from checkpoints",
                    file=sys.stderr,
                )
            print(f"\nresults store: {args.out}/results.jsonl", file=sys.stderr)
    elif args.command == "merge":
        _, report_text, _ = merge_shards(args.stores, out_dir=args.out)
        print(report_text)
        if args.out is not None:
            print(f"\nmerged store: {args.out}/results.jsonl", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
