"""Command-line interface: regenerate the paper's figures, explore single
specs, sweep whole design-space grids as campaigns, or run / talk to the
async optimization service.

Examples::

    repro-adc fig1                # analytic stage powers, 13-bit
    repro-adc fig1 --synthesis    # transistor-level synthesis (slower)
    repro-adc fig2
    repro-adc fig3 --backend process
    repro-adc runtime
    repro-adc explore --bits 12
    repro-adc campaign --bits 10-13 --rates 20,40,60 --out campaign-out
    repro-adc campaign --bits 10-13 --corners nom,slow --out corner-out
    repro-adc campaign --bits 10-12 --modes analytic,behavioral \
        --behavioral-draws 1000 --out verified-out
    repro-adc campaign --bits 10-13 --out campaign-out --resume
    repro-adc campaign --bits 10-13 --shard 1/2 --out shard1
    repro-adc merge shard1 shard2 --out merged
    repro-adc serve --store svc-store --port 8765
    repro-adc worker --broker http://127.0.0.1:8765
    repro-adc submit --bits 10-13 --backend broker --watch --fetch results/
    repro-adc jobs

Every flow command accepts the execution-engine flags (``--backend``,
``--workers``, ``--cache-dir``, ``--budget``, ``--retarget-budget``,
``--no-verify``); they assemble the :class:`~repro.engine.config.FlowConfig`
threaded through every entry point.  Specification and service errors exit
with a single-line ``repro-adc: error: ...`` message (status 2), never a
traceback.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import sys
import time
from pathlib import Path

from repro.campaign import (
    CampaignGrid,
    merge_shards,
    parse_int_axis,
    parse_rate_axis,
    parse_shard,
    run_campaign,
)
from repro.campaign.grid import count_shard_units, parse_corner_axis
from repro.engine.backend import BACKENDS
from repro.engine.config import FlowConfig
from repro.errors import ServiceError, SpecificationError
from repro.experiments import (
    fig1_stage_powers,
    fig2_total_power,
    fig3_designer_rules,
    format_fig1,
    format_fig2,
    format_fig3,
    format_runtime,
    retarget_economy,
)
from repro.flow.topology import optimize_topology
from repro.obs.metrics import TELEMETRY_MODES
from repro.specs.adc import AdcSpec

#: Default service URL (``repro-adc submit``/``jobs``), env-overridable.
DEFAULT_SERVICE_URL = os.environ.get("REPRO_ADC_SERVICE", "http://127.0.0.1:8765")

#: --help epilog: the engine knobs in FlowConfig terms, kept in sync with
#: :class:`repro.engine.config.FlowConfig` (see tests/campaign/test_cli.py).
EPILOG = """\
execution engine (every flow command):
  --backend {serial,thread,process,queue,broker} maps the flow's fan-out points
  (candidate evaluation, synthesis waves, resolution sweeps) over the
  chosen executor; --workers bounds the pool.  --cache-dir enables the
  content-fingerprinted persistent block cache (default: the
  REPRO_ADC_CACHE environment variable), so warm reruns skip synthesis.
  --budget / --retarget-budget set the cold and warm-start annealer
  evaluation budgets; --no-verify skips the transient verifier.
  --eval-kernel picks the equation-evaluation kernel (compiled MNA
  templates + batched AC solves by default; 'legacy' is the reference
  walk — results are bit-identical, see docs/performance.md) and
  --speculation caps the optimizers' speculative proposal batches
  (default auto: on under --dc-kernel batched, off under chained — the
  measured break-evens; --no-speculation forces it off).  --dc-kernel
  picks the DC Newton kernel (chained warm-start walk by default;
  'batched' solves whole populations in lockstep — NOT result-identical).
  The same knobs form FlowConfig in the Python API.

campaigns:
  repro-adc campaign expands --bits x --rates x --modes into a scenario
  grid and runs it as one batch: one backend, one persistent cache and one
  warm-start donor pool shared across all scenarios.  Results land in
  --out as results.jsonl, report.txt, manifest.json and meta.json.  With
  --out the run is checkpointed per scenario: a killed campaign rerun with
  --resume replays completed scenarios byte-identically and only executes
  the rest (the manifest refuses a store built for a different
  grid/config).  --shard K/N runs the K-th of N deterministic slices of
  the grid on this machine; repro-adc merge SHARD_DIR... --out DIR fuses
  the shard stores into the single-run store, byte-identical to an
  unsharded run.  Synthesis scenarios shard per technology corner (the
  warm-start donor pool is corner-scoped), so a corner sweep splits its
  synthesis grids across machines; N above the grid's unit count is
  refused up front.  --backend queue executes through a crash-tolerant
  file-backed work queue (leases/acks under the store, --queue-dir to
  relocate), so interrupted scenarios also resume at task granularity.
  --corners sweeps registered technology corners (nom, slow).  A
  'behavioral' entry in --modes verifies each grid point's winning
  topology in the time domain: --behavioral-draws Monte-Carlo mismatch
  realizations (seeded by --seed, part of the store's identity) are
  simulated by the vectorized batch kernel (--behavioral-kernel legacy
  keeps the scalar reference walk; results are bit-identical) and the
  simulated SNDR/ENOB/FoM land in the same store and report as the
  analytic numbers.  See docs/behavioral.md.

service:
  repro-adc serve runs the long-lived optimization service: campaign and
  optimize jobs over a JSON HTTP API, scheduled with priority + per-client
  fairness, coalesced by content (identical requests share one
  computation) and drained gracefully on SIGTERM — a restarted server
  resumes its queue without recomputing completed jobs.  repro-adc submit
  sends a job (--watch streams progress; --fetch downloads the result
  store, byte-identical to a direct campaign run) and repro-adc jobs
  lists the queue.  All routes live under /v1/; unversioned paths still
  answer but carry a Deprecation header.  See docs/service.md.

distributed fabric:
  --backend broker hands the flow's fan-out tasks to a task broker
  instead of a local pool: repro-adc worker processes lease tasks
  (pinned by TTL'd heartbeat leases), execute them, and ack results
  back, so a campaign fans out across processes or machines and a
  SIGKILLed worker's tasks are reclaimed by the survivors.  Point
  workers and flows at a serve instance (worker --broker URL, flows
  --broker-url URL, submit --backend broker) or at a shared directory
  (--queue-dir).  Results stay byte-identical to a serial run.  See
  docs/engine.md.

observability:
  --telemetry {off,metrics,trace} sets the telemetry level for any flow
  command: 'metrics' (the default) accumulates counters — cache hits,
  scheduler waves, broker lease traffic — and campaigns write an
  aggregated metrics.json (runner + pool workers + broker fleet) into
  their store; 'trace' additionally exports nested timing spans to
  <store>/traces/*.jsonl, replayable with repro-adc trace STORE_DIR.
  Records are byte-identical in every mode — telemetry never enters
  manifests or fingerprints.  --verbose dumps the process's metrics
  registry to stderr after any command; repro-adc status --broker URL
  (or --queue-dir DIR) shows a broker's queue depths and live worker
  fleet.  See docs/observability.md.

docs: docs/architecture.md (layer map), docs/engine.md (backends, waves,
fingerprints), docs/service.md (job API), docs/observability.md
(metrics, traces, fleet liveness).
"""


def _engine_parent() -> argparse.ArgumentParser:
    """Shared execution-engine flags, attached to every flow command."""
    parent = argparse.ArgumentParser(add_help=False)
    group = parent.add_argument_group("execution engine")
    group.add_argument(
        "--backend",
        choices=sorted(BACKENDS),
        default="serial",
        help="execution backend for candidate/sweep/synthesis fan-out",
    )
    group.add_argument(
        "--workers", type=int, default=None, help="pool worker count (default: CPUs)"
    )
    group.add_argument(
        "--cache-dir",
        default=os.environ.get("REPRO_ADC_CACHE"),
        help="persistent block-cache directory (env REPRO_ADC_CACHE)",
    )
    group.add_argument(
        "--budget", type=int, default=400, help="cold-synthesis annealer budget"
    )
    group.add_argument(
        "--retarget-budget", type=int, default=80, help="warm-start budget"
    )
    group.add_argument(
        "--no-verify",
        action="store_true",
        help="skip the transient verification of synthesized blocks",
    )
    group.add_argument(
        "--eval-kernel",
        choices=("compiled", "legacy"),
        default="compiled",
        help="equation-evaluation kernel (default: compiled MNA templates "
        "with tensor-batched AC solves; 'legacy' keeps the reference "
        "per-element walk for A/B timing — results are bit-identical)",
    )
    group.add_argument(
        "--speculation",
        type=int,
        default=None,
        metavar="DEPTH",
        help="speculative proposal-batch depth cap for the optimizers "
        "(default: auto — depth 8 under --dc-kernel batched, where the "
        "lockstep solve batches DC across proposals, off under chained "
        "where it loses; see docs/performance.md; the adaptive controller "
        "sizes batches below DEPTH; results are bit-identical either way)",
    )
    group.add_argument(
        "--no-speculation",
        action="store_true",
        help="force speculation off, overriding --speculation and any "
        "config default (escape hatch if a future default flips it on)",
    )
    group.add_argument(
        "--dc-kernel",
        choices=("chained", "batched"),
        default="chained",
        help="DC Newton kernel (default: chained per-candidate warm-start "
        "walk; 'batched' iterates the whole population in lockstep with "
        "masked convergence — NOT result-identical: cold-start "
        "trajectories differ from the warm chain, so caches, queue acks "
        "and campaign manifests keyed under one kernel never serve the "
        "other; see docs/performance.md)",
    )
    group.add_argument(
        "--queue-dir",
        default=None,
        metavar="DIR",
        help="lease/ack directory for --backend queue or broker (default: "
        "inside the campaign --out store, or a temporary directory)",
    )
    group.add_argument(
        "--broker-url",
        default=None,
        metavar="URL",
        help="task-broker endpoint for --backend broker (a repro-adc serve "
        "instance; tasks execute on attached repro-adc worker processes)",
    )
    group.add_argument(
        "--broker-wait-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="abort --backend broker dispatch after SECONDS without any "
        "ack, failure, or live worker lease (default 300; 0 waits forever)",
    )
    group.add_argument(
        "--telemetry",
        choices=TELEMETRY_MODES,
        default=FlowConfig.telemetry,
        help="telemetry level (default metrics): 'off' records nothing, "
        "'metrics' accumulates counters and writes an aggregated "
        "metrics.json into campaign stores, 'trace' additionally exports "
        "timing spans to <store>/traces/ (results are byte-identical in "
        "every mode; see docs/observability.md)",
    )
    group.add_argument(
        "--verbose",
        action="store_true",
        help="print this process's metrics registry (one name-sorted "
        "'name value' line per metric) to stderr after the command; "
        "pool/fleet workers keep their own registries — campaign stores "
        "aggregate them into metrics.json",
    )
    return parent


def _require_store_dir(path: str | None, flag: str) -> str | None:
    """A friendly guard for directory-valued flags.

    Rejects a path that exists but is not a directory (``run_campaign``
    would otherwise die deep inside with a bare ``NotADirectoryError``).
    """
    if path is not None and Path(path).exists() and not Path(path).is_dir():
        raise SpecificationError(
            f"{flag} {path!r} exists and is not a directory "
            "(pass a directory path, or remove the file)"
        )
    return path


def _grid_from_args(args: argparse.Namespace) -> CampaignGrid:
    """The one place CLI axis flags become a CampaignGrid.

    Shared by ``campaign`` and ``submit`` so the two commands can never
    interpret the same flags differently (the service-vs-direct
    byte-identity contract depends on that).
    """
    return CampaignGrid(
        resolutions=parse_int_axis(args.bits),
        sample_rates_hz=parse_rate_axis(args.rates),
        modes=tuple(m.strip() for m in args.modes.split(",") if m.strip()),
        corners=parse_corner_axis(args.corners),
    )


def _resolve_speculation(args: argparse.Namespace) -> int:
    """Effective speculation depth from the flag pair.

    ``--no-speculation`` always wins; an unset ``--speculation`` falls
    back to the library default (:attr:`FlowConfig.eval_speculation`).
    """
    if getattr(args, "no_speculation", False):
        return 0
    if args.speculation is None:
        return FlowConfig.eval_speculation
    return args.speculation


def _flow_config(args: argparse.Namespace) -> FlowConfig:
    """Assemble the FlowConfig from parsed engine flags."""
    if args.queue_dir is not None and args.backend not in ("queue", "broker"):
        raise SpecificationError(
            f"--queue-dir only applies to --backend queue or broker "
            f"(got --backend {args.backend}; valid backends: "
            f"{', '.join(sorted(BACKENDS))})"
        )
    broker_url = getattr(args, "broker_url", None)
    if broker_url is not None and args.backend != "broker":
        raise SpecificationError(
            f"--broker-url only applies to --backend broker "
            f"(got --backend {args.backend}; valid backends: "
            f"{', '.join(sorted(BACKENDS))})"
        )
    broker_wait_timeout = getattr(args, "broker_wait_timeout", None)
    if broker_wait_timeout is not None and args.backend != "broker":
        raise SpecificationError(
            f"--broker-wait-timeout only applies to --backend broker "
            f"(got --backend {args.backend}; valid backends: "
            f"{', '.join(sorted(BACKENDS))})"
        )
    _require_store_dir(args.queue_dir, "--queue-dir")
    _require_store_dir(args.cache_dir, "--cache-dir")
    return FlowConfig(
        backend=args.backend,
        max_workers=args.workers,
        cache_dir=args.cache_dir,
        queue_dir=args.queue_dir,
        broker_url=broker_url,
        broker_wait_timeout=(
            FlowConfig.broker_wait_timeout
            if broker_wait_timeout is None
            else broker_wait_timeout
        ),
        budget=args.budget,
        retarget_budget=args.retarget_budget,
        verify_transient=not args.no_verify,
        eval_kernel=args.eval_kernel,
        eval_speculation=_resolve_speculation(args),
        dc_kernel=getattr(args, "dc_kernel", "chained"),
        # Behavioral flags only exist on the campaign/submit parsers; the
        # figure commands fall back to the library defaults.
        behavioral_draws=getattr(
            args, "behavioral_draws", FlowConfig.behavioral_draws
        ),
        behavioral_seed=getattr(args, "seed", FlowConfig.behavioral_seed),
        behavioral_kernel=getattr(
            args, "behavioral_kernel", FlowConfig.behavioral_kernel
        ),
        telemetry=getattr(args, "telemetry", FlowConfig.telemetry),
    )


def main(argv: list[str] | None = None) -> int:
    """Entry point for the ``repro-adc`` command."""
    parser = argparse.ArgumentParser(
        prog="repro-adc",
        description="Designer-driven pipelined-ADC topology optimization (DATE 2005 reproduction)",
        epilog=EPILOG,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    sub = parser.add_subparsers(dest="command", required=True)
    engine = _engine_parent()

    p_fig1 = sub.add_parser(
        "fig1", parents=[engine], help="stage power per 13-bit candidate"
    )
    p_fig1.add_argument("--synthesis", action="store_true", help="use transistor-level synthesis")

    sub.add_parser("fig2", parents=[engine], help="total front-end power, K=10..13")
    sub.add_parser("fig3", parents=[engine], help="designer decision rules")

    p_rt = sub.add_parser("runtime", help="cold vs retargeted synthesis effort")
    p_rt.add_argument("--budget", type=int, default=400)

    p_explore = sub.add_parser(
        "explore", parents=[engine], help="rank candidates for one resolution"
    )
    p_explore.add_argument("--bits", type=int, default=13)
    p_explore.add_argument("--rate", type=float, default=40e6, help="sample rate [Hz]")
    p_explore.add_argument(
        "--synthesis", action="store_true", help="use transistor-level synthesis"
    )

    p_camp = sub.add_parser(
        "campaign",
        parents=[engine],
        help="run a resolution x rate x mode grid as one batch",
        description=(
            "Expand a design-space grid into scenarios and run them as one "
            "batch sharing a backend, a persistent block cache and a "
            "cross-scenario warm-start donor pool; writes results.jsonl and "
            "a figure-of-merit comparison report."
        ),
    )
    p_camp.add_argument(
        "--bits",
        default="10-13",
        help="resolution axis: N, N-M or comma list (default 10-13)",
    )
    p_camp.add_argument(
        "--rates",
        default="40",
        help="sample-rate axis in MSPS, comma list (default 40)",
    )
    p_camp.add_argument(
        "--modes",
        default="analytic",
        help="flow-mode axis: comma list of analytic/synthesis/behavioral "
        "(default analytic)",
    )
    p_camp.add_argument(
        "--behavioral-draws",
        type=int,
        default=FlowConfig.behavioral_draws,
        metavar="N",
        help="Monte-Carlo mismatch draws per behavioral scenario "
        f"(default {FlowConfig.behavioral_draws})",
    )
    p_camp.add_argument(
        "--seed",
        type=int,
        default=FlowConfig.behavioral_seed,
        help="behavioral Monte-Carlo seed: every mismatch draw and noise "
        "stream derives from it, and it is part of the store's identity "
        f"(default {FlowConfig.behavioral_seed})",
    )
    p_camp.add_argument(
        "--behavioral-kernel",
        choices=("batch", "legacy"),
        default=FlowConfig.behavioral_kernel,
        help="behavioral simulation kernel (default: the vectorized "
        "draws x samples batch program; 'legacy' keeps the scalar "
        "per-sample walk for A/B timing — results are bit-identical)",
    )
    p_camp.add_argument(
        "--corners",
        default="nom",
        help="technology-corner axis: comma list of registered corner tags "
        "(default nom; see repro.tech.CORNERS)",
    )
    p_camp.add_argument(
        "--out",
        default=None,
        metavar="DIR",
        help="results-store directory (default: report to stdout only)",
    )
    p_camp.add_argument(
        "--quiet",
        action="store_true",
        help="suppress per-scenario progress lines",
    )
    p_camp.add_argument(
        "--resume",
        action="store_true",
        help="replay the store's completed-scenario checkpoints and run "
        "only the rest (requires --out; refuses a mismatched manifest)",
    )
    p_camp.add_argument(
        "--shard",
        default="1/1",
        metavar="K/N",
        help="run only the K-th of N deterministic grid slices "
        "(default 1/1 = the whole grid); fuse stores with repro-adc merge",
    )

    p_merge = sub.add_parser(
        "merge",
        help="fuse shard stores into one campaign store",
        description=(
            "Validate that the given shard stores belong to the same "
            "campaign (matching grid/config manifests, every shard present "
            "exactly once) and write the merged results store — "
            "byte-identical to a single unsharded run."
        ),
    )
    p_merge.add_argument(
        "stores", nargs="+", metavar="SHARD_DIR", help="shard store directories"
    )
    p_merge.add_argument(
        "--out",
        default=None,
        metavar="DIR",
        help="merged-store directory (default: print the report only)",
    )

    p_serve = sub.add_parser(
        "serve",
        help="run the async optimization service",
        description=(
            "Run the long-lived optimization service: accept campaign and "
            "optimize jobs over a JSON HTTP API, coalesce identical "
            "requests onto one computation, stream progress events, and "
            "drain gracefully on SIGTERM (a restart resumes the queue)."
        ),
    )
    p_serve.add_argument(
        "--store",
        required=True,
        metavar="DIR",
        help="service store directory (job records, queue, result artifacts)",
    )
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=8765)
    p_serve.add_argument(
        "--job-workers",
        type=int,
        default=1,
        help="jobs executed concurrently (default 1)",
    )
    p_serve.add_argument(
        "--cache-dir",
        default=os.environ.get("REPRO_ADC_CACHE"),
        help="persistent block-cache directory shared by all jobs "
        "(env REPRO_ADC_CACHE)",
    )
    p_serve.add_argument(
        "--lease-ttl",
        type=float,
        default=None,
        metavar="SECONDS",
        help="broker task-lease time-to-live: a leased task whose worker "
        "stops heartbeating is reclaimed after SECONDS (default 60)",
    )

    p_worker = sub.add_parser(
        "worker",
        help="run a task-executing worker attached to a broker",
        description=(
            "Pull tasks from a broker (a repro-adc serve instance via "
            "--broker, or a shared --queue-dir directly), execute them in "
            "this process, and acknowledge results back.  Start N workers "
            "against one broker to fan a campaign out across processes or "
            "machines; leases + heartbeats make a killed worker's tasks "
            "reclaimable by the survivors."
        ),
    )
    p_worker.add_argument(
        "--broker",
        default=None,
        metavar="URL",
        help="broker endpoint (a repro-adc serve instance, e.g. "
        f"{DEFAULT_SERVICE_URL})",
    )
    p_worker.add_argument(
        "--queue-dir",
        default=None,
        metavar="DIR",
        help="serve a directory broker in-place instead of an HTTP one "
        "(shared filesystem deployments)",
    )
    p_worker.add_argument(
        "--worker-id",
        default=None,
        metavar="ID",
        help="stable identity recorded on leases (default: hostname-pid)",
    )
    p_worker.add_argument(
        "--poll",
        type=float,
        default=0.2,
        metavar="SECONDS",
        help="idle polling interval between lease attempts (default 0.2)",
    )
    p_worker.add_argument(
        "--ttl",
        type=float,
        default=None,
        metavar="SECONDS",
        help="lease time-to-live assumed for heartbeat pacing, and stamped "
        "on leases when serving a --queue-dir directly (default 60)",
    )
    p_worker.add_argument(
        "--max-tasks",
        type=int,
        default=None,
        metavar="N",
        help="exit after executing N tasks (default: run until signalled)",
    )
    p_worker.add_argument(
        "--idle-exit",
        type=float,
        default=None,
        metavar="SECONDS",
        help="exit after SECONDS without finding any task "
        "(default: keep polling)",
    )

    p_submit = sub.add_parser(
        "submit",
        help="submit a job to the optimization service",
        description=(
            "Submit a campaign (default) or single-spec optimize job to a "
            "running repro-adc serve instance; --watch streams progress "
            "events and --fetch downloads the result artifacts."
        ),
    )
    p_submit.add_argument("--url", default=DEFAULT_SERVICE_URL)
    p_submit.add_argument(
        "--kind", choices=("campaign", "optimize"), default="campaign"
    )
    p_submit.add_argument(
        "--bits",
        default=None,
        help="resolution axis (campaign, default 10-13) or single "
        "resolution (optimize, default 12)",
    )
    p_submit.add_argument(
        "--rates", default="40", help="sample-rate axis in MSPS (campaign)"
    )
    p_submit.add_argument(
        "--modes",
        default="analytic",
        help="flow-mode axis, incl. behavioral (campaign)",
    )
    p_submit.add_argument(
        "--behavioral-draws",
        type=int,
        default=FlowConfig.behavioral_draws,
        metavar="N",
        help="Monte-Carlo draws per behavioral scenario (campaign)",
    )
    p_submit.add_argument(
        "--seed",
        type=int,
        default=FlowConfig.behavioral_seed,
        help="behavioral Monte-Carlo seed (campaign; part of the job's "
        "coalescing digest)",
    )
    p_submit.add_argument(
        "--behavioral-kernel", choices=("batch", "legacy"), default="batch"
    )
    p_submit.add_argument(
        "--corners", default="nom", help="technology-corner axis (campaign)"
    )
    p_submit.add_argument(
        "--mode",
        choices=("analytic", "synthesis"),
        default="analytic",
        help="flow mode (optimize)",
    )
    p_submit.add_argument(
        "--backend", choices=sorted(BACKENDS), default="serial",
        help="execution backend the server runs this job on",
    )
    p_submit.add_argument("--workers", type=int, default=None)
    p_submit.add_argument("--budget", type=int, default=400)
    p_submit.add_argument("--retarget-budget", type=int, default=80)
    p_submit.add_argument("--no-verify", action="store_true")
    p_submit.add_argument(
        "--eval-kernel", choices=("compiled", "legacy"), default="compiled"
    )
    p_submit.add_argument("--speculation", type=int, default=None)
    p_submit.add_argument("--no-speculation", action="store_true")
    p_submit.add_argument(
        "--dc-kernel",
        choices=("chained", "batched"),
        default="chained",
        help="DC Newton kernel (part of the job's coalescing digest — "
        "batched and chained jobs never coalesce)",
    )
    p_submit.add_argument(
        "--telemetry",
        choices=TELEMETRY_MODES,
        default=FlowConfig.telemetry,
        help="telemetry level the server runs this job with (excluded from "
        "the coalescing digest — it never changes results)",
    )
    p_submit.add_argument(
        "--priority",
        type=int,
        default=0,
        help="queue priority (lower runs first; default 0)",
    )
    p_submit.add_argument(
        "--client",
        default="cli",
        help="client tag for fair scheduling (default cli)",
    )
    p_submit.add_argument(
        "--watch",
        action="store_true",
        help="stream job events until the job finishes",
    )
    p_submit.add_argument(
        "--fetch",
        default=None,
        metavar="DIR",
        help="download the result artifacts into DIR when done "
        "(implies --watch)",
    )

    p_jobs = sub.add_parser(
        "jobs",
        help="list the optimization service's jobs",
        description="List every job the service knows, in submission order.",
    )
    p_jobs.add_argument("--url", default=DEFAULT_SERVICE_URL)
    p_jobs.add_argument(
        "--stats", action="store_true", help="also print scheduler counters"
    )

    p_trace = sub.add_parser(
        "trace",
        help="render a campaign store's recorded trace spans",
        description=(
            "Read the span files a --telemetry trace run exported under "
            "<store>/traces/ and render them as per-trace timing trees "
            "(nested spans indented under their parents, durations and "
            "attributes inline)."
        ),
    )
    p_trace.add_argument(
        "store",
        metavar="STORE_DIR",
        help="campaign store directory (or a traces/ directory directly)",
    )

    p_status = sub.add_parser(
        "status",
        help="show a broker's queue depths and worker fleet",
        description=(
            "Query a task broker (a repro-adc serve instance via --broker, "
            "or a shared --queue-dir directly) and print its lifecycle "
            "counters, queue depths, and the live worker census: every "
            "attached worker's identity, current task, completion counts "
            "and last-seen age."
        ),
    )
    p_status.add_argument(
        "--broker",
        default=None,
        metavar="URL",
        help="broker endpoint (a repro-adc serve instance, e.g. "
        f"{DEFAULT_SERVICE_URL})",
    )
    p_status.add_argument(
        "--queue-dir",
        default=None,
        metavar="DIR",
        help="inspect a directory broker in-place instead of an HTTP one",
    )
    p_status.add_argument(
        "--json",
        action="store_true",
        help="print the raw stats payload as JSON instead of the summary",
    )

    args = parser.parse_args(argv)

    try:
        code = _dispatch(args, parser)
    except (SpecificationError, ServiceError) as exc:
        print(f"repro-adc: error: {exc}", file=sys.stderr)
        return 2
    if getattr(args, "verbose", False):
        _print_telemetry()
    return code


def _print_telemetry() -> None:
    """Dump the in-process metrics registry to stderr (``--verbose``).

    One stable format — name-sorted ``<name> <value>`` lines straight from
    :meth:`repro.obs.metrics.MetricsRegistry.lines` (histograms expand to
    ``.count/.total/.min/.max``), so scripts can grep a metric without
    caring which subsystem emitted it.  The registry is per process: under
    the pool/queue/broker backends the workers keep their own registries,
    which campaign stores aggregate into ``metrics.json``.
    """
    from repro.obs import metrics

    lines = metrics.REGISTRY.lines()
    print("telemetry (this process):", file=sys.stderr)
    if not lines:
        print("  (no metrics recorded)", file=sys.stderr)
    for line in lines:
        print(f"  {line}", file=sys.stderr)


def _dispatch(args: argparse.Namespace, parser: argparse.ArgumentParser) -> int:
    """Execute one parsed command; library errors bubble to ``main``."""
    if args.command == "fig1":
        mode = "synthesis" if args.synthesis else "analytic"
        print(format_fig1(fig1_stage_powers(mode=mode, config=_flow_config(args))))
    elif args.command == "fig2":
        print(format_fig2(fig2_total_power(config=_flow_config(args))))
    elif args.command == "fig3":
        print(format_fig3(fig3_designer_rules(config=_flow_config(args))))
    elif args.command == "runtime":
        print(format_runtime(retarget_economy(cold_budget=args.budget)))
    elif args.command == "explore":
        spec = AdcSpec(resolution_bits=args.bits, sample_rate_hz=args.rate)
        mode = "synthesis" if args.synthesis else "analytic"
        result = optimize_topology(spec, mode=mode, config=_flow_config(args))
        print(f"{args.bits}-bit, {args.rate/1e6:.0f} MSPS front-end candidates:")
        for label, mw in result.power_table():
            print(f"  {label:14s} {mw:7.2f} mW")
        print(f"optimum: {result.best.label}")
        if mode == "synthesis":
            print(f"unique blocks synthesized: {result.unique_blocks}")
    elif args.command == "campaign":
        grid = _grid_from_args(args)
        shard = parse_shard(args.shard)
        units = count_shard_units(grid.expand())
        if shard[1] > units:
            raise SpecificationError(
                f"--shard {args.shard} asks for {shard[1]} shards but this "
                f"grid has only {units} ledger-independent unit(s) — "
                "synthesis scenarios shard per technology corner (add "
                "--corners values or lower N)"
            )
        _require_store_dir(args.out, "--out")
        if args.resume and args.out is None:
            parser.error("--resume requires --out (the store to resume)")

        def _progress(scenario_result) -> None:
            record = scenario_result.record
            note = " [replayed]" if scenario_result.replayed else ""
            print(
                f"[{record.index + 1}/{grid.size}] {record.label}: "
                f"winner {record.winner}, "
                f"{record.winner_power_w * 1e3:.2f} mW "
                f"({scenario_result.wall_seconds:.2f} s){note}",
                file=sys.stderr,
            )

        campaign = run_campaign(
            grid,
            config=_flow_config(args),
            progress=None if args.quiet else _progress,
            store_dir=args.out,
            resume=args.resume,
            shard=shard,
        )
        print(campaign.report())
        if args.out is not None:
            if campaign.replayed_scenarios:
                print(
                    f"resumed: {campaign.replayed_scenarios} scenario(s) "
                    "replayed from checkpoints",
                    file=sys.stderr,
                )
            print(f"\nresults store: {args.out}/results.jsonl", file=sys.stderr)
    elif args.command == "merge":
        _require_store_dir(args.out, "--out")
        _, report_text, _ = merge_shards(args.stores, out_dir=args.out)
        print(report_text)
        if args.out is not None:
            print(f"\nmerged store: {args.out}/results.jsonl", file=sys.stderr)
    elif args.command == "serve":
        return _cmd_serve(args)
    elif args.command == "worker":
        return _cmd_worker(args)
    elif args.command == "submit":
        return _cmd_submit(args)
    elif args.command == "jobs":
        return _cmd_jobs(args)
    elif args.command == "trace":
        return _cmd_trace(args)
    elif args.command == "status":
        return _cmd_status(args)
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    """Run the optimization service until SIGTERM/SIGINT."""
    from repro.service.server import OptimizationService

    _require_store_dir(args.store, "--store")
    _require_store_dir(args.cache_dir, "--cache-dir")
    extra = {} if args.lease_ttl is None else {"lease_ttl": args.lease_ttl}
    service = OptimizationService(
        args.store,
        host=args.host,
        port=args.port,
        job_workers=args.job_workers,
        cache_dir=args.cache_dir,
        **extra,
    )

    def _ready() -> None:
        print(
            f"repro-adc service on {service.base_url} "
            f"(store: {args.store}, workers: {args.job_workers})",
            flush=True,
        )

    def _draining() -> None:
        print("draining...", flush=True)

    try:
        asyncio.run(service.run(on_ready=_ready, on_drain=_draining))
    except KeyboardInterrupt:
        pass
    print("stopped", flush=True)
    return 0


def _cmd_worker(args: argparse.Namespace) -> int:
    """Run a broker worker until signalled (or --max-tasks/--idle-exit)."""
    import signal
    import threading

    from repro.engine.broker import (
        DEFAULT_LEASE_TTL,
        DirectoryBroker,
        HttpBroker,
    )
    from repro.engine.worker import WorkerLoop, default_worker_id

    if (args.broker is None) == (args.queue_dir is None):
        raise SpecificationError(
            "pick exactly one task source: --broker URL (a repro-adc serve "
            "instance) or --queue-dir DIR (a shared queue directory)"
        )
    ttl = DEFAULT_LEASE_TTL if args.ttl is None else args.ttl
    if args.broker is not None:
        broker = HttpBroker(args.broker)
        source = args.broker
    else:
        _require_store_dir(args.queue_dir, "--queue-dir")
        broker = DirectoryBroker(args.queue_dir, lease_ttl=ttl)
        source = args.queue_dir
    worker_id = args.worker_id or default_worker_id()
    loop = WorkerLoop(
        broker,
        worker_id=worker_id,
        poll_interval=args.poll,
        lease_ttl=ttl,
        max_tasks=args.max_tasks,
        idle_exit=args.idle_exit,
    )
    print(f"repro-adc worker {worker_id} on {source}", flush=True)

    stop = threading.Event()

    def _signalled(signum: int, frame: object) -> None:
        stop.set()

    # Graceful stop: finish (and ack) the in-flight task, then exit.  A
    # SIGKILLed worker instead leaves a lease that the broker reclaims
    # after the TTL, so either way no task is lost.
    for sig in (signal.SIGTERM, signal.SIGINT):
        signal.signal(sig, _signalled)
    counters = loop.run(stop=stop)
    print(
        "worker {}: {}".format(
            worker_id,
            ", ".join(f"{k}={v}" for k, v in sorted(counters.items())),
        ),
        flush=True,
    )
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    """Render a store's recorded spans (``repro-adc trace STORE_DIR``)."""
    from repro.obs.report import read_spans, render_trace

    if not Path(args.store).exists():
        raise SpecificationError(
            f"no such store {args.store!r} (pass a campaign --out directory "
            "written with --telemetry trace, or its traces/ subdirectory)"
        )
    print(render_trace(read_spans(args.store)), end="")
    return 0


def _cmd_status(args: argparse.Namespace) -> int:
    """Show a broker's counters, queue depths and worker fleet."""
    from repro.engine.broker import DirectoryBroker, HttpBroker

    if (args.broker is None) == (args.queue_dir is None):
        raise SpecificationError(
            "pick exactly one broker: --broker URL (a repro-adc serve "
            "instance) or --queue-dir DIR (a shared queue directory)"
        )
    if args.broker is not None:
        broker = HttpBroker(args.broker)
        source = broker.base_url
    else:
        _require_store_dir(args.queue_dir, "--queue-dir")
        broker = DirectoryBroker(args.queue_dir)
        source = args.queue_dir
    stats = broker.stats()
    if args.json:
        print(json.dumps(stats, indent=2, sort_keys=True))
        return 0
    workers = stats.get("workers")
    if not isinstance(workers, list):
        workers = []
    print(f"broker {source}:")
    print(
        "  queue:   "
        + ", ".join(
            f"{name}={stats.get(name, 0)}" for name in ("pending", "leases", "acks")
        )
    )
    print(
        "  lifetime: "
        + ", ".join(
            f"{name}={stats.get(name, 0)}"
            for name in ("submitted", "leased", "acked", "nacked", "reclaimed")
        )
    )
    print(f"workers: {len(workers)} live")
    now = time.time()
    for record in workers:
        ident = record.get("worker", "?")
        current = record.get("current")
        state = f"running {str(current)[:12]}" if current else "idle"
        try:
            seen = max(0.0, now - float(record.get("last_seen", now)))
        except (TypeError, ValueError):
            seen = 0.0
        print(
            f"  {ident}: {state}, "
            f"executed={record.get('executed', 0)}, "
            f"failed={record.get('failed', 0)}, "
            f"busy={record.get('busy_seconds', 0.0)}s, "
            f"seen {seen:.0f}s ago"
        )
    return 0


def _submit_request(args: argparse.Namespace) -> dict:
    """Build the submission body from CLI flags (validates axes locally)."""
    if args.bits is None:
        args.bits = "10-13" if args.kind == "campaign" else "12"
    config = {
        "backend": args.backend,
        "max_workers": args.workers,
        "budget": args.budget,
        "retarget_budget": args.retarget_budget,
        "verify_transient": not args.no_verify,
        "eval_kernel": args.eval_kernel,
        "eval_speculation": _resolve_speculation(args),
        "dc_kernel": args.dc_kernel,
        "behavioral_draws": args.behavioral_draws,
        "behavioral_seed": args.seed,
        "behavioral_kernel": args.behavioral_kernel,
        "telemetry": args.telemetry,
    }
    if args.kind == "campaign":
        grid = _grid_from_args(args)
        return {
            "kind": "campaign",
            "grid": {
                "resolutions": list(grid.resolutions),
                "sample_rates_hz": list(grid.sample_rates_hz),
                "modes": list(grid.modes),
                "corners": [tag for tag, _ in grid.corners],
            },
            "config": config,
            "priority": args.priority,
            "client": args.client,
        }
    bits = parse_int_axis(args.bits)
    if len(bits) != 1:
        raise SpecificationError(
            f"optimize jobs take a single resolution (--bits {args.bits!r} "
            f"expands to {len(bits)} values; use --kind campaign for sweeps)"
        )
    corners = parse_corner_axis(args.corners)
    if len(corners) != 1:
        raise SpecificationError(
            "optimize jobs take a single corner "
            f"(--corners {args.corners!r}; use --kind campaign for sweeps)"
        )
    rates = parse_rate_axis(args.rates)
    if len(rates) != 1:
        raise SpecificationError(
            f"optimize jobs take a single rate (--rates {args.rates!r}; "
            "use --kind campaign for sweeps)"
        )
    return {
        "kind": "optimize",
        "spec": {
            "resolution_bits": bits[0],
            "sample_rate_hz": rates[0],
            "corner": corners[0][0],
        },
        "mode": args.mode,
        "config": config,
        "priority": args.priority,
        "client": args.client,
    }


def _cmd_submit(args: argparse.Namespace) -> int:
    """Submit one job; optionally stream events and fetch artifacts."""
    from repro.service.client import ServiceClient
    from repro.service.jobs import TERMINAL_STATES

    if args.fetch is not None:
        _require_store_dir(args.fetch, "--fetch")
    client = ServiceClient(args.url)
    response = client.submit(_submit_request(args))
    job = response["job"]
    note = " (coalesced with an identical job)" if response["coalesced"] else ""
    print(f"job {job['id']}: {job['kind']} {job['state']}{note}")
    if not (args.watch or args.fetch):
        return 0

    final_state = job["state"]
    while final_state not in TERMINAL_STATES:
        for event in client.watch(job["id"]):
            final_state = event.get("state", final_state)
            if event["event"] == "scenario":
                print(
                    f"  [{event['completed']}/{event['total_scenarios']}] "
                    f"{event['label']}: winner {event['winner']}"
                    + (" [replayed]" if event.get("replayed") else ""),
                    file=sys.stderr,
                )
            elif event["event"] in ("started", "requeued", "failed", "done"):
                print(f"  {event['event']}", file=sys.stderr)
            if final_state in TERMINAL_STATES:
                break
        else:
            # Stream severed (server drained): wait() rides out the
            # restart window instead of failing on the first refused poll.
            final_state = client.wait(job["id"])["state"]

    if final_state == "failed":
        detail = client.job(job["id"]).get("error")
        raise ServiceError(f"job {job['id']} failed: {detail}")
    if final_state == "cancelled":
        print(f"job {job['id']} was cancelled")
        return 1
    report = None
    if args.fetch is not None:
        paths = client.download(job["id"], args.fetch)
        for name in sorted(paths):
            print(f"fetched {paths[name]}", file=sys.stderr)
        if "report.txt" in paths:  # already on disk: no extra round-trips
            report = paths["report.txt"].read_text(encoding="utf-8")
    elif "report.txt" in client.artifacts(job["id"]):
        report = client.artifact(job["id"], "report.txt").decode("utf-8")
    if report:
        print(report, end="")
    else:
        print(json.dumps(client.result(job["id"]), indent=2, sort_keys=True))
    return 0


def _cmd_jobs(args: argparse.Namespace) -> int:
    """List the service's jobs (and optionally its counters)."""
    from repro.service.client import ServiceClient

    client = ServiceClient(args.url)
    jobs = client.jobs()
    if not jobs:
        print("no jobs")
    for job in jobs:
        progress = f"{job['completed_scenarios']}/{job['total_scenarios']}"
        error = f"  error: {job['error']}" if job["error"] else ""
        print(
            f"{job['id']}  {job['kind']:8s} {job['state']:9s} "
            f"{progress:>7s}  x{job['submissions']} "
            f"(client {job['client']}, priority {job['priority']}){error}"
        )
    if args.stats:
        print(json.dumps(client.stats(), indent=2, sort_keys=True))
    return 0


if __name__ == "__main__":
    sys.exit(main())
