"""Command-line interface: regenerate any of the paper's figures.

Examples::

    repro-adc fig1                # analytic stage powers, 13-bit
    repro-adc fig1 --synthesis    # transistor-level synthesis (slower)
    repro-adc fig2
    repro-adc fig3
    repro-adc runtime
    repro-adc explore --bits 12
"""

from __future__ import annotations

import argparse
import sys

from repro.experiments import (
    fig1_stage_powers,
    fig2_total_power,
    fig3_designer_rules,
    format_fig1,
    format_fig2,
    format_fig3,
    format_runtime,
    retarget_economy,
)
from repro.flow.topology import optimize_topology
from repro.specs.adc import AdcSpec


def main(argv: list[str] | None = None) -> int:
    """Entry point for the ``repro-adc`` command."""
    parser = argparse.ArgumentParser(
        prog="repro-adc",
        description="Designer-driven pipelined-ADC topology optimization (DATE 2005 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_fig1 = sub.add_parser("fig1", help="stage power per 13-bit candidate")
    p_fig1.add_argument("--synthesis", action="store_true", help="use transistor-level synthesis")

    sub.add_parser("fig2", help="total front-end power, K=10..13")
    sub.add_parser("fig3", help="designer decision rules")

    p_rt = sub.add_parser("runtime", help="cold vs retargeted synthesis effort")
    p_rt.add_argument("--budget", type=int, default=400)

    p_explore = sub.add_parser("explore", help="rank candidates for one resolution")
    p_explore.add_argument("--bits", type=int, default=13)
    p_explore.add_argument("--rate", type=float, default=40e6, help="sample rate [Hz]")

    args = parser.parse_args(argv)

    if args.command == "fig1":
        mode = "synthesis" if args.synthesis else "analytic"
        print(format_fig1(fig1_stage_powers(mode=mode)))
    elif args.command == "fig2":
        print(format_fig2(fig2_total_power()))
    elif args.command == "fig3":
        print(format_fig3(fig3_designer_rules()))
    elif args.command == "runtime":
        print(format_runtime(retarget_economy(cold_budget=args.budget)))
    elif args.command == "explore":
        spec = AdcSpec(resolution_bits=args.bits, sample_rate_hz=args.rate)
        result = optimize_topology(spec)
        print(f"{args.bits}-bit, {args.rate/1e6:.0f} MSPS front-end candidates:")
        for label, mw in result.power_table():
            print(f"  {label:14s} {mw:7.2f} mW")
        print(f"optimum: {result.best.label}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
