"""Per-stage block specifications derived from the system spec.

For every enumerated front-end stage this module derives the MDAC's
electrical requirements — the translation step the paper describes as
"The MDAC block-level specifications can be translated from the ADC
system-level specifications and the value m_i for the enumerated candidate":

* interstage gain ``G = 2^(m-1)`` and capacitor network (sampling cap from
  the noise/matching/floor analysis, ``Cf = C_total / G``);
* feedback factor ``beta = Cf / (C_total + C_in)`` including an opamp
  input-capacitance estimate;
* effective amplification load ``C_eff = C_load + (1 - beta) * Cf``;
* settling: ``N_tau = ln(1/eps)`` time constants within the linear portion
  of the settling window, hence the required transconductance
  ``gm = N_tau * C_eff / (beta * t_lin)`` and unity-gain bandwidth;
* slew-rate current floor ``I >= C_eff * dV / t_slew``;
* minimum DC gain ``A0 >= 2 / (eps * beta)`` so the static gain error stays
  below half the settling error;
* sub-ADC comparator count ``2^m - 2`` and the offset tolerance implied by
  the redundancy range.

Two stages with equal ``(m, input_accuracy_bits)`` under the same system
spec receive identical block specs — that is the reuse that lets eleven-odd
MDAC syntheses cover all seven 13-bit candidates.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.enumeration.candidates import PipelineCandidate
from repro.errors import SpecificationError
from repro.specs.adc import AdcSpec
from repro.specs.caps import CapacitorSizing, size_sampling_capacitor
from repro.specs.noise_budget import NoiseBudget, allocate_noise_budget

#: Opamp input capacitance as a fraction of the stage's total sampling cap.
OPAMP_INPUT_CAP_RATIO = 0.20

#: Comparator input capacitance presented to the previous stage [F].
COMPARATOR_INPUT_CAP = 15e-15

#: Extra margin on the settling error: eps = 2^-(output_accuracy + 1).
SETTLING_MARGIN_BITS = 1


@dataclass(frozen=True)
class SubAdcSpec:
    """Requirements of one stage's flash sub-ADC."""

    #: Stage raw resolution m (bits, including redundancy).
    stage_bits: int
    #: Number of comparators: 2^m - 2.
    comparator_count: int
    #: Largest tolerable comparator offset+threshold error [V].
    offset_tolerance: float
    #: Decision rate [Hz].
    sample_rate_hz: float
    #: Capacitive load presented to the driving stage [F].
    input_capacitance: float
    #: True for the first pipeline stage, whose sub-ADC sees the held S/H
    #: output for a full phase.  Later sub-ADCs must resolve the previous
    #: stage's late-settling residue inside the non-overlap window, which
    #: requires static tracking preamps whose cost grows with 2^m (the
    #: redundancy margin that would otherwise hide an early decision shrinks
    #: as 2^-m).
    is_first_stage: bool


@dataclass(frozen=True)
class MdacSpec:
    """Electrical requirements of one MDAC (multiplying DAC) stage."""

    #: Stage position in the candidate (0-based).
    stage_index: int
    #: Raw stage resolution m (bits, including redundancy).
    stage_bits: int
    #: Residue gain 2^(m-1).
    gain: int
    #: Accuracy carried by the stage input [bits].
    input_accuracy_bits: int
    #: Accuracy required of the output residue [bits].
    output_accuracy_bits: int
    #: Allowed relative settling error at the output.
    settling_error: float
    #: Linear settling time available [s].
    linear_settling_time: float
    #: Slewing time available [s].
    slew_time: float
    #: Capacitor sizing outcome for the sampling network.
    caps: CapacitorSizing
    #: Feedback capacitor [F].
    cf: float
    #: Feedback factor during amplification.
    beta: float
    #: Fixed load during amplification (next stage + sub-ADC + parasitics) [F].
    c_load: float
    #: Effective total load the opamp must drive [F].
    c_eff: float
    #: Required transconductance [S].
    gm_required: float
    #: Required closed-loop -3dB bandwidth [Hz].
    closed_loop_bw_hz: float
    #: Required unity-gain bandwidth of the loaded opamp [Hz].
    gbw_hz: float
    #: Required slew current [A].
    slew_current: float
    #: Minimum opamp DC gain [V/V].
    dc_gain_min: float
    #: Required differential output swing [V].
    output_swing: float
    #: Input-referred noise-power allocation [V^2].
    noise_allocation: float

    @property
    def reuse_key(self) -> tuple[int, int]:
        """Key identifying interchangeable MDAC blocks: (m, input accuracy)."""
        return (self.stage_bits, self.input_accuracy_bits)


@dataclass(frozen=True)
class StagePlan:
    """Complete front-end plan for one candidate: MDACs plus sub-ADCs."""

    spec: AdcSpec
    candidate: PipelineCandidate
    budget: NoiseBudget
    mdacs: tuple[MdacSpec, ...]
    sub_adcs: tuple[SubAdcSpec, ...]

    @property
    def unique_mdac_keys(self) -> tuple[tuple[int, int], ...]:
        """Distinct (m, input-accuracy) MDAC specs, in stage order."""
        seen: list[tuple[int, int]] = []
        for mdac in self.mdacs:
            if mdac.reuse_key not in seen:
                seen.append(mdac.reuse_key)
        return tuple(seen)


def _sub_adc_spec(spec: AdcSpec, stage_bits: int, is_first_stage: bool) -> SubAdcSpec:
    comparators = 2**stage_bits - 2
    # Redundancy absorbs sub-ADC errors up to a quarter of the stage range
    # per side: tolerance = FS / 2^(m+1).
    tolerance = spec.full_scale / 2 ** (stage_bits + 1)
    return SubAdcSpec(
        stage_bits=stage_bits,
        comparator_count=comparators,
        offset_tolerance=tolerance,
        sample_rate_hz=spec.sample_rate_hz,
        input_capacitance=comparators * COMPARATOR_INPUT_CAP,
        is_first_stage=is_first_stage,
    )


def plan_stages(
    spec: AdcSpec,
    candidate: PipelineCandidate,
    budget: NoiseBudget | None = None,
) -> StagePlan:
    """Translate the system spec + candidate into per-stage block specs."""
    if budget is None:
        budget = allocate_noise_budget(spec, candidate)
    if len(budget.stage_allocations) != candidate.stage_count:
        raise SpecificationError("noise budget does not match candidate stages")

    sub_adcs = tuple(
        _sub_adc_spec(spec, m, is_first_stage=(i == 0))
        for i, m in enumerate(candidate.resolutions)
    )

    # Size all sampling caps first (front to back) because stage i's load
    # includes stage i+1's sampling cap.
    sizings: list[CapacitorSizing] = []
    cumulative_gain = 1.0
    for i, m in enumerate(candidate.resolutions):
        sizing = size_sampling_capacitor(
            spec.tech,
            stage_bits=m,
            input_accuracy_bits=candidate.input_accuracy_bits(i),
            cumulative_gain=cumulative_gain,
            noise_allocation=budget.stage_allocations[i],
            full_scale=spec.full_scale,
        )
        sizings.append(sizing)
        cumulative_gain *= candidate.stage_gain(i)

    # Backend load: the first backend stage is floor-bound (its accuracy is
    # <= backend_bits and it sits behind the full front-end gain).
    backend_cap = max(spec.tech.cpar_floor, 2 * spec.tech.cap_min)
    backend_sub_adc_cap = 2 * COMPARATOR_INPUT_CAP

    mdacs: list[MdacSpec] = []
    t_settle = spec.settling_window
    t_slew = spec.slew_fraction * t_settle
    t_lin = t_settle - t_slew
    for i, m in enumerate(candidate.resolutions):
        gain = candidate.stage_gain(i)
        sizing = sizings[i]
        c_total = sizing.total
        cf = c_total / gain
        c_in = OPAMP_INPUT_CAP_RATIO * c_total
        beta = cf / (c_total + c_in)

        if i + 1 < candidate.stage_count:
            next_sampling = sizings[i + 1].total
            next_sub_adc = sub_adcs[i + 1].input_capacitance
        else:
            next_sampling = backend_cap
            next_sub_adc = backend_sub_adc_cap
        c_load = next_sampling + next_sub_adc + spec.tech.cpar_floor
        c_eff = c_load + (1.0 - beta) * cf

        output_accuracy = candidate.output_accuracy_bits(i)
        eps = 2.0 ** -(output_accuracy + SETTLING_MARGIN_BITS)
        n_tau = math.log(1.0 / eps)
        gm = n_tau * c_eff / (beta * t_lin)
        closed_loop_bw = n_tau / (2.0 * math.pi * t_lin)
        gbw = closed_loop_bw / beta

        # Worst-case output step is the full differential range.
        slew_current = c_eff * spec.full_scale / t_slew if t_slew > 0 else 0.0
        dc_gain_min = 2.0 / (eps * beta)

        mdacs.append(
            MdacSpec(
                stage_index=i,
                stage_bits=m,
                gain=gain,
                input_accuracy_bits=candidate.input_accuracy_bits(i),
                output_accuracy_bits=output_accuracy,
                settling_error=eps,
                linear_settling_time=t_lin,
                slew_time=t_slew,
                caps=sizing,
                cf=cf,
                beta=beta,
                c_load=c_load,
                c_eff=c_eff,
                gm_required=gm,
                closed_loop_bw_hz=closed_loop_bw,
                gbw_hz=gbw,
                slew_current=slew_current,
                dc_gain_min=dc_gain_min,
                output_swing=spec.full_scale,
                noise_allocation=budget.stage_allocations[i],
            )
        )

    return StagePlan(
        spec=spec,
        candidate=candidate,
        budget=budget,
        mdacs=tuple(mdacs),
        sub_adcs=sub_adcs,
    )
