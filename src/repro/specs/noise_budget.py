"""Thermal-noise budgeting across pipeline stages.

The converter's total input-referred thermal noise must stay inside
``AdcSpec.thermal_noise_budget``.  Stage ``i``'s kT/C noise is divided by
the squared cumulative gain in front of it, so later stages matter
geometrically less; we allocate the budget geometrically (ratio ``r`` per
stage) with a reserved share for the un-enumerated backend, then let
capacitor sizing consume each allocation.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.enumeration.candidates import PipelineCandidate
from repro.errors import SpecificationError
from repro.specs.adc import AdcSpec

#: Per-stage geometric allocation ratio: stage i+1 receives r times the
#: budget share of stage i.  Values near 0.85 reflect that later stages'
#: capacitors are floor-bound anyway, so starving them of budget (small r)
#: only inflates the front-end capacitor.
DEFAULT_STAGE_RATIO = 0.85

#: Fraction of the total budget reserved for the backend + S/H + reference.
DEFAULT_BACKEND_RESERVE = 0.25


@dataclass(frozen=True)
class NoiseBudget:
    """Input-referred noise-power allocations per front-end stage [V^2]."""

    #: Allocation for each enumerated stage, input-referred [V^2].
    stage_allocations: tuple[float, ...]
    #: Reserved input-referred allocation for everything downstream [V^2].
    backend_allocation: float
    #: Total budget the allocations were drawn from [V^2].
    total_budget: float

    def __post_init__(self) -> None:
        spent = sum(self.stage_allocations) + self.backend_allocation
        if spent > self.total_budget * (1 + 1e-9):
            raise SpecificationError("noise allocations exceed the total budget")


def allocate_noise_budget(
    spec: AdcSpec,
    candidate: PipelineCandidate,
    stage_ratio: float = DEFAULT_STAGE_RATIO,
    backend_reserve: float = DEFAULT_BACKEND_RESERVE,
) -> NoiseBudget:
    """Split the thermal-noise budget geometrically over front-end stages."""
    if not 0 < stage_ratio <= 1:
        raise SpecificationError("stage_ratio must be in (0, 1]")
    if not 0 <= backend_reserve < 1:
        raise SpecificationError("backend_reserve must be in [0, 1)")

    frontend_budget = spec.thermal_noise_budget * (1.0 - backend_reserve)
    n = candidate.stage_count
    weights = [stage_ratio**i for i in range(n)]
    scale = frontend_budget / sum(weights)
    allocations = tuple(w * scale for w in weights)
    return NoiseBudget(
        stage_allocations=allocations,
        backend_allocation=spec.thermal_noise_budget * backend_reserve,
        total_budget=spec.thermal_noise_budget,
    )
