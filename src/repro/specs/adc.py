"""System-level ADC specification."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.constants import lsb
from repro.errors import SpecificationError
from repro.tech.process import CMOS025, Technology


@dataclass(frozen=True)
class AdcSpec:
    """Target specification of the pipelined converter.

    Defaults correspond to the paper's experiments: 40 MSPS converters at
    10-13 bits in a 0.25 um 3.3 V CMOS process with a 2 V differential
    full-scale range.
    """

    #: Target resolution K [bits].
    resolution_bits: int
    #: Conversion rate [samples/s].
    sample_rate_hz: float = 40e6
    #: Differential full-scale range [V].
    full_scale: float = 2.0
    #: Technology the blocks are synthesized in.
    tech: Technology = CMOS025
    #: Fraction of the quantization noise power granted to thermal noise.
    thermal_noise_fraction: float = 1.0
    #: Non-overlap + switching margin subtracted from each half-period [s].
    non_overlap_time: float = 1.0e-9
    #: Fraction of the settling window allowed for slewing.
    slew_fraction: float = 0.25

    def __post_init__(self) -> None:
        if not 6 <= self.resolution_bits <= 18:
            raise SpecificationError(
                f"resolution_bits {self.resolution_bits} outside supported 6..18"
            )
        if self.sample_rate_hz <= 0:
            raise SpecificationError("sample_rate_hz must be positive")
        if self.full_scale <= 0:
            raise SpecificationError("full_scale must be positive")
        if not 0 < self.thermal_noise_fraction <= 4.0:
            raise SpecificationError("thermal_noise_fraction must be in (0, 4]")
        if not 0 <= self.slew_fraction < 0.9:
            raise SpecificationError("slew_fraction must be in [0, 0.9)")
        if self.settling_window <= 0:
            raise SpecificationError(
                "non_overlap_time leaves no settling window at this sample rate"
            )

    @property
    def lsb(self) -> float:
        """LSB voltage at the target resolution [V]."""
        return lsb(self.full_scale, self.resolution_bits)

    @property
    def quantization_noise_power(self) -> float:
        """Quantization noise power Delta^2 / 12 [V^2]."""
        return self.lsb**2 / 12.0

    @property
    def thermal_noise_budget(self) -> float:
        """Total input-referred thermal-noise power budget [V^2]."""
        return self.thermal_noise_fraction * self.quantization_noise_power

    @property
    def half_period(self) -> float:
        """Half the clock period (one pipeline phase) [s]."""
        return 0.5 / self.sample_rate_hz

    @property
    def settling_window(self) -> float:
        """Usable settling time per phase [s]."""
        return self.half_period - self.non_overlap_time

    def ideal_snr_db(self) -> float:
        """Ideal quantization-limited SNR: 6.02 K + 1.76 dB."""
        return 6.02 * self.resolution_bits + 1.76
