"""Specification translation: ADC system spec -> per-stage block specs.

The paper's flow translates the system-level ADC specification plus a
candidate configuration into MDAC and sub-ADC block specifications ("The
MDAC block-level specifications can be translated from the ADC system-level
specifications and the value m_i for the enumerated candidate").  That
translation — noise budgeting, capacitor sizing, settling/gain/slew
requirements — lives here.
"""

from repro.specs.adc import AdcSpec
from repro.specs.noise_budget import NoiseBudget, allocate_noise_budget
from repro.specs.caps import size_sampling_capacitor, CapacitorSizing
from repro.specs.stage import MdacSpec, StagePlan, SubAdcSpec, plan_stages

__all__ = [
    "AdcSpec",
    "NoiseBudget",
    "allocate_noise_budget",
    "CapacitorSizing",
    "size_sampling_capacitor",
    "MdacSpec",
    "SubAdcSpec",
    "StagePlan",
    "plan_stages",
]
