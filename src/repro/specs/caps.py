"""Sampling-capacitor sizing: noise, matching and technology floors.

The sampling capacitor of stage ``i`` must simultaneously satisfy:

* **kT/C noise** — its input-referred sampled noise (divided by the squared
  gain in front of the stage) must fit the stage's noise allocation;
* **matching** — the unit capacitors of the MDAC's capacitive DAC must match
  well enough that DAC errors stay below the stage's input-accuracy LSB;
* **floors** — a minimum manufacturable unit capacitor and a parasitic
  routing floor.

Which constraint binds is resolution-dependent, and that dependence is what
moves the paper's optimum configuration with K (see DESIGN.md).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.constants import KT_ROOM
from repro.errors import SpecificationError
from repro.tech.process import Technology

#: Sampled-noise multiplier: the sampling phase and the amplification phase
#: each contribute ~kT/C, and switch/opamp excess adds a little more.
NOISE_PHASE_FACTOR = 2.0

#: How much of the stage input-accuracy LSB the DAC mismatch may consume
#: (1-sigma), leaving room for the other error mechanisms.
MATCHING_MARGIN = 0.5


@dataclass(frozen=True)
class CapacitorSizing:
    """Outcome of sizing one stage's sampling network."""

    #: Total sampling capacitance Cs + Cf [F].
    total: float
    #: Unit capacitor [F] (total / 2^(m-1) units).
    unit: float
    #: Number of unit capacitors.
    units: int
    #: Which constraint set the size: 'noise', 'matching', or 'floor'.
    binding_constraint: str
    #: The three individual requirements for reporting [F].
    noise_requirement: float
    matching_requirement: float
    floor_requirement: float


def size_sampling_capacitor(
    tech: Technology,
    stage_bits: int,
    input_accuracy_bits: int,
    cumulative_gain: float,
    noise_allocation: float,
    full_scale: float,
) -> CapacitorSizing:
    """Size the total sampling capacitor of an MDAC stage.

    ``cumulative_gain`` is the product of residue gains in front of this
    stage (1.0 for the first stage); ``noise_allocation`` is the
    input-referred noise power granted to this stage [V^2].
    """
    if stage_bits < 2:
        raise SpecificationError("stage_bits must be >= 2")
    if cumulative_gain < 1.0:
        raise SpecificationError("cumulative_gain must be >= 1")
    if noise_allocation <= 0.0:
        raise SpecificationError("noise_allocation must be positive")

    units = 2 ** (stage_bits - 1)

    # kT/C: stage noise referred to the converter input is
    # NOISE_PHASE_FACTOR * kT/C / cumulative_gain^2.
    c_noise = NOISE_PHASE_FACTOR * KT_ROOM / (noise_allocation * cumulative_gain**2)

    # Matching: the MSB half of the DAC array (units/2 unit caps) must land
    # within MATCHING_MARGIN of the *input-referred* LSB.  Relative MSB error
    # is sigma_u / sqrt(units/2); as a fraction of full scale the MSB weight
    # is 1/2, so the error it causes is sigma_u / (2 sqrt(units/2)) of FS.
    lsb_fraction = 2.0**-input_accuracy_bits
    sigma_u_max = MATCHING_MARGIN * lsb_fraction * 2.0 * math.sqrt(max(units / 2.0, 1.0))
    # sigma_u = cap_matching / sqrt(area_um2), area = Cu / density / 1e-12.
    area_um2 = (tech.cap_matching / sigma_u_max) ** 2
    cu_matching = area_um2 * 1e-12 * tech.cap_density
    c_matching = cu_matching * units

    c_floor = max(tech.cap_min * units, tech.cpar_floor)

    total = max(c_noise, c_matching, c_floor)
    if total == c_noise:
        binding = "noise"
    elif total == c_matching:
        binding = "matching"
    else:
        binding = "floor"

    return CapacitorSizing(
        total=total,
        unit=total / units,
        units=units,
        binding_constraint=binding,
        noise_requirement=c_noise,
        matching_requirement=c_matching,
        floor_requirement=c_floor,
    )
