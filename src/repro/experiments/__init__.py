"""Experiment drivers that regenerate every figure of the paper.

Each function returns structured data *and* can print the same rows/series
the paper reports; the benchmark harness under ``benchmarks/`` wraps these
and asserts the qualitative claims.
"""

from repro.experiments.fig1 import fig1_stage_powers, format_fig1
from repro.experiments.fig2 import fig2_total_power, format_fig2
from repro.experiments.fig3 import fig3_designer_rules, format_fig3
from repro.experiments.runtime import retarget_economy, format_runtime

__all__ = [
    "fig1_stage_powers",
    "format_fig1",
    "fig2_total_power",
    "format_fig2",
    "fig3_designer_rules",
    "format_fig3",
    "retarget_economy",
    "format_runtime",
]
