"""Fig. 1 — stage power for every 13-bit ADC configuration.

The paper's Fig. 1 plots per-stage power (mW) against stage index for the
seven 13-bit candidates, synthesized with the commercial tool.  Here the
series can be produced either from the analytic model (fast) or from real
transistor-level synthesis with block reuse (``mode="synthesis"``), and the
headline observation — first-stage power nearly independent of the
first-stage resolution — is checked.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.engine.config import FlowConfig
from repro.flow.cache import BlockCache
from repro.flow.topology import TopologyResult, optimize_topology
from repro.specs.adc import AdcSpec


@dataclass(frozen=True)
class Fig1Result:
    """Per-candidate stage-power series for the 13-bit converter."""

    #: label -> per-stage power [mW], stage 1 first.
    series: dict[str, list[float]]
    #: The underlying topology run.
    topology: TopologyResult
    mode: str

    @property
    def stage1_spread(self) -> float:
        """max/min ratio of first-stage power across candidates."""
        firsts = [s[0] for s in self.series.values()]
        return max(firsts) / min(firsts)

    def stage1_spread_excluding(self, label: str) -> float:
        """Stage-1 spread excluding one outlier configuration."""
        firsts = [s[0] for key, s in self.series.items() if key != label]
        return max(firsts) / min(firsts)


def fig1_stage_powers(
    mode: str = "analytic",
    resolution_bits: int = 13,
    cache: BlockCache | None = None,
    config: FlowConfig | None = None,
) -> Fig1Result:
    """Regenerate Fig. 1's series for the given evaluation mode."""
    spec = AdcSpec(resolution_bits=resolution_bits)
    result = optimize_topology(spec, mode=mode, cache=cache, config=config)
    series = {
        e.label: [p * 1e3 for p in e.stage_powers] for e in result.evaluations
    }
    return Fig1Result(series=series, topology=result, mode=mode)


def format_fig1(result: Fig1Result) -> str:
    """The figure as text: one row per candidate, columns are stages."""
    max_stages = max(len(s) for s in result.series.values())
    header = "config        " + "".join(f"  stage{j+1:>2}" for j in range(max_stages))
    lines = [f"Fig. 1 — stage power [mW], 13-bit, mode={result.mode}", header]
    for label, powers in sorted(result.series.items()):
        cells = "".join(f"  {p:7.2f}" for p in powers)
        lines.append(f"{label:14s}{cells}")
    lines.append(
        f"stage-1 spread: {result.stage1_spread:.2f}x "
        f"({result.stage1_spread_excluding('2-2-2-2-2-2'):.2f}x excluding 2-2-2-2-2-2)"
    )
    return "\n".join(lines)
