"""Fig. 3 — the designer decision diagram (optimum-candidate rules).

A thin campaign client: the resolution sweep runs as a one-axis campaign
(shared backend, per-scenario records), and the winners are compressed into
first-stage-choice bands by :func:`repro.flow.designer.compress_rules` —
the same pure function the flow-level :func:`~repro.flow.designer.extract_rules`
uses, so both paths produce identical diagrams.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.campaign.grid import CampaignGrid
from repro.campaign.runner import run_campaign
from repro.engine.config import FlowConfig
from repro.flow.designer import DesignerRule, SweepPoint, compress_rules


@dataclass(frozen=True)
class Fig3Result:
    """Extracted designer rules over a resolution sweep."""

    rules: list[DesignerRule]
    winners: dict[int, str]
    last_stage_always_2bit: bool


def fig3_designer_rules(
    resolutions: list[int] | None = None,
    config: FlowConfig | None = None,
) -> Fig3Result:
    """Sweep resolutions as a campaign and compress the winners into rules."""
    if resolutions is None:
        resolutions = list(range(9, 15))
    grid = CampaignGrid(
        resolutions=tuple(sorted(set(resolutions))),
        sample_rates_hz=(40e6,),
        modes=("analytic",),
    )
    campaign = run_campaign(grid, config=config)
    points = [
        SweepPoint(
            resolution_bits=s.scenario.spec.resolution_bits,
            winner_label=s.topology.best.label,
            first_stage_bits=s.topology.best.candidate.resolutions[0],
            last_stage_bits=s.topology.best.candidate.resolutions[-1],
        )
        for s in campaign.scenarios
    ]
    rules, winners, last2 = compress_rules(points)
    return Fig3Result(rules=rules, winners=winners, last_stage_always_2bit=last2)


def format_fig3(result: Fig3Result) -> str:
    """The decision diagram as text."""
    lines = ["Fig. 3 — designer rules (optimum candidate enumeration)"]
    for rule in result.rules:
        lines.append(f"  {rule}")
    lines.append(
        "  last enumerated stage is 1.5-bit (2 raw bits): "
        + ("holds for every K" if result.last_stage_always_2bit else "VIOLATED")
    )
    return "\n".join(lines)
