"""Fig. 3 — the designer decision diagram (optimum-candidate rules)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.engine.config import FlowConfig
from repro.flow.designer import DesignerRule, extract_rules


@dataclass(frozen=True)
class Fig3Result:
    """Extracted designer rules over a resolution sweep."""

    rules: list[DesignerRule]
    winners: dict[int, str]
    last_stage_always_2bit: bool


def fig3_designer_rules(
    resolutions: list[int] | None = None,
    config: FlowConfig | None = None,
) -> Fig3Result:
    """Sweep resolutions and compress the winners into first-stage rules."""
    rules, winners, last2 = extract_rules(resolutions, config=config)
    return Fig3Result(rules=rules, winners=winners, last_stage_always_2bit=last2)


def format_fig3(result: Fig3Result) -> str:
    """The decision diagram as text."""
    lines = ["Fig. 3 — designer rules (optimum candidate enumeration)"]
    for rule in result.rules:
        lines.append(f"  {rule}")
    lines.append(
        "  last enumerated stage is 1.5-bit (2 raw bits): "
        + ("holds for every K" if result.last_stage_always_2bit else "VIOLATED")
    )
    return "\n".join(lines)
