"""Fig. 2 — total front-end power for all candidates at K = 10..13.

Reproduces the paper's headline rankings: 3-2... optimal at 10 bits,
4-2... at 11, 4-2-2... at 12, 4-3-2... at 13, with a 2-bit final
front-end stage optimal everywhere.

The driver is a thin campaign client: the resolution sweep is exactly a
one-axis :class:`~repro.campaign.grid.CampaignGrid`, so the campaign runner
supplies the shared backend, the cross-scenario block reuse (in synthesis
mode) and the per-scenario records, and this module just reshapes the
result into the figure's form.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.campaign.grid import CampaignGrid
from repro.campaign.runner import run_campaign
from repro.engine.config import FlowConfig
from repro.flow.topology import TopologyResult

#: The paper's reported optima.
PAPER_OPTIMA = {10: "3-2", 11: "4-2", 12: "4-2-2", 13: "4-3-2"}


@dataclass(frozen=True)
class Fig2Result:
    """Total power per candidate per resolution."""

    #: resolution -> ranked TopologyResult.
    by_resolution: dict[int, TopologyResult]

    @property
    def winners(self) -> dict[int, str]:
        """resolution -> winning label."""
        return {k: r.best.label for k, r in self.by_resolution.items()}

    @property
    def matches_paper(self) -> bool:
        """True when every winner equals the paper's."""
        return all(
            self.winners.get(k) == label
            for k, label in PAPER_OPTIMA.items()
            if k in self.winners
        )


def fig2_total_power(
    resolutions: tuple[int, ...] = (10, 11, 12, 13),
    mode: str = "analytic",
    config: FlowConfig | None = None,
) -> Fig2Result:
    """Regenerate Fig. 2's bars by running the sweep as a campaign."""
    grid = CampaignGrid(
        resolutions=tuple(resolutions),
        sample_rates_hz=(40e6,),
        modes=(mode,),
    )
    campaign = run_campaign(grid, config=config)
    return Fig2Result(by_resolution=campaign.topology_by_resolution(mode=mode))


def format_fig2(result: Fig2Result) -> str:
    """The figure as text: per resolution, candidates ranked by power."""
    lines = ["Fig. 2 — total front-end power [mW] per candidate"]
    for k, topo in sorted(result.by_resolution.items()):
        paper = PAPER_OPTIMA.get(k, "?")
        rows = ", ".join(f"{label}={mw:.2f}" for label, mw in topo.power_table())
        marker = "OK" if topo.best.label == paper else f"paper said {paper}"
        lines.append(f"  K={k}: {rows}   [winner {topo.best.label}; {marker}]")
    return "\n".join(lines)
