"""Fig. 2 — total front-end power for all candidates at K = 10..13.

Reproduces the paper's headline rankings: 3-2... optimal at 10 bits,
4-2... at 11, 4-2-2... at 12, 4-3-2... at 13, with a 2-bit final
front-end stage optimal everywhere.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.engine.config import FlowConfig
from repro.flow.topology import TopologyResult, optimize_topology
from repro.specs.adc import AdcSpec

#: The paper's reported optima.
PAPER_OPTIMA = {10: "3-2", 11: "4-2", 12: "4-2-2", 13: "4-3-2"}


@dataclass(frozen=True)
class Fig2Result:
    """Total power per candidate per resolution."""

    #: resolution -> ranked TopologyResult.
    by_resolution: dict[int, TopologyResult]

    @property
    def winners(self) -> dict[int, str]:
        """resolution -> winning label."""
        return {k: r.best.label for k, r in self.by_resolution.items()}

    @property
    def matches_paper(self) -> bool:
        """True when every winner equals the paper's."""
        return all(
            self.winners.get(k) == label
            for k, label in PAPER_OPTIMA.items()
            if k in self.winners
        )


def fig2_total_power(
    resolutions: tuple[int, ...] = (10, 11, 12, 13),
    mode: str = "analytic",
    config: FlowConfig | None = None,
) -> Fig2Result:
    """Regenerate Fig. 2's bars.

    One execution backend is shared across the per-resolution runs so a
    process pool spins up once for the whole sweep, not once per K.
    """
    if config is None:
        config = FlowConfig()
    backend = config.make_backend()
    try:
        by_resolution = {
            k: optimize_topology(
                AdcSpec(resolution_bits=k), mode=mode, config=config, backend=backend
            )
            for k in resolutions
        }
    finally:
        backend.close()
    return Fig2Result(by_resolution=by_resolution)


def format_fig2(result: Fig2Result) -> str:
    """The figure as text: per resolution, candidates ranked by power."""
    lines = ["Fig. 2 — total front-end power [mW] per candidate"]
    for k, topo in sorted(result.by_resolution.items()):
        paper = PAPER_OPTIMA.get(k, "?")
        rows = ", ".join(f"{label}={mw:.2f}" for label, mw in topo.power_table())
        marker = "OK" if topo.best.label == paper else f"paper said {paper}"
        lines.append(f"  K={k}: {rows}   [winner {topo.best.label}; {marker}]")
    return "\n".join(lines)
