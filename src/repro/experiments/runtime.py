"""Section 4's effort claim: first synthesis is expensive, retargets are cheap.

The paper reports 2-3 weeks to set up the first synthesis and ~1 day per
retargeted block (vs 1-2 weeks of manual design each).  The mechanical
content of that claim is that a warm-started search needs an order of
magnitude fewer evaluations than a cold one; this experiment measures it.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.enumeration.candidates import PipelineCandidate
from repro.specs.adc import AdcSpec
from repro.specs.stage import plan_stages
from repro.synth.retarget import retarget_mdac
from repro.synth.synthesis import synthesize_mdac
from repro.tech.process import CMOS025


@dataclass(frozen=True)
class RetargetEconomy:
    """Cold-vs-warm synthesis effort comparison."""

    cold_evals: int
    cold_seconds: float
    cold_power_mw: float
    retarget_evals: int
    retarget_seconds: float
    retarget_power_mw: float
    #: Both blocks met their specs.
    both_feasible: bool

    @property
    def eval_reduction(self) -> float:
        """Cold / warm evaluation ratio."""
        return self.cold_evals / max(self.retarget_evals, 1)


def retarget_economy(
    cold_budget: int = 400,
    retarget_budget: int = 60,
    seed: int = 3,
    verify_transient: bool = True,
) -> RetargetEconomy:
    """Synthesize a 3-bit/10-bit block cold, then retarget it to 3-bit/11-bit."""
    spec13 = AdcSpec(resolution_bits=13)
    donor_plan = plan_stages(spec13, PipelineCandidate((4, 3, 2), 13, 7))
    donor_spec = donor_plan.mdacs[1]  # 3-bit at 10-bit accuracy

    t0 = time.perf_counter()
    cold = synthesize_mdac(
        donor_spec, CMOS025, budget=cold_budget, seed=seed,
        verify_transient=verify_transient,
    )
    cold_seconds = time.perf_counter() - t0

    target_plan = plan_stages(spec13, PipelineCandidate((3, 3, 3), 13, 7))
    target_spec = target_plan.mdacs[1]  # 3-bit at 11-bit accuracy

    t0 = time.perf_counter()
    warm = retarget_mdac(
        cold, target_spec, CMOS025, budget=retarget_budget,
        verify_transient=verify_transient,
    )
    warm_seconds = time.perf_counter() - t0

    return RetargetEconomy(
        cold_evals=cold.equation_evals,
        cold_seconds=cold_seconds,
        cold_power_mw=cold.power * 1e3,
        retarget_evals=warm.equation_evals,
        retarget_seconds=warm_seconds,
        retarget_power_mw=warm.power * 1e3,
        both_feasible=cold.feasible and warm.feasible,
    )


def format_runtime(economy: RetargetEconomy) -> str:
    """The effort table as text."""
    return "\n".join(
        [
            "Synthesis-effort economy (paper: 2-3 weeks cold, ~1 day retargeted)",
            f"  cold synthesis:   {economy.cold_evals:4d} evals, "
            f"{economy.cold_seconds:6.1f} s, {economy.cold_power_mw:.2f} mW",
            f"  retargeted block: {economy.retarget_evals:4d} evals, "
            f"{economy.retarget_seconds:6.1f} s, {economy.retarget_power_mw:.2f} mW",
            f"  effort reduction: {economy.eval_reduction:.1f}x "
            f"({'both feasible' if economy.both_feasible else 'CHECK FEASIBILITY'})",
        ]
    )
