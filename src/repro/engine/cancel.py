"""Cooperative cancellation for long-running engine work.

The engine's backends execute *blocking* maps — a process pool or a file
queue cannot abort a task midway without losing determinism.  What the
layers above (the campaign runner, the async optimization service) need is
coarser: a way to say "stop at the next safe boundary".  :class:`CancelToken`
is that signal — a thread-safe flag set by a controller (a SIGTERM handler,
a service drain) and polled by workloads at their checkpoint boundaries.

The campaign runner polls the token between scenarios: every completed
scenario has already committed its checkpoint, so an honoured cancellation
loses no work — ``run_campaign(..., resume=True)`` picks up exactly where
the interrupted run stopped (see :class:`repro.errors.CampaignInterrupted`).
"""

from __future__ import annotations

import threading


class CancelToken:
    """A thread-safe "stop at the next safe boundary" flag.

    Controllers call :meth:`cancel` (any thread); workloads poll
    :attr:`cancelled` at their checkpoint boundaries.  The token is sticky —
    once cancelled it stays cancelled — so a late poll never misses the
    signal.
    """

    def __init__(self) -> None:
        self._event = threading.Event()

    def cancel(self) -> None:
        """Request cancellation (idempotent, callable from any thread)."""
        self._event.set()

    @property
    def cancelled(self) -> bool:
        """Whether cancellation has been requested."""
        return self._event.is_set()


__all__ = ["CancelToken"]
