"""Crash-tolerant work-queue execution: file-backed task leases and acks.

``QueueBackend`` is the fourth entry in :data:`repro.engine.backend.BACKENDS`
and the prototype of the distributed executor the ROADMAP targets.  It keeps
the backend contract (``map`` an importable function over picklable tasks,
results in task order) but routes every task through an on-disk queue
protocol under ``queue_dir``:

* **key** — each ``(fn, task)`` pair is content-addressed: tasks that expose
  a ``queue_payload()`` method (e.g. :class:`~repro.engine.scheduler.SynthesisJob`)
  digest that stable payload, everything else digests structurally via
  :func:`repro.engine.persist.digest`.
* **lease** — a worker claims a task by atomically creating
  ``<key>.lease`` (``O_CREAT | O_EXCL``).  A lease left behind by a killed
  process is recognized at the next ``map`` (lease without ack) and broken.
* **ack** — the result is pickled to a temporary file and renamed to
  ``<key>.ack.pkl`` *before* the lease is released, so an ack is always a
  complete result.  A re-dispatched task whose ack already exists replays
  the stored result instead of executing.

The file plumbing itself lives in :class:`repro.engine.broker.DirectoryBroker`
— this backend is one of two clients of that protocol (the other is the
distributed :class:`~repro.engine.broker.BrokerBackend` / ``repro-adc
worker`` fleet), which is why a campaign interrupted under ``--backend
queue`` can be finished by remote workers and vice versa: they share one
directory layout, byte-for-byte.

The protocol is what makes a killed campaign cheap to resume: a rerun of
the same scenario replays every completed synthesis from its ack and only
executes the tail that never finished.  Determinism is unaffected — tasks
are pure functions, results are assembled in task order, and a replayed ack
is byte-for-byte the result the original execution produced — so the wave
scheduler's donor ordering and the ledger's escalation decisions are
identical whether a map executed, replayed, or mixed both.

The queue directory is single-campaign-scoped (the campaign runner places
it inside the results store).  Concurrent *processes* sharing one directory
are tolerated conservatively: a foreign live lease is waited on until its
ack appears.  Executor threads heartbeat their own leases while a task
runs, so a task longer than ``lease_timeout`` is never reclaimed out from
under a live claimant; the wait on a foreign TTL'd lease is bounded by the
holder's heartbeats (a killed holder stops beating and the lease breaks
within one TTL).  Only a *legacy* deadline-less lease from a live pid keeps
the PR 4 wait-then-steal rule, because nothing else ever expires it.
"""

from __future__ import annotations

import os
import pickle
import shutil
import socket
import tempfile
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path
from typing import Callable, Iterable, TypeVar

from repro.engine.broker import DirectoryBroker, lease_heartbeat
from repro.engine.persist import digest
from repro.engine.threads import pin_blas_threads

T = TypeVar("T")
R = TypeVar("R")

#: Completed-task result files.
ACK_SUFFIX = ".ack.pkl"

#: In-flight claim markers.
LEASE_SUFFIX = ".lease"

#: Sentinel distinguishing "no ack" from a legitimately-``None`` result.
_MISS = object()


def _pid_alive(pid: int) -> bool:
    """Whether a process with this pid exists on this host."""
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except (PermissionError, OSError):
        return True  # exists (owned by someone else), or unknowable: keep it
    return True


def task_key(fn: Callable, task: object) -> str | None:
    """Content address of one ``(fn, task)`` dispatch, or ``None``.

    ``None`` means the task has no stable identity (its structural digest
    raised) — it still executes, it just never replays from an ack.
    """
    payload_fn = getattr(task, "queue_payload", None)
    body = payload_fn() if callable(payload_fn) else task
    try:
        return digest({"fn": f"{fn.__module__}.{fn.__qualname__}", "task": body})
    except Exception:
        return None


class QueueBackend:
    """File-backed work-queue executor (``BACKENDS['queue']``).

    ``queue_dir=None`` runs against a private temporary directory — fully
    functional but ephemeral (no crash tolerance beyond the process).  The
    campaign runner passes a directory inside the results store, which is
    what makes interrupted campaigns resumable at task granularity.
    """

    name = "queue"

    def __init__(
        self,
        max_workers: int | None = None,
        chunksize: int = 1,  # accepted for registry parity; queues don't batch
        queue_dir: str | Path | None = None,
        lease_timeout: float = 60.0,
    ):
        from repro.errors import SpecificationError

        if max_workers is not None and max_workers < 1:
            raise SpecificationError("max_workers must be >= 1")
        self.max_workers = max_workers or os.cpu_count() or 1
        self.lease_timeout = lease_timeout
        self._owns_dir = queue_dir is None
        self.queue_dir = Path(
            tempfile.mkdtemp(prefix="repro-queue-") if queue_dir is None else queue_dir
        )
        #: All file plumbing goes through the broker protocol; the lease
        #: TTL doubles as the foreign-claim wait quantum.
        self.broker = DirectoryBroker(self.queue_dir, lease_ttl=lease_timeout)
        #: One identity for every executor thread of this backend — leases
        #: carry it so ack/release are ownership-checked, and heartbeats
        #: from any of our threads match.
        self.worker_id = f"queue-{socket.gethostname()}-{os.getpid()}"
        #: Same cadence as ``WorkerLoop``: three beats per TTL.
        self._heartbeat_interval = max(lease_timeout / 3.0, 0.05)
        self._executor: ThreadPoolExecutor | None = None
        #: Tasks served from a pre-existing ack instead of executing.
        self.replayed = 0
        #: Tasks this backend actually executed (and acked).
        self.executed = 0
        #: Stale leases broken at dispatch time (evidence of a killed run).
        self.broken_leases = 0

    # -- queue file plumbing (delegated to the directory broker) --------------

    def _load_ack(self, key: str):
        from repro.service import wire

        payload = self.broker.result(key)
        if payload is None:
            return _MISS
        try:
            # The restricted wire decoder, not bare pickle: queue
            # directories can be shared with remote workers, so acks get
            # the same allow-list the broker fabric applies.
            return wire.decode_result(payload)
        except (
            pickle.UnpicklingError,
            EOFError,
            AttributeError,
            ValueError,
            TypeError,
            IndexError,
            ImportError,  # a pickled class moved between code versions
        ):
            # An unreadable ack degrades to a miss; the task re-executes and
            # the entry is rewritten atomically.
            self.broker.discard(key)
            return _MISS

    def _store_ack(self, key: str, result: object) -> None:
        self.broker.ack(
            key,
            pickle.dumps(result, protocol=pickle.HIGHEST_PROTOCOL),
            self.worker_id,
        )

    def _break_stale_lease(self, key: str) -> None:
        """Remove a lease left by a dead run (a lease without an ack).

        Called before dispatch, when no worker of this ``map`` call can hold
        the lease yet.  The broker's reclaim policy decides: a lease whose
        recorded pid is dead on this host (or whose TTL deadline passed) is
        an interrupted claim and is broken immediately, so resuming right
        after a kill never waits out the lease timeout; a live claim is left
        in place — ``_run_one`` will wait for its ack.
        """
        if self.broker.break_if_stale(key):
            self.broken_leases += 1

    def _run_one(self, fn: Callable[[T], R], key: str | None, task: T) -> R:
        if key is None:  # undigestable task: execute without the protocol
            return fn(task)
        while not self.broker.claim(key, self.worker_id):
            # A foreign claimant holds the lease: wait for its ack.  The
            # broker's reclaim policy bounds the wait when the claimant is
            # dead (expired TTL, dead local pid); a *live* TTL'd lease is
            # honored for as long as its holder keeps heartbeating, because
            # stealing it would double-execute the task.  Only a legacy
            # deadline-less lease from a live pid keeps the PR 4
            # wait-then-steal rule — nothing else ever expires it.
            deadline = time.monotonic() + self.lease_timeout
            reclaimed = False
            while time.monotonic() < deadline:
                hit = self._load_ack(key)
                if hit is not _MISS:
                    self.replayed += 1
                    return hit
                if self.broker.break_if_stale(key):
                    reclaimed = True
                    break
                time.sleep(0.05)
            if not reclaimed:
                info = self.broker.lease_info(key)
                if info is not None and info["deadline"] is None:
                    self.broker.release(key)  # legacy steal (PR 4 rule)
        try:
            hit = self._load_ack(key)
            if hit is not _MISS:  # acked between our sweep and our claim
                self.replayed += 1
                return hit
            with lease_heartbeat(
                self.broker, key, self.worker_id, self._heartbeat_interval
            ):
                result = fn(task)
            self._store_ack(key, result)
            self.executed += 1
            return result
        finally:
            self.broker.release_if_owner(key, self.worker_id)

    # -- the backend contract ------------------------------------------------

    def _pool(self) -> ThreadPoolExecutor:
        if self._executor is None:
            # Queue workers are threads sharing this process's BLAS pools:
            # pin them to one solver thread each so max_workers concurrent
            # solves don't oversubscribe the cores (user settings win).
            pin_blas_threads()
            self._executor = ThreadPoolExecutor(max_workers=self.max_workers)
        return self._executor

    def map(self, fn: Callable[[T], R], tasks: Iterable[T]) -> list[R]:
        """Apply ``fn`` to every task through the queue, in task order.

        Acked tasks replay; the rest are leased and executed on a worker
        pool.  Duplicate tasks within one call collapse onto one execution
        (``fn`` is pure by the backend contract, so this is unobservable).
        """
        task_list = list(tasks)
        if not task_list:
            return []
        self.queue_dir.mkdir(parents=True, exist_ok=True)
        keys = [task_key(fn, task) for task in task_list]

        results: dict[str, object] = {}
        pending: dict[str, T] = {}
        unkeyed: list[int] = []
        for i, (key, task) in enumerate(zip(keys, task_list)):
            if key is None:
                unkeyed.append(i)
                continue
            if key in results or key in pending:
                continue
            hit = self._load_ack(key)
            if hit is not _MISS:
                self.replayed += 1
                results[key] = hit
            else:
                self._break_stale_lease(key)
                pending[key] = task

        work = [(key, pending[key]) for key in pending]
        work += [(None, task_list[i]) for i in unkeyed]
        if len(work) == 1 or self.max_workers == 1:
            outcomes = [self._run_one(fn, key, task) for key, task in work]
        elif work:
            outcomes = list(
                self._pool().map(lambda kt: self._run_one(fn, kt[0], kt[1]), work)
            )
        else:
            outcomes = []
        for (key, _), outcome in zip(work, outcomes):
            if key is not None:
                results[key] = outcome
        unkeyed_results = iter(outcomes[len(pending):])

        return [
            next(unkeyed_results) if key is None else results[key] for key in keys
        ]

    def close(self) -> None:
        """Shut the worker pool down; remove the directory if ephemeral."""
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None
        if self._owns_dir:
            shutil.rmtree(self.queue_dir, ignore_errors=True)

    def __enter__(self) -> "QueueBackend":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


__all__ = ["ACK_SUFFIX", "LEASE_SUFFIX", "QueueBackend", "task_key"]
