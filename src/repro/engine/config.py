"""One knob-set for the whole flow: backend, budgets, persistence.

``FlowConfig`` is the single object threaded through
:func:`~repro.flow.topology.optimize_topology`,
:func:`~repro.flow.designer.extract_rules` and the CLI.  It is a frozen,
picklable dataclass so it can ride inside process-pool tasks (the
designer-rule sweep sends a serialized sub-config to each worker).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.engine.backend import ExecutionBackend, create_backend

if TYPE_CHECKING:
    from repro.flow.cache import BlockCache
    from repro.tech.process import Technology

#: Sentinel for ``eval_speculation``: let synthesis pick the depth from the
#: DC kernel.  Any negative value means "auto"; this is the canonical one.
SPECULATION_AUTO = -1


@dataclass(frozen=True)
class FlowConfig:
    """Execution and synthesis configuration for one flow invocation."""

    #: Execution backend name: 'serial', 'thread' or 'process' (any key of
    #: :data:`repro.engine.backend.BACKENDS`).
    backend: str = "serial"
    #: Worker count for pooled backends (``None`` = one per CPU).
    max_workers: int | None = None
    #: Tasks handed to each pool worker per dispatch.
    chunksize: int = 1
    #: Directory for the 'queue' backend's lease/ack files; ``None`` lets
    #: the backend use an ephemeral temporary directory (functional, but
    #: task acks do not survive the process).  The campaign runner points
    #: this inside the results store so interrupted runs resume at task
    #: granularity.  The 'broker' backend accepts it too (a directory
    #: broker shared with remote workers).  Ignored by the other backends.
    queue_dir: str | None = None
    #: Base URL of a running service's HTTP broker (``http://host:port``)
    #: for the 'broker' backend: tasks are published to ``/v1/broker/*``
    #: and executed by ``repro-adc worker`` processes.  A pure execution
    #: knob — like ``backend`` itself it never enters result identity
    #: (campaign manifests exclude it).  Ignored by the other backends.
    broker_url: str | None = None
    #: The 'broker' backend's no-progress timeout [s]: abort a ``map`` when
    #: no ack, failure, or live worker lease has been seen for this long
    #: (the diagnostic names the likely cause — no workers attached).  Zero
    #: or negative waits forever.  A pure execution knob like ``broker_url``;
    #: never enters result identity.  Ignored by the other backends.
    broker_wait_timeout: float = 300.0
    #: Directory for the persistent block cache; ``None`` keeps synthesis
    #: results in-memory only.
    cache_dir: str | None = None
    #: Cold-synthesis annealer budget (evaluations).
    budget: int = 400
    #: Warm-start (retarget) budget.
    retarget_budget: int = 80
    #: Cold-synthesis RNG seed.
    seed: int = 1
    #: Retarget RNG seed.
    retarget_seed: int = 7
    #: Run the nonlinear transient verifier on every synthesized block.
    verify_transient: bool = True
    #: Equation-evaluation kernel: 'compiled' (parametric MNA templates +
    #: batched AC solves, the default) or 'legacy' (the reference
    #: per-element walk).  Bit-identical results either way — this is a
    #: pure speed knob (see docs/performance.md).
    eval_kernel: str = "compiled"
    #: Speculative proposal-batch depth for the optimizers.  Bit-identical
    #: results at any depth — a pure execution knob.  The default
    #: :data:`SPECULATION_AUTO` resolves per DC kernel at synthesis time:
    #: depth 8 under ``dc_kernel='batched'``, where the lockstep solve
    #: batches the DC stage across speculated proposals (~1.2x, the
    #: BENCH_PR10.json ``speculation`` receipt), and 0 under ``'chained'``,
    #: whose warm-start walk cannot batch DC (~0.8x).  Explicit
    #: non-negative values override the auto choice.
    eval_speculation: int = SPECULATION_AUTO
    #: DC Newton kernel: 'chained' (per-candidate warm-start walk, the
    #: default) or 'batched' (population lockstep with masked convergence,
    #: cold starts).  Unlike ``eval_kernel`` this changes the Newton
    #: trajectories — it is part of campaign *result identity* and enters
    #: the manifest/fingerprint digests (see docs/performance.md).
    dc_kernel: str = "chained"
    #: Monte-Carlo mismatch draws per behavioral scenario.
    behavioral_draws: int = 32
    #: Seed for the behavioral draw tree (parameter + noise streams).
    behavioral_seed: int = 101
    #: Behavioral simulation kernel: 'batch' (the vectorized draws x
    #: samples program, the default) or 'legacy' (the reference scalar
    #: per-sample walk).  Bit-identical results either way — a pure
    #: speed knob like ``eval_kernel``.
    behavioral_kernel: str = "batch"
    #: Telemetry level (see :mod:`repro.obs` and docs/observability.md):
    #: 'off' (no metric export, no traces), 'metrics' (the default —
    #: counters accumulate and campaigns write an aggregated
    #: ``metrics.json`` into their store) or 'trace' (metrics plus span
    #: export to ``<store>/traces/*.jsonl``).  A pure execution knob:
    #: records are byte-identical whichever mode ran them, so it never
    #: enters manifests, fingerprints or task payloads.
    telemetry: str = "metrics"

    def make_backend(self) -> ExecutionBackend:
        """Instantiate this configuration's execution backend."""
        return create_backend(self.backend, self)

    def make_cache(self, tech: "Technology") -> "BlockCache":
        """Build the block cache: persistent when ``cache_dir`` is set."""
        # Imported lazily: flow.cache sits downstream of the engine package.
        from repro.flow.cache import BlockCache, PersistentBlockCache

        kwargs = dict(
            tech=tech,
            budget=self.budget,
            retarget_budget=self.retarget_budget,
            seed=self.seed,
            retarget_seed=self.retarget_seed,
            verify_transient=self.verify_transient,
            eval_kernel=self.eval_kernel,
            eval_speculation=self.eval_speculation,
            dc_kernel=self.dc_kernel,
        )
        if self.cache_dir is not None:
            return PersistentBlockCache(cache_dir=self.cache_dir, **kwargs)
        return BlockCache(**kwargs)

    def serial(self) -> "FlowConfig":
        """This config forced onto the serial backend.

        Used inside pool workers: a worker that fans out again would
        oversubscribe the machine, so nested flow calls run serially.
        """
        if self.backend == "serial":
            return self
        return dataclasses.replace(self, backend="serial", max_workers=None)


#: The default configuration: serial, in-memory, paper budgets.
DEFAULT_FLOW_CONFIG = FlowConfig()
