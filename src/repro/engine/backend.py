"""Pluggable execution backends for the flow's embarrassingly parallel loops.

The flow has three fan-out points — per-candidate analytic evaluation,
per-wave block synthesis, and the per-resolution designer-rule sweep — and
all of them funnel through one tiny contract: ``map`` an importable function
over a list of picklable tasks, preserving order.  ``SerialBackend`` runs
in-process (the default, and the reference for determinism checks);
``ProcessPoolBackend`` dispatches to a :class:`concurrent.futures`
process pool so independent tasks use every core.

Backends are deliberately dumb: all scheduling intelligence (deduplication,
donor ordering, wave construction) lives in :mod:`repro.engine.scheduler`,
which guarantees that the *task list* handed to a backend is identical
whichever backend executes it.  That is what makes parallel runs reproduce
serial results bit-for-bit.
"""

from __future__ import annotations

import inspect
import os
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import (
    Any,
    Callable,
    Iterable,
    Protocol,
    Sequence,
    TypeVar,
    runtime_checkable,
)

from repro.engine.threads import pin_blas_threads
from repro.errors import SpecificationError

T = TypeVar("T")
R = TypeVar("R")


@runtime_checkable
class ExecutionBackend(Protocol):
    """Minimal contract the flow needs from an executor."""

    #: Short identifier ('serial', 'process', ...).
    name: str

    def map(self, fn: Callable[[T], R], tasks: Iterable[T]) -> list[R]:
        """Apply ``fn`` to every task, returning results in task order."""
        ...

    def close(self) -> None:
        """Release any pooled resources; idempotent."""
        ...


class SerialBackend:
    """In-process execution — the determinism reference."""

    name = "serial"

    def map(self, fn: Callable[[T], R], tasks: Iterable[T]) -> list[R]:
        """Apply ``fn`` to every task in this process, in order."""
        return [fn(task) for task in tasks]

    def close(self) -> None:
        """No-op: nothing is pooled."""
        return None

    def __enter__(self) -> "SerialBackend":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


class _PooledBackend:
    """Shared machinery for ``concurrent.futures``-backed backends.

    The pool is created lazily on the first ``map`` and reused across calls
    (waves of the synthesis scheduler share one pool); single-task maps run
    inline to skip dispatch latency.  Subclasses set ``name`` and
    ``executor_cls``.
    """

    name: str
    executor_cls: type

    def __init__(self, max_workers: int | None = None, chunksize: int = 1):
        """``max_workers=None`` means one worker per CPU."""
        if max_workers is not None and max_workers < 1:
            raise SpecificationError("max_workers must be >= 1")
        if chunksize < 1:
            raise SpecificationError("chunksize must be >= 1")
        self.max_workers = max_workers or os.cpu_count() or 1
        self.chunksize = chunksize
        self._executor = None

    def _pool(self):
        if self._executor is None:
            # Pin the solver libraries to one thread per worker before the
            # pool exists: fork-started workers inherit the parent's
            # environment, and the initializer re-pins under spawn (see
            # :mod:`repro.engine.threads`).  User-exported values win.
            pin_blas_threads()
            kwargs: dict[str, Any] = {"max_workers": self.max_workers}
            if issubclass(self.executor_cls, ProcessPoolExecutor):
                kwargs["initializer"] = pin_blas_threads
            self._executor = self.executor_cls(**kwargs)
        return self._executor

    def map(self, fn: Callable[[T], R], tasks: Iterable[T]) -> list[R]:
        """Apply ``fn`` to every task through the pool, in task order."""
        task_list: Sequence[T] = list(tasks)
        if len(task_list) <= 1 or self.max_workers == 1:
            return [fn(task) for task in task_list]
        return list(self._pool().map(fn, task_list, chunksize=self.chunksize))

    def close(self) -> None:
        """Shut the pool down; idempotent."""
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    def __enter__(self):
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


class ProcessPoolBackend(_PooledBackend):
    """``concurrent.futures.ProcessPoolExecutor``-backed execution.

    Task functions must be importable module-level callables and tasks must
    be picklable — every task dataclass in :mod:`repro.engine.scheduler`
    satisfies this.  ``chunksize`` batches tasks per worker dispatch to
    amortize pickling.
    """

    name = "process"
    executor_cls = ProcessPoolExecutor


class ThreadPoolBackend(_PooledBackend):
    """``concurrent.futures.ThreadPoolExecutor``-backed execution.

    Threads share the interpreter, so tasks need not be picklable and
    dispatch latency is tiny — the right trade for short analytic
    evaluations and for I/O-heavy work (persistent-cache reads), where the
    process pool's serialization cost dominates.  CPU-bound synthesis under
    the GIL still serializes; use ``ProcessPoolBackend`` for that.  Every
    task function used by the engine is reentrant (per-call
    ``numpy.random.default_rng`` state, no shared mutables), so threaded
    maps return the same values as serial ones.  ``chunksize`` is accepted
    for interface parity but has no effect on a thread pool.
    """

    name = "thread"
    executor_cls = ThreadPoolExecutor


def _make_queue_backend(max_workers=None, chunksize=1, queue_dir=None):
    """Factory for the file-backed work-queue backend (lazy import)."""
    from repro.engine.workqueue import QueueBackend

    return QueueBackend(
        max_workers=max_workers, chunksize=chunksize, queue_dir=queue_dir
    )


def _make_broker_backend(
    max_workers=None, chunksize=1, queue_dir=None, broker_url=None,
    wait_timeout=None,
):
    """Factory for the distributed broker backend (lazy import).

    ``wait_timeout`` semantics: ``None`` keeps the backend's finite default
    (:data:`~repro.engine.broker.DEFAULT_WAIT_TIMEOUT`); zero or negative
    means wait forever.
    """
    from repro.engine.broker import DEFAULT_WAIT_TIMEOUT, BrokerBackend

    if wait_timeout is None:
        wait_timeout = DEFAULT_WAIT_TIMEOUT
    elif wait_timeout <= 0:
        wait_timeout = None
    return BrokerBackend(
        broker_url=broker_url,
        queue_dir=queue_dir,
        max_workers=max_workers,
        chunksize=chunksize,
        wait_timeout=wait_timeout,
    )


#: Registered backend names -> factories.  Extension point: register a new
#: name here (or assign ``BACKENDS['myname'] = factory`` at import time) and
#: every FlowConfig / CLI ``--backend`` choice picks it up.  Factories that
#: accept a ``queue_dir`` / ``broker_url`` keyword receive the matching
#: :class:`FlowConfig` field.
BACKENDS: dict[str, Callable[..., ExecutionBackend]] = {
    "serial": lambda max_workers=None, chunksize=1: SerialBackend(),
    "thread": ThreadPoolBackend,
    "process": ProcessPoolBackend,
    "queue": _make_queue_backend,
    "broker": _make_broker_backend,
}


def make_backend(
    name: str,
    max_workers: int | None = None,
    chunksize: int = 1,
    queue_dir: str | None = None,
    broker_url: str | None = None,
    wait_timeout: float | None = None,
) -> ExecutionBackend:
    """Instantiate a backend by registered name.

    ``queue_dir``, ``broker_url``, and ``wait_timeout`` are forwarded only
    to factories whose signature accepts them (the work-queue and broker
    backends); other backends ignore them.
    """
    try:
        factory = BACKENDS[name]
    except KeyError:
        known = ", ".join(sorted(BACKENDS))
        raise SpecificationError(
            f"unknown execution backend {name!r} (known: {known})"
        ) from None
    kwargs: dict[str, Any] = {"max_workers": max_workers, "chunksize": chunksize}
    try:
        params = inspect.signature(factory).parameters
    except (TypeError, ValueError):
        params = {}
    if "queue_dir" in params:
        kwargs["queue_dir"] = queue_dir
    if "broker_url" in params:
        kwargs["broker_url"] = broker_url
    if "wait_timeout" in params:
        kwargs["wait_timeout"] = wait_timeout
    return factory(**kwargs)


def create_backend(name: str, config: Any = None) -> ExecutionBackend:
    """The one construction path for execution backends.

    ``config`` is anything shaped like :class:`~repro.engine.config.FlowConfig`
    (only the execution knobs are read); ``None`` builds the backend with
    registry defaults.  The CLI, the campaign runner, and the service
    scheduler all come through here, so an unknown name fails identically
    everywhere — one :class:`~repro.errors.SpecificationError` the CLI
    renders as its single-line ``repro-adc: error:`` form.
    """
    if config is None:
        return make_backend(name)
    return make_backend(
        name,
        max_workers=getattr(config, "max_workers", None),
        chunksize=getattr(config, "chunksize", 1),
        queue_dir=getattr(config, "queue_dir", None),
        broker_url=getattr(config, "broker_url", None),
        wait_timeout=getattr(config, "broker_wait_timeout", None),
    )
