"""Pluggable execution backends for the flow's embarrassingly parallel loops.

The flow has three fan-out points — per-candidate analytic evaluation,
per-wave block synthesis, and the per-resolution designer-rule sweep — and
all of them funnel through one tiny contract: ``map`` an importable function
over a list of picklable tasks, preserving order.  ``SerialBackend`` runs
in-process (the default, and the reference for determinism checks);
``ProcessPoolBackend`` dispatches to a :class:`concurrent.futures`
process pool so independent tasks use every core.

Backends are deliberately dumb: all scheduling intelligence (deduplication,
donor ordering, wave construction) lives in :mod:`repro.engine.scheduler`,
which guarantees that the *task list* handed to a backend is identical
whichever backend executes it.  That is what makes parallel runs reproduce
serial results bit-for-bit.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Iterable, Protocol, Sequence, TypeVar, runtime_checkable

from repro.errors import SpecificationError

T = TypeVar("T")
R = TypeVar("R")


@runtime_checkable
class ExecutionBackend(Protocol):
    """Minimal contract the flow needs from an executor."""

    #: Short identifier ('serial', 'process', ...).
    name: str

    def map(self, fn: Callable[[T], R], tasks: Iterable[T]) -> list[R]:
        """Apply ``fn`` to every task, returning results in task order."""
        ...

    def close(self) -> None:
        """Release any pooled resources; idempotent."""
        ...


class SerialBackend:
    """In-process execution — the determinism reference."""

    name = "serial"

    def map(self, fn: Callable[[T], R], tasks: Iterable[T]) -> list[R]:
        return [fn(task) for task in tasks]

    def close(self) -> None:  # nothing pooled
        return None

    def __enter__(self) -> "SerialBackend":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


class ProcessPoolBackend:
    """``concurrent.futures.ProcessPoolExecutor``-backed execution.

    The pool is created lazily on the first ``map`` and reused across calls
    (waves of the synthesis scheduler share one pool).  Task functions must
    be importable module-level callables and tasks must be picklable —
    every task dataclass in :mod:`repro.engine.scheduler` satisfies this.
    Single-task maps run inline to skip pickling latency.
    """

    name = "process"

    def __init__(self, max_workers: int | None = None, chunksize: int = 1):
        if max_workers is not None and max_workers < 1:
            raise SpecificationError("max_workers must be >= 1")
        if chunksize < 1:
            raise SpecificationError("chunksize must be >= 1")
        self.max_workers = max_workers or os.cpu_count() or 1
        self.chunksize = chunksize
        self._executor: ProcessPoolExecutor | None = None

    def _pool(self) -> ProcessPoolExecutor:
        if self._executor is None:
            self._executor = ProcessPoolExecutor(max_workers=self.max_workers)
        return self._executor

    def map(self, fn: Callable[[T], R], tasks: Iterable[T]) -> list[R]:
        task_list: Sequence[T] = list(tasks)
        if len(task_list) <= 1 or self.max_workers == 1:
            return [fn(task) for task in task_list]
        return list(self._pool().map(fn, task_list, chunksize=self.chunksize))

    def close(self) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    def __enter__(self) -> "ProcessPoolBackend":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


#: Registered backend names -> factories.
BACKENDS: dict[str, Callable[..., ExecutionBackend]] = {
    "serial": lambda max_workers=None, chunksize=1: SerialBackend(),
    "process": ProcessPoolBackend,
}


def make_backend(
    name: str,
    max_workers: int | None = None,
    chunksize: int = 1,
) -> ExecutionBackend:
    """Instantiate a backend by registered name."""
    try:
        factory = BACKENDS[name]
    except KeyError:
        known = ", ".join(sorted(BACKENDS))
        raise SpecificationError(
            f"unknown execution backend {name!r} (known: {known})"
        ) from None
    return factory(max_workers=max_workers, chunksize=chunksize)
