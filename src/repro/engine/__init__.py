"""Execution engine: backends, scheduling, configuration, persistence.

The engine layer is the orchestration spine introduced between the flow
(:mod:`repro.flow`) and the per-block machinery (:mod:`repro.synth`):

* :mod:`repro.engine.backend` — the :class:`ExecutionBackend` contract with
  serial and process-pool implementations;
* :mod:`repro.engine.broker` — the :class:`Broker` task-distribution
  protocol (directory and HTTP implementations) behind the work queue and
  the ``repro-adc worker`` fleet;
* :mod:`repro.engine.scheduler` — deduplicated, wave-ordered synthesis
  scheduling that preserves nearest-donor warm starts under parallelism;
* :mod:`repro.engine.persist` — content-fingerprinted on-disk persistence
  of synthesis results;
* :mod:`repro.engine.config` — :class:`FlowConfig`, the single knob-set
  threaded through every entry point.

Nothing in this package imports from :mod:`repro.flow` at module scope, so
the dependency direction stays engine -> synth/specs/tech.
"""

from repro.engine.backend import (
    BACKENDS,
    ExecutionBackend,
    ProcessPoolBackend,
    SerialBackend,
    ThreadPoolBackend,
    create_backend,
    make_backend,
)
from repro.engine.config import DEFAULT_FLOW_CONFIG, FlowConfig
from repro.engine.persist import block_fingerprint, load_result, store_result
from repro.engine.scheduler import (
    PlanNode,
    SynthesisJob,
    SynthesisPlan,
    execute_plan,
    plan_synthesis,
    run_synthesis_job,
)

__all__ = [
    "BACKENDS",
    "DEFAULT_FLOW_CONFIG",
    "ExecutionBackend",
    "FlowConfig",
    "PlanNode",
    "ProcessPoolBackend",
    "SerialBackend",
    "SynthesisJob",
    "SynthesisPlan",
    "ThreadPoolBackend",
    "block_fingerprint",
    "create_backend",
    "execute_plan",
    "load_result",
    "make_backend",
    "plan_synthesis",
    "run_synthesis_job",
    "store_result",
]
