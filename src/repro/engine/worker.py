"""The ``repro-adc worker`` execution loop: pull, execute, heartbeat, ack.

A worker is the other half of the :class:`~repro.engine.broker.Broker`
fabric: :class:`~repro.engine.broker.BrokerBackend` publishes task
envelopes; any number of ``WorkerLoop`` processes — on any host that can
reach the broker — lease them, run them through the same importable task
functions the local backends use (``run_synthesis_job`` resolves the
persisted ``TemplateStore`` exactly as a local run would), and ack pickled
results back.  Fleet size is pure deployment: determinism lives in the
tasks and the order-preserving assembly, so 1 worker and N workers produce
byte-identical stores.

Safety properties:

* **Function allow-list** — envelopes name their function; the loop only
  resolves names inside the ``repro`` package.  Task *bodies* are decoded
  through :func:`repro.service.wire.restricted_loads`, which admits
  ``repro`` classes and plain data but no callable globals, so a broker
  fed by an untrusted submitter cannot make a worker import and run
  arbitrary code — neither via the function name nor via a pickle gadget
  in the payload.  (An untrusted submitter can still make workers *do
  work*: run allow-listed ``repro`` functions over attacker-chosen data.
  Keep broker ports on trusted networks.)
* **Liveness** — a background heartbeat extends the lease at TTL/3 cadence
  while a task runs, so long syntheses survive; if the worker is SIGKILLed
  the heartbeat stops and the lease expires, and the broker re-leases the
  task to a surviving worker.
* **Failure containment** — a task that raises is nacked with the error
  string; after :data:`~repro.engine.broker.MAX_RETRIES` failed executions
  the broker stops re-leasing it and the submitter surfaces the error.
"""

from __future__ import annotations

import importlib
import os
import socket
import threading
import time
from typing import Callable

from repro.engine.broker import DEFAULT_LEASE_TTL, Broker, lease_heartbeat
from repro.obs import metrics
from repro.obs.trace import TRACER, span


def default_worker_id() -> str:
    """Stable-enough identity for one worker process: ``host-pid``."""
    return f"{socket.gethostname()}-{os.getpid()}"


def resolve_task_fn(fn_name: str) -> Callable:
    """Import the task function named by an envelope, allow-listed.

    Only ``repro``-package functions resolve — the fabric ships *names*,
    and a worker must never let a task envelope pick arbitrary importables
    (``os.system`` would be one dotted name away).  Raises ``ValueError``
    for anything outside the allow-list or that fails to resolve.
    """
    module_name, _, qualname = fn_name.rpartition(".")
    if not module_name or not (
        module_name == "repro" or module_name.startswith("repro.")
    ):
        raise ValueError(
            f"task function {fn_name!r} is outside the repro package"
        )
    try:
        module = importlib.import_module(module_name)
    except ImportError as exc:
        raise ValueError(f"cannot import task module {module_name!r} ({exc})") from exc
    target = module
    for part in qualname.split("."):
        target = getattr(target, part, None)
        if target is None:
            raise ValueError(f"task function {fn_name!r} does not exist")
    if not callable(target):
        raise ValueError(f"task function {fn_name!r} is not callable")
    return target


def fabric_probe(task: dict) -> str:
    """Benchmark task with a fixed off-CPU service time.

    Sleeps ``task["busy_s"]`` seconds, then returns the task's digest.
    Because the service time is a sleep rather than computation, a fleet
    throughput measurement built on this probe isolates the fabric's
    dispatch concurrency from the host's core count — two workers on a
    one-core CI runner still overlap their probes, exactly as two workers
    on two hosts overlap real syntheses.
    """
    from repro.engine.persist import digest

    time.sleep(float(task.get("busy_s", 0.0)))
    return digest(task)


class WorkerLoop:
    """Pull tasks from one broker until stopped, idle, or quota reached.

    The loop is synchronous — one task at a time — because fleet
    parallelism comes from running more workers, and a single-task worker
    makes the SIGKILL/reclaim story trivial (at most one lease is ever at
    stake).  Counters are returned from :meth:`run` and kept on the
    instance for tests.
    """

    def __init__(
        self,
        broker: Broker,
        worker_id: str | None = None,
        poll_interval: float = 0.2,
        lease_ttl: float = DEFAULT_LEASE_TTL,
        max_tasks: int | None = None,
        idle_exit: float | None = None,
    ):
        self.broker = broker
        self.worker_id = worker_id or default_worker_id()
        self.poll_interval = poll_interval
        #: Heartbeat cadence: three beats per TTL keeps a healthy worker's
        #: lease alive through arbitrary-length tasks with margin for one
        #: missed beat.
        self.heartbeat_interval = max(lease_ttl / 3.0, 0.05)
        self.max_tasks = max_tasks
        self.idle_exit = idle_exit
        self.counters = {"executed": 0, "failed": 0, "rejected": 0, "polls": 0}
        #: Wall seconds spent executing leased tasks (census metadata).
        self.busy_seconds = 0.0
        self.started_unix = time.time()
        self._census_pushed = 0.0

    # -- the fleet census ---------------------------------------------------------

    def census_record(self, current: str | None = None) -> dict:
        """This worker's census record: identity, workload, metrics."""
        return {
            "worker": self.worker_id,
            "host": socket.gethostname(),
            "pid": os.getpid(),
            "started_unix": self.started_unix,
            "current": current,
            "executed": self.counters["executed"],
            "failed": self.counters["failed"],
            "rejected": self.counters["rejected"],
            "polls": self.counters["polls"],
            "busy_seconds": round(self.busy_seconds, 3),
            "metrics": metrics.snapshot(),
        }

    def _push_census(self, current: str | None = None) -> None:
        """Best-effort census refresh; brokers without one are fine."""
        register = getattr(self.broker, "register_worker", None)
        if not callable(register):
            return
        try:
            register(self.census_record(current))
            self._census_pushed = time.monotonic()
        except Exception:
            pass  # census is advisory; never let it take a worker down

    # -- execution ----------------------------------------------------------------

    def _execute(self, key: str, envelope: dict) -> None:
        from repro.service import wire

        try:
            fn_name, task = wire.decode_task(envelope)
            fn = resolve_task_fn(fn_name)
        except ValueError as exc:
            self.counters["rejected"] += 1
            metrics.counter("worker.rejected")
            self.broker.nack(key, self.worker_id, f"rejected envelope: {exc}")
            return
        t0 = time.perf_counter()
        try:
            with lease_heartbeat(
                self.broker, key, self.worker_id, self.heartbeat_interval
            ):
                # The submitter's span context rides the envelope; adopting
                # it as the parent stitches this worker's execution into the
                # campaign's trace tree even across hosts.
                with span("worker.task", parent=wire.trace_context(envelope), key=key[:12]):
                    result = fn(task)
        except BaseException as exc:
            self.busy_seconds += time.perf_counter() - t0
            self.counters["failed"] += 1
            metrics.counter("worker.failed")
            self.broker.nack(key, self.worker_id, f"{type(exc).__name__}: {exc}")
            if not isinstance(exc, Exception):
                raise  # KeyboardInterrupt/SystemExit: nack, then propagate
            return
        self.busy_seconds += time.perf_counter() - t0
        self.broker.ack(key, wire.encode_result(result), self.worker_id)
        self.counters["executed"] += 1
        metrics.counter("worker.executed")

    def run(self, stop: threading.Event | None = None) -> dict:
        """Serve tasks until ``stop`` is set, ``max_tasks`` executed, or the
        broker stays empty past ``idle_exit`` seconds.  Returns counters."""
        stop = stop or threading.Event()
        TRACER.worker = self.worker_id
        idle_since = time.monotonic()
        self._push_census()
        while not stop.is_set():
            if (
                self.max_tasks is not None
                and self.counters["executed"] + self.counters["failed"]
                >= self.max_tasks
            ):
                break
            self.counters["polls"] += 1
            leased = self.broker.lease(self.worker_id)
            if leased is None:
                if (
                    self.idle_exit is not None
                    and time.monotonic() - idle_since > self.idle_exit
                ):
                    break
                # An idle worker still refreshes its census entry at the
                # heartbeat cadence, so the fleet view shows it attached.
                if time.monotonic() - self._census_pushed > self.heartbeat_interval:
                    self._push_census()
                stop.wait(self.poll_interval)
                continue
            key, envelope = leased
            self._push_census(current=key)
            self._execute(key, envelope)
            self._push_census()
            idle_since = time.monotonic()
        self._push_census()
        return dict(self.counters)


__all__ = ["WorkerLoop", "default_worker_id", "fabric_probe", "resolve_task_fn"]
