"""The distributed execution fabric: brokers, and the backend that uses them.

The file-backed work queue (:mod:`repro.engine.workqueue`) proved the
protocol — content-addressed tasks, exclusive leases, atomic acks — but its
lease/ack plumbing was welded to one process's thread pool.  This module
promotes that plumbing into a pluggable :class:`Broker` with two
implementations and a backend that dispatches through either one:

* :class:`DirectoryBroker` — the PR 4 on-disk layout behind the protocol.
  ``<key>.ack.pkl`` and ``<key>.lease`` files are byte-compatible both ways
  (old acks replay, old leases parse; new leases add worker/host/deadline
  fields the old reader ignores).  Two new file kinds appear only when the
  fabric is used: ``<key>.task.json`` (a pending task envelope a remote
  worker can pick up) and ``<key>.nack.json`` (a failure record with a
  retry count).
* :class:`HttpBroker` — the same protocol spoken over the optimization
  service's versioned ``/v1/broker/*`` routes, so workers on other hosts
  need nothing but a URL.
* :class:`BrokerBackend` — ``BACKENDS['broker']``: publishes each ``map``'s
  tasks to a broker and polls for acks, instead of executing on local
  executor threads.  Whoever runs ``repro-adc worker`` against the same
  broker does the executing.

Leases carry a TTL.  A worker extends its lease by heartbeating; a lease
whose deadline passed — or whose recorded pid is dead on this host — is
reclaimed and the task re-leased, so a SIGKILLed worker costs one TTL at
worst and usually nothing.  Determinism is inherited wholesale: tasks are
pure, results are assembled in task order, and an ack is byte-for-byte the
result the executing worker produced, so a fleet run replays into a store
byte-identical to the serial reference (the fabric tests and the CI
``fabric-e2e`` job enforce this).
"""

from __future__ import annotations

import contextlib
import json
import os
import re
import socket
import threading
import time
from pathlib import Path
from typing import Any, Callable, Iterable, Iterator, Protocol, TypeVar, runtime_checkable

from repro.engine.persist import atomic_write_bytes
from repro.errors import ServiceError, SpecificationError
from repro.obs import metrics

T = TypeVar("T")
R = TypeVar("R")

#: Pending-task envelope files (JSON, see :func:`repro.service.wire.encode_task`).
TASK_SUFFIX = ".task.json"

#: Subdirectory of a :class:`DirectoryBroker` root holding one JSON record
#: per worker that ever leased from it (the fleet census; see
#: docs/observability.md).  File-backed on purpose: a broker restart
#: re-reads the same directory, so the census survives it.
WORKERS_DIRNAME = "workers"

#: A worker whose census record has not been refreshed for this many lease
#: TTLs is reported stale (dropped from :meth:`DirectoryBroker.workers`
#: unless explicitly asked for).  Three TTLs ≈ nine missed heartbeats.
STALE_AFTER_TTLS = 3.0

#: Worker ids come from the wire (HTTP bodies, CLI flags); everything that
#: becomes a census filename is squeezed through this first.
_WORKER_SAFE_RE = re.compile(r"[^A-Za-z0-9._-]+")

#: Failure records: ``{"retries": N, "error": "..."}``.
NACK_SUFFIX = ".nack.json"

#: How many failed executions a task survives before the broker stops
#: re-leasing it and ``BrokerBackend`` surfaces the recorded error.
MAX_RETRIES = 3

#: Default lease time-to-live.  Matches the work queue's historic
#: ``lease_timeout``: synthesis tasks run seconds to low minutes, and a
#: worker heartbeats at TTL/3, so 60 s tolerates slow tasks while keeping
#: reclaim-after-SIGKILL prompt.
DEFAULT_LEASE_TTL = 60.0

#: Default :class:`BrokerBackend` no-progress timeout [s].  Finite on
#: purpose: ``--backend broker`` with zero attached workers must fail with
#: a diagnostic, not block ``map()`` forever.  A *live* lease counts as
#: progress (the holder's heartbeats keep it live), so this only has to
#: cover queue-drained-but-nobody-attached gaps, not slow tasks.
DEFAULT_WAIT_TIMEOUT = 300.0

#: Task keys are hex digests (sha256 via :func:`repro.engine.persist.digest`).
#: Everything the brokers touch on disk or serve over HTTP is validated
#: against this, so a key can never become a path traversal.
_KEY_RE = re.compile(r"^[0-9a-f]{8,128}$")


def check_key(key: str) -> str:
    """Validate a task key; returns it, raises ``ValueError`` otherwise."""
    if not isinstance(key, str) or not _KEY_RE.fullmatch(key):
        raise ValueError(f"malformed task key {key!r}")
    return key


@runtime_checkable
class Broker(Protocol):
    """What the fabric needs from a task broker.

    One task's lifecycle: ``submit`` publishes an envelope under its
    content-address key; a worker ``lease``s it (exclusively, with a TTL),
    ``heartbeat``s while executing, and finishes with ``ack`` (result bytes)
    or ``nack`` (failure + retry count).  ``result``/``failure`` are the
    submitter's view; ``reclaim`` breaks expired or dead leases so crashed
    workers never strand a task.
    """

    def submit(self, key: str, envelope: dict) -> bool:
        """Publish a task envelope; False if already known (ack or pending)."""
        ...

    def lease(self, worker: str) -> tuple[str, dict] | None:
        """Claim one pending task: ``(key, envelope)``, or None if drained."""
        ...

    def ack(self, key: str, payload: bytes, worker: str | None = None) -> None:
        """Record a completed task's result bytes; releases an owned lease."""
        ...

    def nack(self, key: str, worker: str | None = None, error: str | None = None) -> int:
        """Record a failed execution (ownership-gated); returns retry count."""
        ...

    def heartbeat(self, key: str, worker: str) -> bool:
        """Extend the worker's lease; False if the lease is gone or foreign."""
        ...

    def result(self, key: str) -> bytes | None:
        """Ack payload bytes, or None if the task has not completed."""
        ...

    def failure(self, key: str) -> dict | None:
        """``{"retries": N, "error": str}`` for a nacked task, else None."""
        ...

    def statuses(self, keys: Iterable[str]) -> dict[str, dict]:
        """One batched poll: ``{key: {"acked", "leased", "failure"}}``.

        ``acked`` — a result is stored; ``leased`` — a *live* (non-stale)
        claim exists right now; ``failure`` — the :meth:`failure` record.
        The submitter's polling loop calls this instead of two round trips
        per key.
        """
        ...

    def discard(self, key: str) -> None:
        """Drop a stored (e.g. corrupt) ack so the task can re-execute."""
        ...

    def reclaim(self) -> int:
        """Break stale leases (expired TTL / dead local pid); returns count."""
        ...

    def stats(self) -> dict:
        """Counters and live queue depths, for monitoring and tests."""
        ...


class DirectoryBroker:
    """The PR 4 on-disk queue layout, behind the :class:`Broker` protocol.

    One directory, four file kinds per task key: ``.task.json`` (pending
    envelope), ``.lease`` (exclusive claim, JSON with pid/worker/host/
    deadline), ``.ack.pkl`` (raw pickled result, written atomically), and
    ``.nack.json`` (retry count + last error).  Ack and lease files are the
    exact PR 4 formats, so stores written by the old ``QueueBackend`` replay
    under the broker and vice versa.

    Reclaim policy, per lease: an acked task's lease is simply swept; a
    lease with an expired ``deadline`` is broken; a lease *without* a
    deadline (a legacy claim, or mid-crash garbage) is broken unless its
    recorded pid is alive on this host.  A live pid with an unexpired
    deadline is always kept — that covers the recycled-pid case, where a
    SIGKILLed worker's pid was reused by an unrelated process: the impostor
    pid looks alive, but the lease still dies when its TTL runs out.

    Ownership, per mutation: ``ack``/``nack``/``heartbeat`` only touch a
    lease the caller still owns (recorded worker matches, or — for legacy
    worker-less leases — recorded pid is this process).  A worker whose
    lease was reclaimed and re-leased therefore cannot delete or rewrite
    the new holder's claim: its ack still lands (results are deterministic,
    so a double execution's duplicate ack is byte-identical and harmless)
    but the lease stays with the new holder; its nack becomes a no-op
    "lease lost" instead of a spurious retry that could poison the task at
    :data:`MAX_RETRIES`.
    """

    def __init__(self, root: str | Path, lease_ttl: float = DEFAULT_LEASE_TTL):
        self.root = Path(root)
        self.lease_ttl = lease_ttl
        self.host = socket.gethostname()
        #: Serializes lease read-modify-write cycles (heartbeat, ownership
        #: checks before release) against claim/release in this process.  The
        #: HTTP fabric funnels every lease mutation through the server's one
        #: DirectoryBroker, so in-process is the case that matters; two
        #: unrelated processes mutating one directory still have a small
        #: read-to-unlink window, which the ownership checks shrink from
        #: "any ack/nack clobbers any lease" to "a lost-lease race during
        #: the victim's own claim".
        self._mutex = threading.Lock()
        self.counters = {
            "submitted": 0,
            "leased": 0,
            "acked": 0,
            "nacked": 0,
            "reclaimed": 0,
        }

    def _count(self, name: str) -> None:
        """Bump an instance counter and mirror it into the obs registry."""
        self.counters[name] += 1
        metrics.counter(f"broker.{name}")

    # -- paths ----------------------------------------------------------------

    def _task_path(self, key: str) -> Path:
        return self.root / f"{check_key(key)}{TASK_SUFFIX}"

    def _lease_path(self, key: str) -> Path:
        from repro.engine.workqueue import LEASE_SUFFIX

        return self.root / f"{check_key(key)}{LEASE_SUFFIX}"

    def _ack_path(self, key: str) -> Path:
        from repro.engine.workqueue import ACK_SUFFIX

        return self.root / f"{check_key(key)}{ACK_SUFFIX}"

    def _nack_path(self, key: str) -> Path:
        return self.root / f"{check_key(key)}{NACK_SUFFIX}"

    # -- submit / results ------------------------------------------------------

    def submit(self, key: str, envelope: dict) -> bool:
        """Publish ``envelope`` under ``key`` unless already acked/pending."""
        check_key(key)
        if self._ack_path(key).exists() or self._task_path(key).exists():
            return False
        self.root.mkdir(parents=True, exist_ok=True)
        from repro.service import wire

        atomic_write_bytes(self._task_path(key), wire.canonical_json(envelope))
        self._count("submitted")
        return True

    def result(self, key: str) -> bytes | None:
        try:
            return self._ack_path(key).read_bytes()
        except OSError:
            return None

    def failure(self, key: str) -> dict | None:
        try:
            payload = json.loads(self._nack_path(key).read_text())
        except (OSError, json.JSONDecodeError, UnicodeDecodeError):
            return None
        if not isinstance(payload, dict):
            return None
        try:
            retries = int(payload.get("retries", 0))
        except (TypeError, ValueError):
            retries = 0
        return {"retries": retries, "error": str(payload.get("error", ""))}

    def discard(self, key: str) -> None:
        try:
            self._ack_path(key).unlink()
        except OSError:
            pass

    def statuses(self, keys: Iterable[str]) -> dict[str, dict]:
        """Batched submitter poll: ack/lease/failure state per key.

        ``leased`` is True only for a *live* claim (an unexpired TTL with no
        conclusive dead-pid evidence) — a stale lease left by a killed
        worker must not count as progress, or a submitter waiting on it
        would never hit its no-progress timeout.
        """
        out: dict[str, dict] = {}
        for key in keys:
            check_key(key)
            out[key] = {
                "acked": self._ack_path(key).exists(),
                "leased": self._lease_is_stale(key) is False,
                "failure": self.failure(key),
            }
        return out

    # -- leases ----------------------------------------------------------------

    def claim(self, key: str, worker: str | None = None) -> bool:
        """Atomically create the lease file, body and all.

        A hard-link of a pre-written temp file gives ``O_CREAT | O_EXCL``
        exclusivity *and* makes the body appear atomically — a concurrent
        ``reclaim`` can never observe a half-written (empty) lease and
        mistake a live claim for crash garbage.
        """
        import tempfile

        from repro.service import wire

        self.root.mkdir(parents=True, exist_ok=True)
        body = wire.lease_body(
            pid=os.getpid(),
            worker=worker,
            host=self.host,
            deadline=time.time() + self.lease_ttl,
        ).encode("utf-8")
        fd, tmp_name = tempfile.mkstemp(prefix=".claim-", dir=self.root)
        try:
            os.write(fd, body)
        finally:
            os.close(fd)
        try:
            os.link(tmp_name, self._lease_path(key))
        except FileExistsError:
            return False
        finally:
            os.unlink(tmp_name)
        return True

    def release(self, key: str) -> None:
        """Drop the lease file; tolerant of it already being gone."""
        with self._mutex:
            try:
                self._lease_path(key).unlink()
            except OSError:
                pass

    def lease_info(self, key: str) -> dict | None:
        """The parsed lease record for ``key``, or None if unleased."""
        from repro.service import wire

        try:
            return wire.parse_lease(
                self._lease_path(key).read_text(errors="replace")
            )
        except OSError:
            return None

    @staticmethod
    def _owns(parsed: dict, worker: str | None) -> bool:
        """Whether ``worker`` (or, legacy, this process) holds this lease."""
        if parsed["worker"] is not None:
            return parsed["worker"] == worker
        # Legacy worker-less lease: claimed in-process by a backend thread.
        return parsed["pid"] == os.getpid()

    def release_if_owner(self, key: str, worker: str | None) -> bool:
        """Drop the lease iff the caller still owns it; True if dropped."""
        with self._mutex:
            parsed = self.lease_info(key)
            if parsed is None or not self._owns(parsed, worker):
                return False
            try:
                self._lease_path(key).unlink()
            except OSError:
                return False
            return True

    def heartbeat(self, key: str, worker: str) -> bool:
        """Extend ``worker``'s lease on ``key``; False if lost or foreign."""
        from repro.service import wire

        lease = self._lease_path(key)
        with self._mutex:
            parsed = self.lease_info(key)
            if parsed is None or not self._owns(parsed, worker):
                return False
            # Rewrite-in-place (atomic replace) keeps the O_EXCL claim intact
            # for everyone else while pushing the deadline out.  The mutex
            # covers the read-check-write so a concurrent in-process
            # release + re-claim can't be overwritten with a stale record.
            atomic_write_bytes(
                lease,
                wire.lease_body(
                    pid=parsed["pid"] or os.getpid(),
                    worker=worker,
                    host=parsed["host"] or self.host,
                    deadline=time.time() + self.lease_ttl,
                ).encode("utf-8"),
            )
        self._touch_worker(worker)
        return True

    def _lease_is_stale(self, key: str) -> bool | None:
        """None: no lease. False: a live claim. True: break it."""
        from repro.engine.workqueue import _pid_alive
        from repro.service import wire

        lease = self._lease_path(key)
        try:
            parsed = wire.parse_lease(lease.read_text(errors="replace"))
        except FileNotFoundError:
            return None
        except OSError:
            return True
        if parsed["deadline"] is not None:
            if parsed["deadline"] <= time.time():
                return True
            # Unexpired TTL: trust it even when the pid check is available —
            # a recycled pid must not make a dead worker look alive forever,
            # and a live worker heartbeats before the deadline anyway.  But a
            # *local, dead* pid is conclusive: break early, don't wait out
            # the TTL.
            if (
                parsed["host"] in (None, self.host)
                and parsed["pid"] > 0
                and not _pid_alive(parsed["pid"])
            ):
                return True
            return False
        # Legacy lease (no deadline): the PR 4 rule — keep iff pid is alive.
        if parsed["host"] not in (None, self.host):
            return False  # foreign host, no TTL: unknowable, keep it
        return not (parsed["pid"] > 0 and _pid_alive(parsed["pid"]))

    def break_if_stale(self, key: str) -> bool:
        """Apply the reclaim policy to one key; True if a lease was broken."""
        if self._ack_path(key).exists():
            self.release(key)
            return False
        if self._lease_is_stale(key):
            self.release(key)
            self._count("reclaimed")
            return True
        return False

    def reclaim(self) -> int:
        """Sweep every lease in the directory; returns how many broke."""
        from repro.engine.workqueue import LEASE_SUFFIX

        broken = 0
        try:
            leases = sorted(self.root.glob(f"*{LEASE_SUFFIX}"))
        except OSError:
            return 0
        for lease in leases:
            key = lease.name[: -len(LEASE_SUFFIX)]
            if _KEY_RE.fullmatch(key) and self.break_if_stale(key):
                broken += 1
        return broken

    # -- the fleet census ---------------------------------------------------------

    def _worker_path(self, worker: str) -> Path:
        safe = _WORKER_SAFE_RE.sub("_", str(worker))[:120] or "worker"
        return self.root / WORKERS_DIRNAME / f"{safe}.json"

    def register_worker(self, record: dict) -> None:
        """Create or refresh one worker's census record.

        ``record`` must carry ``worker`` (the id); anything else — host,
        pid, started_unix, current task, executed/failed counts,
        busy_seconds, a metrics snapshot — is merged over what is already
        on file.  ``last_seen`` is stamped here, ``registered_unix`` is
        preserved from the first registration, so the record answers both
        "is it alive?" and "how long has it been around?".
        """
        worker = str(record.get("worker", "")).strip()
        if not worker:
            raise ValueError("worker census record needs a non-empty 'worker' id")
        path = self._worker_path(worker)
        now = time.time()
        merged: dict = {"worker": worker, "registered_unix": now}
        try:
            existing = json.loads(path.read_text())
            if isinstance(existing, dict):
                merged.update(existing)
        except (OSError, json.JSONDecodeError, UnicodeDecodeError):
            pass
        merged.update(record)
        merged["worker"] = worker
        merged["last_seen"] = now
        path.parent.mkdir(parents=True, exist_ok=True)
        atomic_write_bytes(
            path, json.dumps(merged, sort_keys=True, default=str).encode("utf-8")
        )

    def _touch_worker(self, worker: str | None) -> None:
        """Refresh ``last_seen`` on an existing census record (no-op else).

        Heartbeats route through here: a worker busy on one long task never
        posts a full census update, but its lease extensions keep it out of
        the stale set.
        """
        if not worker:
            return
        path = self._worker_path(worker)
        try:
            record = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError, UnicodeDecodeError):
            return
        if not isinstance(record, dict):
            return
        record["last_seen"] = time.time()
        atomic_write_bytes(
            path, json.dumps(record, sort_keys=True, default=str).encode("utf-8")
        )

    def workers(self, max_age: float | None = None) -> list[dict]:
        """The live fleet: census records seen within ``max_age`` seconds.

        ``max_age=None`` means :data:`STALE_AFTER_TTLS` lease TTLs — a
        worker that missed that many heartbeat windows is presumed dead and
        dropped from the listing (its record stays on disk, so a comeback
        under the same id resurrects it).  Pass ``max_age <= 0`` to list
        everything ever registered.
        """
        if max_age is None:
            max_age = STALE_AFTER_TTLS * self.lease_ttl
        cutoff = time.time() - max_age if max_age > 0 else None
        out: list[dict] = []
        try:
            paths = sorted((self.root / WORKERS_DIRNAME).glob("*.json"))
        except OSError:
            return out
        for path in paths:
            try:
                record = json.loads(path.read_text())
            except (OSError, json.JSONDecodeError, UnicodeDecodeError):
                continue
            if not isinstance(record, dict) or not record.get("worker"):
                continue
            try:
                last_seen = float(record.get("last_seen", 0.0))
            except (TypeError, ValueError):
                last_seen = 0.0
            if cutoff is not None and last_seen < cutoff:
                continue
            out.append(record)
        return out

    # -- the worker's pull loop --------------------------------------------------

    def lease(self, worker: str) -> tuple[str, dict] | None:
        """Reclaim, then claim the first leasable pending task."""
        # First contact registers the worker in the census — even a worker
        # that only ever polls an empty queue shows up in the fleet view.
        if worker and not self._worker_path(worker).exists():
            try:
                self.register_worker({"worker": worker})
            except (OSError, ValueError):
                pass
        self.reclaim()
        try:
            pending = sorted(self.root.glob(f"*{TASK_SUFFIX}"))
        except OSError:
            return None
        for path in pending:
            key = path.name[: -len(TASK_SUFFIX)]
            if not _KEY_RE.fullmatch(key):
                continue
            if self._ack_path(key).exists():
                # Completed while still listed: sweep the stale envelope.
                try:
                    path.unlink()
                except OSError:
                    pass
                continue
            record = self.failure(key)
            if record is not None and record["retries"] >= MAX_RETRIES:
                continue  # poisoned task: leave the evidence, stop re-leasing
            if self._lease_path(key).exists() or not self.claim(key, worker):
                continue
            try:
                envelope = json.loads(path.read_text())
            except (OSError, json.JSONDecodeError, UnicodeDecodeError):
                self.release(key)
                continue
            self._count("leased")
            return key, envelope
        return None

    # -- completion --------------------------------------------------------------

    def ack(self, key: str, payload: bytes, worker: str | None = None) -> None:
        """Atomically store the result, then clear lease/envelope/failure.

        The result and the envelope/failure sweeps are unconditional — tasks
        are pure, so even an ack from a worker whose lease was reclaimed is
        byte-identical to the rightful holder's and safe to store.  The
        *lease* is only dropped if the caller still owns it: a reclaimed
        worker must not delete the new holder's live claim (the new holder's
        own ack, or the acked-lease sweep in :meth:`break_if_stale`, clears
        it instead).
        """
        atomic_write_bytes(self._ack_path(key), payload)
        self._count("acked")
        self.release_if_owner(key, worker)
        for path in (self._task_path(key), self._nack_path(key)):
            try:
                path.unlink()
            except OSError:
                pass

    def nack(self, key: str, worker: str | None = None, error: str | None = None) -> int:
        """Record one failed execution and release the lease.

        Ownership-gated: if the caller's lease was reclaimed and possibly
        re-leased, its failure report is dropped — the rightful holder's
        execution is the one that counts, and a zombie's nack must not burn
        a retry (three zombies would poison the task at
        :data:`MAX_RETRIES`).  Returns the retry count on record either way.
        """
        record = self.failure(key) or {"retries": 0, "error": ""}
        if not self.release_if_owner(key, worker):
            return record["retries"]  # lease lost: not our failure to record
        retries = record["retries"] + 1
        atomic_write_bytes(
            self._nack_path(key),
            json.dumps(
                {"retries": retries, "error": error or record["error"]},
                sort_keys=True,
            ).encode("utf-8"),
        )
        self._count("nacked")
        return retries

    def stats(self) -> dict:
        """Counters plus a live census of the directory."""
        from repro.engine.workqueue import ACK_SUFFIX, LEASE_SUFFIX

        def count(suffix: str) -> int:
            try:
                return sum(1 for _ in self.root.glob(f"*{suffix}"))
            except OSError:
                return 0

        return {
            **self.counters,
            "pending": count(TASK_SUFFIX),
            "leases": count(LEASE_SUFFIX),
            "acks": count(ACK_SUFFIX),
            "lease_ttl": self.lease_ttl,
            "workers": self.workers(),
        }


@contextlib.contextmanager
def lease_heartbeat(
    broker: Broker, key: str, worker: str, interval: float
) -> Iterator[threading.Event]:
    """Extend ``worker``'s lease on ``key`` every ``interval`` seconds.

    Wrap the execution of one leased task; the background thread stops when
    the ``with`` block exits, when a beat reports the lease lost (reclaimed
    or foreign — keep computing, the ack is still valid, but stop fighting
    for the claim), or on transport loss (the TTL decides from there).  The
    yielded event is set iff the lease was lost mid-flight, for callers
    that want to log it.
    """
    done = threading.Event()
    lost = threading.Event()

    def beat() -> None:
        while not done.wait(interval):
            try:
                if not broker.heartbeat(key, worker):
                    lost.set()
                    return
            except Exception:
                return

    thread = threading.Thread(target=beat, daemon=True)
    thread.start()
    try:
        yield lost
    finally:
        done.set()
        thread.join()


class HttpBroker:
    """The :class:`Broker` protocol over ``/v1/broker/*`` (stdlib only).

    Thin and stateless: one short-lived connection per call (the service
    closes connections after each response anyway).  Transport failures
    raise :class:`~repro.errors.ServiceError`; the server's single-line
    error bodies pass through verbatim.
    """

    def __init__(self, base_url: str, timeout: float = 60.0):
        from urllib.parse import urlsplit

        split = urlsplit(base_url if "//" in base_url else f"http://{base_url}")
        if split.scheme not in ("", "http"):
            raise ServiceError(
                f"unsupported broker URL scheme {split.scheme!r} (use http://)"
            )
        if not split.hostname:
            raise ServiceError(f"cannot parse broker URL {base_url!r}")
        self.host = split.hostname
        self.port = split.port or 80
        self.timeout = timeout
        self.base_url = f"http://{self.host}:{self.port}"

    def _request(
        self, method: str, path: str, body: dict | None = None
    ) -> tuple[int, bytes]:
        from http.client import HTTPConnection, HTTPException

        connection = HTTPConnection(self.host, self.port, timeout=self.timeout)
        try:
            payload = None
            headers = {}
            if body is not None:
                payload = json.dumps(body).encode("utf-8")
                headers["Content-Type"] = "application/json"
            connection.request(method, path, body=payload, headers=headers)
            response = connection.getresponse()
            return response.status, response.read()
        except (OSError, HTTPException) as exc:
            raise ServiceError(
                f"cannot reach broker at {self.base_url} ({exc})"
            ) from exc
        finally:
            connection.close()

    def _json(self, method: str, path: str, body: dict | None = None) -> dict:
        status, data = self._request(method, path, body)
        if status >= 400:
            try:
                message = str(json.loads(data)["error"])
            except (json.JSONDecodeError, KeyError, TypeError, UnicodeDecodeError):
                message = f"broker returned HTTP {status}"
            raise ServiceError(message)
        try:
            return json.loads(data) if data else {}
        except json.JSONDecodeError as exc:
            raise ServiceError(
                f"malformed response from broker at {self.base_url} ({exc})"
            ) from exc

    def submit(self, key: str, envelope: dict) -> bool:
        reply = self._json(
            "POST", "/v1/broker/tasks", {"key": check_key(key), "envelope": envelope}
        )
        return bool(reply.get("submitted"))

    def lease(self, worker: str) -> tuple[str, dict] | None:
        reply = self._json("POST", "/v1/broker/lease", {"worker": worker})
        task = reply.get("task")
        if not task:
            return None
        return check_key(task["key"]), task["envelope"]

    def ack(self, key: str, payload: bytes, worker: str | None = None) -> None:
        from repro.service import wire

        self._json(
            "POST",
            "/v1/broker/ack",
            {
                "key": check_key(key),
                "worker": worker,
                "result_b64": wire.encode_result_b64(payload),
            },
        )

    def nack(self, key: str, worker: str | None = None, error: str | None = None) -> int:
        reply = self._json(
            "POST",
            "/v1/broker/nack",
            {"key": check_key(key), "worker": worker, "error": error},
        )
        return int(reply.get("retries", 0))

    def heartbeat(self, key: str, worker: str) -> bool:
        reply = self._json(
            "POST", "/v1/broker/heartbeat", {"key": check_key(key), "worker": worker}
        )
        return bool(reply.get("ok"))

    def result(self, key: str) -> bytes | None:
        status, data = self._request("GET", f"/v1/broker/results/{check_key(key)}")
        if status == 404:
            return None
        if status >= 400:
            raise ServiceError(f"broker returned HTTP {status} for result {key}")
        return data

    def failure(self, key: str) -> dict | None:
        reply = self._json("GET", f"/v1/broker/tasks/{check_key(key)}")
        failure = reply.get("failure")
        if not failure:
            return None
        return {
            "retries": int(failure.get("retries", 0)),
            "error": str(failure.get("error", "")),
        }

    def statuses(self, keys: Iterable[str]) -> dict[str, dict]:
        """One POST per ~1000 keys instead of two GETs per key."""
        out: dict[str, dict] = {}
        chunk = [check_key(key) for key in keys]
        for start in range(0, len(chunk), 1000):
            reply = self._json(
                "POST", "/v1/broker/status", {"keys": chunk[start : start + 1000]}
            )
            statuses = reply.get("statuses")
            if not isinstance(statuses, dict):
                raise ServiceError(
                    f"malformed status reply from broker at {self.base_url}"
                )
            for key, record in statuses.items():
                out[check_key(key)] = {
                    "acked": bool(record.get("acked")),
                    "leased": bool(record.get("leased")),
                    "failure": record.get("failure"),
                }
        return out

    def discard(self, key: str) -> None:
        self._json("POST", "/v1/broker/discard", {"key": check_key(key)})

    def reclaim(self) -> int:
        return int(self._json("POST", "/v1/broker/reclaim").get("reclaimed", 0))

    def register_worker(self, record: dict) -> None:
        self._json("POST", "/v1/broker/workers", {"record": record})

    def workers(self, max_age: float | None = None) -> list[dict]:
        reply = self._json("GET", "/v1/broker/workers")
        workers = reply.get("workers")
        return [w for w in workers if isinstance(w, dict)] if isinstance(workers, list) else []

    def stats(self) -> dict:
        return self._json("GET", "/v1/broker/stats")


class BrokerBackend:
    """``BACKENDS['broker']``: dispatch ``map`` through a task broker.

    The inversion of every other backend: instead of *executing* tasks, it
    *publishes* them (content-addressed envelopes via
    :func:`repro.service.wire.encode_task`) and polls the broker for acks,
    while ``repro-adc worker`` processes — anywhere that can reach the
    broker — do the executing.  Acked results replay exactly like the work
    queue's, so a resumed or re-sharded campaign only ships the unfinished
    tail.  Tasks with no stable key (their digest raised) cannot ship and
    run locally, preserving the backend contract.

    Construct with ``broker_url=`` (an :class:`HttpBroker`) or ``queue_dir=``
    (a :class:`DirectoryBroker` — the in-server dispatch path, where workers
    ack over HTTP into the same directory the backend polls).
    """

    name = "broker"

    def __init__(
        self,
        broker: Broker | None = None,
        *,
        broker_url: str | None = None,
        queue_dir: str | Path | None = None,
        max_workers: int | None = None,  # registry parity; workers are remote
        chunksize: int = 1,  # registry parity; the broker doesn't batch
        lease_ttl: float = DEFAULT_LEASE_TTL,
        poll_interval: float = 0.05,
        wait_timeout: float | None = DEFAULT_WAIT_TIMEOUT,
    ):
        if broker is None:
            if broker_url is not None:
                broker = HttpBroker(broker_url)
            elif queue_dir is not None:
                broker = DirectoryBroker(queue_dir, lease_ttl=lease_ttl)
            else:
                raise SpecificationError(
                    "the broker backend needs a broker URL (--broker-url) "
                    "or a queue directory (--queue-dir)"
                )
        self.broker = broker
        self.poll_interval = poll_interval
        #: Give up if nothing moves — no ack, no failure, no *live* lease —
        #: for this many seconds (None: wait forever).  Guards against a
        #: fleet of zero workers; a leased task under execution counts as
        #: progress, so slow tasks don't trip it.
        self.wait_timeout = wait_timeout
        #: Tasks served from an existing ack instead of dispatching.
        self.replayed = 0
        #: Tasks published to the broker by this backend.
        self.dispatched = 0

    def _poll_statuses(self, keys: list[str]) -> dict[str, dict]:
        """Batched ack/lease/failure poll, with a fallback for brokers
        that predate :meth:`Broker.statuses` (two calls per key)."""
        statuses = getattr(self.broker, "statuses", None)
        if callable(statuses):
            return statuses(keys)
        out = {}
        for key in keys:
            out[key] = {
                "acked": self.broker.result(key) is not None,
                "leased": False,
                "failure": self.broker.failure(key),
            }
        return out

    def _take_result(self, key: str) -> tuple[bool, Any]:
        """(done, value) for one key; discards + leaves pending if corrupt."""
        from repro.service import wire

        payload = self.broker.result(key)
        if payload is None:
            return False, None
        try:
            return True, wire.decode_result(payload)
        except Exception:
            # An unreadable ack degrades to a retry, exactly like the work
            # queue: drop it and let a worker re-execute the task.
            self.broker.discard(key)
            return False, None

    def map(self, fn: Callable[[T], R], tasks: Iterable[T]) -> list[R]:
        """Publish every task, poll for acks, return results in task order."""
        from repro.engine.workqueue import task_key
        from repro.service import wire

        task_list = list(tasks)
        if not task_list:
            return []
        keys = [task_key(fn, task) for task in task_list]

        results: dict[str, Any] = {}
        outstanding: dict[str, T] = {}
        unkeyed: list[int] = []
        for i, (key, task) in enumerate(zip(keys, task_list)):
            if key is None:
                unkeyed.append(i)
                continue
            if key in results or key in outstanding:
                continue
            done, value = self._take_result(key)
            if done:
                self.replayed += 1
                results[key] = value
            else:
                outstanding[key] = task

        for key, task in outstanding.items():
            if self.broker.submit(key, wire.encode_task(fn, task)):
                self.dispatched += 1

        last_progress = time.monotonic()
        delay = self.poll_interval
        while outstanding:
            # One batched status poll for every outstanding key (a single
            # HTTP round trip on HttpBroker); result *bytes* are fetched
            # only for keys the poll reports acked.
            statuses = self._poll_statuses(list(outstanding))
            completed = []
            live_leases = 0
            for key in outstanding:
                status = statuses.get(key, {})
                if status.get("acked"):
                    done, value = self._take_result(key)
                    if done:
                        results[key] = value
                        completed.append(key)
                        continue
                if status.get("leased"):
                    live_leases += 1
                record = status.get("failure")
                if record is not None and record["retries"] >= MAX_RETRIES:
                    raise RuntimeError(
                        f"broker task {key[:12]} failed {record['retries']} "
                        f"time(s): {record['error']}"
                    )
            for key in completed:
                del outstanding[key]
            if completed or live_leases:
                # A live lease is a worker mid-task: that is progress even
                # when no ack lands this poll, so slow tasks never trip the
                # no-progress timeout — only a genuinely idle queue does.
                last_progress = time.monotonic()
                delay = self.poll_interval
            elif (
                self.wait_timeout is not None
                and time.monotonic() - last_progress > self.wait_timeout
            ):
                raise RuntimeError(
                    f"no broker progress for {self.wait_timeout:.0f}s with "
                    f"{len(outstanding)} task(s) outstanding — are any "
                    "repro-adc workers attached?"
                )
            else:
                # Nothing moved: back the poll off (capped at ~1 s) so an
                # idle wait costs the server a couple of requests a second,
                # not hundreds.
                delay = min(delay * 1.5, max(self.poll_interval, 1.0))
            if outstanding:
                time.sleep(delay)

        # Unkeyed tasks cannot ship (no stable identity): run them here.
        unkeyed_results = {i: fn(task_list[i]) for i in unkeyed}
        return [
            unkeyed_results[i] if key is None else results[key]
            for i, key in enumerate(keys)
        ]

    def close(self) -> None:
        """Nothing pooled locally; the broker's state is its own."""
        return None

    def __enter__(self) -> "BrokerBackend":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


__all__ = [
    "Broker",
    "BrokerBackend",
    "DEFAULT_LEASE_TTL",
    "DEFAULT_WAIT_TIMEOUT",
    "DirectoryBroker",
    "HttpBroker",
    "MAX_RETRIES",
    "NACK_SUFFIX",
    "STALE_AFTER_TTLS",
    "TASK_SUFFIX",
    "WORKERS_DIRNAME",
    "check_key",
    "lease_heartbeat",
]
