"""Content-addressed persistence of synthesis results.

A synthesized block is fully determined by its spec, the technology, the
search budget/seed, whether the transient verifier ran, and — for
retargeted blocks — the donor design it was warm-started from.  Hashing all
of that yields a *content fingerprint*: two runs that would synthesize the
same block map to the same hex digest, so the second run can load the first
run's result from disk instead of searching again.  Rate sweeps,
designer-rule extraction and CI reruns all hit this cache.

The module is deliberately free of flow imports: it hashes any dataclass
tree (specs, technologies, sizings) structurally, and stores/loads pickled
results in a directory with atomic writes.  Corrupt or unreadable entries
degrade to cache misses, never to errors.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import pickle
import tempfile
from pathlib import Path
from typing import Any

#: Bump when the on-disk format or the fingerprint payload changes shape;
#: old entries then simply stop matching.
FORMAT_VERSION = 1

#: Suffix of cache entries.
ENTRY_SUFFIX = ".pkl"


def _canonical(value: Any) -> Any:
    """Recursively convert a value into a JSON-stable structure.

    Floats are rendered with ``float.hex`` so the digest is exact (no
    decimal rounding); dataclasses become name-tagged field dicts; tuples
    become lists.  Unknown objects fall back to ``repr`` — good enough for
    the enum-like leaves that appear in specs.
    """
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        fields = {
            f.name: _canonical(getattr(value, f.name))
            for f in dataclasses.fields(value)
        }
        return {"__dataclass__": type(value).__name__, **fields}
    if isinstance(value, float):
        return value.hex()
    if isinstance(value, (list, tuple)):
        return [_canonical(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _canonical(v) for k, v in sorted(value.items())}
    if isinstance(value, (str, int, bool)) or value is None:
        return value
    if isinstance(value, Path):
        return str(value)
    return repr(value)


def digest(payload: Any) -> str:
    """SHA-256 hex digest of the canonicalized payload."""
    text = json.dumps(_canonical(payload), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def sizing_digest(result: Any) -> str:
    """Digest identifying one *synthesized design* (spec + final sizing).

    Used as the donor token in retarget fingerprints: a retargeted block
    depends on the donor's actual sizing, not just the donor's spec, so the
    chain digest must change whenever the donor design does.
    """
    return digest({"spec": result.spec, "sizing": result.final.sizing})


def block_fingerprint(
    mdac: Any,
    tech: Any,
    *,
    budget: int,
    seed: int,
    verify_transient: bool,
    donor: Any = None,
    retarget_budget: int = 0,
    retarget_seed: int = 0,
    dc_kernel: str = "chained",
) -> str:
    """Content fingerprint of one synthesis (cold or retargeted).

    ``donor`` is the resolved donor :class:`~repro.synth.result.SynthesisResult`
    for retargets, or ``None`` for cold syntheses.  ``dc_kernel`` changes
    results (lockstep cold starts vs the chained warm walk) so it enters
    the fingerprint — but only when non-default, so every entry persisted
    before the knob existed keeps serving default runs.
    """
    payload: dict[str, Any] = {
        "version": FORMAT_VERSION,
        "kind": "retarget" if donor is not None else "cold",
        "spec": mdac,
        "tech": tech,
        "verify_transient": bool(verify_transient),
    }
    if dc_kernel != "chained":
        payload["dc_kernel"] = dc_kernel
    if donor is None:
        payload["budget"] = budget
        payload["seed"] = seed
    else:
        payload["retarget_budget"] = retarget_budget
        payload["retarget_seed"] = retarget_seed
        payload["donor"] = sizing_digest(donor)
    return digest(payload)


def atomic_write_bytes(path: str | Path, payload: bytes) -> Path:
    """Write ``payload`` to ``path`` via a same-directory temp + rename.

    The rename is atomic on POSIX, so readers only ever observe the file
    absent or complete — the primitive under every durable artifact here
    (cache entries, campaign manifests/checkpoints, work-queue acks).
    Parent directories are created as needed.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(payload)
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    return path


def entry_path(cache_dir: str | Path, fingerprint: str) -> Path:
    """Path of the cache entry for a fingerprint."""
    return Path(cache_dir) / f"{fingerprint}{ENTRY_SUFFIX}"


def store_result(cache_dir: str | Path, fingerprint: str, result: Any) -> Path:
    """Atomically pickle a result under its fingerprint; returns the path."""
    directory = Path(cache_dir)
    directory.mkdir(parents=True, exist_ok=True)
    final = entry_path(directory, fingerprint)
    fd, tmp_name = tempfile.mkstemp(dir=directory, suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as handle:
            pickle.dump(result, handle, protocol=pickle.HIGHEST_PROTOCOL)
        os.replace(tmp_name, final)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    return final


def load_result(cache_dir: str | Path, fingerprint: str) -> Any | None:
    """Load a pickled result, or ``None`` on miss/corruption."""
    path = entry_path(cache_dir, fingerprint)
    try:
        with open(path, "rb") as handle:
            return pickle.load(handle)
    except FileNotFoundError:
        return None
    except (
        OSError,
        pickle.UnpicklingError,
        EOFError,
        AttributeError,
        ValueError,
        ImportError,  # a pickled class moved between code versions
    ):
        # Unreadable entries are treated as misses; the block is simply
        # re-synthesized and the entry rewritten.
        return None
