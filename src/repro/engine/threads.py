"""BLAS/OpenMP thread pinning for pooled execution backends.

The evaluation kernels solve many *small* dense systems (MNA matrices are
~10x10); at that size a threaded BLAS loses more to fork/join overhead
than it gains, and a pool of worker processes each spinning its own
OpenMP/OpenBLAS thread team oversubscribes the machine — N workers x M
BLAS threads on N cores thrashes every cache level.  The backends
therefore pin the solver libraries to one thread per worker.

Pinning is environment-variable based and *best effort*: OpenBLAS and
OpenMP read ``OPENBLAS_NUM_THREADS`` / ``OMP_NUM_THREADS`` once, when the
library loads.  Under the default ``fork`` start method the parent pins
its environment before creating the pool, so workers inherit the values;
the same function doubles as the pool's worker initializer, which covers
``spawn``-style platforms where each worker imports NumPy fresh.  Values
the user already exported always win — an explicit
``OMP_NUM_THREADS=8`` is respected, not overwritten.

Benchmarks record the effective values (see
:func:`effective_blas_threads`) in their JSON ``config`` block so a
regression report states the threading regime it measured under.
"""

from __future__ import annotations

import os

#: Environment variables the solver libraries honour, in report order.
THREAD_ENV_VARS = ("OMP_NUM_THREADS", "OPENBLAS_NUM_THREADS")


def pin_blas_threads(threads: int = 1) -> dict[str, str]:
    """Pin the BLAS/OpenMP thread count of this process, returning it.

    Sets every variable in :data:`THREAD_ENV_VARS` to ``threads`` unless
    the user already exported a value (explicit settings win).  Returns
    the effective mapping after pinning.  Module-level and
    argument-defaulted so :class:`concurrent.futures.ProcessPoolExecutor`
    can pickle it directly as a worker ``initializer``.
    """
    effective: dict[str, str] = {}
    for var in THREAD_ENV_VARS:
        value = os.environ.get(var)
        if value is None or not value.strip():
            value = str(threads)
            os.environ[var] = value
        effective[var] = value
    return effective


def effective_blas_threads() -> dict[str, str | None]:
    """Current values of the pinned variables (``None`` = unset)."""
    return {var: os.environ.get(var) for var in THREAD_ENV_VARS}


__all__ = ["THREAD_ENV_VARS", "effective_blas_threads", "pin_blas_threads"]
