"""Deduplicated, wave-ordered scheduling of MDAC block synthesis.

The paper's economy argument is that block reuse collapses the synthesis
workload: the seven 13-bit candidates need 27 stage instances but only ~11
distinct MDAC specs.  The flow used to realize this with an inline
``cache.get`` loop — correct, but strictly serial and invisible to any
executor.  This module lifts that loop into an explicit two-phase form:

1. :func:`plan_synthesis` collects every :class:`~repro.specs.stage.MdacSpec`
   across all candidates, dedupes them by ``reuse_key`` in first-encounter
   order, assigns each new block its warm-start donor (the nearest
   already-planned block by relative gm distance — exactly the nearest-donor
   rule ``BlockCache`` applies serially), and topologically layers the
   resulting donor tree into *waves*: wave 0 holds cold syntheses and blocks
   donated by pre-existing cache entries, wave ``n+1`` holds retargets whose
   donor resolves in wave ``n``.
2. :func:`execute_plan` walks the waves in order and dispatches each wave's
   jobs through an :class:`~repro.engine.backend.ExecutionBackend` — blocks
   within a wave are independent, so they size in parallel.  Before
   dispatching, each block is offered to the cache's persistent layer by
   content fingerprint; hits skip synthesis entirely.

Because the plan (donor assignment, budgets, seeds) is fixed before any
execution happens, a parallel run synthesizes exactly the blocks a serial
run would, from exactly the same warm starts — so candidate rankings are
backend-independent.

Plans can additionally carry an *external donor pool* — already-sized
blocks from other system specs (a campaign's earlier scenarios).  Pool
donors seed wave-0 retargets but never satisfy a reuse key, and a
pool-donated block whose warm-started search misses feasibility is
re-synthesized cold in the same wave (deterministic escalation), so batch
reuse can only add feasibility, never remove it.  See
:mod:`repro.campaign.runner` and ``docs/engine.md``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Mapping, Sequence

from repro.engine.backend import ExecutionBackend
from repro.engine.persist import block_fingerprint, sizing_digest
from repro.obs import metrics
from repro.obs.trace import span
from repro.specs.stage import MdacSpec
from repro.synth.result import SynthesisResult
from repro.synth.retarget import retarget_mdac
from repro.synth.synthesis import synthesize_mdac
from repro.tech.process import Technology

if TYPE_CHECKING:  # avoid an engine -> flow import at runtime
    from repro.flow.cache import BlockCache

#: reuse_key type alias: (stage_bits, input_accuracy_bits).
ReuseKey = tuple[int, int]


@dataclass(frozen=True)
class PlanNode:
    """One block to synthesize: its spec plus its planned warm start."""

    #: Position in the plan (first-encounter order across candidates).
    index: int
    key: ReuseKey
    spec: MdacSpec
    #: Index of the donor node within this plan, for in-plan retargets.
    donor_index: int | None
    #: Reuse key of a pre-existing cache entry acting as donor, if any.
    donor_existing: ReuseKey | None
    #: Topological layer: every donor lives in a strictly earlier wave.
    wave: int
    #: Index into :attr:`SynthesisPlan.donors` when the warm start comes
    #: from an external donor pool (e.g. blocks synthesized by earlier
    #: scenarios of a campaign), ``None`` otherwise.
    donor_pool_index: int | None = None

    @property
    def is_cold(self) -> bool:
        """True when the block synthesizes without a warm start."""
        return (
            self.donor_index is None
            and self.donor_existing is None
            and self.donor_pool_index is None
        )


@dataclass(frozen=True)
class SynthesisPlan:
    """The full deduplicated schedule for one optimization run."""

    nodes: tuple[PlanNode, ...]
    #: Node indices grouped by wave, wave 0 first.
    waves: tuple[tuple[int, ...], ...]
    #: Total stage instances the nodes cover (before deduplication).
    total_instances: int
    #: External warm-start donors referenced by ``donor_pool_index``.  These
    #: never satisfy a reuse key — they only seed retargets — so a plan with
    #: donors still synthesizes every unique spec it was handed.
    donors: tuple[SynthesisResult, ...] = ()

    @property
    def unique_blocks(self) -> int:
        """Distinct MDAC specs this plan synthesizes."""
        return len(self.nodes)

    @property
    def max_wave_width(self) -> int:
        """Largest number of independent syntheses in any wave."""
        return max((len(w) for w in self.waves), default=0)

    @property
    def pool_donated(self) -> int:
        """Blocks warm-started from the external donor pool."""
        return sum(1 for n in self.nodes if n.donor_pool_index is not None)


@dataclass(frozen=True)
class SynthesisJob:
    """A picklable unit of work for one backend dispatch."""

    spec: MdacSpec
    tech: Technology
    budget: int
    seed: int
    verify_transient: bool
    #: Resolved donor design for retargets; ``None`` synthesizes cold.
    donor: SynthesisResult | None = None
    retarget_budget: int = 80
    retarget_seed: int = 7
    #: Equation-evaluation kernel ('compiled'/'legacy') and speculative
    #: batch depth (negative = auto: resolved from ``dc_kernel`` inside
    #: ``synthesize_mdac``).  Pure performance knobs: results (and
    #: therefore block fingerprints) are identical across them.
    eval_kernel: str = "compiled"
    eval_speculation: int = -1
    #: On-disk compiled-template store directory (see
    #: :class:`repro.analysis.template.TemplateStore`) so pool/queue
    #: workers load stamp programs instead of recompiling them.  A pure
    #: performance knob, excluded from :meth:`queue_payload` like the
    #: kernel selectors above.
    template_dir: str | None = None
    #: DC Newton kernel ('chained'/'batched').  *Not* a pure performance
    #: knob: the lockstep kernel's cold-start trajectories differ from the
    #: warm chain, so it enters :meth:`queue_payload` (and the block
    #: fingerprint) whenever it departs from the default.
    dc_kernel: str = "chained"

    def queue_payload(self) -> dict[str, Any]:
        """Stable identity for the work-queue/broker ack files.

        Delegates to :func:`repro.service.wire.synthesis_task_payload`, the
        one wire module — see its docstring for the byte-stability contract
        (which fields are excluded and why).  Imported lazily because this
        module loads with the ``repro`` package and wire is a service-layer
        leaf.
        """
        from repro.service.wire import synthesis_task_payload

        return synthesis_task_payload(self)


def run_synthesis_job(job: SynthesisJob) -> SynthesisResult:
    """Execute one job — the process-pool entry point.

    Module-level so :class:`~repro.engine.backend.ProcessPoolBackend` can
    pickle a reference to it.
    """
    start = time.perf_counter()
    with span(
        "synth.job",
        stage_bits=job.spec.stage_bits,
        accuracy_bits=job.spec.input_accuracy_bits,
        retarget=job.donor is not None,
    ):
        metrics.counter("scheduler.job_executions")
        if job.donor is None:
            result = synthesize_mdac(
                job.spec,
                job.tech,
                budget=job.budget,
                seed=job.seed,
                verify_transient=job.verify_transient,
                kernel=job.eval_kernel,
                speculation=job.eval_speculation,
                template_store=job.template_dir,
                dc_kernel=job.dc_kernel,
            )
        else:
            result = retarget_mdac(
                job.donor,
                job.spec,
                job.tech,
                budget=job.retarget_budget,
                seed=job.retarget_seed,
                verify_transient=job.verify_transient,
                kernel=job.eval_kernel,
                speculation=job.eval_speculation,
                template_store=job.template_dir,
                dc_kernel=job.dc_kernel,
            )
    metrics.observe(
        "scheduler.job_seconds" if job.donor is None else "scheduler.retarget_seconds",
        time.perf_counter() - start,
    )
    # Pool workers accumulate metrics in their own process; rewriting the
    # cumulative spool snapshot after every job is what lets the campaign
    # runner fold worker-side counters into the store's metrics.json.
    metrics.write_spool_snapshot()
    return result


def _relative_gm_distance(donor_spec: MdacSpec, target: MdacSpec) -> float:
    """The nearest-donor metric ``BlockCache`` uses, spec-to-spec."""
    return abs(donor_spec.gm_required - target.gm_required) / target.gm_required


def plan_synthesis(
    specs: Sequence[MdacSpec],
    existing: Mapping[ReuseKey, SynthesisResult] | None = None,
    donors: Sequence[SynthesisResult] = (),
) -> SynthesisPlan:
    """Build the deduplicated wave schedule for a batch of stage specs.

    ``specs`` is every MDAC spec of every candidate, in candidate order —
    the exact sequence the legacy serial loop would feed ``cache.get``.
    ``existing`` holds results already in the cache; their specs join the
    donor pool at depth 0 and are never re-synthesized.  ``donors`` is an
    *external* donor pool — already-sized blocks from outside this run
    (typically earlier scenarios of a campaign) that may warm-start new
    blocks but never satisfy a reuse key: unlike ``existing`` entries they
    are not valid results for this run's specs, only good starting points.

    Donor assignment replays the serial semantics: the i-th *new* block's
    donor is the nearest (by relative gm distance) among the external pool,
    all pre-existing results, and the new blocks planned before it, in that
    order — including tie-breaks, since ``min`` keeps the first minimum in
    both code paths.  With an empty ``donors`` sequence the plan is
    identical to the pre-campaign scheduler's.
    """
    existing = existing or {}
    donor_pool = tuple(donors)

    unique: list[MdacSpec] = []
    seen: set[ReuseKey] = set(existing)
    for spec in specs:
        if spec.reuse_key not in seen:
            seen.add(spec.reuse_key)
            unique.append(spec)

    # Donor candidates in fixed scan order: the external pool first (oldest
    # blocks first), then existing cache entries (dict order is insertion
    # order), then planned nodes by index.
    existing_pool: list[tuple[ReuseKey, MdacSpec]] = [
        (key, result.spec) for key, result in existing.items()
    ]

    nodes: list[PlanNode] = []
    waves: dict[int, list[int]] = {}
    for i, spec in enumerate(unique):
        donor_index: int | None = None
        donor_existing: ReuseKey | None = None
        donor_pool_index: int | None = None
        best_distance: float | None = None
        for p, donor_result in enumerate(donor_pool):
            d = _relative_gm_distance(donor_result.spec, spec)
            if best_distance is None or d < best_distance:
                best_distance = d
                donor_pool_index, donor_existing, donor_index = p, None, None
        for key, donor_spec in existing_pool:
            d = _relative_gm_distance(donor_spec, spec)
            if best_distance is None or d < best_distance:
                best_distance = d
                donor_pool_index, donor_existing, donor_index = None, key, None
        for j in range(i):
            d = _relative_gm_distance(nodes[j].spec, spec)
            if best_distance is None or d < best_distance:
                best_distance = d
                donor_pool_index, donor_existing, donor_index = None, None, j

        wave = 0 if donor_index is None else nodes[donor_index].wave + 1
        node = PlanNode(
            index=i,
            key=spec.reuse_key,
            spec=spec,
            donor_index=donor_index,
            donor_existing=donor_existing,
            wave=wave,
            donor_pool_index=donor_pool_index,
        )
        nodes.append(node)
        waves.setdefault(wave, []).append(i)

    ordered_waves = tuple(
        tuple(waves[w]) for w in sorted(waves)
    )
    return SynthesisPlan(
        nodes=tuple(nodes),
        waves=ordered_waves,
        total_instances=len(specs),
        donors=donor_pool,
    )


def execute_plan(
    plan: SynthesisPlan,
    cache: "BlockCache",
    backend: ExecutionBackend,
) -> dict[ReuseKey, SynthesisResult]:
    """Resolve every planned block, wave by wave, through the backend.

    Each block is first offered to the cache's persistent layer (a no-op
    for the in-memory :class:`~repro.flow.cache.BlockCache`); remaining
    blocks of the wave dispatch together.  Results are admitted into the
    cache with the usual cold/retargeted accounting, and the full
    ``reuse_key -> result`` map is returned.
    """
    resolved: dict[int, SynthesisResult] = {}

    def donor_result(node: PlanNode) -> SynthesisResult | None:
        if node.donor_index is not None:
            return resolved[node.donor_index]
        if node.donor_existing is not None:
            return cache.results[node.donor_existing]
        if node.donor_pool_index is not None:
            return plan.donors[node.donor_pool_index]
        return None

    def cold_fingerprint(node: PlanNode) -> str:
        return block_fingerprint(
            node.spec,
            cache.tech,
            budget=cache.budget,
            seed=cache.seed,
            verify_transient=cache.verify_transient,
            dc_kernel=getattr(cache, "dc_kernel", "chained"),
        )

    def cold_job(node: PlanNode) -> SynthesisJob:
        return SynthesisJob(
            spec=node.spec,
            tech=cache.tech,
            budget=cache.budget,
            seed=cache.seed,
            verify_transient=cache.verify_transient,
            eval_kernel=cache.eval_kernel,
            eval_speculation=cache.eval_speculation,
            template_dir=getattr(cache, "template_dir", None),
            dc_kernel=getattr(cache, "dc_kernel", "chained"),
        )

    def run_wave(wave: Sequence[int]) -> None:
        pending: list[PlanNode] = []
        jobs: list[SynthesisJob] = []
        fingerprints: dict[int, str] = {}
        #: Node indices already forced onto the cold path by a cached
        #: failed warm attempt (no fresh escalation check needed).
        pre_escalated: set[int] = set()
        #: Positions in ``pending`` whose final result came from the cache
        #: rather than a fresh search (admitted without effort counting).
        loaded: set[int] = set()
        for index in wave:
            node = plan.nodes[index]
            donor = donor_result(node)
            fingerprint = block_fingerprint(
                node.spec,
                cache.tech,
                budget=cache.budget,
                seed=cache.seed,
                verify_transient=cache.verify_transient,
                donor=donor,
                retarget_budget=cache.retarget_budget,
                retarget_seed=cache.retarget_seed,
                dc_kernel=getattr(cache, "dc_kernel", "chained"),
            )
            fingerprints[index] = fingerprint
            hit = cache.load_persistent(fingerprint, spec=node.spec)
            if (
                hit is not None
                and node.donor_pool_index is not None
                and not hit.feasible
            ):
                # A previous run already proved this pool warm start misses
                # feasibility (the failed attempt is persisted below), so
                # escalate straight to the cold path without re-running the
                # retarget search.  No search is discarded here, so
                # ``pool_escalations`` (a count of discarded retargets) is
                # not incremented.
                fingerprints[index] = cold_fingerprint(node)
                hit = cache.load_persistent(fingerprints[index], spec=node.spec)
                if hit is None:
                    pending.append(node)
                    jobs.append(cold_job(node))
                    pre_escalated.add(index)
                    continue
            if hit is not None:
                resolved[index] = hit
                cache.admit(
                    node.key, hit, fingerprints[index], newly_synthesized=False
                )
                continue
            pending.append(node)
            if node.donor_pool_index is not None and index not in pre_escalated:
                cache.pool_warm_starts += 1
            jobs.append(
                SynthesisJob(
                    spec=node.spec,
                    tech=cache.tech,
                    budget=cache.budget,
                    seed=cache.seed,
                    verify_transient=cache.verify_transient,
                    donor=donor,
                    retarget_budget=cache.retarget_budget,
                    retarget_seed=cache.retarget_seed,
                    eval_kernel=cache.eval_kernel,
                    eval_speculation=cache.eval_speculation,
                    template_dir=getattr(cache, "template_dir", None),
                    dc_kernel=getattr(cache, "dc_kernel", "chained"),
                )
            )
        if jobs:
            metrics.counter("scheduler.jobs_dispatched", len(jobs))
            metrics.observe("scheduler.wave_width", len(jobs))
            results = backend.map(run_synthesis_job, jobs)
            # Feasibility escalation, pool-donated nodes only: a warm start
            # from another system spec's design is a heuristic — when the
            # lean retarget budget fails to reach feasibility, fall back to
            # the cold synthesis a standalone run would have done.  The
            # check depends only on the (deterministic) result, so every
            # backend escalates the same nodes.  In-plan and existing-entry
            # donors keep the legacy no-escalation semantics.
            escalate = [
                i
                for i, (node, result) in enumerate(zip(pending, results))
                if node.donor_pool_index is not None
                and node.index not in pre_escalated
                and not result.feasible
            ]
            if escalate:
                # Persist the failed warm attempts under their planned
                # fingerprints so reruns skip the doomed retarget search
                # (the scan above recognizes them and goes straight cold).
                for i in escalate:
                    cache._persist(fingerprints[pending[i].index], results[i])
                cold_dispatch: list[int] = []
                for i in escalate:
                    node = pending[i]
                    fingerprints[node.index] = cold_fingerprint(node)
                    cache.pool_escalations += 1
                    metrics.counter("scheduler.pool_escalations")
                    cold_hit = cache.load_persistent(
                        fingerprints[node.index], spec=node.spec
                    )
                    if cold_hit is not None:
                        results[i] = cold_hit
                        loaded.add(i)
                    else:
                        cold_dispatch.append(i)
                if cold_dispatch:
                    cold_results = backend.map(
                        run_synthesis_job,
                        [cold_job(pending[i]) for i in cold_dispatch],
                    )
                    for i, cold in zip(cold_dispatch, cold_results):
                        results[i] = cold
            for i, (node, result) in enumerate(zip(pending, results)):
                resolved[node.index] = result
                cache.admit(
                    node.key,
                    result,
                    fingerprints[node.index],
                    newly_synthesized=i not in loaded,
                )

    for wave_number, wave in enumerate(plan.waves):
        with span("synth.wave", wave=wave_number, nodes=len(wave)):
            metrics.counter("scheduler.waves")
            run_wave(wave)

    return {plan.nodes[i].key: result for i, result in resolved.items()}


__all__ = [
    "PlanNode",
    "SynthesisPlan",
    "SynthesisJob",
    "plan_synthesis",
    "execute_plan",
    "run_synthesis_job",
    "sizing_digest",
]
