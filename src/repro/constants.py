"""Physical constants and unit helpers used throughout the library.

All internal quantities are SI (volts, amps, farads, seconds, hertz, watts)
unless a function name says otherwise.  The helpers here exist so that code
reads in the units designers use ("a 2 pF cap", "power in mW") without
scattering magic powers of ten through the codebase.
"""

from __future__ import annotations

import math

#: Boltzmann constant [J/K].
BOLTZMANN = 1.380649e-23

#: Elementary charge [C].
ELEMENTARY_CHARGE = 1.602176634e-19

#: Default junction temperature for all analyses [K] (27 C, SPICE default).
ROOM_TEMPERATURE = 300.15

#: kT at the default temperature [J].
KT_ROOM = BOLTZMANN * ROOM_TEMPERATURE

#: Thermal voltage kT/q at the default temperature [V].
THERMAL_VOLTAGE = KT_ROOM / ELEMENTARY_CHARGE

#: Vacuum permittivity [F/m].
EPSILON_0 = 8.8541878128e-12

#: Relative permittivity of SiO2.
EPSILON_SIO2 = 3.9

# ---------------------------------------------------------------------------
# Unit multipliers (value * MILLI reads as "value milli-units").
# ---------------------------------------------------------------------------

TERA = 1e12
GIGA = 1e9
MEGA = 1e6
KILO = 1e3
MILLI = 1e-3
MICRO = 1e-6
NANO = 1e-9
PICO = 1e-12
FEMTO = 1e-15
ATTO = 1e-18


def db(value: float) -> float:
    """Convert a voltage/current ratio to decibels (20*log10)."""
    if value <= 0.0:
        raise ValueError(f"db() requires a positive ratio, got {value!r}")
    return 20.0 * math.log10(value)


def db_power(value: float) -> float:
    """Convert a power ratio to decibels (10*log10)."""
    if value <= 0.0:
        raise ValueError(f"db_power() requires a positive ratio, got {value!r}")
    return 10.0 * math.log10(value)


def from_db(value_db: float) -> float:
    """Inverse of :func:`db`: decibels back to a voltage ratio."""
    return 10.0 ** (value_db / 20.0)


def parallel(*impedances: float) -> float:
    """Parallel combination of resistances (or of any impedance magnitudes).

    ``parallel(r1, r2, ...)`` returns ``1 / (1/r1 + 1/r2 + ...)``.  Zero is
    allowed (shorts win); an empty call is an error.
    """
    if not impedances:
        raise ValueError("parallel() needs at least one impedance")
    if any(z < 0 for z in impedances):
        raise ValueError("parallel() requires non-negative impedances")
    if any(z == 0.0 for z in impedances):
        return 0.0
    return 1.0 / sum(1.0 / z for z in impedances)


def settling_time_constants(relative_error: float) -> float:
    """Number of closed-loop time constants to settle within ``relative_error``.

    A single-pole system settles as ``exp(-t/tau)``; settling to a relative
    error ``eps`` therefore needs ``ln(1/eps)`` time constants.
    """
    if not 0.0 < relative_error < 1.0:
        raise ValueError(
            f"relative_error must be in (0, 1), got {relative_error!r}"
        )
    return math.log(1.0 / relative_error)


def lsb(full_scale: float, bits: int) -> float:
    """LSB size of a ``bits``-bit converter with the given full-scale range."""
    if bits < 1:
        raise ValueError(f"bits must be >= 1, got {bits}")
    if full_scale <= 0:
        raise ValueError(f"full_scale must be positive, got {full_scale!r}")
    return full_scale / (2**bits)
