"""Power models for pipelined ADC building blocks.

:mod:`repro.power.analytic` is the *equation-based* evaluation path (the
style of Hershenson's geometric-programming ADC work, reference [5] of the
paper): every stage's power follows in closed form from its block spec.
The transistor-level synthesis flow (:mod:`repro.synth`) provides the
*simulation-based* counterpart; the paper's point is that the hybrid of the
two is practical, and our benchmarks compare all three.
"""

from repro.power.model import PowerModel, DEFAULT_POWER_MODEL
from repro.power.mdac import MdacPower, mdac_power
from repro.power.comparator import SubAdcPower, sub_adc_power
from repro.power.analytic import CandidatePower, StagePower, candidate_power

__all__ = [
    "PowerModel",
    "DEFAULT_POWER_MODEL",
    "MdacPower",
    "mdac_power",
    "SubAdcPower",
    "sub_adc_power",
    "CandidatePower",
    "StagePower",
    "candidate_power",
]
