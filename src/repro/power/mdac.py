"""MDAC (opamp) power from its block specification."""

from __future__ import annotations

from dataclasses import dataclass

from repro.power.model import PowerModel, DEFAULT_POWER_MODEL
from repro.specs.stage import MdacSpec
from repro.tech.process import Technology


@dataclass(frozen=True)
class MdacPower:
    """Power breakdown of one MDAC stage."""

    #: Signal-branch current demanded by linear settling (gm / (gm/Id)) [A].
    gm_current: float
    #: Signal-branch current demanded by slewing [A].
    slew_current: float
    #: The binding branch current [A].
    branch_current: float
    #: Total opamp supply current including topology and bias overhead [A].
    total_current: float
    #: Total power including fixed overhead [W].
    total_power: float
    #: Which requirement bound the current: 'gm' or 'slew'.
    binding_constraint: str


def mdac_power(
    mdac: MdacSpec,
    tech: Technology,
    model: PowerModel = DEFAULT_POWER_MODEL,
) -> MdacPower:
    """Power of one MDAC: the larger of the gm- and slew-driven currents.

    The branch current is what one side of the differential signal path must
    carry; the topology factor scales it to the full opamp (both sides plus
    folded branches), and bias/CMFB overheads are added on top.
    """
    gm_current = mdac.gm_required / model.gm_over_id
    slew_current = mdac.slew_current / model.slew_availability
    branch = max(gm_current, slew_current)
    binding = "gm" if gm_current >= slew_current else "slew"
    total_current = branch * model.topology_current_factor
    total_current *= 1.0 + model.bias_overhead_fraction
    power = tech.vdd * total_current + model.fixed_overhead_w
    return MdacPower(
        gm_current=gm_current,
        slew_current=slew_current,
        branch_current=branch,
        total_current=total_current,
        total_power=power,
        binding_constraint=binding,
    )
