"""Equation-based candidate power evaluation (the paper's baseline style).

``candidate_power`` chains spec translation and the closed-form block power
models into a per-stage and total power figure for one candidate — no
simulation anywhere.  This is both the fast screening path of the hybrid
flow and the pure-equation baseline the benchmarks compare against.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.enumeration.candidates import PipelineCandidate
from repro.power.comparator import SubAdcPower, sub_adc_power
from repro.power.mdac import MdacPower, mdac_power
from repro.power.model import PowerModel, DEFAULT_POWER_MODEL
from repro.specs.adc import AdcSpec
from repro.specs.stage import StagePlan, plan_stages


@dataclass(frozen=True)
class StagePower:
    """Power of one pipeline stage: MDAC plus sub-ADC."""

    stage_index: int
    stage_bits: int
    mdac: MdacPower
    sub_adc: SubAdcPower

    @property
    def total_power(self) -> float:
        """Stage total [W]."""
        return self.mdac.total_power + self.sub_adc.total_power


@dataclass(frozen=True)
class CandidatePower:
    """Front-end power evaluation of one candidate configuration."""

    candidate: PipelineCandidate
    plan: StagePlan
    stages: tuple[StagePower, ...]

    @property
    def total_power(self) -> float:
        """Front-end total [W]."""
        return sum(s.total_power for s in self.stages)

    @property
    def mdac_power(self) -> float:
        """Sum of MDAC powers [W]."""
        return sum(s.mdac.total_power for s in self.stages)

    @property
    def sub_adc_power(self) -> float:
        """Sum of sub-ADC powers [W]."""
        return sum(s.sub_adc.total_power for s in self.stages)

    def stage_powers_mw(self) -> list[float]:
        """Per-stage totals in mW (Fig. 1's y-axis)."""
        return [s.total_power * 1e3 for s in self.stages]


def candidate_power(
    spec: AdcSpec,
    candidate: PipelineCandidate,
    model: PowerModel = DEFAULT_POWER_MODEL,
    plan: StagePlan | None = None,
) -> CandidatePower:
    """Evaluate one candidate's front-end power analytically."""
    if plan is None:
        plan = plan_stages(spec, candidate)
    stages = tuple(
        StagePower(
            stage_index=i,
            stage_bits=mdac.stage_bits,
            mdac=mdac_power(mdac, spec.tech, model),
            sub_adc=sub_adc_power(sub, model),
        )
        for i, (mdac, sub) in enumerate(zip(plan.mdacs, plan.sub_adcs))
    )
    return CandidatePower(candidate=candidate, plan=plan, stages=stages)
