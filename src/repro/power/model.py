"""Calibration knobs of the analytic power model.

These constants encode the opamp topology and comparator implementation the
paper's blocks were synthesized with.  They are *calibrated once* (see
``tests/power/test_calibration.py`` and EXPERIMENTS.md) so that magnitudes
land in the paper's range; the configuration *orderings* then emerge from
the physics in :mod:`repro.specs`, not from per-figure tuning.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SpecificationError


@dataclass(frozen=True)
class PowerModel:
    """Constants mapping block specs to power draw."""

    #: gm/Id of the opamp input devices [1/V] (strong inversion, Vov~0.25 V).
    gm_over_id: float = 8.0
    #: Total opamp supply current per unit of signal-branch current.
    #: A fully-differential folded cascode burns the tail current plus two
    #: folded branches: ~2x the pair current on each side.
    topology_current_factor: float = 4.0
    #: Proportional bias/CMFB overhead on the opamp current.
    bias_overhead_fraction: float = 0.20
    #: Fixed per-opamp overhead (bias generator, CMFB amp, clocking) [W].
    fixed_overhead_w: float = 0.5e-3
    #: How much of the opamp's total current is available to slew the load.
    #: A class-A stage can steer the full tail (2x the branch current) into
    #: the output during slewing.
    slew_availability: float = 2.0
    #: Comparator energy at very relaxed offset requirements [J/decision].
    comparator_e0: float = 0.8e-12
    #: Offset-difficulty voltage: energy doubles when the tolerance equals
    #: this value (preamp/sizing cost ~ (vchar/tolerance)^2) [V].
    comparator_vchar: float = 90e-3
    #: Sub-ADC reference-ladder + encoding overhead per stage [W].
    sub_adc_fixed_w: float = 0.05e-3
    #: Static tracking-preamp current per comparator for *non-first* stages,
    #: at a 1.5-bit stage's difficulty [A].  Scales with 2^(m-2): a mid-
    #: pipeline flash must resolve the late-settling residue inside the
    #: non-overlap window, and the redundancy margin that would excuse an
    #: early decision shrinks as 2^-m.
    tracking_preamp_current: float = 50e-6

    def __post_init__(self) -> None:
        if self.gm_over_id <= 0:
            raise SpecificationError("gm_over_id must be positive")
        if self.topology_current_factor < 1:
            raise SpecificationError("topology_current_factor must be >= 1")
        if not 0 <= self.bias_overhead_fraction < 1:
            raise SpecificationError("bias_overhead_fraction must be in [0, 1)")
        for name in ("fixed_overhead_w", "comparator_e0", "comparator_vchar", "sub_adc_fixed_w"):
            if getattr(self, name) < 0:
                raise SpecificationError(f"{name} must be non-negative")


#: The calibrated model used throughout the experiments.
DEFAULT_POWER_MODEL = PowerModel()
