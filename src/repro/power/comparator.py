"""Sub-ADC (flash comparator bank) power model.

Each comparator is a dynamic latch with a preamp sized for the stage's
offset tolerance.  Redundancy makes the tolerance generous
(``FS / 2^(m+1)``), but it still tightens by 2x per extra stage bit while
the comparator count grows as ``2^m - 2`` — the exponential cost that
ultimately caps useful per-stage resolution at 4 bits.

Non-first sub-ADCs additionally carry static tracking preamps: they must
resolve the previous stage's late-settling residue inside the non-overlap
window, and the redundancy margin that would excuse an early decision
shrinks as ``2^-m``.  First-stage sub-ADCs are exempt because the front
S/H holds their input for a full clock phase.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.power.model import PowerModel, DEFAULT_POWER_MODEL
from repro.specs.stage import SubAdcSpec


@dataclass(frozen=True)
class SubAdcPower:
    """Power breakdown of one flash sub-ADC."""

    #: Energy of one comparator decision [J].
    energy_per_decision: float
    #: All comparators' dynamic power [W].
    comparator_power: float
    #: Static tracking-preamp power (non-first stages only) [W].
    tracking_power: float
    #: Ladder/encode overhead [W].
    fixed_power: float
    #: Total [W].
    total_power: float


def sub_adc_power(
    sub_adc: SubAdcSpec,
    model: PowerModel = DEFAULT_POWER_MODEL,
    vdd: float = 3.3,
) -> SubAdcPower:
    """Power of one sub-ADC at its decision rate."""
    difficulty = (model.comparator_vchar / sub_adc.offset_tolerance) ** 2
    energy = model.comparator_e0 * (1.0 + difficulty)
    dynamic = sub_adc.comparator_count * energy * sub_adc.sample_rate_hz
    if sub_adc.is_first_stage:
        tracking = 0.0
    else:
        tracking = (
            sub_adc.comparator_count
            * model.tracking_preamp_current
            * 2.0 ** (sub_adc.stage_bits - 2)
            * vdd
        )
    total = dynamic + tracking + model.sub_adc_fixed_w
    return SubAdcPower(
        energy_per_decision=energy,
        comparator_power=dynamic,
        tracking_power=tracking,
        fixed_power=model.sub_adc_fixed_w,
        total_power=total,
    )
