"""Report formatting for power evaluations."""

from __future__ import annotations

from repro.power.analytic import CandidatePower


def stage_table(evaluation: CandidatePower) -> str:
    """Multi-line per-stage breakdown of one candidate."""
    lines = [
        f"candidate {evaluation.candidate.label} "
        f"({evaluation.candidate.total_bits}-bit front end)",
        "  stage  bits  mdac[mW]  subadc[mW]  total[mW]  binding",
    ]
    for stage in evaluation.stages:
        lines.append(
            f"  {stage.stage_index + 1:>5}  {stage.stage_bits:>4}"
            f"  {stage.mdac.total_power * 1e3:8.2f}"
            f"  {stage.sub_adc.total_power * 1e3:10.2f}"
            f"  {stage.total_power * 1e3:9.2f}"
            f"  {stage.mdac.binding_constraint}"
        )
    lines.append(
        f"  total {evaluation.total_power * 1e3:.2f} mW "
        f"(mdac {evaluation.mdac_power * 1e3:.2f}, "
        f"sub-ADC {evaluation.sub_adc_power * 1e3:.2f})"
    )
    return "\n".join(lines)


def comparison_table(evaluations: list[CandidatePower]) -> str:
    """One line per candidate, sorted by total power."""
    ordered = sorted(evaluations, key=lambda e: e.total_power)
    lines = ["config          total[mW]  mdac[mW]  subadc[mW]  stages"]
    for e in ordered:
        lines.append(
            f"{e.candidate.label:14s}  {e.total_power * 1e3:9.2f}"
            f"  {e.mdac_power * 1e3:8.2f}  {e.sub_adc_power * 1e3:10.2f}"
            f"  {e.candidate.stage_count:>6}"
        )
    return "\n".join(lines)
