"""AC (frequency sweep) analysis on a linearized circuit."""

from __future__ import annotations

import math

import numpy as np

from repro.analysis.mna import GROUND
from repro.analysis.smallsignal import LinearizedCircuit
from repro.errors import AnalysisError


def ac_response(
    linear: LinearizedCircuit, frequencies_hz: np.ndarray
) -> np.ndarray:
    """Complex solution vectors over a frequency sweep.

    Returns an array of shape ``(len(frequencies), size)`` whose rows are the
    MNA unknowns at each frequency, driven by the circuit's ``ac`` sources.
    """
    frequencies_hz = np.asarray(frequencies_hz, dtype=float)
    out = np.empty((len(frequencies_hz), linear.size), dtype=complex)
    for row, frequency in enumerate(frequencies_hz):
        s = 2j * math.pi * frequency
        try:
            out[row] = np.linalg.solve(linear.system_at(s), linear.b_ac)
        except np.linalg.LinAlgError as exc:
            raise AnalysisError(f"AC solve failed at {frequency:.3e} Hz") from exc
    return out


def ac_transfer(
    linear: LinearizedCircuit,
    output_net: str,
    frequencies_hz: np.ndarray,
    negative_net: str | None = None,
) -> np.ndarray:
    """Complex transfer to ``output_net`` (optionally differential) per Hz.

    The excitation is whatever ``ac`` magnitudes the circuit's sources carry;
    with a single unit-magnitude source this is the transfer function.
    """
    response = ac_response(linear, frequencies_hz)
    i = linear.index(output_net)
    if i == GROUND:
        raise AnalysisError("output_net must not be ground")
    h = response[:, i]
    if negative_net is not None:
        j = linear.index(negative_net)
        if j == GROUND:
            raise AnalysisError("negative_net must not be ground")
        h = h - response[:, j]
    return h


def dc_gain(linear: LinearizedCircuit, output_net: str, negative_net: str | None = None) -> float:
    """Small-signal gain at (near) DC."""
    h = ac_transfer(linear, output_net, np.array([1e-3]), negative_net)
    return float(np.real(h[0]))


def unity_gain_frequency(
    linear: LinearizedCircuit,
    output_net: str,
    negative_net: str | None = None,
    f_min: float = 1e2,
    f_max: float = 1e12,
    points_per_decade: int = 24,
) -> float | None:
    """Frequency where |H| crosses unity (None if it never does)."""
    decades = math.log10(f_max / f_min)
    freqs = np.logspace(
        math.log10(f_min), math.log10(f_max), int(decades * points_per_decade) + 1
    )
    mags = np.abs(ac_transfer(linear, output_net, freqs, negative_net))
    crossing = None
    for k in range(len(freqs) - 1):
        if mags[k] >= 1.0 > mags[k + 1]:
            crossing = k
    if crossing is None:
        return None
    lo, hi = freqs[crossing], freqs[crossing + 1]
    for _ in range(50):
        mid = math.sqrt(lo * hi)
        mag = abs(ac_transfer(linear, output_net, np.array([mid]), negative_net)[0])
        if mag >= 1.0:
            lo = mid
        else:
            hi = mid
    return math.sqrt(lo * hi)


def phase_margin_deg(
    linear: LinearizedCircuit,
    output_net: str,
    negative_net: str | None = None,
) -> float | None:
    """Phase margin of the (loop) transfer at its unity crossing, or None."""
    fu = unity_gain_frequency(linear, output_net, negative_net)
    if fu is None:
        return None
    h = ac_transfer(linear, output_net, np.array([fu]), negative_net)[0]
    return 180.0 + math.degrees(math.atan2(h.imag, h.real))
