"""AC (frequency sweep) analysis on a linearized circuit."""

from __future__ import annotations

import math

import numpy as np

from repro.analysis.mna import GROUND
from repro.analysis.smallsignal import LinearizedCircuit
from repro.errors import AnalysisError


def ac_system_stack(
    linear: LinearizedCircuit,
    frequencies_hz: np.ndarray,
    out: np.ndarray | None = None,
) -> np.ndarray:
    """The stacked complex MNA matrices ``G + s_k C``, shape (F, n, n).

    Each slice is elementwise identical to ``linear.system_at(s_k)`` — the
    broadcastable form batched solvers consume.  ``out`` (same shape,
    complex) is filled in place when given, letting tight evaluation loops
    reuse one scratch buffer.
    """
    frequencies_hz = np.asarray(frequencies_hz, dtype=float)
    s = 2j * math.pi * frequencies_hz
    if out is None:
        out = np.empty(
            (len(frequencies_hz), linear.size, linear.size), dtype=complex
        )
    # Fill with G, then add s*C only where C is nonzero.  Bit-identical to
    # the dense ``G + s*C``: zero-C entries are exactly ``g + 0j`` either
    # way, and nonzero entries see the same two-operand complex add — but
    # the sparse update touches ~20% of the entries the dense product
    # would, and C is sparse for every MNA system.
    out[:] = linear.g_matrix
    rows, cols = np.nonzero(linear.c_matrix)
    if len(rows):
        out[:, rows, cols] += s[:, None] * linear.c_matrix[rows, cols][None, :]
    return out


def ac_system_tensor(
    linears: "list[LinearizedCircuit]",
    frequencies_hz: np.ndarray,
    out: np.ndarray | None = None,
) -> np.ndarray:
    """Stacked systems for a *batch* of linearizations, shape (B, F, n, n).

    The batch axis typically flattens candidates×corners: every
    linearization must share the matrix size (same topology).  Each
    ``out[b]`` is filled exactly like :func:`ac_system_stack` fills its
    stack — the tensor form only removes the per-batch Python dispatch, so
    slice ``[b]`` is bit-identical to ``ac_system_stack(linears[b], ...)``.
    ``out`` (same shape, complex) is reused in place when given.
    """
    frequencies_hz = np.asarray(frequencies_hz, dtype=float)
    if not linears:
        raise AnalysisError("ac_system_tensor needs at least one linearization")
    n = linears[0].size
    s = 2j * math.pi * frequencies_hz
    if out is None:
        out = np.empty((len(linears), len(frequencies_hz), n, n), dtype=complex)
    for b, linear in enumerate(linears):
        if linear.size != n:
            raise AnalysisError(
                "ac_system_tensor requires same-size systems "
                f"(got {linear.size} and {n})"
            )
        slab = out[b]
        slab[:] = linear.g_matrix
        rows, cols = np.nonzero(linear.c_matrix)
        if len(rows):
            slab[:, rows, cols] += s[:, None] * linear.c_matrix[rows, cols][None, :]
    return out


def solve_ac_tensor(
    systems: np.ndarray, b_ac: np.ndarray, frequencies_hz: np.ndarray
) -> np.ndarray:
    """Solve a (B, F, n, n) tensor against per-batch excitations, batched.

    ``b_ac`` has shape (B, n) — one excitation vector per batch entry
    (candidate×corner).  One ``np.linalg.solve`` covers the whole tensor;
    the gufunc applies LAPACK per (n, n) slice, so every ``[b, k]``
    solution is bit-identical to ``np.linalg.solve(systems[b, k], b_ac[b])``
    — and therefore to the per-corner :func:`solve_ac_stack` walk.  On
    failure the tensor is replayed slice-by-slice so the raised
    :class:`AnalysisError` names the first singular (batch, frequency)
    pair.  Returns shape (B, F, n).
    """
    n_batch, n_freq = systems.shape[0], systems.shape[1]
    rhs = np.broadcast_to(
        np.asarray(b_ac)[:, None, :], (n_batch, n_freq, systems.shape[2])
    )[..., None]
    try:
        return np.linalg.solve(systems, rhs)[..., 0]
    except np.linalg.LinAlgError:
        frequencies_hz = np.asarray(frequencies_hz, dtype=float)
        for b in range(n_batch):
            for k in range(n_freq):
                try:
                    np.linalg.solve(systems[b, k], np.asarray(b_ac)[b])
                except np.linalg.LinAlgError as exc:
                    raise AnalysisError(
                        f"AC solve failed for batch entry {b} at "
                        f"{frequencies_hz[k]:.3e} Hz"
                    ) from exc
        raise AnalysisError("AC solve failed")  # pragma: no cover


def solve_ac_stack(
    systems: np.ndarray, b_ac: np.ndarray, frequencies_hz: np.ndarray
) -> np.ndarray:
    """Solve a (F, n, n) stack against one excitation vector, batched.

    One LAPACK call covers the whole sweep; each slice's solution is
    bit-identical to an individual ``np.linalg.solve``.  On failure the
    sweep is replayed slice-by-slice so the raised :class:`AnalysisError`
    names the first singular frequency, exactly like the legacy loop.
    """
    rhs = np.broadcast_to(b_ac, (systems.shape[0], len(b_ac)))[..., None]
    try:
        return np.linalg.solve(systems, rhs)[..., 0]
    except np.linalg.LinAlgError:
        # Replay to attribute the failure to a frequency.
        for row, frequency in enumerate(np.asarray(frequencies_hz, dtype=float)):
            try:
                np.linalg.solve(systems[row], b_ac)
            except np.linalg.LinAlgError as exc:
                raise AnalysisError(
                    f"AC solve failed at {frequency:.3e} Hz"
                ) from exc
        raise AnalysisError("AC solve failed")  # pragma: no cover


def ac_response(
    linear: LinearizedCircuit,
    frequencies_hz: np.ndarray,
    batched: bool = True,
) -> np.ndarray:
    """Complex solution vectors over a frequency sweep.

    Returns an array of shape ``(len(frequencies), size)`` whose rows are the
    MNA unknowns at each frequency, driven by the circuit's ``ac`` sources.

    ``batched=True`` (default) stacks the sweep into one
    ``np.linalg.solve`` over ``(F, n, n)`` systems — bit-identical to, and
    far faster than, the per-frequency loop, which ``batched=False`` keeps
    for reference/benchmark use.
    """
    frequencies_hz = np.asarray(frequencies_hz, dtype=float)
    if batched:
        if len(frequencies_hz) == 0:
            return np.empty((0, linear.size), dtype=complex)
        systems = ac_system_stack(linear, frequencies_hz)
        return solve_ac_stack(systems, linear.b_ac, frequencies_hz)
    out = np.empty((len(frequencies_hz), linear.size), dtype=complex)
    for row, frequency in enumerate(frequencies_hz):
        s = 2j * math.pi * frequency
        try:
            out[row] = np.linalg.solve(linear.system_at(s), linear.b_ac)
        except np.linalg.LinAlgError as exc:
            raise AnalysisError(f"AC solve failed at {frequency:.3e} Hz") from exc
    return out


def ac_transfer(
    linear: LinearizedCircuit,
    output_net: str,
    frequencies_hz: np.ndarray,
    negative_net: str | None = None,
    batched: bool = True,
) -> np.ndarray:
    """Complex transfer to ``output_net`` (optionally differential) per Hz.

    The excitation is whatever ``ac`` magnitudes the circuit's sources carry;
    with a single unit-magnitude source this is the transfer function.
    """
    response = ac_response(linear, frequencies_hz, batched=batched)
    i = linear.index(output_net)
    if i == GROUND:
        raise AnalysisError("output_net must not be ground")
    h = response[:, i]
    if negative_net is not None:
        j = linear.index(negative_net)
        if j == GROUND:
            raise AnalysisError("negative_net must not be ground")
        h = h - response[:, j]
    return h


def dc_gain(linear: LinearizedCircuit, output_net: str, negative_net: str | None = None) -> float:
    """Small-signal gain at (near) DC."""
    h = ac_transfer(linear, output_net, np.array([1e-3]), negative_net)
    return float(np.real(h[0]))


def unity_gain_frequency(
    linear: LinearizedCircuit,
    output_net: str,
    negative_net: str | None = None,
    f_min: float = 1e2,
    f_max: float = 1e12,
    points_per_decade: int = 24,
) -> float | None:
    """Frequency where |H| crosses unity (None if it never does)."""
    decades = math.log10(f_max / f_min)
    freqs = np.logspace(
        math.log10(f_min), math.log10(f_max), int(decades * points_per_decade) + 1
    )
    mags = np.abs(ac_transfer(linear, output_net, freqs, negative_net))
    crossing = None
    for k in range(len(freqs) - 1):
        if mags[k] >= 1.0 > mags[k + 1]:
            crossing = k
    if crossing is None:
        return None
    lo, hi = freqs[crossing], freqs[crossing + 1]
    for _ in range(50):
        mid = math.sqrt(lo * hi)
        mag = abs(ac_transfer(linear, output_net, np.array([mid]), negative_net)[0])
        if mag >= 1.0:
            lo = mid
        else:
            hi = mid
    return math.sqrt(lo * hi)


def phase_margin_deg(
    linear: LinearizedCircuit,
    output_net: str,
    negative_net: str | None = None,
) -> float | None:
    """Phase margin of the (loop) transfer at its unity crossing, or None."""
    fu = unity_gain_frequency(linear, output_net, negative_net)
    if fu is None:
        return None
    h = ac_transfer(linear, output_net, np.array([fu]), negative_net)[0]
    return 180.0 + math.degrees(math.atan2(h.imag, h.real))
