"""Circuit analysis engines built on modified nodal analysis (MNA).

The paper's hybrid evaluation needs exactly four capabilities, all provided
here on top of dense numpy linear algebra (opamp-scale circuits have tens of
nodes, so sparsity machinery would be overhead):

* :mod:`repro.analysis.dc` — Newton operating-point solver with gmin and
  source stepping homotopies ("DC simulation to extract small-signal values");
* :mod:`repro.analysis.smallsignal` / :mod:`repro.analysis.ac` — linearized
  G/C matrices and complex frequency sweeps;
* :mod:`repro.analysis.pz` — pole/zero extraction via generalized
  eigenvalues of the (G, C) pencil;
* :mod:`repro.analysis.transient` — trapezoidal/backward-Euler integration
  with clocked switches for large-swing settling ("simulation-based
  evaluation ... when circuits experience large dynamic swing");
* :mod:`repro.analysis.noise` — adjoint output-noise analysis.
"""

from repro.analysis.mna import MnaLayout
from repro.analysis.dc import DcSolution, solve_dc
from repro.analysis.smallsignal import LinearizedCircuit, linearize
from repro.analysis.ac import ac_transfer, ac_response
from repro.analysis.pz import poles, zeros
from repro.analysis.noise import output_noise_psd, integrated_output_noise
from repro.analysis.transient import TransientResult, simulate_transient

__all__ = [
    "MnaLayout",
    "DcSolution",
    "solve_dc",
    "LinearizedCircuit",
    "linearize",
    "ac_transfer",
    "ac_response",
    "poles",
    "zeros",
    "output_noise_psd",
    "integrated_output_noise",
    "TransientResult",
    "simulate_transient",
]
