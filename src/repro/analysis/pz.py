"""Pole/zero extraction from the linearized MNA pencil.

Poles are the finite generalized eigenvalues ``s`` of ``(G + sC) x = 0``.
Zeros of a specific input->output transfer come from the Rosenbrock system
matrix: append the input column and output row and solve the same pencil.
"""

from __future__ import annotations

import numpy as np
import scipy.linalg

from repro.analysis.mna import GROUND
from repro.analysis.smallsignal import LinearizedCircuit
from repro.errors import AnalysisError

#: Eigenvalues with |s| above this are treated as "at infinity" and dropped.
_INFINITY_CUTOFF = 1e18


def poles(linear: LinearizedCircuit) -> np.ndarray:
    """Finite natural frequencies (poles) of the linearized circuit [rad/s]."""
    g, c = linear.g_matrix, linear.c_matrix
    # (G + sC)x = 0  ->  G x = -s C x: pencil (G, -C).
    eigvals = scipy.linalg.eigvals(g, -c)
    finite = eigvals[np.isfinite(eigvals)]
    return finite[np.abs(finite) < _INFINITY_CUTOFF]


def zeros(
    linear: LinearizedCircuit,
    output_net: str,
    negative_net: str | None = None,
) -> np.ndarray:
    """Finite transmission zeros of the AC-source -> output transfer [rad/s].

    Builds the Rosenbrock pencil ``[[G + sC, b], [c^T, 0]]`` whose finite
    generalized eigenvalues are the transfer zeros.
    """
    i = linear.index(output_net)
    if i == GROUND:
        raise AnalysisError("output_net must not be ground")
    n = linear.size
    if not np.any(linear.b_ac):
        raise AnalysisError("circuit has no AC excitation; set ac= on a source")

    c_row = np.zeros(n)
    c_row[i] = 1.0
    if negative_net is not None:
        j = linear.index(negative_net)
        if j == GROUND:
            raise AnalysisError("negative_net must not be ground")
        c_row[j] = -1.0

    a = np.zeros((n + 1, n + 1), dtype=complex)
    a[:n, :n] = linear.g_matrix
    a[:n, n] = linear.b_ac
    a[n, :n] = c_row
    b = np.zeros((n + 1, n + 1), dtype=complex)
    b[:n, :n] = -linear.c_matrix

    eigvals = scipy.linalg.eigvals(a, b)
    finite = eigvals[np.isfinite(eigvals)]
    return finite[np.abs(finite) < _INFINITY_CUTOFF]


def dominant_pole_hz(linear: LinearizedCircuit) -> float:
    """Magnitude in Hz of the slowest stable pole."""
    p = poles(linear)
    stable = p[np.real(p) < 0]
    if len(stable) == 0:
        raise AnalysisError("no stable poles found")
    return float(np.min(np.abs(stable)) / (2 * np.pi))
