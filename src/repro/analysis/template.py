"""Compiled MNA evaluation kernels: parametric stamp templates.

The legacy DC path (:func:`repro.analysis.dc._assemble`) and small-signal
linearization (:func:`repro.analysis.smallsignal.linearize`) walk the
netlist element-by-element, dispatching on ``isinstance`` and issuing one
scalar ``+=`` per matrix stamp.  That walk runs inside *every Newton
iteration* of every DC solve — for a sizing loop that evaluates hundreds of
candidates on the same testbench topology, it is almost pure interpreter
overhead.

This module compiles a circuit *topology* once into flat stamp programs:

* :class:`MnaTemplate` (cached per :meth:`repro.circuit.netlist.Circuit.topology_key`)
  records every scalar stamp the legacy walk would emit — row/column index
  arrays in exact emission order, plus value *slots* classified by origin
  (element constants, MOSFET small-signal quantities, source injections);
* :meth:`MnaTemplate.bind` fills the constant slots from a concrete
  circuit's element values, producing a :class:`BoundMna` whose
  :meth:`~BoundMna.assemble` and :meth:`~BoundMna.linearize` rebuild the
  Newton system / small-signal matrices with a handful of vectorized
  gathers and two ``np.add.at`` scatters;
* :class:`BoundMnaStack` binds one template to a whole *corner set* of
  same-topology circuits at once — its value-slot rebinding carries a
  leading corner dimension, so a candidates×corners evaluation can fill
  every corner's small-signal system from one structure walk.

Value slots are pure data — ``(opcode, element name, negate)`` triples
evaluated by :func:`_slot_value` — so a compiled template is picklable.
:class:`TemplateStore` persists templates content-keyed by topology key,
letting pool/queue workers load the compiled program from disk instead of
recompiling it per synthesis job; :data:`TEMPLATE_STATS` counts compiles
and store hits so benchmarks can prove the recompile count drops to zero
on warm reruns.

**Bit-identity contract.**  The compiled assembler reproduces the legacy
walk's floating-point results *bit for bit*: the scatter arrays list every
individual ``+=`` in the same order the legacy code performs them
(``np.add.at`` applies repeated indices sequentially, in order), each slot
value is computed with the same arithmetic expression shape (negation of
the extracted value, exactly as the legacy stamps negate), and the MOSFET
compact model is evaluated by the very same
:func:`repro.tech.mosfet.dc_current` calls.  ``tests/analysis/test_template.py``
enforces the equality jacobian-by-jacobian; it is what lets
:class:`repro.synth.evaluator.HybridEvaluator` default to the compiled
kernel while keeping campaign records byte-identical to the legacy path.

Limitations: :meth:`BoundMna.linearize` does not carry noise sources (use
:func:`repro.analysis.smallsignal.linearize` for noise analysis), and
binding requires an exact topology-key match.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
from pathlib import Path

import numpy as np

from repro.analysis.mna import GROUND, MnaLayout, layout_for
from repro.analysis.smallsignal import LinearizedCircuit
from repro.circuit.elements import (
    Capacitor,
    CurrentSource,
    Inductor,
    Mosfet,
    Resistor,
    Switch,
    Vccs,
    Vcvs,
    VoltageSource,
)
from repro.circuit.netlist import Circuit
from repro.errors import AnalysisError
from repro.obs.metrics import REGISTRY, CounterView
from repro.tech.mosfet import dc_current

#: MOSFET DC slot kinds (see ``kindvals`` in :meth:`BoundMna.assemble`).
_KIND_GM, _KIND_GDS, _KIND_GMB, _KIND_GSUM = 0, 1, 2, 3

try:  # the gufunc behind np.linalg.solve for 1-D right-hand sides
    from numpy.linalg import _umath_linalg as _ul

    _GUFUNC_SOLVE1 = _ul.solve1
except (ImportError, AttributeError):  # pragma: no cover - numpy variant
    _GUFUNC_SOLVE1 = None

#: MOSFET small-signal capacitance slot kinds, in compact-model order.
_CAP_KINDS = ("cgs", "cgd", "cgb", "cdb", "csb")

# ---------------------------------------------------------------------------
# Constant-slot opcodes.
#
# Every non-MOSFET value slot reduces to "extract one element attribute,
# optionally negated".  Recording slots as (opcode, name, negate) data —
# instead of closures — keeps the compiled template picklable, which is
# what makes cross-process template persistence possible.  Negation (not a
# sign multiply) reproduces the legacy lambdas' ``-value`` expressions
# bit-for-bit.
# ---------------------------------------------------------------------------

_OP_ONE = 0  # 1.0 (branch-row unit stamps)
_OP_RES_INV = 1  # 1 / resistance
_OP_SW_INV = 2  # 1 / resistance_at(0.0)
_OP_CAP = 3  # capacitance
_OP_IND = 4  # inductance
_OP_GAIN = 5  # VCVS gain
_OP_GM = 6  # VCCS transconductance
_OP_DC = 7  # independent-source DC value
_OP_ZERO = 8  # 0.0 (inductor DC short constraint)


def _slot_value(circuit: Circuit, op: int, name: str | None) -> float:
    """Evaluate one constant-slot opcode against a concrete circuit."""
    if op == _OP_ONE:
        return 1.0
    if op == _OP_RES_INV:
        return 1.0 / circuit[name].resistance
    if op == _OP_SW_INV:
        return 1.0 / circuit[name].resistance_at(0.0)
    if op == _OP_CAP:
        return circuit[name].capacitance
    if op == _OP_IND:
        return circuit[name].inductance
    if op == _OP_GAIN:
        return circuit[name].gain
    if op == _OP_GM:
        return circuit[name].gm
    if op == _OP_DC:
        return circuit[name].dc
    if op == _OP_ZERO:
        return 0.0
    raise AnalysisError(f"unknown template slot opcode {op}")  # pragma: no cover


def _eval_slots(
    circuit: Circuit, slots: tuple[tuple[int, str | None, bool], ...]
) -> list[float]:
    """Evaluate a slot table; ``negate`` replays the legacy ``-value``."""
    out = []
    for op, name, negate in slots:
        value = _slot_value(circuit, op, name)
        out.append(-value if negate else value)
    return out


class _Coo:
    """Ordered COO recorder: one entry per scalar ``+=`` of a legacy walk.

    ``pos`` of an appended entry is its index in the final value buffer;
    callers remember positions of non-constant slots so they can be
    refreshed each iteration.
    """

    def __init__(self):
        self.rows: list[int] = []
        self.cols: list[int] = []
        #: Constant-slot positions and their (opcode, name, negate) slots.
        self.const_pos: list[int] = []
        self.const_slots: list[tuple[int, str | None, bool]] = []

    def append(self, row: int, col: int) -> int:
        self.rows.append(row)
        self.cols.append(col)
        return len(self.rows) - 1

    def append_const(
        self, row: int, col: int, op: int, name: str | None = None,
        negate: bool = False,
    ) -> None:
        pos = self.append(row, col)
        self.const_pos.append(pos)
        self.const_slots.append((op, name, negate))

    def __len__(self) -> int:
        return len(self.rows)


class _Rows:
    """Ordered row-only recorder for residual / RHS vectors."""

    def __init__(self):
        self.rows: list[int] = []

    def append(self, row: int) -> int:
        self.rows.append(row)
        return len(self.rows) - 1

    def __len__(self) -> int:
        return len(self.rows)


class MnaTemplate:
    """Compiled stamp structure for one circuit topology.

    Build via :func:`template_for` (cached) or directly from a prototype
    circuit; call :meth:`bind` with any same-topology circuit to obtain a
    value-carrying :class:`BoundMna`.  Instances are pure data (index
    arrays plus opcode slot tables) and therefore picklable — see
    :class:`TemplateStore`.
    """

    def __init__(self, circuit: Circuit):
        self.key = circuit.topology_key()
        self.layout = layout_for(circuit)
        layout = self.layout
        n = layout.size
        self.size = n
        self.n_nodes = len(layout.nets)
        #: Ground maps to the extra slot ``n`` of the extended vector.
        ground_slot = n

        def xi(net: str) -> int:
            idx = layout.index(net)
            return ground_slot if idx == GROUND else idx

        # -- DC Newton program -------------------------------------------
        jac = _Coo()
        res = _Rows()
        # Pair currents: value = coeff * (x_ext[a] - x_ext[b]).
        pair_a: list[int] = []
        pair_b: list[int] = []
        pair_slots: list[tuple[int, str | None, bool]] = []
        r_pair_pos: list[int] = []
        r_pair_src: list[int] = []
        r_pair_sign: list[float] = []
        # Branch-current references: value = sign * x[k].
        r_br_pos: list[int] = []
        r_br_k: list[int] = []
        r_br_sign: list[float] = []
        # Voltage constraints: value = (xe[p] - xe[n]) - dc * source_scale.
        vc_p: list[int] = []
        vc_n: list[int] = []
        vc_dc_slots: list[tuple[int, str | None, bool]] = []
        r_vc_pos: list[int] = []
        # VCVS constraints: value = (xe[op]-xe[on]) - gain*(xe[cp]-xe[cn]).
        vg_op: list[int] = []
        vg_on: list[int] = []
        vg_cp: list[int] = []
        vg_cn: list[int] = []
        vg_gain_slots: list[tuple[int, str | None, bool]] = []
        r_vg_pos: list[int] = []
        # Source injections: value = signed_dc * source_scale.
        r_inj_pos: list[int] = []
        r_inj_slots: list[tuple[int, str | None, bool]] = []
        # MOSFET slots.
        mos_names: list[str] = []
        mos_xe: list[tuple[int, int, int, int]] = []  # (d, g, s, b) ext slots
        j_mos_pos: list[int] = []
        j_mos_dev: list[int] = []
        j_mos_kind: list[int] = []
        j_mos_sign: list[float] = []
        r_mos_pos: list[int] = []
        r_mos_dev: list[int] = []
        r_mos_sign: list[float] = []

        def emit_pair_current(
            a: int, b: int, op: int, name: str, node_i: int, node_j: int
        ):
            """cur = coeff*(xe[a]-xe[b]); resid[i] += cur; resid[j] -= cur."""
            pair_a.append(a)
            pair_b.append(b)
            pair_slots.append((op, name, False))
            src = len(pair_a) - 1
            for node, sign in ((node_i, +1.0), (node_j, -1.0)):
                if node == GROUND:
                    continue
                r_pair_pos.append(res.append(node))
                r_pair_src.append(src)
                r_pair_sign.append(sign)

        def emit_conductance(i: int, j: int, op: int, name: str):
            """Replay :func:`repro.analysis.mna.stamp_conductance`."""
            if i != GROUND:
                jac.append_const(i, i, op, name)
            if j != GROUND:
                jac.append_const(j, j, op, name)
            if i != GROUND and j != GROUND:
                jac.append_const(i, j, op, name, negate=True)
                jac.append_const(j, i, op, name, negate=True)

        def emit_branch_rows(p: int, nn: int, k: int):
            """Voltage-source-style jac cross terms + resid branch currents."""
            if p != GROUND:
                jac.append_const(p, k, _OP_ONE)
                jac.append_const(k, p, _OP_ONE)
            if nn != GROUND:
                jac.append_const(nn, k, _OP_ONE, negate=True)
                jac.append_const(k, nn, _OP_ONE, negate=True)
            if p != GROUND:
                r_br_pos.append(res.append(p))
                r_br_k.append(k)
                r_br_sign.append(+1.0)
            if nn != GROUND:
                r_br_pos.append(res.append(nn))
                r_br_k.append(k)
                r_br_sign.append(-1.0)

        for element in circuit:
            name = element.name
            if isinstance(element, Resistor):
                i, j = layout.index(element.n1), layout.index(element.n2)
                emit_conductance(i, j, _OP_RES_INV, name)
                emit_pair_current(
                    xi(element.n1), xi(element.n2), _OP_RES_INV, name, i, j
                )
            elif isinstance(element, Switch):
                i, j = layout.index(element.n1), layout.index(element.n2)
                emit_conductance(i, j, _OP_SW_INV, name)
                emit_pair_current(
                    xi(element.n1), xi(element.n2), _OP_SW_INV, name, i, j
                )
            elif isinstance(element, Capacitor):
                continue  # open in DC
            elif isinstance(element, CurrentSource):
                p = layout.index(element.positive)
                nn = layout.index(element.negative)
                if p != GROUND:
                    r_inj_pos.append(res.append(p))
                    r_inj_slots.append((_OP_DC, name, False))
                if nn != GROUND:
                    r_inj_pos.append(res.append(nn))
                    r_inj_slots.append((_OP_DC, name, True))
            elif isinstance(element, VoltageSource):
                p = layout.index(element.positive)
                nn = layout.index(element.negative)
                k = layout.branch(name)
                emit_branch_rows(p, nn, k)
                vc_p.append(xi(element.positive))
                vc_n.append(xi(element.negative))
                vc_dc_slots.append((_OP_DC, name, False))
                r_vc_pos.append(res.append(k))
            elif isinstance(element, Vcvs):
                op_ = layout.index(element.out_positive)
                on_ = layout.index(element.out_negative)
                cp = layout.index(element.ctrl_positive)
                cn = layout.index(element.ctrl_negative)
                k = layout.branch(name)
                # stamp_vcvs order: out rows, then the gain row entries.
                if op_ != GROUND:
                    jac.append_const(op_, k, _OP_ONE)
                    jac.append_const(k, op_, _OP_ONE)
                if on_ != GROUND:
                    jac.append_const(on_, k, _OP_ONE, negate=True)
                    jac.append_const(k, on_, _OP_ONE, negate=True)
                if cp != GROUND:
                    jac.append_const(k, cp, _OP_GAIN, name, negate=True)
                if cn != GROUND:
                    jac.append_const(k, cn, _OP_GAIN, name)
                if op_ != GROUND:
                    r_br_pos.append(res.append(op_))
                    r_br_k.append(k)
                    r_br_sign.append(+1.0)
                if on_ != GROUND:
                    r_br_pos.append(res.append(on_))
                    r_br_k.append(k)
                    r_br_sign.append(-1.0)
                vg_op.append(xi(element.out_positive))
                vg_on.append(xi(element.out_negative))
                vg_cp.append(xi(element.ctrl_positive))
                vg_cn.append(xi(element.ctrl_negative))
                vg_gain_slots.append((_OP_GAIN, name, False))
                r_vg_pos.append(res.append(k))
            elif isinstance(element, Vccs):
                op_ = layout.index(element.out_positive)
                on_ = layout.index(element.out_negative)
                cp = layout.index(element.ctrl_positive)
                cn = layout.index(element.ctrl_negative)
                for row, sign in ((op_, +1.0), (on_, -1.0)):
                    if row == GROUND:
                        continue
                    if cp != GROUND:
                        jac.append_const(row, cp, _OP_GM, name, negate=sign < 0)
                    if cn != GROUND:
                        jac.append_const(row, cn, _OP_GM, name, negate=sign > 0)
                emit_pair_current(
                    xi(element.ctrl_positive),
                    xi(element.ctrl_negative),
                    _OP_GM,
                    name,
                    op_,
                    on_,
                )
            elif isinstance(element, Inductor):
                p = layout.index(element.n1)
                nn = layout.index(element.n2)
                k = layout.branch(name)
                emit_branch_rows(p, nn, k)
                vc_p.append(xi(element.n1))
                vc_n.append(xi(element.n2))
                vc_dc_slots.append((_OP_ZERO, None, False))  # DC short
                r_vc_pos.append(res.append(k))
            elif isinstance(element, Mosfet):
                d = layout.index(element.drain)
                g_ = layout.index(element.gate)
                s = layout.index(element.source)
                b = layout.index(element.bulk)
                dev = len(mos_names)
                mos_names.append(name)
                mos_xe.append(
                    (
                        xi(element.drain),
                        xi(element.gate),
                        xi(element.source),
                        xi(element.bulk),
                    )
                )
                for node, sign in ((d, +1.0), (s, -1.0)):
                    if node == GROUND:
                        continue
                    r_mos_pos.append(res.append(node))
                    r_mos_dev.append(dev)
                    r_mos_sign.append(sign)
                for row, sign in ((d, +1.0), (s, -1.0)):
                    if row == GROUND:
                        continue
                    for col, kind, ks in (
                        (g_, _KIND_GM, sign),
                        (d, _KIND_GDS, sign),
                        (b, _KIND_GMB, sign),
                        (s, _KIND_GSUM, -sign),
                    ):
                        if col == GROUND:
                            continue
                        j_mos_pos.append(jac.append(row, col))
                        j_mos_dev.append(dev)
                        j_mos_kind.append(kind)
                        j_mos_sign.append(ks)
            else:
                raise AnalysisError(
                    f"element type {type(element).__name__} not supported "
                    "by the compiled DC template"
                )

        asarray = np.asarray
        self._jr = asarray(jac.rows, dtype=np.intp)
        self._jc = asarray(jac.cols, dtype=np.intp)
        self._j_const_pos = asarray(jac.const_pos, dtype=np.intp)
        self._j_const_slots = tuple(jac.const_slots)
        self._rr = asarray(res.rows, dtype=np.intp)
        self._pair_a = asarray(pair_a, dtype=np.intp)
        self._pair_b = asarray(pair_b, dtype=np.intp)
        self._pair_slots = tuple(pair_slots)
        self._r_pair_pos = asarray(r_pair_pos, dtype=np.intp)
        self._r_pair_src = asarray(r_pair_src, dtype=np.intp)
        self._r_pair_sign = asarray(r_pair_sign, dtype=float)
        self._r_br_pos = asarray(r_br_pos, dtype=np.intp)
        self._r_br_k = asarray(r_br_k, dtype=np.intp)
        self._r_br_sign = asarray(r_br_sign, dtype=float)
        self._vc_p = asarray(vc_p, dtype=np.intp)
        self._vc_n = asarray(vc_n, dtype=np.intp)
        self._vc_dc_slots = tuple(vc_dc_slots)
        self._r_vc_pos = asarray(r_vc_pos, dtype=np.intp)
        self._vg_op = asarray(vg_op, dtype=np.intp)
        self._vg_on = asarray(vg_on, dtype=np.intp)
        self._vg_cp = asarray(vg_cp, dtype=np.intp)
        self._vg_cn = asarray(vg_cn, dtype=np.intp)
        self._vg_gain_slots = tuple(vg_gain_slots)
        self._r_vg_pos = asarray(r_vg_pos, dtype=np.intp)
        self._r_inj_pos = asarray(r_inj_pos, dtype=np.intp)
        self._r_inj_slots = tuple(r_inj_slots)
        self.mos_names = tuple(mos_names)
        self._mos_xe = mos_xe
        self._j_mos_pos = asarray(j_mos_pos, dtype=np.intp)
        self._j_mos_dev = asarray(j_mos_dev, dtype=np.intp)
        self._j_mos_kind = asarray(j_mos_kind, dtype=np.intp)
        self._j_mos_sign = asarray(j_mos_sign, dtype=float)
        self._r_mos_pos = asarray(r_mos_pos, dtype=np.intp)
        self._r_mos_dev = asarray(r_mos_dev, dtype=np.intp)
        self._r_mos_sign = asarray(r_mos_sign, dtype=float)

        self._compile_linear(circuit)

    # -- small-signal program --------------------------------------------

    def _compile_linear(self, circuit: Circuit) -> None:
        """Record the :func:`~repro.analysis.smallsignal.linearize` walk."""
        layout = self.layout
        g = _Coo()
        c = _Coo()
        g_mos_pos: list[int] = []
        g_mos_dev: list[int] = []
        g_mos_kind: list[int] = []  # _KIND_GM / _KIND_GDS / _KIND_GMB / _KIND_GSUM
        g_mos_sign: list[float] = []
        c_mos_pos: list[int] = []
        c_mos_dev: list[int] = []
        c_mos_kind: list[int] = []  # index into _CAP_KINDS
        c_mos_sign: list[float] = []
        #: (branch-or-node index, sign, element name, 'branch'|'node') for b_ac.
        b_ac_slots: list[tuple[int, float, str]] = []

        def emit_sym(coo: _Coo, i: int, j: int, op: int, name: str) -> None:
            """Symmetric two-terminal stamp (conductance / capacitance)."""
            if i != GROUND:
                coo.append_const(i, i, op, name)
            if j != GROUND:
                coo.append_const(j, j, op, name)
            if i != GROUND and j != GROUND:
                coo.append_const(i, j, op, name, negate=True)
                coo.append_const(j, i, op, name, negate=True)

        def emit_mos_g(row: int, col: int, dev: int, kind: int, sign: float):
            g_mos_pos.append(g.append(row, col))
            g_mos_dev.append(dev)
            g_mos_kind.append(kind)
            g_mos_sign.append(sign)

        def emit_mos_vccs(op_: int, on_: int, cp: int, cn: int, dev: int, kind: int):
            """Replay stamp_transconductance with a device-slot value."""
            for row, sign in ((op_, +1.0), (on_, -1.0)):
                if row == GROUND:
                    continue
                if cp != GROUND:
                    emit_mos_g(row, cp, dev, kind, sign)
                if cn != GROUND:
                    emit_mos_g(row, cn, dev, kind, -sign)

        dev_of = {nm: i for i, nm in enumerate(self.mos_names)}

        for element in circuit:
            name = element.name
            if isinstance(element, Resistor):
                i, j = layout.index(element.n1), layout.index(element.n2)
                emit_sym(g, i, j, _OP_RES_INV, name)
            elif isinstance(element, Switch):
                i, j = layout.index(element.n1), layout.index(element.n2)
                emit_sym(g, i, j, _OP_SW_INV, name)
            elif isinstance(element, Capacitor):
                i, j = layout.index(element.n1), layout.index(element.n2)
                emit_sym(c, i, j, _OP_CAP, name)
            elif isinstance(element, Inductor):
                p, nn = layout.index(element.n1), layout.index(element.n2)
                k = layout.branch(name)
                if p != GROUND:
                    g.append_const(p, k, _OP_ONE)
                    g.append_const(k, p, _OP_ONE)
                if nn != GROUND:
                    g.append_const(nn, k, _OP_ONE, negate=True)
                    g.append_const(k, nn, _OP_ONE, negate=True)
                c.append_const(k, k, _OP_IND, name, negate=True)
            elif isinstance(element, VoltageSource):
                p = layout.index(element.positive)
                nn = layout.index(element.negative)
                k = layout.branch(name)
                if p != GROUND:
                    g.append_const(p, k, _OP_ONE)
                    g.append_const(k, p, _OP_ONE)
                if nn != GROUND:
                    g.append_const(nn, k, _OP_ONE, negate=True)
                    g.append_const(k, nn, _OP_ONE, negate=True)
                b_ac_slots.append((k, +1.0, name))
            elif isinstance(element, CurrentSource):
                p = layout.index(element.positive)
                nn = layout.index(element.negative)
                if p != GROUND:
                    b_ac_slots.append((p, -1.0, name))
                if nn != GROUND:
                    b_ac_slots.append((nn, +1.0, name))
            elif isinstance(element, Vcvs):
                op_ = layout.index(element.out_positive)
                on_ = layout.index(element.out_negative)
                cp = layout.index(element.ctrl_positive)
                cn = layout.index(element.ctrl_negative)
                k = layout.branch(name)
                if op_ != GROUND:
                    g.append_const(op_, k, _OP_ONE)
                    g.append_const(k, op_, _OP_ONE)
                if on_ != GROUND:
                    g.append_const(on_, k, _OP_ONE, negate=True)
                    g.append_const(k, on_, _OP_ONE, negate=True)
                if cp != GROUND:
                    g.append_const(k, cp, _OP_GAIN, name, negate=True)
                if cn != GROUND:
                    g.append_const(k, cn, _OP_GAIN, name)
            elif isinstance(element, Vccs):
                op_ = layout.index(element.out_positive)
                on_ = layout.index(element.out_negative)
                cp = layout.index(element.ctrl_positive)
                cn = layout.index(element.ctrl_negative)
                for row, sign in ((op_, +1.0), (on_, -1.0)):
                    if row == GROUND:
                        continue
                    if cp != GROUND:
                        g.append_const(row, cp, _OP_GM, name, negate=sign < 0)
                    if cn != GROUND:
                        g.append_const(row, cn, _OP_GM, name, negate=sign > 0)
            elif isinstance(element, Mosfet):
                dev = dev_of[name]
                d = layout.index(element.drain)
                g_ = layout.index(element.gate)
                s = layout.index(element.source)
                b = layout.index(element.bulk)
                emit_mos_vccs(d, s, g_, s, dev, _KIND_GM)
                # stamp_conductance(d, s, gds)
                for row, col, sign in (
                    (d, d, +1.0),
                    (s, s, +1.0),
                    (d, s, -1.0),
                    (s, d, -1.0),
                ):
                    if row == GROUND or col == GROUND:
                        continue
                    emit_mos_g(row, col, dev, _KIND_GDS, sign)
                emit_mos_vccs(d, s, b, s, dev, _KIND_GMB)
                for kind, (t1, t2) in enumerate(
                    ((g_, s), (g_, d), (g_, b), (d, b), (s, b))
                ):
                    for row, col, sign in (
                        (t1, t1, +1.0),
                        (t2, t2, +1.0),
                        (t1, t2, -1.0),
                        (t2, t1, -1.0),
                    ):
                        if row == GROUND or col == GROUND:
                            continue
                        c_mos_pos.append(c.append(row, col))
                        c_mos_dev.append(dev)
                        c_mos_kind.append(kind)
                        c_mos_sign.append(sign)
            else:
                raise AnalysisError(
                    f"element type {type(element).__name__} not supported "
                    "by the compiled small-signal template"
                )

        asarray = np.asarray
        self._gr = asarray(g.rows, dtype=np.intp)
        self._gc = asarray(g.cols, dtype=np.intp)
        self._g_const_pos = asarray(g.const_pos, dtype=np.intp)
        self._g_const_slots = tuple(g.const_slots)
        self._cr = asarray(c.rows, dtype=np.intp)
        self._cc = asarray(c.cols, dtype=np.intp)
        self._c_const_pos = asarray(c.const_pos, dtype=np.intp)
        self._c_const_slots = tuple(c.const_slots)
        self._g_mos_pos = asarray(g_mos_pos, dtype=np.intp)
        self._g_mos_dev = asarray(g_mos_dev, dtype=np.intp)
        self._g_mos_kind = asarray(g_mos_kind, dtype=np.intp)
        self._g_mos_sign = asarray(g_mos_sign, dtype=float)
        self._c_mos_pos = asarray(c_mos_pos, dtype=np.intp)
        self._c_mos_dev = asarray(c_mos_dev, dtype=np.intp)
        self._c_mos_kind = asarray(c_mos_kind, dtype=np.intp)
        self._c_mos_sign = asarray(c_mos_sign, dtype=float)
        self._b_ac_slots = b_ac_slots

    # -- binding ----------------------------------------------------------

    def bind(self, circuit: Circuit) -> "BoundMna":
        """Fill the value slots from ``circuit`` (same topology required)."""
        if circuit.topology_key() != self.key:
            raise AnalysisError(
                f"circuit {circuit.name!r} does not match the compiled "
                "template's topology"
            )
        return BoundMna(self, circuit)

    def bind_stack(self, circuits: "list[Circuit]") -> "BoundMnaStack":
        """Bind one template to a corner set of same-topology circuits."""
        return BoundMnaStack(self, circuits)


class BoundMna:
    """A template bound to one circuit's element values.

    Holds its own value buffers, so concurrently bound instances (thread
    backend) never share mutable state; the structure arrays on the parent
    :class:`MnaTemplate` are read-only.
    """

    def __init__(self, template: MnaTemplate, circuit: Circuit):
        self.template = template
        t = template
        n_mos = max(len(t.mos_names), 1)
        # DC buffers: constants filled by rebind, MOSFET slots per call.
        self._jv = np.zeros(len(t._jr))
        self._rv = np.zeros(len(t._rr))
        self._pair_coeff = np.zeros(len(t._pair_slots))
        self._vc_dc = np.zeros(len(t._vc_dc_slots))
        self._vg_gain = np.zeros(len(t._vg_gain_slots))
        self._inj_dc = np.zeros(len(t._r_inj_slots))
        self._kindvals = np.zeros((4, n_mos))
        self._ids = np.zeros(n_mos)
        self._xe = np.empty(t.size + 1)
        # Small-signal buffers.
        self._gv = np.zeros(len(t._gr))
        self._cv = np.zeros(len(t._cr))
        self._b_ac = np.zeros(t.size, dtype=complex)
        self.rebind(circuit)

    def rebind(self, circuit: Circuit) -> "BoundMna":
        """Refresh every value slot from ``circuit`` (same topology).

        Evaluation loops that rebuild the same testbench topology per
        candidate reuse one :class:`BoundMna` and rebind it — the buffers
        and index structure carry over, only values are re-read.
        """
        t = self.template
        self.circuit = circuit
        self.layout: MnaLayout = t.layout.with_circuit(circuit)
        if len(t._j_const_pos):
            self._jv[t._j_const_pos] = _eval_slots(circuit, t._j_const_slots)
        if len(self._pair_coeff):
            self._pair_coeff[:] = _eval_slots(circuit, t._pair_slots)
        if len(self._vc_dc):
            self._vc_dc[:] = _eval_slots(circuit, t._vc_dc_slots)
        if len(self._vg_gain):
            self._vg_gain[:] = _eval_slots(circuit, t._vg_gain_slots)
        if len(self._inj_dc):
            self._inj_dc[:] = _eval_slots(circuit, t._r_inj_slots)
        self._mosfets = [circuit[nm] for nm in t.mos_names]
        #: (params, w, l, mult, d, g, s, b) per device — flat tuples so the
        #: per-iteration model loop avoids attribute chains.
        self._mos_args = [
            (e.params, e.w, e.l, e.mult) + t._mos_xe[i]
            for i, e in enumerate(self._mosfets)
        ]
        if len(t._g_const_pos):
            self._gv[t._g_const_pos] = _eval_slots(circuit, t._g_const_slots)
        if len(t._c_const_pos):
            self._cv[t._c_const_pos] = _eval_slots(circuit, t._c_const_slots)
        b_ac = self._b_ac
        b_ac[:] = 0.0
        for idx, sign, nm in t._b_ac_slots:
            if sign > 0:
                b_ac[idx] += circuit[nm].ac
            else:
                b_ac[idx] -= circuit[nm].ac
        return self

    # -- DC Newton assembly ------------------------------------------------

    def assemble(
        self, x: np.ndarray, gmin: float, source_scale: float
    ) -> tuple[np.ndarray, np.ndarray]:
        """Bit-identical replacement for :func:`repro.analysis.dc._assemble`."""
        t = self.template
        n = t.size
        xe = self._xe
        xe[:n] = x
        xe[n] = 0.0

        # MOSFET small-signal quantities (same scalar model calls as legacy).
        kindvals = self._kindvals
        ids_arr = self._ids
        for dev, (params, w, l, mult, d, g_, s, b) in enumerate(self._mos_args):
            xs = xe[s]
            ids, gm, gds, gmb = dc_current(
                params, w, l, xe[g_] - xs, xe[d] - xs, xe[b] - xs
            )
            ids_arr[dev] = ids * mult
            kindvals[_KIND_GM, dev] = gm = gm * mult
            kindvals[_KIND_GDS, dev] = gds = gds * mult
            kindvals[_KIND_GMB, dev] = gmb = gmb * mult
            kindvals[_KIND_GSUM, dev] = gm + gds + gmb

        jv = self._jv
        if len(t._j_mos_pos):
            jv[t._j_mos_pos] = t._j_mos_sign * kindvals[t._j_mos_kind, t._j_mos_dev]
        jac = np.zeros((n, n))
        np.add.at(jac, (t._jr, t._jc), jv)

        rv = self._rv
        if len(t._r_pair_pos):
            cur = self._pair_coeff * (xe[t._pair_a] - xe[t._pair_b])
            rv[t._r_pair_pos] = t._r_pair_sign * cur[t._r_pair_src]
        if len(t._r_br_pos):
            rv[t._r_br_pos] = t._r_br_sign * x[t._r_br_k]
        if len(t._r_vc_pos):
            rv[t._r_vc_pos] = (xe[t._vc_p] - xe[t._vc_n]) - self._vc_dc * source_scale
        if len(t._r_vg_pos):
            rv[t._r_vg_pos] = (xe[t._vg_op] - xe[t._vg_on]) - self._vg_gain * (
                xe[t._vg_cp] - xe[t._vg_cn]
            )
        if len(t._r_inj_pos):
            rv[t._r_inj_pos] = self._inj_dc * source_scale
        if len(t._r_mos_pos):
            rv[t._r_mos_pos] = t._r_mos_sign * ids_arr[t._r_mos_dev]
        resid = np.zeros(n)
        np.add.at(resid, t._rr, rv)

        if gmin > 0.0:
            diag = np.arange(t.n_nodes)
            jac[diag, diag] += gmin
            resid[:t.n_nodes] += gmin * x[:t.n_nodes]
        return jac, resid

    def newton_solve(self, jac: np.ndarray, rhs: np.ndarray) -> np.ndarray:
        """``np.linalg.solve`` minus its per-call wrapper overhead.

        The Newton loop solves thousands of small dense systems; numpy's
        public wrapper spends more time validating/coercing than LAPACK
        spends solving.  This calls the same underlying gufunc directly and
        falls back to ``np.linalg.solve`` whenever the fast result is not
        finite — which covers exact singularity (LAPACK info > 0 fills the
        result with NaNs instead of raising) by re-raising through the
        public path, and near-singular overflow by returning the public
        path's bit-identical inf/NaN result.  Either way the caller sees
        exactly what ``np.linalg.solve`` would have produced.
        """
        if _GUFUNC_SOLVE1 is None:
            return np.linalg.solve(jac, rhs)
        try:
            with np.errstate(all="ignore"):
                dx = _GUFUNC_SOLVE1(jac, rhs)
        except np.linalg.LinAlgError:
            dx = None
        if dx is None or not np.isfinite(dx).all():
            return np.linalg.solve(jac, rhs)
        return dx

    # -- small-signal ------------------------------------------------------

    def linearize(self, op) -> LinearizedCircuit:
        """Bit-identical, noise-free :func:`~repro.analysis.smallsignal.linearize`.

        ``op`` is the :class:`~repro.analysis.dc.DcSolution` of this bound
        circuit.  Noise sources are not carried (the compiled evaluator path
        never uses them); call the legacy ``linearize`` for noise analysis.
        """
        t = self.template
        n = t.size
        kindvals = self._kindvals
        capvals = np.zeros((len(_CAP_KINDS), max(len(self._mosfets), 1)))
        for dev, element in enumerate(self._mosfets):
            device_op = op.device_ops[element.name]
            kindvals[_KIND_GM, dev] = device_op.gm
            kindvals[_KIND_GDS, dev] = device_op.gds
            kindvals[_KIND_GMB, dev] = device_op.gmb
            for kind, attr in enumerate(_CAP_KINDS):
                capvals[kind, dev] = getattr(device_op, attr)

        gv = self._gv
        if len(t._g_mos_pos):
            gv[t._g_mos_pos] = t._g_mos_sign * kindvals[t._g_mos_kind, t._g_mos_dev]
        g_matrix = np.zeros((n, n))
        np.add.at(g_matrix, (t._gr, t._gc), gv)

        cv = self._cv
        if len(t._c_mos_pos):
            cv[t._c_mos_pos] = t._c_mos_sign * capvals[t._c_mos_kind, t._c_mos_dev]
        c_matrix = np.zeros((n, n))
        np.add.at(c_matrix, (t._cr, t._cc), cv)

        return LinearizedCircuit(
            layout=self.layout,
            g_matrix=g_matrix,
            c_matrix=c_matrix,
            b_ac=self._b_ac.copy(),
            op=op,
            noise_sources=[],
        )


class BoundMnaStack:
    """One template bound to a *corner set* of same-topology circuits.

    The value-slot rebinding carries a leading corner dimension: every
    constant buffer becomes ``(n_corners, n_slots)`` and
    :meth:`linearize` fills every corner's small-signal system in one
    pass, returning per-corner :class:`~repro.analysis.smallsignal.LinearizedCircuit`
    objects whose matrices are bit-identical to the single-corner
    :meth:`BoundMna.linearize` results (each corner's scatter replays the
    same ordered program).  DC solves stay per-corner — each corner's
    Newton/homotopy warm-start chain is an independent state machine — via
    the :attr:`corners` sub-bindings.
    """

    def __init__(
        self,
        template: MnaTemplate,
        circuits: "list[Circuit] | None" = None,
        bounds: "list[BoundMna] | None" = None,
    ):
        if (circuits is None) == (bounds is None):
            raise AnalysisError(
                "BoundMnaStack takes exactly one of circuits= or bounds="
            )
        self.template = template
        #: Per-corner :class:`BoundMna` bindings (the DC path).
        self.corners = (
            [template.bind(c) for c in circuits]
            if bounds is None
            else list(bounds)
        )
        t = template
        n_corners = len(self.corners)
        self.n_corners = n_corners
        # Corner-stacked small-signal value buffers.
        self._gv_stack = np.zeros((n_corners, len(t._gr)))
        self._cv_stack = np.zeros((n_corners, len(t._cr)))
        self._b_ac_stack = np.zeros((n_corners, t.size), dtype=complex)
        self.refresh()

    @classmethod
    def from_bounds(cls, bounds: "list[BoundMna]") -> "BoundMnaStack":
        """Stack already-bound corners (e.g. per-corner evaluator bindings)."""
        if not bounds:
            raise AnalysisError("BoundMnaStack needs at least one binding")
        return cls(bounds[0].template, bounds=bounds)

    def refresh(self) -> "BoundMnaStack":
        """Pull every corner's current slot values into the stacked buffers."""
        for c, bound in enumerate(self.corners):
            self._gv_stack[c] = bound._gv
            self._cv_stack[c] = bound._cv
            self._b_ac_stack[c] = bound._b_ac
        return self

    def rebind(self, circuits: "list[Circuit]") -> "BoundMnaStack":
        """Refresh every corner's value slots (corner-dimension rebinding)."""
        if len(circuits) != self.n_corners:
            raise AnalysisError(
                f"corner count changed: bound {self.n_corners}, "
                f"got {len(circuits)}"
            )
        for bound, circuit in zip(self.corners, circuits):
            if bound.circuit is not circuit:
                bound.rebind(circuit)
        return self.refresh()

    def linearize(self, ops) -> "list[LinearizedCircuit]":
        """Per-corner linearizations from per-corner DC solutions.

        ``ops`` is one :class:`~repro.analysis.dc.DcSolution` per corner.
        Each corner's matrices equal its :meth:`BoundMna.linearize` output
        bit for bit; the stacked buffers only batch the slot refresh.
        """
        t = self.template
        n = t.size
        if len(ops) != self.n_corners:
            raise AnalysisError(
                f"expected {self.n_corners} operating points, got {len(ops)}"
            )
        g_stack = np.zeros((self.n_corners, n, n))
        c_stack = np.zeros((self.n_corners, n, n))
        out = []
        for c, (bound, op) in enumerate(zip(self.corners, ops)):
            kindvals = bound._kindvals
            capvals = np.zeros((len(_CAP_KINDS), max(len(bound._mosfets), 1)))
            for dev, element in enumerate(bound._mosfets):
                device_op = op.device_ops[element.name]
                kindvals[_KIND_GM, dev] = device_op.gm
                kindvals[_KIND_GDS, dev] = device_op.gds
                kindvals[_KIND_GMB, dev] = device_op.gmb
                for kind, attr in enumerate(_CAP_KINDS):
                    capvals[kind, dev] = getattr(device_op, attr)
            gv = self._gv_stack[c]
            if len(t._g_mos_pos):
                gv[t._g_mos_pos] = (
                    t._g_mos_sign * kindvals[t._g_mos_kind, t._g_mos_dev]
                )
            np.add.at(g_stack[c], (t._gr, t._gc), gv)
            cv = self._cv_stack[c]
            if len(t._c_mos_pos):
                cv[t._c_mos_pos] = (
                    t._c_mos_sign * capvals[t._c_mos_kind, t._c_mos_dev]
                )
            np.add.at(c_stack[c], (t._cr, t._cc), cv)
            out.append(
                LinearizedCircuit(
                    layout=bound.layout,
                    g_matrix=g_stack[c],
                    c_matrix=c_stack[c],
                    b_ac=self._b_ac_stack[c].copy(),
                    op=op,
                    noise_sources=[],
                )
            )
        return out


# ---------------------------------------------------------------------------
# Template cache + cross-process persistence.
# ---------------------------------------------------------------------------

#: topology_key -> MnaTemplate, bounded like the layout cache.
_TEMPLATE_CACHE: dict[tuple, MnaTemplate] = {}
_TEMPLATE_CACHE_MAX = 128

#: Compile / persistence counters: ``compiled`` counts fresh
#: ``MnaTemplate`` constructions in this process, ``store_hits`` templates
#: loaded from a :class:`TemplateStore`, ``store_misses`` store lookups
#: that fell through to a compile.  Benchmarks reset and read these to
#: prove that warm reruns stop recompiling.
#: Stored in the process-global metrics registry (``template.*`` counters,
#: see :mod:`repro.obs`); this view keeps the historical dict API.
TEMPLATE_STATS = CounterView(
    REGISTRY, "template", ("compiled", "store_hits", "store_misses")
)


def reset_template_stats() -> None:
    """Zero :data:`TEMPLATE_STATS` (benchmark/test hook)."""
    for key in TEMPLATE_STATS:
        TEMPLATE_STATS[key] = 0


def _key_digest(key: tuple) -> str:
    """Stable content address of a topology key (filesystem-safe)."""
    return hashlib.sha256(repr(key).encode("utf-8")).hexdigest()


class TemplateStore:
    """Content-addressed on-disk store of compiled stamp templates.

    Templates are pure data after the opcode refactor, so they pickle; the
    store keys them by a digest of the circuit topology key.  Writes are
    atomic (tempfile + rename), reads degrade to a miss on any corruption
    — a damaged entry costs one recompile, never an error.  The persistent
    block cache exposes one of these under ``<cache_dir>/templates`` so
    process-pool and queue workers share compiled programs across jobs.
    """

    def __init__(self, directory: str | os.PathLike):
        self.directory = Path(directory)

    def _path(self, key: tuple) -> Path:
        return self.directory / f"{_key_digest(key)}.tmpl.pkl"

    def load(self, key: tuple) -> MnaTemplate | None:
        """The stored template for ``key``, or ``None`` on miss/corruption."""
        try:
            with open(self._path(key), "rb") as handle:
                template = pickle.load(handle)
        except FileNotFoundError:
            return None
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError,
                ValueError, ImportError):
            try:
                os.unlink(self._path(key))
            except OSError:
                pass
            return None
        if getattr(template, "key", None) != key:
            return None
        return template

    def save(self, template: MnaTemplate) -> None:
        """Persist ``template`` atomically; best-effort (I/O errors ignored)."""
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
            payload = pickle.dumps(template, protocol=pickle.HIGHEST_PROTOCOL)
            fd, tmp = tempfile.mkstemp(
                dir=self.directory, prefix=".tmpl-", suffix=".tmp"
            )
            try:
                with os.fdopen(fd, "wb") as handle:
                    handle.write(payload)
                os.replace(tmp, self._path(template.key))
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
        except OSError:
            pass


def template_for(circuit: Circuit, store: TemplateStore | None = None) -> MnaTemplate:
    """The compiled stamp template of ``circuit``'s topology (cached).

    Lookup order: in-process cache, then ``store`` (when given), then a
    fresh compile — which is written back to ``store`` so the next process
    skips it.
    """
    key = circuit.topology_key()
    cached = _TEMPLATE_CACHE.get(key)
    if cached is None:
        if len(_TEMPLATE_CACHE) >= _TEMPLATE_CACHE_MAX:
            _TEMPLATE_CACHE.clear()
        if store is not None:
            cached = store.load(key)
            if cached is not None:
                TEMPLATE_STATS["store_hits"] += 1
            else:
                TEMPLATE_STATS["store_misses"] += 1
        if cached is None:
            cached = MnaTemplate(circuit)
            TEMPLATE_STATS["compiled"] += 1
            if store is not None:
                store.save(cached)
        _TEMPLATE_CACHE[key] = cached
    return cached


def bind_template(circuit: Circuit, store: TemplateStore | None = None) -> BoundMna:
    """Compile (cached) and bind the template for ``circuit`` in one step."""
    return template_for(circuit, store=store).bind(circuit)


__all__ = [
    "BoundMna",
    "BoundMnaStack",
    "MnaTemplate",
    "TemplateStore",
    "TEMPLATE_STATS",
    "bind_template",
    "reset_template_stats",
    "template_for",
]
