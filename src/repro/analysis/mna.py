"""Modified nodal analysis: unknown layout and matrix stamp helpers.

Sign conventions (used consistently across DC/AC/transient):

* Node equations state that the sum of currents *leaving* the node is zero.
* A current source drives positive current from its ``positive`` terminal
  through the source to its ``negative`` terminal (SPICE convention), so it
  contributes ``-I`` to the RHS of the positive node's equation.
* Branch currents (voltage sources, VCVS, inductors) flow from the branch's
  positive terminal through the element to the negative terminal.
"""

from __future__ import annotations

from contextlib import contextmanager

import numpy as np

from repro.circuit.elements import Inductor, Vcvs, VoltageSource
from repro.circuit.netlist import GROUND_NAMES, Circuit
from repro.errors import NetlistError

#: Index used for ground (rows/columns are simply skipped).
GROUND = -1


class MnaLayout:
    """Assigns MNA unknown indices for a circuit.

    Unknowns are the non-ground node voltages followed by one branch current
    per voltage-defined element (independent V source, VCVS, inductor).
    """

    def __init__(self, circuit: Circuit):
        self.circuit = circuit
        nets = circuit.non_ground_nets()
        self.node_of = {net: i for i, net in enumerate(nets)}
        self.nets = nets
        branch_elements = [
            e for e in circuit if isinstance(e, (VoltageSource, Vcvs, Inductor))
        ]
        self.branch_of = {
            e.name: len(nets) + k for k, e in enumerate(branch_elements)
        }
        self.branch_elements = branch_elements
        self.size = len(nets) + len(branch_elements)

    def with_circuit(self, circuit: Circuit) -> "MnaLayout":
        """A shallow rebind of this layout onto a same-topology circuit.

        Index maps are shared (they depend only on the topology); the
        circuit reference — which analyses walk for element *values* — is
        swapped, so a cached layout never leaks stale values.
        """
        clone = object.__new__(MnaLayout)
        clone.circuit = circuit
        clone.node_of = self.node_of
        clone.nets = self.nets
        clone.branch_of = self.branch_of
        clone.branch_elements = [circuit[e.name] for e in self.branch_elements]
        clone.size = self.size
        return clone

    def index(self, net: str) -> int:
        """Unknown index of a net; :data:`GROUND` for the reference node."""
        if net in GROUND_NAMES:
            return GROUND
        try:
            return self.node_of[net]
        except KeyError:
            raise NetlistError(f"net {net!r} not in circuit {self.circuit.name!r}") from None

    def branch(self, element_name: str) -> int:
        """Unknown index of a branch current."""
        try:
            return self.branch_of[element_name]
        except KeyError:
            raise NetlistError(
                f"element {element_name!r} has no branch current"
            ) from None

    def voltages(self, x: np.ndarray) -> dict[str, float]:
        """Extract node voltages (ground included as 0) from a solution."""
        out = {net: float(x[i]) for net, i in self.node_of.items()}
        out["gnd"] = 0.0
        return out


# ---------------------------------------------------------------------------
# Layout cache.
# ---------------------------------------------------------------------------

#: topology_key -> MnaLayout.  Bounded: cleared wholesale when it outgrows
#: _LAYOUT_CACHE_MAX (a sizing loop touches a handful of topologies; the
#: bound only guards pathological enumeration workloads).
_LAYOUT_CACHE: dict[tuple, MnaLayout] = {}
_LAYOUT_CACHE_MAX = 256

#: Kill switch for the layout cache.  Only the kernel benchmarks flip it
#: (via :func:`layout_cache_disabled`), to time the pre-kernel baseline
#: that re-derived the layout on every analysis call.
_LAYOUT_CACHE_ENABLED = True


@contextmanager
def layout_cache_disabled():
    """Temporarily re-derive layouts per call (benchmark baseline mode)."""
    global _LAYOUT_CACHE_ENABLED
    previous = _LAYOUT_CACHE_ENABLED
    _LAYOUT_CACHE_ENABLED = False
    try:
        yield
    finally:
        _LAYOUT_CACHE_ENABLED = previous


def layout_for(circuit: Circuit) -> MnaLayout:
    """The MNA layout of ``circuit``, cached by circuit topology.

    Repeated analyses of the same testbench *topology* (every Newton
    iteration, every candidate of a sizing loop) share one index-map
    construction; the returned layout is rebound to the live circuit so
    element values are always read from the caller's instance.
    """
    if not _LAYOUT_CACHE_ENABLED:
        return MnaLayout(circuit)
    key = circuit.topology_key()
    cached = _LAYOUT_CACHE.get(key)
    if cached is None:
        if len(_LAYOUT_CACHE) >= _LAYOUT_CACHE_MAX:
            _LAYOUT_CACHE.clear()
        cached = MnaLayout(circuit)
        _LAYOUT_CACHE[key] = cached
        return cached
    return cached.with_circuit(circuit)


# ---------------------------------------------------------------------------
# Stamp helpers.  All skip ground indices transparently.
# ---------------------------------------------------------------------------


def stamp_conductance(matrix: np.ndarray, i: int, j: int, g: float) -> None:
    """Stamp a conductance ``g`` between unknowns ``i`` and ``j``."""
    if i != GROUND:
        matrix[i, i] += g
    if j != GROUND:
        matrix[j, j] += g
    if i != GROUND and j != GROUND:
        matrix[i, j] -= g
        matrix[j, i] -= g


def stamp_transconductance(
    matrix: np.ndarray, op: int, on: int, cp: int, cn: int, gm: float
) -> None:
    """Stamp a VCCS: current gm*(v_cp - v_cn) leaving ``op`` into ``on``."""
    for row, sign_row in ((op, +1.0), (on, -1.0)):
        if row == GROUND:
            continue
        if cp != GROUND:
            matrix[row, cp] += sign_row * gm
        if cn != GROUND:
            matrix[row, cn] -= sign_row * gm


def stamp_current(rhs: np.ndarray, p: int, n: int, current: float) -> None:
    """Stamp an independent current source (positive current p -> n)."""
    if p != GROUND:
        rhs[p] -= current
    if n != GROUND:
        rhs[n] += current


def stamp_voltage_source(
    matrix: np.ndarray, rhs: np.ndarray, p: int, n: int, k: int, value: float
) -> None:
    """Stamp an independent voltage source with branch index ``k``."""
    if p != GROUND:
        matrix[p, k] += 1.0
        matrix[k, p] += 1.0
    if n != GROUND:
        matrix[n, k] -= 1.0
        matrix[k, n] -= 1.0
    rhs[k] += value


def stamp_vcvs(
    matrix: np.ndarray, op: int, on: int, cp: int, cn: int, k: int, gain: float
) -> None:
    """Stamp a VCVS with branch index ``k``: v_op - v_on = gain*(v_cp - v_cn)."""
    if op != GROUND:
        matrix[op, k] += 1.0
        matrix[k, op] += 1.0
    if on != GROUND:
        matrix[on, k] -= 1.0
        matrix[k, on] -= 1.0
    if cp != GROUND:
        matrix[k, cp] -= gain
    if cn != GROUND:
        matrix[k, cn] += gain


def stamp_inductor_branch(
    g_matrix: np.ndarray, c_matrix: np.ndarray, p: int, n: int, k: int, inductance: float
) -> None:
    """Stamp an inductor branch for (G + sC) analyses: v_p - v_n - s*L*i = 0."""
    if p != GROUND:
        g_matrix[p, k] += 1.0
        g_matrix[k, p] += 1.0
    if n != GROUND:
        g_matrix[n, k] -= 1.0
        g_matrix[k, n] -= 1.0
    c_matrix[k, k] -= inductance
