"""Modified nodal analysis: unknown layout and matrix stamp helpers.

Sign conventions (used consistently across DC/AC/transient):

* Node equations state that the sum of currents *leaving* the node is zero.
* A current source drives positive current from its ``positive`` terminal
  through the source to its ``negative`` terminal (SPICE convention), so it
  contributes ``-I`` to the RHS of the positive node's equation.
* Branch currents (voltage sources, VCVS, inductors) flow from the branch's
  positive terminal through the element to the negative terminal.
"""

from __future__ import annotations

import numpy as np

from repro.circuit.elements import Inductor, Vcvs, VoltageSource
from repro.circuit.netlist import GROUND_NAMES, Circuit
from repro.errors import NetlistError

#: Index used for ground (rows/columns are simply skipped).
GROUND = -1


class MnaLayout:
    """Assigns MNA unknown indices for a circuit.

    Unknowns are the non-ground node voltages followed by one branch current
    per voltage-defined element (independent V source, VCVS, inductor).
    """

    def __init__(self, circuit: Circuit):
        self.circuit = circuit
        nets = circuit.non_ground_nets()
        self.node_of = {net: i for i, net in enumerate(nets)}
        self.nets = nets
        branch_elements = [
            e for e in circuit if isinstance(e, (VoltageSource, Vcvs, Inductor))
        ]
        self.branch_of = {
            e.name: len(nets) + k for k, e in enumerate(branch_elements)
        }
        self.branch_elements = branch_elements
        self.size = len(nets) + len(branch_elements)

    def index(self, net: str) -> int:
        """Unknown index of a net; :data:`GROUND` for the reference node."""
        if net in GROUND_NAMES:
            return GROUND
        try:
            return self.node_of[net]
        except KeyError:
            raise NetlistError(f"net {net!r} not in circuit {self.circuit.name!r}") from None

    def branch(self, element_name: str) -> int:
        """Unknown index of a branch current."""
        try:
            return self.branch_of[element_name]
        except KeyError:
            raise NetlistError(
                f"element {element_name!r} has no branch current"
            ) from None

    def voltages(self, x: np.ndarray) -> dict[str, float]:
        """Extract node voltages (ground included as 0) from a solution."""
        out = {net: float(x[i]) for net, i in self.node_of.items()}
        out["gnd"] = 0.0
        return out


# ---------------------------------------------------------------------------
# Stamp helpers.  All skip ground indices transparently.
# ---------------------------------------------------------------------------


def stamp_conductance(matrix: np.ndarray, i: int, j: int, g: float) -> None:
    """Stamp a conductance ``g`` between unknowns ``i`` and ``j``."""
    if i != GROUND:
        matrix[i, i] += g
    if j != GROUND:
        matrix[j, j] += g
    if i != GROUND and j != GROUND:
        matrix[i, j] -= g
        matrix[j, i] -= g


def stamp_transconductance(
    matrix: np.ndarray, op: int, on: int, cp: int, cn: int, gm: float
) -> None:
    """Stamp a VCCS: current gm*(v_cp - v_cn) leaving ``op`` into ``on``."""
    for row, sign_row in ((op, +1.0), (on, -1.0)):
        if row == GROUND:
            continue
        if cp != GROUND:
            matrix[row, cp] += sign_row * gm
        if cn != GROUND:
            matrix[row, cn] -= sign_row * gm


def stamp_current(rhs: np.ndarray, p: int, n: int, current: float) -> None:
    """Stamp an independent current source (positive current p -> n)."""
    if p != GROUND:
        rhs[p] -= current
    if n != GROUND:
        rhs[n] += current


def stamp_voltage_source(
    matrix: np.ndarray, rhs: np.ndarray, p: int, n: int, k: int, value: float
) -> None:
    """Stamp an independent voltage source with branch index ``k``."""
    if p != GROUND:
        matrix[p, k] += 1.0
        matrix[k, p] += 1.0
    if n != GROUND:
        matrix[n, k] -= 1.0
        matrix[k, n] -= 1.0
    rhs[k] += value


def stamp_vcvs(
    matrix: np.ndarray, op: int, on: int, cp: int, cn: int, k: int, gain: float
) -> None:
    """Stamp a VCVS with branch index ``k``: v_op - v_on = gain*(v_cp - v_cn)."""
    if op != GROUND:
        matrix[op, k] += 1.0
        matrix[k, op] += 1.0
    if on != GROUND:
        matrix[on, k] -= 1.0
        matrix[k, on] -= 1.0
    if cp != GROUND:
        matrix[k, cp] -= gain
    if cn != GROUND:
        matrix[k, cn] += gain


def stamp_inductor_branch(
    g_matrix: np.ndarray, c_matrix: np.ndarray, p: int, n: int, k: int, inductance: float
) -> None:
    """Stamp an inductor branch for (G + sC) analyses: v_p - v_n - s*L*i = 0."""
    if p != GROUND:
        g_matrix[p, k] += 1.0
        g_matrix[k, p] += 1.0
    if n != GROUND:
        g_matrix[n, k] -= 1.0
        g_matrix[k, n] -= 1.0
    c_matrix[k, k] -= inductance
