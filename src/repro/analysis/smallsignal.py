"""Linearization: build small-signal G and C matrices at a DC operating point.

The linearized circuit is the bridge between the nonlinear netlist and every
frequency-domain analysis (AC, poles/zeros, noise).  It is also what the
DPI/SFG construction consumes: each entry of G/C is a branch admittance the
signal-flow graph can be read from.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.dc import DcSolution, solve_dc
from repro.analysis.mna import (
    GROUND,
    MnaLayout,
    layout_for,
    stamp_conductance,
    stamp_inductor_branch,
    stamp_transconductance,
    stamp_vcvs,
    stamp_voltage_source,
)
from repro.circuit.elements import (
    Capacitor,
    CurrentSource,
    Inductor,
    Mosfet,
    Resistor,
    Switch,
    Vccs,
    Vcvs,
    VoltageSource,
)
from repro.circuit.netlist import Circuit
from repro.errors import AnalysisError


@dataclass
class LinearizedCircuit:
    """Small-signal view: (G + sC) x = b with noise-source bookkeeping."""

    layout: MnaLayout
    #: Conductance matrix (real).
    g_matrix: np.ndarray
    #: Capacitance matrix (real); system is G + s*C.
    c_matrix: np.ndarray
    #: AC excitation vector (from source ``ac`` values).
    b_ac: np.ndarray
    #: The DC solution this linearization was taken at.
    op: DcSolution
    #: Noise sources: (label, node_p, node_n, psd_fn(frequency_hz) -> A^2/Hz).
    noise_sources: list[tuple[str, int, int, object]]

    @property
    def size(self) -> int:
        """Number of MNA unknowns."""
        return self.layout.size

    def index(self, net: str) -> int:
        """Unknown index of a net (GROUND for the reference)."""
        return self.layout.index(net)

    def system_at(self, s: complex) -> np.ndarray:
        """The complex MNA matrix G + s*C."""
        return self.g_matrix + s * self.c_matrix


def linearize(
    circuit: Circuit,
    op: DcSolution | None = None,
    include_noise: bool = True,
) -> LinearizedCircuit:
    """Linearize ``circuit`` around its DC operating point.

    Solves DC first if ``op`` is not supplied.  Independent sources keep
    their ``ac`` magnitudes in the excitation vector; DC values are zeroed
    (superposition around the operating point).
    """
    if op is None:
        op = solve_dc(circuit)
    layout = layout_for(circuit)
    n = layout.size
    g_matrix = np.zeros((n, n))
    c_matrix = np.zeros((n, n))
    b_ac = np.zeros(n, dtype=complex)
    noise_sources: list[tuple[str, int, int, object]] = []

    from repro.constants import KT_ROOM
    from repro.tech.mosfet import flicker_noise_psd, thermal_noise_psd

    for element in circuit:
        if isinstance(element, Resistor):
            i, j = layout.index(element.n1), layout.index(element.n2)
            g = 1.0 / element.resistance
            stamp_conductance(g_matrix, i, j, g)
            psd = 4.0 * KT_ROOM * g

            def resistor_psd(frequency_hz: float, _psd=psd) -> float:
                return _psd

            noise_sources.append((element.name, i, j, resistor_psd))
        elif isinstance(element, Switch):
            i, j = layout.index(element.n1), layout.index(element.n2)
            g = 1.0 / element.resistance_at(0.0)
            stamp_conductance(g_matrix, i, j, g)
        elif isinstance(element, Capacitor):
            i, j = layout.index(element.n1), layout.index(element.n2)
            c = element.capacitance
            if i != GROUND:
                c_matrix[i, i] += c
            if j != GROUND:
                c_matrix[j, j] += c
            if i != GROUND and j != GROUND:
                c_matrix[i, j] -= c
                c_matrix[j, i] -= c
        elif isinstance(element, Inductor):
            p, nn = layout.index(element.n1), layout.index(element.n2)
            k = layout.branch(element.name)
            stamp_inductor_branch(g_matrix, c_matrix, p, nn, k, element.inductance)
        elif isinstance(element, VoltageSource):
            p, nn = layout.index(element.positive), layout.index(element.negative)
            k = layout.branch(element.name)
            stamp_voltage_source(g_matrix, np.zeros(n), p, nn, k, 0.0)
            b_ac[k] += element.ac
        elif isinstance(element, CurrentSource):
            p, nn = layout.index(element.positive), layout.index(element.negative)
            if p != GROUND:
                b_ac[p] -= element.ac
            if nn != GROUND:
                b_ac[nn] += element.ac
        elif isinstance(element, Vcvs):
            op_, on_ = layout.index(element.out_positive), layout.index(element.out_negative)
            cp, cn = layout.index(element.ctrl_positive), layout.index(element.ctrl_negative)
            stamp_vcvs(g_matrix, op_, on_, cp, cn, layout.branch(element.name), element.gain)
        elif isinstance(element, Vccs):
            op_, on_ = layout.index(element.out_positive), layout.index(element.out_negative)
            cp, cn = layout.index(element.ctrl_positive), layout.index(element.ctrl_negative)
            stamp_transconductance(g_matrix, op_, on_, cp, cn, element.gm)
        elif isinstance(element, Mosfet):
            if element.name not in op.device_ops:
                raise AnalysisError(
                    f"no operating point for device {element.name!r}; "
                    "was the DC solution computed on the same circuit?"
                )
            device_op = op.device_ops[element.name]
            d = layout.index(element.drain)
            g_ = layout.index(element.gate)
            s = layout.index(element.source)
            b = layout.index(element.bulk)
            stamp_transconductance(g_matrix, d, s, g_, s, device_op.gm)
            stamp_conductance(g_matrix, d, s, device_op.gds)
            stamp_transconductance(g_matrix, d, s, b, s, device_op.gmb)
            for (i, j, c) in (
                (g_, s, device_op.cgs),
                (g_, d, device_op.cgd),
                (g_, b, device_op.cgb),
                (d, b, device_op.cdb),
                (s, b, device_op.csb),
            ):
                if c == 0.0:
                    continue
                if i != GROUND:
                    c_matrix[i, i] += c
                if j != GROUND:
                    c_matrix[j, j] += c
                if i != GROUND and j != GROUND:
                    c_matrix[i, j] -= c
                    c_matrix[j, i] -= c
            if include_noise:
                params, w, l = element.params, element.w * element.mult, element.l
                gm_val = device_op.gm

                def mosfet_psd(
                    frequency_hz: float,
                    _params=params,
                    _w=w,
                    _l=l,
                    _gm=gm_val,
                ) -> float:
                    return thermal_noise_psd(_params, _gm) + flicker_noise_psd(
                        _params, _w, _l, _gm, frequency_hz
                    )

                noise_sources.append((element.name, d, s, mosfet_psd))
        else:
            raise AnalysisError(
                f"element type {type(element).__name__} not supported in AC"
            )

    return LinearizedCircuit(
        layout=layout,
        g_matrix=g_matrix,
        c_matrix=c_matrix,
        b_ac=b_ac,
        op=op,
        noise_sources=noise_sources,
    )
