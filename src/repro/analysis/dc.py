"""DC operating-point solver: damped Newton with gmin and source stepping.

The solver assembles the nonlinear KCL residual ``f(x)`` and Jacobian
``J(x)`` from element stamps and iterates Newton with a per-step voltage
limit.  If plain Newton fails it falls back to gmin stepping (a conductance
to ground on every node, relaxed geometrically) and then source stepping
(ramping all independent sources from zero), the standard SPICE homotopies.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.analysis.mna import (
    GROUND,
    MnaLayout,
    layout_for,
    stamp_conductance,
    stamp_current,
    stamp_transconductance,
    stamp_vcvs,
    stamp_voltage_source,
)
from repro.circuit.elements import (
    Capacitor,
    CurrentSource,
    Inductor,
    Mosfet,
    Resistor,
    Switch,
    Vccs,
    Vcvs,
    VoltageSource,
)
from repro.circuit.netlist import Circuit
from repro.errors import ConvergenceError, SingularCircuitError
from repro.tech.mosfet import MosfetOperatingPoint, dc_current, operating_point

#: Maximum Newton iterations per attempt.
_MAX_ITER = 120
#: Per-iteration node-voltage step limit [V].
_VSTEP_LIMIT = 0.4
#: Convergence tolerance on the KCL residual [A].
_ABS_TOL = 1e-10


@dataclass
class DcSolution:
    """Result of a DC operating-point analysis."""

    #: Node voltages by net name (ground included, 0 V).
    voltages: dict[str, float]
    #: Branch currents by element name (V sources, VCVS, inductors).
    branch_currents: dict[str, float]
    #: Small-signal operating points of every MOSFET, by element name.
    device_ops: dict[str, MosfetOperatingPoint]
    #: Raw unknown vector (for warm starts).
    x: np.ndarray
    #: Newton iterations used (total across homotopy steps).
    iterations: int
    #: Which strategy converged: 'newton', 'gmin', or 'source'.
    strategy: str
    #: Final residual infinity-norm [A].
    residual: float

    def voltage(self, net: str) -> float:
        """Node voltage of ``net``."""
        return self.voltages[net] if net not in ("0", "GND") else 0.0

    def supply_current(self, source_name: str) -> float:
        """Current delivered by a voltage source (positive out of + terminal)."""
        return -self.branch_currents[source_name]


def _assemble(
    layout: MnaLayout,
    x: np.ndarray,
    gmin: float,
    source_scale: float,
    time: float = 0.0,
) -> tuple[np.ndarray, np.ndarray]:
    """Build the Newton system: returns (jacobian, residual)."""
    n = layout.size
    jac = np.zeros((n, n))
    resid = np.zeros(n)

    def v(idx: int) -> float:
        return 0.0 if idx == GROUND else x[idx]

    for element in layout.circuit:
        if isinstance(element, Resistor):
            i, j = layout.index(element.n1), layout.index(element.n2)
            g = 1.0 / element.resistance
            stamp_conductance(jac, i, j, g)
            current = g * (v(i) - v(j))
            if i != GROUND:
                resid[i] += current
            if j != GROUND:
                resid[j] -= current
        elif isinstance(element, Switch):
            i, j = layout.index(element.n1), layout.index(element.n2)
            g = 1.0 / element.resistance_at(time)
            stamp_conductance(jac, i, j, g)
            current = g * (v(i) - v(j))
            if i != GROUND:
                resid[i] += current
            if j != GROUND:
                resid[j] -= current
        elif isinstance(element, Capacitor):
            continue  # open in DC
        elif isinstance(element, CurrentSource):
            p, ncur = layout.index(element.positive), layout.index(element.negative)
            value = element.dc * source_scale
            if p != GROUND:
                resid[p] += value
            if ncur != GROUND:
                resid[ncur] -= value
        elif isinstance(element, VoltageSource):
            p, nn = layout.index(element.positive), layout.index(element.negative)
            k = layout.branch(element.name)
            stamp_voltage_source(jac, np.zeros(n), p, nn, k, 0.0)
            ik = x[k]
            if p != GROUND:
                resid[p] += ik
            if nn != GROUND:
                resid[nn] -= ik
            resid[k] += v(p) - v(nn) - element.dc * source_scale
        elif isinstance(element, Vcvs):
            op_, on_ = layout.index(element.out_positive), layout.index(element.out_negative)
            cp, cn = layout.index(element.ctrl_positive), layout.index(element.ctrl_negative)
            k = layout.branch(element.name)
            stamp_vcvs(jac, op_, on_, cp, cn, k, element.gain)
            ik = x[k]
            if op_ != GROUND:
                resid[op_] += ik
            if on_ != GROUND:
                resid[on_] -= ik
            resid[k] += v(op_) - v(on_) - element.gain * (v(cp) - v(cn))
        elif isinstance(element, Vccs):
            op_, on_ = layout.index(element.out_positive), layout.index(element.out_negative)
            cp, cn = layout.index(element.ctrl_positive), layout.index(element.ctrl_negative)
            stamp_transconductance(jac, op_, on_, cp, cn, element.gm)
            current = element.gm * (v(cp) - v(cn))
            if op_ != GROUND:
                resid[op_] += current
            if on_ != GROUND:
                resid[on_] -= current
        elif isinstance(element, Inductor):
            p, nn = layout.index(element.n1), layout.index(element.n2)
            k = layout.branch(element.name)
            # DC: behaves as a 0 V source (short).
            stamp_voltage_source(jac, np.zeros(n), p, nn, k, 0.0)
            ik = x[k]
            if p != GROUND:
                resid[p] += ik
            if nn != GROUND:
                resid[nn] -= ik
            resid[k] += v(p) - v(nn)
        elif isinstance(element, Mosfet):
            d = layout.index(element.drain)
            g_ = layout.index(element.gate)
            s = layout.index(element.source)
            b = layout.index(element.bulk)
            vgs = v(g_) - v(s)
            vds = v(d) - v(s)
            vbs = v(b) - v(s)
            ids, gm, gds, gmb = dc_current(
                element.params, element.w, element.l, vgs, vds, vbs
            )
            ids *= element.mult
            gm *= element.mult
            gds *= element.mult
            gmb *= element.mult
            if d != GROUND:
                resid[d] += ids
            if s != GROUND:
                resid[s] -= ids
            # Jacobian: dIds/d(vg, vd, vb, vs).
            for row, sign in ((d, +1.0), (s, -1.0)):
                if row == GROUND:
                    continue
                if g_ != GROUND:
                    jac[row, g_] += sign * gm
                if d != GROUND:
                    jac[row, d] += sign * gds
                if b != GROUND:
                    jac[row, b] += sign * gmb
                if s != GROUND:
                    jac[row, s] -= sign * (gm + gds + gmb)
        else:
            raise SingularCircuitError(
                f"element type {type(element).__name__} not supported in DC"
            )

    if gmin > 0.0:
        for i in range(len(layout.nets)):
            jac[i, i] += gmin
            resid[i] += gmin * x[i]
    return jac, resid


def _newton(
    layout: MnaLayout,
    x0: np.ndarray,
    gmin: float,
    source_scale: float,
    max_iter: int = _MAX_ITER,
    assembly=None,
) -> tuple[np.ndarray, int, float]:
    """Run damped Newton; returns (x, iterations, residual_norm).

    ``assembly`` (a bound :class:`repro.analysis.template.MnaTemplate`)
    overrides the per-element stamp walk with the compiled assembler and
    its fast linear solve; both produce bit-identical results.
    """
    x = x0.copy()
    n_nodes = len(layout.nets)
    residual_norm = np.inf
    if assembly is None:
        solve = np.linalg.solve
    else:
        solve = assembly.newton_solve
    for iteration in range(1, max_iter + 1):
        if assembly is None:
            jac, resid = _assemble(layout, x, gmin, source_scale)
        else:
            jac, resid = assembly.assemble(x, gmin, source_scale)
        residual_norm = float(np.max(np.abs(resid))) if len(resid) else 0.0
        if residual_norm < _ABS_TOL:
            return x, iteration, residual_norm
        try:
            dx = solve(jac, -resid)
        except np.linalg.LinAlgError:
            jac = jac + np.eye(layout.size) * 1e-12
            try:
                dx = solve(jac, -resid)
            except np.linalg.LinAlgError as exc:
                raise SingularCircuitError(
                    f"singular MNA matrix in circuit {layout.circuit.name!r} "
                    "(floating node or voltage-source loop?)"
                ) from exc
        # Limit node-voltage steps to keep the model in a sane region.
        step = np.max(np.abs(dx[:n_nodes])) if n_nodes else 0.0
        if step > _VSTEP_LIMIT:
            dx *= _VSTEP_LIMIT / step
        x = x + dx
    raise ConvergenceError(
        f"DC Newton did not converge (residual {residual_norm:.3e} A)"
    )


def solve_dc(
    circuit: Circuit,
    initial_guess: dict[str, float] | None = None,
    x0: np.ndarray | None = None,
    assembly=None,
) -> DcSolution:
    """Solve the DC operating point of ``circuit``.

    ``initial_guess`` optionally seeds node voltages by net name;
    ``x0`` (from a previous :class:`DcSolution`) wins over both and enables
    warm starts during optimization loops.  ``assembly`` (a bound
    :class:`repro.analysis.template.MnaTemplate`) swaps the per-element
    Python stamp walk for the compiled assembler — results are
    bit-identical either way.
    """
    if assembly is not None:
        layout = assembly.layout
    else:
        layout = layout_for(circuit)
    start = np.zeros(layout.size)
    if x0 is not None:
        if len(x0) != layout.size:
            raise ConvergenceError("x0 has wrong size for this circuit")
        start = np.asarray(x0, dtype=float).copy()
    elif initial_guess:
        for net, value in initial_guess.items():
            idx = layout.index(net)
            if idx != GROUND:
                start[idx] = value

    iterations_total = 0
    # Strategy 1: plain Newton.
    try:
        x, iters, residual = _newton(
            layout, start, gmin=0.0, source_scale=1.0, assembly=assembly
        )
        return _package(layout, x, iterations_total + iters, "newton", residual)
    except (ConvergenceError, SingularCircuitError):
        pass

    # Strategy 2: gmin stepping, finishing with a gmin-free polish.
    x = start.copy()
    try:
        for gmin in (1e-2, 1e-3, 1e-4, 1e-5, 1e-6, 1e-8, 1e-10, 1e-12):
            x, iters, residual = _newton(
                layout, x, gmin=gmin, source_scale=1.0, assembly=assembly
            )
            iterations_total += iters
        x, iters, residual = _newton(
            layout, x, gmin=0.0, source_scale=1.0, assembly=assembly
        )
        iterations_total += iters
        return _package(layout, x, iterations_total, "gmin", residual)
    except (ConvergenceError, SingularCircuitError):
        pass

    # Strategy 3: source stepping (with mild gmin held during the ramp).
    x = np.zeros(layout.size)
    iterations_total = 0
    try:
        for alpha in (0.05, 0.1, 0.2, 0.35, 0.5, 0.65, 0.8, 0.9, 1.0):
            x, iters, residual = _newton(
                layout, x, gmin=1e-9, source_scale=alpha, assembly=assembly
            )
            iterations_total += iters
        x, iters, residual = _newton(
            layout, x, gmin=0.0, source_scale=1.0, assembly=assembly
        )
        iterations_total += iters
        return _package(layout, x, iterations_total, "source", residual)
    except (ConvergenceError, SingularCircuitError) as exc:
        raise ConvergenceError(
            f"DC analysis of {circuit.name!r} failed after Newton, gmin and "
            f"source stepping: {exc}"
        ) from exc


def _package(
    layout: MnaLayout, x: np.ndarray, iterations: int, strategy: str, residual: float
) -> DcSolution:
    voltages = layout.voltages(x)
    voltages.setdefault("0", 0.0)
    branch_currents = {
        e.name: float(x[layout.branch(e.name)]) for e in layout.branch_elements
    }

    def v(net: str) -> float:
        return 0.0 if net in ("0", "gnd", "GND") else voltages[net]

    device_ops: dict[str, MosfetOperatingPoint] = {}
    for element in layout.circuit.elements_of(Mosfet):
        op = operating_point(
            element.params,
            element.w * element.mult,
            element.l,
            v(element.gate) - v(element.source),
            v(element.drain) - v(element.source),
            v(element.bulk) - v(element.source),
        )
        device_ops[element.name] = op
    return DcSolution(
        voltages=voltages,
        branch_currents=branch_currents,
        device_ops=device_ops,
        x=x,
        iterations=iterations,
        strategy=strategy,
        residual=residual,
    )
