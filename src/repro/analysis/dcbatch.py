"""Batched DC Newton: population lockstep solves with masked convergence.

The chained DC path (:class:`repro.synth.evaluator.HybridEvaluator` with
``dc_kernel="chained"``) walks a population one candidate at a time, each
solve warm-started from the previous candidate's operating point.  That
chain is the last strictly serial stage of the sizing loop — and the warm
starts make every candidate's *cost* depend on evaluation order, which is
what kept speculative batching from paying off.

This module solves a whole population of same-topology circuits as **one
lockstep Newton iteration**:

* every member binds the shared :class:`~repro.analysis.template.MnaTemplate`
  (a :class:`~repro.analysis.template.BoundMna` each), and
  :class:`_Population` stacks the value slots into ``(M, n_slots)``
  buffers;
* each iteration assembles every *active* member's Jacobian/residual with
  the template's vectorized scatters (one ``np.add.reduceat`` per matrix —
  stable-sorted, so repeated stamps accumulate in emission order), and one
  stacked ``np.linalg.solve`` advances all of them at once;
* **masked updates**: a member whose residual meets :data:`~repro.analysis.dc._ABS_TOL`
  is *frozen bitwise* — it leaves the active set and its state vector is
  never touched again — while stragglers keep iterating.

Every member starts cold (the caller's initial guess, no warm chain), and
assembly/solve/step-limit are pure per-member functions, so a member's
Newton trajectory is independent of which other members share the block:
the same candidate always produces the same solution regardless of
population composition or order.  That determinism is why
``FlowConfig.dc_kernel`` is *result identity* (the trajectories differ
from the chained warm starts) yet campaign records stay reproducible.

Members the lockstep cannot finish — singular systems, divergence to
non-finite values, or no convergence within the iteration cap — **fall
back per member** to the scalar :func:`repro.analysis.dc.solve_dc` walk
with its full gmin/source-stepping homotopy chain; members that still fail
are reported in :attr:`BatchDcResult.failures` instead of aborting the
whole batch.  :data:`NEWTON_STATS` counts iterations, mask occupancy and
the failure taxonomy (mirroring ``TEMPLATE_STATS``) for benchmarks and
``repro-adc --verbose``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.analysis.dc import (
    _ABS_TOL,
    _VSTEP_LIMIT,
    DcSolution,
    _package,
    solve_dc,
)
from repro.analysis.mna import GROUND
from repro.analysis.template import BoundMna
from repro.errors import AnalysisError, ReproError
from repro.obs.metrics import REGISTRY, CounterView
from repro.tech.mosfet import _GDS_MIN, _VEFF_DELTA

#: Supported DC solver kernels (`FlowConfig.dc_kernel` values).
DC_KERNELS = ("chained", "batched")

#: Lockstep iteration cap — deliberately tighter than the scalar walk's
#: ``_MAX_ITER`` (120).  Cold-start plain Newton on these benches either
#: converges quickly (observed max 24 iterations across seeds and corners,
#: p99 = 9) or oscillates without ever passing the tolerance; a straggler
#: kept active to 120 would run the whole lockstep loop near-empty.  The
#: cap never changes a member's final solution: a capped member falls back
#: to :func:`~repro.analysis.dc.solve_dc`, whose own plain-Newton strategy
#: *is* the member's solo lockstep trajectory (bitwise) with the full
#: iteration budget, followed by the homotopy chain.  Only wall time and
#: the fallback counter move.
_LOCKSTEP_MAX_ITER = 48

#: Strategy tag recorded on lockstep-converged :class:`DcSolution`\ s.
BATCHED_STRATEGY = "batched"

#: Newton convergence telemetry, mirroring ``TEMPLATE_STATS``:
#:
#: * ``lockstep_calls`` / ``lockstep_members`` — :func:`solve_dc_batch`
#:   invocations and total members across them;
#: * ``lockstep_iterations`` — lockstep iterations executed (each runs one
#:   stacked assemble + solve over the active set);
#: * ``mask_occupancy`` — sum of active-member counts over those
#:   iterations (``mask_occupancy / (lockstep_iterations * members)`` is
#:   the mean fraction of the block still iterating);
#: * ``member_iterations`` — sum of per-member Newton iterations to
#:   convergence (lockstep-converged members only);
#: * ``converged`` — members the lockstep finished;
#: * ``divergences`` — members cut for non-finite residuals/updates or a
#:   singular member system;
#: * ``fallbacks`` — members resolved by the scalar chained walk (full
#:   homotopy) after the lockstep gave up on them;
#: * ``failures`` — members that failed even the scalar fallback.
#: Stored in the process-global metrics registry (``newton.*`` counters,
#: see :mod:`repro.obs`); this view keeps the historical dict API.
NEWTON_STATS = CounterView(
    REGISTRY,
    "newton",
    (
        "lockstep_calls",
        "lockstep_members",
        "lockstep_iterations",
        "mask_occupancy",
        "member_iterations",
        "converged",
        "divergences",
        "fallbacks",
        "failures",
    ),
)


def reset_newton_stats() -> None:
    """Zero :data:`NEWTON_STATS` (benchmark/test hook)."""
    for key in NEWTON_STATS:
        NEWTON_STATS[key] = 0


# ---------------------------------------------------------------------------
# Vectorized compact model: repro.tech.mosfet.dc_current over (M, n_dev)
# arrays.  Same expressions, evaluated by numpy ufuncs; the batched kernel
# is accepted on residual tolerance, not bit-identity, so the (sub-ulp)
# libm-vs-numpy differences in tanh/sqrt are inside the contract.
# ---------------------------------------------------------------------------


def _forward_current_array(phi, vth0, gamma, beta, esat_l, lam_over_l, vgs, vds, vbs):
    """Array form of ``mosfet._forward_current`` (normalized, vds >= 0)."""
    vsb = -vbs
    floor = -phi + 0.05
    vsb_clamped = np.maximum(vsb, floor)
    sq = np.sqrt(phi + vsb_clamped)
    vth = vth0 + gamma * (sq - np.sqrt(phi))
    dvth_dvsb = np.where(vsb > floor, gamma / (2.0 * sq), 0.0)
    vov = vgs - vth
    root = np.sqrt(vov * vov + 4.0 * _VEFF_DELTA * _VEFF_DELTA)
    veff = 0.5 * (vov + root)
    dveff_dvov = 0.5 * (1.0 + vov / root)

    sat_factor = 1.0 / (1.0 + veff / esat_l)
    dsat_dveff = -sat_factor * sat_factor / esat_l

    t = np.tanh(vds / veff)
    sech2 = 1.0 - t * t
    vdse = veff * t
    dvdse_dveff = t - (vds / veff) * sech2

    core = (veff - 0.5 * vdse) * vdse
    dcore_dveff = vdse + (veff - vdse) * dvdse_dveff
    dcore_dvds = (veff - vdse) * sech2

    clm = 1.0 + lam_over_l * vds
    ids = beta * core * clm * sat_factor

    dids_dveff = beta * clm * (dcore_dveff * sat_factor + core * dsat_dveff)
    gm = dids_dveff * dveff_dvov
    gds = beta * (dcore_dvds * clm * sat_factor + core * lam_over_l * sat_factor)
    gmb = dids_dveff * dveff_dvov * dvth_dvsb
    gds = np.maximum(gds, _GDS_MIN)
    return ids, gm, gds, gmb


def _dc_current_array(pol, phi, vth0, gamma, beta, esat_l, lam_over_l, vgs, vds, vbs):
    """Array form of :func:`repro.tech.mosfet.dc_current`.

    Polarity normalization and the reverse-mode (drain/source swap)
    transformation are applied element-wise with ``np.where``, exactly
    mirroring the scalar branches.
    """
    nvgs, nvds, nvbs = pol * vgs, pol * vds, pol * vbs
    rev = nvds < 0.0
    fvgs = np.where(rev, nvgs - nvds, nvgs)
    fvds = np.where(rev, -nvds, nvds)
    fvbs = np.where(rev, nvbs - nvds, nvbs)
    ids, gm, gds, gmb = _forward_current_array(
        phi, vth0, gamma, beta, esat_l, lam_over_l, fvgs, fvds, fvbs
    )
    ids_t = np.where(rev, -ids, ids)
    gm_t = np.where(rev, -gm, gm)
    gds_t = np.where(rev, gm + gds + gmb, gds)
    gmb_t = np.where(rev, -gmb, gmb)
    return pol * ids_t, gm_t, gds_t, gmb_t


# ---------------------------------------------------------------------------
# Population binding: M same-template BoundMna value sets stacked into
# (M, n_slots) buffers, plus a grouped-scatter program for the batched
# Jacobian/residual assembly.
# ---------------------------------------------------------------------------


def _grouped_scatter(indices: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Precompute a reduceat program for an ordered COO scatter.

    Returns ``(order, cells, starts)`` such that
    ``out[:, cells] = np.add.reduceat(values[:, order], starts, axis=1)``
    equals a sequential ``+=`` replay of the scatter: the stable sort keeps
    duplicate-cell stamps in emission order, and ``reduceat`` accumulates
    each segment left to right.
    """
    order = np.argsort(indices, kind="stable")
    sorted_idx = indices[order]
    cells, starts = np.unique(sorted_idx, return_index=True)
    return order, cells, starts


class _Population:
    """One template's value slots stacked over a population of bindings."""

    def __init__(self, bounds: "list[BoundMna]"):
        if not bounds:
            raise AnalysisError("population DC solve needs at least one member")
        template = bounds[0].template
        key = template.key
        if any(b.template.key != key for b in bounds[1:]):
            raise AnalysisError(
                "population DC solve requires one shared topology "
                "(mixed-template members must be grouped by the caller)"
            )
        self.bounds = bounds
        self.template = t = template
        m = self.m = len(bounds)
        self.n = t.size
        self.n_nodes = t.n_nodes

        self._jv = np.stack([b._jv for b in bounds])
        self._pair_coeff = np.stack([b._pair_coeff for b in bounds])
        self._vc_dc = np.stack([b._vc_dc for b in bounds])
        self._vg_gain = np.stack([b._vg_gain for b in bounds])
        self._inj_dc = np.stack([b._inj_dc for b in bounds])

        ndev = self.ndev = len(t.mos_names)
        if ndev:
            shape = (m, ndev)
            pol = np.empty(shape)
            phi = np.empty(shape)
            vth0 = np.empty(shape)
            gamma = np.empty(shape)
            beta = np.empty(shape)
            esat_l = np.empty(shape)
            lam_over_l = np.empty(shape)
            mult = np.empty(shape)
            for mi, bound in enumerate(bounds):
                for di, (params, w, l, mu, *_rest) in enumerate(bound._mos_args):
                    pol[mi, di] = params.polarity
                    phi[mi, di] = params.phi
                    vth0[mi, di] = params.vth0
                    gamma[mi, di] = params.gamma
                    beta[mi, di] = params.kp * (w / l)
                    esat_l[mi, di] = params.esat * l
                    lam_over_l[mi, di] = params.lambda_l / l
                    mult[mi, di] = mu
            self._pol, self._phi, self._vth0, self._gamma = pol, phi, vth0, gamma
            self._beta, self._esat_l, self._lam_over_l = beta, esat_l, lam_over_l
            self._mult = mult
            xe_idx = np.asarray(t._mos_xe, dtype=np.intp)
            self._xd = xe_idx[:, 0]
            self._xg = xe_idx[:, 1]
            self._xs = xe_idx[:, 2]
            self._xb = xe_idx[:, 3]

        n = self.n
        self._j_order, self._j_cells, self._j_starts = _grouped_scatter(
            t._jr * n + t._jc
        )
        self._r_order, self._r_cells, self._r_starts = _grouped_scatter(t._rr)

    def assemble(
        self,
        x: np.ndarray,
        members: np.ndarray,
        gmin: float = 0.0,
        source_scale: float = 1.0,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Jacobians and residuals of ``members`` at their states ``x``.

        ``x`` is ``(len(members), n)``; each member's system equals what its
        own :meth:`BoundMna.assemble` would build from the array compact
        model — a pure per-member function, so the active-set composition
        never changes any member's system.
        """
        t = self.template
        n = self.n
        ma = len(members)
        xe = np.empty((ma, n + 1))
        xe[:, :n] = x
        xe[:, n] = 0.0

        jv = self._jv[members]
        if self.ndev:
            xs = xe[:, self._xs]
            ids, gm, gds, gmb = _dc_current_array(
                self._pol[members],
                self._phi[members],
                self._vth0[members],
                self._gamma[members],
                self._beta[members],
                self._esat_l[members],
                self._lam_over_l[members],
                xe[:, self._xg] - xs,
                xe[:, self._xd] - xs,
                xe[:, self._xb] - xs,
            )
            mult = self._mult[members]
            ids = ids * mult
            gm = gm * mult
            gds = gds * mult
            gmb = gmb * mult
            kindvals = np.stack([gm, gds, gmb, gm + gds + gmb], axis=1)
            if len(t._j_mos_pos):
                jv[:, t._j_mos_pos] = (
                    t._j_mos_sign * kindvals[:, t._j_mos_kind, t._j_mos_dev]
                )
        else:
            ids = np.zeros((ma, 0))

        jac = np.zeros((ma, n, n))
        if len(self._j_cells):
            jac.reshape(ma, n * n)[:, self._j_cells] = np.add.reduceat(
                jv[:, self._j_order], self._j_starts, axis=1
            )

        rv = np.zeros((ma, len(t._rr)))
        if len(t._r_pair_pos):
            cur = self._pair_coeff[members] * (xe[:, t._pair_a] - xe[:, t._pair_b])
            rv[:, t._r_pair_pos] = t._r_pair_sign * cur[:, t._r_pair_src]
        if len(t._r_br_pos):
            rv[:, t._r_br_pos] = t._r_br_sign * x[:, t._r_br_k]
        if len(t._r_vc_pos):
            rv[:, t._r_vc_pos] = (
                xe[:, t._vc_p] - xe[:, t._vc_n]
            ) - self._vc_dc[members] * source_scale
        if len(t._r_vg_pos):
            rv[:, t._r_vg_pos] = (xe[:, t._vg_op] - xe[:, t._vg_on]) - self._vg_gain[
                members
            ] * (xe[:, t._vg_cp] - xe[:, t._vg_cn])
        if len(t._r_inj_pos):
            rv[:, t._r_inj_pos] = self._inj_dc[members] * source_scale
        if len(t._r_mos_pos):
            rv[:, t._r_mos_pos] = t._r_mos_sign * ids[:, t._r_mos_dev]

        resid = np.zeros((ma, n))
        if len(self._r_cells):
            resid[:, self._r_cells] = np.add.reduceat(
                rv[:, self._r_order], self._r_starts, axis=1
            )

        if gmin > 0.0:
            diag = np.arange(self.n_nodes)
            jac[:, diag, diag] += gmin
            resid[:, : self.n_nodes] += gmin * x[:, : self.n_nodes]
        return jac, resid


def _solve_block(jac: np.ndarray, resid: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """One stacked Newton solve; returns ``(dx, ok_mask)``.

    The stacked ``np.linalg.solve`` applies LAPACK per slice, so each
    member's update equals its solo solve.  A singular member raises for
    the whole stack — resolve per member (with the scalar path's 1e-12
    diagonal retry) and mark only the singular ones bad; non-finite
    updates (near-singular overflow) are flagged the same way.
    """
    n = jac.shape[-1]
    try:
        dx = np.linalg.solve(jac, -resid[..., None])[..., 0]
    except np.linalg.LinAlgError:
        dx = np.zeros_like(resid)
        ok = np.ones(len(jac), dtype=bool)
        eye = np.eye(n) * 1e-12
        for i in range(len(jac)):
            try:
                dx[i] = np.linalg.solve(jac[i], -resid[i])
            except np.linalg.LinAlgError:
                try:
                    dx[i] = np.linalg.solve(jac[i] + eye, -resid[i])
                except np.linalg.LinAlgError:
                    ok[i] = False
        return dx, ok & np.isfinite(dx).all(axis=1)
    return dx, np.isfinite(dx).all(axis=1)


#: Member status codes during/after the lockstep iteration.
_ACTIVE, _CONVERGED, _DIVERGED = 0, 1, 2


def lockstep_newton(
    population: _Population,
    x0: np.ndarray,
    gmin: float = 0.0,
    source_scale: float = 1.0,
    max_iter: int = _LOCKSTEP_MAX_ITER,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Masked-update Newton over the whole population.

    Returns ``(x, status, iterations, residuals)`` — all ``(M, ...)``
    arrays.  ``status`` is per member: converged, diverged (singular or
    non-finite), or still active (hit ``max_iter``).  Converged members are
    frozen *bitwise*: once a member's residual passes the tolerance its
    rows of ``x`` are never written again, and since every per-iteration
    quantity is computed per member, each trajectory is identical to
    running that member alone.
    """
    m = population.m
    x = np.array(x0, dtype=float, copy=True)
    status = np.zeros(m, dtype=np.int8)
    iterations = np.zeros(m, dtype=np.intp)
    residuals = np.full(m, np.inf)
    active = np.arange(m)
    n_nodes = population.n_nodes

    for iteration in range(1, max_iter + 1):
        if not len(active):
            break
        NEWTON_STATS["lockstep_iterations"] += 1
        NEWTON_STATS["mask_occupancy"] += len(active)
        jac, resid = population.assemble(x[active], active, gmin, source_scale)
        rnorm = (
            np.max(np.abs(resid), axis=1) if resid.shape[1] else np.zeros(len(active))
        )
        residuals[active] = rnorm
        finite = np.isfinite(rnorm)
        conv = finite & (rnorm < _ABS_TOL)
        newly = active[conv]
        status[newly] = _CONVERGED
        iterations[newly] = iteration
        status[active[~finite]] = _DIVERGED
        keep = finite & ~conv
        active = active[keep]
        if not len(active):
            break
        dx, ok = _solve_block(jac[keep], resid[keep])
        if not ok.all():
            status[active[~ok]] = _DIVERGED
            active = active[ok]
            dx = dx[ok]
            if not len(active):
                break
        if n_nodes:
            step = np.max(np.abs(dx[:, :n_nodes]), axis=1)
            over = step > _VSTEP_LIMIT
            if over.any():
                dx[over] *= (_VSTEP_LIMIT / step[over])[:, None]
        x[active] = x[active] + dx
        bad = ~np.isfinite(x[active]).all(axis=1)
        if bad.any():
            status[active[bad]] = _DIVERGED
            active = active[~bad]
    iterations[status == _ACTIVE] = max_iter
    return x, status, iterations, residuals


@dataclass
class BatchDcResult:
    """Per-member outcome of a population DC solve.

    ``solutions[i]`` is the member's :class:`~repro.analysis.dc.DcSolution`
    or ``None`` when it failed; ``failures`` names every failed member with
    the reason, so callers degrade those members individually instead of
    aborting the batch on the first bad candidate.
    """

    solutions: "list[DcSolution | None]"
    #: Member index -> failure reason, for members with no solution.
    failures: dict[int, str] = field(default_factory=dict)
    #: Members resolved by the scalar chained walk (full homotopy) after
    #: the lockstep could not finish them.
    fallback_members: tuple[int, ...] = ()

    @property
    def ok(self) -> bool:
        """True when every member produced a solution."""
        return not self.failures


def _start_vector(bound: BoundMna, guess: "dict[str, float] | None") -> np.ndarray:
    """A member's cold-start state from a net-name voltage guess."""
    start = np.zeros(bound.template.size)
    if guess:
        layout = bound.layout
        for net, value in guess.items():
            idx = layout.index(net)
            if idx != GROUND:
                start[idx] = value
    return start


def solve_dc_batch(
    bounds: "list[BoundMna]",
    initial_guess: "dict[str, float] | list[dict[str, float] | None] | None" = None,
    x0: np.ndarray | None = None,
) -> BatchDcResult:
    """Solve every member's DC operating point in lockstep.

    ``bounds`` are per-member template bindings (mixed topologies are
    grouped internally; one shared topology runs as a single block).
    ``initial_guess`` seeds node voltages by net name — one dict for the
    whole population or a per-member list (a corner set's members carry
    per-corner supplies/common modes).  ``x0`` (``(M, n)``) wins over the
    guesses.  Members the lockstep cannot converge fall back one by one to
    the scalar :func:`~repro.analysis.dc.solve_dc` homotopy walk; members
    that still fail are reported in :attr:`BatchDcResult.failures` rather
    than raised.
    """
    m = len(bounds)
    if isinstance(initial_guess, dict) or initial_guess is None:
        guesses: "list[dict[str, float] | None]" = [initial_guess] * m
    else:
        if len(initial_guess) != m:
            raise AnalysisError(
                f"got {len(initial_guess)} initial guesses for {m} members"
            )
        guesses = list(initial_guess)

    NEWTON_STATS["lockstep_calls"] += 1
    NEWTON_STATS["lockstep_members"] += m

    solutions: "list[DcSolution | None]" = [None] * m
    failures: dict[int, str] = {}
    fallback_members: list[int] = []

    # Group members by topology so each lockstep block shares one template.
    groups: dict[tuple, list[int]] = {}
    for i, bound in enumerate(bounds):
        groups.setdefault(bound.template.key, []).append(i)

    for indices in groups.values():
        group_bounds = [bounds[i] for i in indices]
        population = _Population(group_bounds)
        n = population.n
        start = np.zeros((len(indices), n))
        if x0 is not None:
            x0_arr = np.asarray(x0, dtype=float)
            if x0_arr.shape != (m, n):
                raise AnalysisError(
                    f"x0 has shape {x0_arr.shape}, expected ({m}, {n})"
                )
            start[:] = x0_arr[indices]
        else:
            for row, i in enumerate(indices):
                start[row] = _start_vector(bounds[i], guesses[i])

        x, status, iterations, residuals = lockstep_newton(population, start)

        converged = status == _CONVERGED
        NEWTON_STATS["converged"] += int(converged.sum())
        NEWTON_STATS["member_iterations"] += int(iterations[converged].sum())
        NEWTON_STATS["divergences"] += int((status == _DIVERGED).sum())

        for row, i in enumerate(indices):
            bound = bounds[i]
            if converged[row]:
                solutions[i] = _package(
                    bound.layout,
                    x[row],
                    int(iterations[row]),
                    BATCHED_STRATEGY,
                    float(residuals[row]),
                )
                continue
            # Degradation path: the scalar walk with its full homotopy
            # chain, from this member's own cold guess.
            NEWTON_STATS["fallbacks"] += 1
            fallback_members.append(i)
            try:
                solutions[i] = solve_dc(
                    bound.circuit, initial_guess=guesses[i], assembly=bound
                )
            except ReproError as exc:
                NEWTON_STATS["failures"] += 1
                failures[i] = str(exc)

    return BatchDcResult(
        solutions=solutions,
        failures=failures,
        fallback_members=tuple(fallback_members),
    )


__all__ = [
    "BATCHED_STRATEGY",
    "DC_KERNELS",
    "BatchDcResult",
    "NEWTON_STATS",
    "lockstep_newton",
    "reset_newton_stats",
    "solve_dc_batch",
]
