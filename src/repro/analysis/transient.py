"""Transient analysis: fixed-step trapezoidal / backward-Euler integration.

Each timestep solves the nonlinear circuit by Newton iteration with
companion models for the reactive elements.  Clocked switches and source
waveforms are evaluated at every step, which is what the switched-capacitor
MDAC settling simulations need.

MOSFET capacitances are frozen at their t=0 operating-point values
(quasi-static approximation); the nonlinear drain current is evaluated
exactly at every Newton iteration, so slewing — the large-swing effect the
paper singles out for simulation — is captured.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

import numpy as np

from repro.analysis.dc import DcSolution, solve_dc
from repro.analysis.mna import (
    GROUND,
    MnaLayout,
    layout_for,
    stamp_conductance,
    stamp_transconductance,
    stamp_vcvs,
)
from repro.circuit.elements import (
    Capacitor,
    CurrentSource,
    Inductor,
    Mosfet,
    Resistor,
    Switch,
    Vccs,
    Vcvs,
    VoltageSource,
)
from repro.circuit.netlist import Circuit
from repro.errors import AnalysisError, ConvergenceError
from repro.tech.mosfet import dc_current

_MAX_NEWTON = 60
_ABS_TOL = 1e-9
_VSTEP_LIMIT = 1.0


@dataclass
class TransientResult:
    """Waveforms from a transient simulation."""

    #: Time points [s].
    time: np.ndarray
    #: Node voltage waveforms by net name.
    waveforms: dict[str, np.ndarray]

    def voltage(self, net: str) -> np.ndarray:
        """Waveform of a net."""
        if net in ("0", "gnd", "GND"):
            return np.zeros_like(self.time)
        try:
            return self.waveforms[net]
        except KeyError:
            raise AnalysisError(f"net {net!r} was not recorded") from None

    def final_value(self, net: str) -> float:
        """Last sample of a net's waveform."""
        return float(self.voltage(net)[-1])

    def settling_time(
        self, net: str, target: float, tolerance: float, t_start: float = 0.0
    ) -> float | None:
        """First time after which the net stays within ``tolerance`` of target.

        Returns None if the waveform never settles within the simulated window.
        """
        v = self.voltage(net)
        inside = np.abs(v - target) <= tolerance
        valid = self.time >= t_start
        candidate = None
        for k in range(len(self.time)):
            if not valid[k]:
                continue
            if inside[k] and candidate is None:
                candidate = self.time[k]
            elif not inside[k]:
                candidate = None
        return None if candidate is None else float(candidate)


def _initial_dc(circuit: Circuit) -> tuple[Circuit, DcSolution]:
    """DC solution at t=0 with waveform sources frozen at their t=0 values."""
    frozen = Circuit(circuit.name + "_t0")
    for element in circuit:
        if isinstance(element, (VoltageSource, CurrentSource)) and element.waveform:
            frozen.add(dataclasses.replace(element, dc=element.value_at(0.0), waveform=None))
        else:
            frozen.add(element)
    return frozen, solve_dc(frozen)


def simulate_transient(
    circuit: Circuit,
    t_stop: float,
    dt: float,
    record: list[str] | None = None,
    method: str = "trap",
    initial: DcSolution | None = None,
) -> TransientResult:
    """Integrate the circuit from its DC state at t=0 to ``t_stop``.

    ``record`` limits which nets are stored (default: all non-ground nets).
    ``method`` is ``"trap"`` (trapezoidal, default) or ``"be"``
    (backward Euler, more damped but L-stable).
    """
    if t_stop <= 0 or dt <= 0 or dt > t_stop:
        raise AnalysisError("need 0 < dt <= t_stop")
    if method not in ("trap", "be"):
        raise AnalysisError(f"unknown method {method!r}")

    layout = layout_for(circuit)
    if initial is None:
        _, initial = _initial_dc(circuit)
    x = initial.x.copy()
    if len(x) != layout.size:
        raise AnalysisError("initial DC solution does not match circuit")

    # Fixed capacitor stamps: explicit caps + device caps at the t=0 OP.
    cap_stamps: list[tuple[int, int, float]] = []
    for element in circuit:
        if isinstance(element, Capacitor):
            cap_stamps.append(
                (layout.index(element.n1), layout.index(element.n2), element.capacitance)
            )
        elif isinstance(element, Mosfet):
            op = initial.device_ops[element.name]
            d, g_ = layout.index(element.drain), layout.index(element.gate)
            s, b = layout.index(element.source), layout.index(element.bulk)
            for (i, j, c) in (
                (g_, s, op.cgs),
                (g_, d, op.cgd),
                (g_, b, op.cgb),
                (d, b, op.cdb),
                (s, b, op.csb),
            ):
                if c > 0.0:
                    cap_stamps.append((i, j, c))

    n_steps = int(round(t_stop / dt))
    times = np.linspace(0.0, n_steps * dt, n_steps + 1)
    nets = record if record is not None else layout.nets
    indices = {net: layout.index(net) for net in nets}
    traces = {net: np.zeros(n_steps + 1) for net in nets}
    for net, idx in indices.items():
        traces[net][0] = 0.0 if idx == GROUND else x[idx]

    # Per-cap companion state: current through the cap at the previous step.
    cap_current = [0.0] * len(cap_stamps)
    # Per-inductor previous voltage (for trapezoidal).
    inductors = [e for e in circuit if isinstance(e, Inductor)]
    ind_prev_v = {e.name: 0.0 for e in inductors}

    def node_v(vec: np.ndarray, idx: int) -> float:
        return 0.0 if idx == GROUND else float(vec[idx])

    for step in range(1, n_steps + 1):
        t = times[step]
        x_prev = x.copy()
        x = _solve_step(
            layout,
            circuit,
            x_prev,
            t,
            dt,
            method,
            cap_stamps,
            cap_current,
            ind_prev_v,
            initial,
        )
        # Update companion states.
        for k, (i, j, c) in enumerate(cap_stamps):
            dv_new = node_v(x, i) - node_v(x, j)
            dv_old = node_v(x_prev, i) - node_v(x_prev, j)
            if method == "trap":
                cap_current[k] = (2.0 * c / dt) * (dv_new - dv_old) - cap_current[k]
            else:
                cap_current[k] = (c / dt) * (dv_new - dv_old)
        for e in inductors:
            p, nn = layout.index(e.n1), layout.index(e.n2)
            ind_prev_v[e.name] = node_v(x, p) - node_v(x, nn)
        for net, idx in indices.items():
            traces[net][step] = 0.0 if idx == GROUND else x[idx]

    return TransientResult(time=times, waveforms=traces)


def _solve_step(
    layout: MnaLayout,
    circuit: Circuit,
    x_prev: np.ndarray,
    t: float,
    dt: float,
    method: str,
    cap_stamps: list[tuple[int, int, float]],
    cap_current: list[float],
    ind_prev_v: dict[str, float],
    initial: DcSolution,
) -> np.ndarray:
    """Newton-solve one timestep; returns the new unknown vector."""
    n = layout.size
    x = x_prev.copy()

    def node_v(vec: np.ndarray, idx: int) -> float:
        return 0.0 if idx == GROUND else float(vec[idx])

    for _ in range(_MAX_NEWTON):
        jac = np.zeros((n, n))
        resid = np.zeros(n)

        for element in circuit:
            if isinstance(element, Resistor):
                i, j = layout.index(element.n1), layout.index(element.n2)
                g = 1.0 / element.resistance
                stamp_conductance(jac, i, j, g)
                cur = g * (node_v(x, i) - node_v(x, j))
                if i != GROUND:
                    resid[i] += cur
                if j != GROUND:
                    resid[j] -= cur
            elif isinstance(element, Switch):
                i, j = layout.index(element.n1), layout.index(element.n2)
                g = 1.0 / element.resistance_at(t)
                stamp_conductance(jac, i, j, g)
                cur = g * (node_v(x, i) - node_v(x, j))
                if i != GROUND:
                    resid[i] += cur
                if j != GROUND:
                    resid[j] -= cur
            elif isinstance(element, Capacitor):
                continue  # handled by cap_stamps below
            elif isinstance(element, CurrentSource):
                p, nn = layout.index(element.positive), layout.index(element.negative)
                value = element.value_at(t)
                if p != GROUND:
                    resid[p] += value
                if nn != GROUND:
                    resid[nn] -= value
            elif isinstance(element, VoltageSource):
                p, nn = layout.index(element.positive), layout.index(element.negative)
                k = layout.branch(element.name)
                if p != GROUND:
                    jac[p, k] += 1.0
                    jac[k, p] += 1.0
                    resid[p] += x[k]
                if nn != GROUND:
                    jac[nn, k] -= 1.0
                    jac[k, nn] -= 1.0
                    resid[nn] -= x[k]
                resid[k] += node_v(x, p) - node_v(x, nn) - element.value_at(t)
            elif isinstance(element, Vcvs):
                op_ = layout.index(element.out_positive)
                on_ = layout.index(element.out_negative)
                cp = layout.index(element.ctrl_positive)
                cn = layout.index(element.ctrl_negative)
                k = layout.branch(element.name)
                stamp_vcvs(jac, op_, on_, cp, cn, k, element.gain)
                if op_ != GROUND:
                    resid[op_] += x[k]
                if on_ != GROUND:
                    resid[on_] -= x[k]
                resid[k] += (
                    node_v(x, op_)
                    - node_v(x, on_)
                    - element.gain * (node_v(x, cp) - node_v(x, cn))
                )
            elif isinstance(element, Vccs):
                op_ = layout.index(element.out_positive)
                on_ = layout.index(element.out_negative)
                cp = layout.index(element.ctrl_positive)
                cn = layout.index(element.ctrl_negative)
                stamp_transconductance(jac, op_, on_, cp, cn, element.gm)
                cur = element.gm * (node_v(x, cp) - node_v(x, cn))
                if op_ != GROUND:
                    resid[op_] += cur
                if on_ != GROUND:
                    resid[on_] -= cur
            elif isinstance(element, Inductor):
                p, nn = layout.index(element.n1), layout.index(element.n2)
                k = layout.branch(element.name)
                i_prev = x_prev[k]
                v_prev = ind_prev_v[element.name]
                if method == "trap":
                    # v_new + v_prev = (2L/dt)(i_new - i_prev)
                    r_eq = 2.0 * element.inductance / dt
                    rhs = r_eq * i_prev + v_prev
                else:
                    r_eq = element.inductance / dt
                    rhs = r_eq * i_prev
                if p != GROUND:
                    jac[p, k] += 1.0
                    jac[k, p] += 1.0
                    resid[p] += x[k]
                if nn != GROUND:
                    jac[nn, k] -= 1.0
                    jac[k, nn] -= 1.0
                    resid[nn] -= x[k]
                jac[k, k] -= r_eq
                resid[k] += node_v(x, p) - node_v(x, nn) - r_eq * x[k] + rhs
            elif isinstance(element, Mosfet):
                d = layout.index(element.drain)
                g_ = layout.index(element.gate)
                s = layout.index(element.source)
                b = layout.index(element.bulk)
                vgs = node_v(x, g_) - node_v(x, s)
                vds = node_v(x, d) - node_v(x, s)
                vbs = node_v(x, b) - node_v(x, s)
                ids, gm, gds, gmb = dc_current(
                    element.params, element.w, element.l, vgs, vds, vbs
                )
                ids *= element.mult
                gm *= element.mult
                gds *= element.mult
                gmb *= element.mult
                if d != GROUND:
                    resid[d] += ids
                if s != GROUND:
                    resid[s] -= ids
                for row, sign in ((d, +1.0), (s, -1.0)):
                    if row == GROUND:
                        continue
                    if g_ != GROUND:
                        jac[row, g_] += sign * gm
                    if d != GROUND:
                        jac[row, d] += sign * gds
                    if b != GROUND:
                        jac[row, b] += sign * gmb
                    if s != GROUND:
                        jac[row, s] -= sign * (gm + gds + gmb)
            else:
                raise AnalysisError(
                    f"element type {type(element).__name__} not supported in transient"
                )

        # Capacitor companion models.
        for k_cap, (i, j, c) in enumerate(cap_stamps):
            if method == "trap":
                g_eq = 2.0 * c / dt
                dv_old = node_v(x_prev, i) - node_v(x_prev, j)
                i_eq = -g_eq * dv_old - cap_current[k_cap]
            else:
                g_eq = c / dt
                dv_old = node_v(x_prev, i) - node_v(x_prev, j)
                i_eq = -g_eq * dv_old
            stamp_conductance(jac, i, j, g_eq)
            cur = g_eq * (node_v(x, i) - node_v(x, j)) + i_eq
            if i != GROUND:
                resid[i] += cur
            if j != GROUND:
                resid[j] -= cur

        residual_norm = float(np.max(np.abs(resid)))
        if residual_norm < _ABS_TOL * max(1.0, float(np.max(np.abs(x)))):
            return x
        try:
            dx = np.linalg.solve(jac, -resid)
        except np.linalg.LinAlgError as exc:
            raise ConvergenceError(f"transient Newton singular at t={t:.3e}s") from exc
        n_nodes = len(layout.nets)
        step = np.max(np.abs(dx[:n_nodes])) if n_nodes else 0.0
        if step > _VSTEP_LIMIT:
            dx *= _VSTEP_LIMIT / step
        x = x + dx

    raise ConvergenceError(f"transient Newton did not converge at t={t:.3e}s")
