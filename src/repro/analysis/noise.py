"""Output-referred noise analysis via the adjoint (transposed-system) method.

One linear solve of the transposed MNA system per frequency yields the
transfer from *every* element noise-current source to the chosen output, so
total output noise costs O(frequencies) solves regardless of how many noisy
elements the circuit has.
"""

from __future__ import annotations

import math

import numpy as np

from repro.analysis.mna import GROUND
from repro.analysis.smallsignal import LinearizedCircuit
from repro.errors import AnalysisError


def output_noise_psd(
    linear: LinearizedCircuit,
    output_net: str,
    frequencies_hz: np.ndarray,
    negative_net: str | None = None,
) -> np.ndarray:
    """Output noise voltage PSD [V^2/Hz] at each frequency."""
    i = linear.index(output_net)
    if i == GROUND:
        raise AnalysisError("output_net must not be ground")
    frequencies_hz = np.asarray(frequencies_hz, dtype=float)
    c_vec = np.zeros(linear.size)
    c_vec[i] = 1.0
    if negative_net is not None:
        j = linear.index(negative_net)
        if j == GROUND:
            raise AnalysisError("negative_net must not be ground")
        c_vec[j] = -1.0

    psd = np.zeros(len(frequencies_hz))
    for row, frequency in enumerate(frequencies_hz):
        s = 2j * math.pi * frequency
        try:
            y = np.linalg.solve(linear.system_at(s).T, c_vec.astype(complex))
        except np.linalg.LinAlgError as exc:
            raise AnalysisError(f"adjoint solve failed at {frequency:.3e} Hz") from exc
        total = 0.0
        for _, p, n, psd_fn in linear.noise_sources:
            # A noise current injected between nodes p and n: the RHS it
            # creates is -1 at p and +1 at n (current-source convention).
            transfer = 0.0 + 0.0j
            if p != GROUND:
                transfer -= y[p]
            if n != GROUND:
                transfer += y[n]
            total += psd_fn(frequency) * float(np.abs(transfer)) ** 2
        psd[row] = total
    return psd


def integrated_output_noise(
    linear: LinearizedCircuit,
    output_net: str,
    f_min: float = 1e2,
    f_max: float = 1e10,
    points_per_decade: int = 20,
    negative_net: str | None = None,
) -> float:
    """Total RMS output noise voltage [V] integrated over (f_min, f_max).

    Uses log-spaced trapezoidal integration, which resolves both the 1/f
    corner and the thermal roll-off with few points.
    """
    if f_min <= 0 or f_max <= f_min:
        raise AnalysisError("need 0 < f_min < f_max")
    decades = math.log10(f_max / f_min)
    freqs = np.logspace(
        math.log10(f_min), math.log10(f_max), int(decades * points_per_decade) + 1
    )
    psd = output_noise_psd(linear, output_net, freqs, negative_net)
    variance = float(np.trapezoid(psd, freqs))
    return math.sqrt(variance)
