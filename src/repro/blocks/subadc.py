"""Behavioral flash sub-ADC: 2^m - 2 comparators with redundant thresholds."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.blocks.comparator import BehavioralComparator
from repro.errors import SpecificationError


@dataclass(frozen=True)
class FlashSubAdc:
    """An m-bit flash quantizer with the pipeline's redundant level coding.

    Thresholds sit halfway between DAC levels: for ``levels = 2^m - 1``
    output codes, the ``levels - 1 = 2^m - 2`` thresholds are at
    ``(k - (levels-2)/2) * FS / 2^m`` — the classic +-FS/8, 0 arrangement
    for a 1.5-bit stage.
    """

    stage_bits: int
    full_scale: float
    comparators: tuple[BehavioralComparator, ...] = field(default=())

    def __post_init__(self) -> None:
        if self.stage_bits < 2:
            raise SpecificationError("stage_bits must be >= 2")
        if not self.comparators:
            object.__setattr__(
                self, "comparators", tuple(self._ideal_comparators())
            )
        expected = 2**self.stage_bits - 2
        if len(self.comparators) != expected:
            raise SpecificationError(
                f"{self.stage_bits}-bit sub-ADC needs {expected} comparators, "
                f"got {len(self.comparators)}"
            )

    def _ideal_comparators(self) -> list[BehavioralComparator]:
        return [BehavioralComparator(t) for t in self.ideal_thresholds()]

    def ideal_thresholds(self) -> list[float]:
        """Threshold voltages, ascending."""
        count = 2**self.stage_bits - 2
        step = self.full_scale / 2**self.stage_bits
        return [(k - (count - 1) / 2.0) * step for k in range(count)]

    @staticmethod
    def with_offsets(
        stage_bits: int,
        full_scale: float,
        offsets: list[float],
        noise_rms: float = 0.0,
    ) -> "FlashSubAdc":
        """Build a sub-ADC whose comparators carry the given offsets."""
        base = FlashSubAdc(stage_bits, full_scale)
        if len(offsets) != len(base.comparators):
            raise SpecificationError("one offset per comparator required")
        comps = tuple(
            BehavioralComparator(c.threshold, offset=o, noise_rms=noise_rms)
            for c, o in zip(base.comparators, offsets)
        )
        return FlashSubAdc(stage_bits, full_scale, comps)

    def quantize(self, vin: float, rng: np.random.Generator | None = None) -> int:
        """Thermometer decision: the output code in [0, 2^m - 2]."""
        return sum(1 for c in self.comparators if c.decide(vin, rng))
