"""Circuit blocks of the pipelined ADC.

* :mod:`repro.blocks.opamp` — sizing dataclasses for the opamp topologies;
* :mod:`repro.blocks.opamp_library` — transistor-level netlist generators
  (two-stage Miller, folded cascode) used by block synthesis;
* :mod:`repro.blocks.mdac` — the switched-capacitor MDAC: capacitor network
  arithmetic, the closed-loop settling testbench, and the ideal residue
  transfer used by the behavioral simulator;
* :mod:`repro.blocks.comparator` / :mod:`repro.blocks.subadc` — behavioral
  comparator and flash sub-ADC models with offset injection;
* :mod:`repro.blocks.sah` — the front-end sample-and-hold.
"""

from repro.blocks.opamp import FoldedCascodeSizing, TwoStageSizing
from repro.blocks.opamp_library import (
    build_folded_cascode,
    build_two_stage_miller,
)
from repro.blocks.mdac import MdacNetwork, build_settling_bench, residue_transfer
from repro.blocks.comparator import BehavioralComparator
from repro.blocks.subadc import FlashSubAdc
from repro.blocks.sah import SampleAndHold

__all__ = [
    "TwoStageSizing",
    "FoldedCascodeSizing",
    "build_two_stage_miller",
    "build_folded_cascode",
    "MdacNetwork",
    "build_settling_bench",
    "residue_transfer",
    "BehavioralComparator",
    "FlashSubAdc",
    "SampleAndHold",
]
