"""Transistor-level opamp netlist generators.

Each builder returns a complete amplifier netlist with nets
``vdd, gnd, inp, inm, out`` plus internal nodes.  Bias generators are
abstracted as ideal current sources and (for cascode gates) ideal voltage
sources — their silicon cost is carried by the power model's fixed
overhead, as in any sizing-tool setup where the bias cell is a shared
library block.

The testbench (supplies, input common mode, feedback, load) is added by the
caller; see :func:`repro.blocks.mdac.build_settling_bench` and
:mod:`repro.synth.evaluator`.
"""

from __future__ import annotations

import math

from repro.blocks.opamp import FoldedCascodeSizing, TwoStageSizing
from repro.circuit.builder import CircuitBuilder
from repro.circuit.netlist import Circuit
from repro.tech.process import Technology

#: Net names every opamp builder exposes.
OPAMP_PORTS = ("vdd", "gnd", "inp", "inm", "out")


def estimate_gm(kp: float, w: float, l: float, drain_current: float) -> float:
    """Square-law transconductance estimate sqrt(2 kp (W/L) Id)."""
    return math.sqrt(2.0 * kp * (w / l) * abs(drain_current))


def build_two_stage_miller(
    tech: Technology, sizing: TwoStageSizing, name: str = "ota2"
) -> Circuit:
    """Two-stage Miller opamp: NMOS pair, PMOS mirror, PMOS CS output.

    The Miller capacitor has a series nulling resistor at 1/gm of the
    second stage, which pushes the right-half-plane zero to infinity.
    """
    b = CircuitBuilder(name, tech=tech)

    # Bias: reference current into an NMOS diode sets the mirror gate.
    b.i("vdd", "nbias", dc=sizing.i_tail, name="ibias")
    b.nmos("nbias", "nbias", "gnd", w=sizing.w_tail, l=sizing.l_mirror, name="mb")

    # Tail and first stage.  The mirror-diode side (m1) is driven by the
    # inverting input: rising inm lifts o1, and the PMOS second stage then
    # pulls out down — so "inp" is the non-inverting input as labelled.
    b.nmos("tail", "nbias", "gnd", w=sizing.w_tail, l=sizing.l_mirror, name="mtail")
    b.nmos("x", "inm", "tail", w=sizing.w_input, l=sizing.l_input, name="m1")
    b.nmos("o1", "inp", "tail", w=sizing.w_input, l=sizing.l_input, name="m2")
    b.pmos("x", "x", "vdd", "vdd", w=sizing.w_load, l=sizing.l_mirror, name="m3")
    b.pmos("o1", "x", "vdd", "vdd", w=sizing.w_load, l=sizing.l_mirror, name="m4")

    # Second stage: PMOS common source with mirrored NMOS sink.
    b.pmos("out", "o1", "vdd", "vdd", w=sizing.w_stage2, l=sizing.l_input, name="m6")
    w_sink = sizing.w_tail * sizing.stage2_ratio
    b.nmos("out", "nbias", "gnd", w=w_sink, l=sizing.l_mirror, name="m7")

    # Miller compensation with nulling resistor ~ 1/gm6.
    gm6 = estimate_gm(tech.pmos.kp, sizing.w_stage2, sizing.l_input, sizing.i_stage2)
    b.r("o1", "nz", max(1.0 / gm6, 1.0), name="rz")
    b.c("nz", "out", sizing.c_comp, name="cc")

    return b.build(validate=False)


def build_folded_cascode(
    tech: Technology, sizing: FoldedCascodeSizing, name: str = "otafc"
) -> Circuit:
    """Folded-cascode OTA: NMOS input pair folding into PMOS cascodes.

    Cascode gate biases are ideal sources placed for nominal headroom; the
    synthesis evaluator checks every device's saturation margin, so sizings
    that break the bias plan are rejected by constraints rather than by
    construction.
    """
    b = CircuitBuilder(name, tech=tech)

    i_source = 0.5 * sizing.i_tail + sizing.i_fold

    # Bias generators.
    b.i("vdd", "nbias", dc=sizing.i_tail, name="ibias_tail")
    b.nmos("nbias", "nbias", "gnd", w=sizing.w_mirror, l=sizing.l_mirror, name="mbn")
    b.i("pbias", "gnd", dc=i_source, name="ibias_src")
    b.pmos("pbias", "pbias", "vdd", "vdd", w=sizing.w_source, l=sizing.l_mirror, name="mbp")
    # Cascode gate biases (ideal): leave ~0.55 V for source devices, and a
    # cascode gate-source drop around 0.85-1.0 V.
    b.v("vcp", "gnd", dc=tech.vdd - 1.45, name="vbcp")
    b.v("vcn", "gnd", dc=1.45, name="vbcn")

    # Input pair with mirrored tail.
    b.nmos("tail", "nbias", "gnd", w=sizing.w_mirror, l=sizing.l_mirror, name="mtail")
    b.nmos("f1", "inp", "tail", w=sizing.w_input, l=sizing.l_input, name="m1")
    b.nmos("f2", "inm", "tail", w=sizing.w_input, l=sizing.l_input, name="m2")

    # PMOS current sources feeding the folding nodes.
    b.pmos("f1", "pbias", "vdd", "vdd", w=sizing.w_source, l=sizing.l_mirror, name="ms1")
    b.pmos("f2", "pbias", "vdd", "vdd", w=sizing.w_source, l=sizing.l_mirror, name="ms2")

    # PMOS cascodes from the folding nodes down to the output branch.
    b.pmos("d1", "vcp", "f1", "vdd", w=sizing.w_cascode_p, l=sizing.l_input, name="mcp1")
    b.pmos("out", "vcp", "f2", "vdd", w=sizing.w_cascode_p, l=sizing.l_input, name="mcp2")

    # NMOS cascoded mirror at the bottom (diode side on branch 1).
    b.nmos("d1", "vcn", "s1", w=sizing.w_cascode_n, l=sizing.l_input, name="mcn1")
    b.nmos("out", "vcn", "s2", w=sizing.w_cascode_n, l=sizing.l_input, name="mcn2")
    b.nmos("s1", "d1", "gnd", w=sizing.w_mirror, l=sizing.l_mirror, name="mm1")
    b.nmos("s2", "d1", "gnd", w=sizing.w_mirror, l=sizing.l_mirror, name="mm2")

    return b.build(validate=False)


def opamp_supply_current(circuit: Circuit, dc_solution) -> float:
    """Total current drawn from the vdd supply source in a testbench.

    The testbench must name its supply source ``vdd_src``.
    """
    return dc_solution.supply_current("vdd_src")
