"""Behavioral comparator model with offset and noise injection."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class BehavioralComparator:
    """A clocked comparator deciding sign(vin - threshold + errors).

    ``offset`` is a static input-referred offset [V]; ``noise_rms`` adds
    white decision noise.  Both model the imperfections the pipeline's
    digital correction is supposed to absorb.
    """

    threshold: float
    offset: float = 0.0
    noise_rms: float = 0.0

    def decide(self, vin: float, rng: np.random.Generator | None = None) -> bool:
        """True if the (noisy, offset) input exceeds the threshold."""
        noise = 0.0
        if self.noise_rms > 0.0:
            if rng is None:
                raise ValueError("rng required when noise_rms > 0")
            noise = rng.normal(0.0, self.noise_rms)
        return vin + self.offset + noise > self.threshold
