"""Behavioral front-end sample-and-hold."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class SampleAndHold:
    """Samples the input with optional gain error and kT/C-style noise."""

    gain_error: float = 0.0
    noise_rms: float = 0.0

    def sample(self, vin: float, rng: np.random.Generator | None = None) -> float:
        """One held sample of ``vin``."""
        noise = 0.0
        if self.noise_rms > 0.0:
            if rng is None:
                raise ValueError("rng required when noise_rms > 0")
            noise = rng.normal(0.0, self.noise_rms)
        return vin * (1.0 + self.gain_error) + noise
