"""Sizing parameter sets for the opamp topologies.

These dataclasses are the *design vectors* block synthesis optimizes.  All
geometry is in meters, currents in amps, capacitance in farads.
"""

from __future__ import annotations

from dataclasses import dataclass, fields

from repro.errors import SpecificationError


@dataclass(frozen=True)
class TwoStageSizing:
    """Two-stage Miller-compensated opamp (NMOS input pair).

    Stage 1: NMOS diff pair with PMOS mirror load; stage 2: PMOS
    common-source with NMOS current-sink; Miller cap with nulling resistor.
    """

    #: Input-pair device width [m].
    w_input: float = 40e-6
    #: First-stage PMOS mirror width [m].
    w_load: float = 20e-6
    #: Second-stage PMOS width [m].
    w_stage2: float = 120e-6
    #: Tail / sink mirror unit width [m].
    w_tail: float = 20e-6
    #: Input-pair channel length [m].
    l_input: float = 0.5e-6
    #: Mirror/sink channel length [m].
    l_mirror: float = 0.5e-6
    #: Bias (tail) current [A].
    i_tail: float = 400e-6
    #: Second-stage current as a multiple of the tail current.
    stage2_ratio: float = 2.0
    #: Miller compensation capacitor [F].
    c_comp: float = 1.0e-12

    def __post_init__(self) -> None:
        _check_positive(self)

    @property
    def i_stage2(self) -> float:
        """Second-stage quiescent current [A]."""
        return self.i_tail * self.stage2_ratio

    @property
    def supply_current(self) -> float:
        """Nominal signal-path supply current (tail + stage 2) [A]."""
        return self.i_tail + self.i_stage2


@dataclass(frozen=True)
class FoldedCascodeSizing:
    """Folded-cascode OTA (NMOS input pair, PMOS folding branches)."""

    #: Input-pair device width [m].
    w_input: float = 60e-6
    #: PMOS current-source width (sources input + fold branch) [m].
    w_source: float = 80e-6
    #: PMOS cascode width [m].
    w_cascode_p: float = 40e-6
    #: NMOS cascode width [m].
    w_cascode_n: float = 30e-6
    #: NMOS mirror (fold sink) width [m].
    w_mirror: float = 30e-6
    #: Input-pair channel length [m].
    l_input: float = 0.35e-6
    #: Current-source / mirror channel length [m].
    l_mirror: float = 0.5e-6
    #: Tail current of the input pair [A].
    i_tail: float = 400e-6
    #: Fold-branch current as a fraction of half the tail current.
    fold_ratio: float = 1.0

    def __post_init__(self) -> None:
        _check_positive(self)

    @property
    def i_fold(self) -> float:
        """Current in each folded branch [A]."""
        return 0.5 * self.i_tail * self.fold_ratio

    @property
    def supply_current(self) -> float:
        """Nominal signal-path supply current (tail + two folds) [A]."""
        return self.i_tail + 2.0 * self.i_fold


def _check_positive(sizing) -> None:
    for f in fields(sizing):
        value = getattr(sizing, f.name)
        if isinstance(value, (int, float)) and value <= 0:
            raise SpecificationError(f"{type(sizing).__name__}.{f.name} must be positive")
