"""The switched-capacitor MDAC: capacitor network and settling testbench.

An MDAC samples the input on ``Cs + Cf``, then amplifies the quantization
residue by ``G = (Cs + Cf) / Cf`` while subtracting the sub-ADC's DAC
level.  Everything downstream cares about three numbers — the feedback
factor, the effective load, and the residue transfer — plus one transient
question: does the real opamp settle to the required accuracy in half a
clock period?  This module provides all four.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.circuit.builder import CircuitBuilder
from repro.circuit.netlist import Circuit
from repro.errors import SpecificationError
from repro.specs.stage import MdacSpec


@dataclass(frozen=True)
class MdacNetwork:
    """Capacitor network of one MDAC stage."""

    #: Sampling capacitor Cs [F].
    cs: float
    #: Feedback capacitor Cf [F].
    cf: float
    #: Opamp input (summing-node) parasitic [F].
    c_in: float
    #: Fixed output load [F].
    c_load: float

    @property
    def gain(self) -> float:
        """Ideal residue gain (Cs + Cf) / Cf."""
        return (self.cs + self.cf) / self.cf

    @property
    def beta(self) -> float:
        """Feedback factor during amplification."""
        return self.cf / (self.cs + self.cf + self.c_in)

    @property
    def c_eff(self) -> float:
        """Effective single-pole load the opamp drives."""
        series = self.cf * (self.cs + self.c_in) / (self.cs + self.cf + self.c_in)
        return self.c_load + series

    @staticmethod
    def from_spec(mdac: MdacSpec) -> "MdacNetwork":
        """Build the network from a block spec (Cs = (G-1) Cf)."""
        cf = mdac.cf
        cs = (mdac.gain - 1) * cf
        # Invert the spec's beta = cf / (cs + cf + c_in) for the input cap.
        c_in = cf / mdac.beta - (cs + cf)
        return MdacNetwork(cs=cs, cf=cf, c_in=max(c_in, 0.0), c_load=mdac.c_load)


def residue_transfer(
    code: int, stage_bits: int, vin: float, full_scale: float, gain_error: float = 0.0
) -> float:
    """Ideal (or gain-errored) MDAC residue: G*vin - code-dependent DAC level.

    ``code`` is the sub-ADC decision in ``[0, 2^m - 2]`` (the redundant
    coding with 2^m - 1 levels); ``vin`` and the result are differential
    voltages centred on zero with range ``[-FS/2, +FS/2]``.  The residue is

    ``vout = 2^(m-1) * vin - (code - (levels-1)/2) * FS/2``

    which for a 1.5-bit stage reduces to the classic ``2 vin - d FS/2``,
    ``d in {-1, 0, +1}``.
    """
    levels = 2**stage_bits - 1
    if not 0 <= code < levels:
        raise SpecificationError(f"code {code} out of range for {stage_bits}-bit stage")
    gain = 2.0 ** (stage_bits - 1) * (1.0 + gain_error)
    dac_index = code - (levels - 1) / 2.0
    return gain * vin - dac_index * full_scale / 2.0


def build_settling_bench(
    opamp: Circuit,
    network: MdacNetwork,
    tech,
    step_voltage: float,
    common_mode: float,
    step_time: float = 1.0e-9,
    switch_r_on: float = 200.0,
) -> tuple[Circuit, float]:
    """Closed-loop amplification-phase testbench around a real opamp.

    Phase 1 (t < step_time): a reset switch shorts the output to the
    summing node, putting the amplifier in unity feedback — this both sets
    a well-defined DC state and mimics the MDAC reset.  Phase 2: the switch
    opens and the DAC-side source steps by ``step_voltage``; the output
    must slew and settle to ``-Cs/Cf * step`` around its reset value.

    Returns ``(bench, ideal_step)`` where ``ideal_step`` is the expected
    output change after perfect settling.
    """
    bench = Circuit(f"bench_{opamp.name}")
    for element in opamp:
        bench.add(element)

    b = CircuitBuilder("tb", tech=tech)
    b.v("vdd", "gnd", dc=tech.vdd, name="vdd_src")
    b.v("inp", "gnd", dc=common_mode, name="vcm_src")

    def dac_wave(t: float, v0: float = common_mode) -> float:
        return v0 + (step_voltage if t >= step_time else 0.0)

    b.v("dac", "gnd", dc=common_mode, waveform=dac_wave, name="vdac")
    b.c("dac", "sum", network.cs, name="cs")
    b.c("sum", "out", network.cf, name="cf")
    if network.c_in > 0:
        b.c("sum", "gnd", network.c_in, name="cin_par")
    b.c("out", "gnd", network.c_load, name="cl")
    b.switch("out", "sum", phase=lambda t: t < step_time, r_on=switch_r_on, name="sreset")

    for element in b.circuit:
        bench.add(element)
    # The opamp's inverting input is the summing node.
    _rename_net(bench, "inm", "sum")

    ideal_step = -step_voltage * network.cs / network.cf
    return bench, ideal_step


def _rename_net(circuit: Circuit, old: str, new: str) -> None:
    """Rename a net across all elements (used to wire the opamp input)."""
    import dataclasses

    for element in list(circuit):
        changes = {}
        for field in dataclasses.fields(element):
            value = getattr(element, field.name)
            if isinstance(value, str) and value == old:
                changes[field.name] = new
        if changes:
            circuit.replace(dataclasses.replace(element, **changes))


def settling_error_fraction(
    waveform_final: float, waveform_start: float, ideal_step: float
) -> float:
    """Relative settling error of the measured output step."""
    if ideal_step == 0:
        raise SpecificationError("ideal_step must be nonzero")
    actual = waveform_final - waveform_start
    return abs(actual - ideal_step) / abs(ideal_step)
