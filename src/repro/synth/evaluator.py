"""Hybrid equation + simulation evaluation of one sizing candidate.

Mirrors the paper's Section 3 evaluation procedure exactly:

1. **DC simulation** of the amplifier testbench extracts the operating
   point and small-signal parameters (and the supply current = power).
2. The small-signal values are plugged into the **numerical transfer
   function** (the DPI/SFG symbolic result is equivalent to the linearized
   MNA solve used here) for fast, accurate gain / bandwidth / phase-margin
   evaluation.
3. When the behaviour is large-swing — the MDAC's slew-then-settle output
   step — a **nonlinear transient simulation** of the closed-loop stage
   produces the trustworthy settling-error number.

Step 3 costs ~100x step 2, so the optimizer runs on the equation metrics
and reserves the transient for verification — the hybrid the paper argues
for.  Benchmarks quantify the trade (bench_ablation_evaluator).

The equation half runs on one of two *kernels*:

* ``"compiled"`` (default) — the testbench topology is compiled once into
  a parametric MNA stamp template (:mod:`repro.analysis.template`), the DC
  Newton iterations assemble through vectorized scatters, and the whole AC
  sweep (DC-gain point + loop grid) solves as a single batched
  ``np.linalg.solve`` stack.  Results are bit-identical to the legacy
  path — the template replays the exact legacy stamp order — just ~4-6x
  faster (``benchmarks/bench_evaluator_kernel.py``).
* ``"legacy"`` — the seed's per-element stamp walk and per-frequency AC
  loop, kept as the reference for equivalence tests and benchmarks.

:meth:`HybridEvaluator.evaluate_batch` scores a whole population: DC
solves run candidate-by-candidate (preserving the warm-start chain, hence
bit-identical costs), then every candidate's AC sweep joins one stacked
linear solve.

The DC stage itself has two *kernels* (``dc_kernel``):

* ``"chained"`` (default) — the warm-start chain above: candidates solve
  one at a time, each seeded from the previous operating point.  Fast per
  solve, but strictly serial and order-dependent.
* ``"batched"`` — the whole population iterates as one lockstep Newton
  block (:mod:`repro.analysis.dcbatch`): every candidate starts cold from
  the shared bias guess, converged members freeze bitwise while stragglers
  keep iterating, and one stacked ``np.linalg.solve`` advances the block
  per iteration.  Trajectories are deterministic and order-independent —
  *different* from the chained results (no warm starts), which is why
  ``FlowConfig.dc_kernel`` is part of campaign result identity.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.analysis.ac import (
    ac_system_stack,
    ac_system_tensor,
    ac_transfer,
    solve_ac_stack,
)
from repro.analysis.dc import DcSolution, solve_dc
from repro.analysis.dcbatch import DC_KERNELS, solve_dc_batch
from repro.analysis.smallsignal import LinearizedCircuit, linearize
from repro.analysis.template import BoundMnaStack, TemplateStore, bind_template
from repro.analysis.transient import simulate_transient
from repro.blocks.mdac import MdacNetwork, build_settling_bench
from repro.blocks.opamp import TwoStageSizing
from repro.blocks.opamp_library import build_two_stage_miller
from repro.circuit.builder import CircuitBuilder
from repro.circuit.netlist import Circuit
from repro.errors import AnalysisError, ConvergenceError, ReproError, SynthesisError
from repro.specs.stage import MdacSpec
from repro.tech.process import Technology

#: Differential-implementation factor on the measured single-ended current.
DIFFERENTIAL_FACTOR = 2.0

#: Hard phase-margin floor [deg].  Switched-capacitor stages only care
#: about the end-of-phase value, which the transient verifies directly, so
#: moderate ringing is acceptable; 50 degrees is the robustness floor while
#: the cost function still rewards designs that reach 60+.
PHASE_MARGIN_MIN = 50.0

#: Saturation margin every signal device must keep [V].
SATURATION_MARGIN = 0.05

#: Devices that must stay saturated in the two-stage opamp.
_SIGNAL_DEVICES = ("m1", "m2", "m3", "m4", "m6", "m7", "mtail")

#: Supported equation-evaluation kernels.
EVAL_KERNELS = ("compiled", "legacy")

#: Frequency used for the DC-gain read-out [Hz].
_DC_GAIN_FREQ = 1e3

#: Loop-gain sweep grid [Hz] (the legacy ``_loop_margin`` grid).
_LOOP_FREQS = np.logspace(3, 11, 241)

#: Merged per-candidate AC grid: DC-gain point followed by the loop grid.
_AC_FREQS = np.concatenate(([_DC_GAIN_FREQ], _LOOP_FREQS))

#: Candidates per fused AC solve chunk.  Each candidate contributes
#: ``len(_AC_FREQS)`` (n, n) complex systems (~1-2 MB); chunking keeps the
#: working set cache-resident instead of materializing one population-sized
#: tensor, while every chunk still goes through a single ``np.linalg.solve``
#: (the gufunc applies LAPACK per slice, so chunk size never changes bits).
_AC_BATCH_CHUNK = 8


class _AcScratch:
    """Grow-once scratch (stack + RHS) for fused batched AC solves."""

    __slots__ = ("stack", "rhs")

    def __init__(self):
        self.stack: np.ndarray | None = None
        self.rhs: np.ndarray | None = None

    def buffers(self, rows: int, size: int) -> tuple[np.ndarray, np.ndarray]:
        if (
            self.stack is None
            or self.stack.shape[0] < rows
            or self.stack.shape[1] != size
        ):
            self.stack = np.empty((rows, size, size), dtype=complex)
            self.rhs = np.empty((rows, size, 1), dtype=complex)
        return self.stack[:rows], self.rhs[:rows]


def _solve_staged_ac(pending: "list[_StagedEvaluation]", scratch: _AcScratch) -> None:
    """Fused AC solve for staged candidates (flattened candidates×corners).

    Fills each entry's ``a_all`` (or marks it failed) exactly like a
    per-candidate :func:`~repro.analysis.ac.solve_ac_stack` walk would: the
    chunked ``np.linalg.solve`` applies LAPACK per (n, n) slice, so chunk
    boundaries and scratch reuse never change a bit of any solution.
    """
    n_freq = len(_AC_FREQS)
    size = pending[0].lin.size
    for start in range(0, len(pending), _AC_BATCH_CHUNK):
        part = pending[start : start + _AC_BATCH_CHUNK]
        rows = len(part) * n_freq
        stack, rhs = scratch.buffers(rows, size)
        ac_system_tensor(
            [s.lin for s in part],
            _AC_FREQS,
            out=stack.reshape(len(part), n_freq, size, size),
        )
        b0 = part[0].lin.b_ac
        if all(np.array_equal(s.lin.b_ac, b0) for s in part[1:]):
            # One excitation for the whole chunk (the sizing loop's case:
            # b_ac depends only on source ac values): broadcast instead of
            # materializing per-candidate copies.  Same values either way.
            rhs = np.broadcast_to(b0, (rows, size))[..., None]
        else:
            for i, s in enumerate(part):
                rhs[i * n_freq : (i + 1) * n_freq, :, 0] = s.lin.b_ac
        try:
            solutions = np.linalg.solve(stack, rhs)[..., 0]
            split = np.split(solutions, len(part))
        except np.linalg.LinAlgError:
            # Some candidate's sweep is singular: resolve per candidate so
            # only that candidate goes infeasible (matching what a
            # sequential evaluate() would do).
            split = []
            for i, s in enumerate(part):
                block = slice(i * n_freq, (i + 1) * n_freq)
                try:
                    split.append(
                        solve_ac_stack(stack[block], s.lin.b_ac, _AC_FREQS)
                    )
                except AnalysisError:
                    split.append(None)
        for s, solution in zip(part, split):
            if solution is None:
                s.failed = True
                continue
            s.a_all = solution[:, s.lin.index("out")].copy()


@dataclass
class EvalResult:
    """Metrics and feasibility of one sizing candidate."""

    #: Candidate sizing object.
    sizing: object
    #: Estimated block power (differential implementation) [W].
    power: float
    #: Open-loop DC gain [V/V].
    dc_gain: float
    #: Loop unity-gain frequency (a*beta crossing) [Hz].
    loop_unity_hz: float | None
    #: Loop phase margin [deg].
    phase_margin: float | None
    #: Worst saturation margin across signal devices [V].
    saturation_margin: float
    #: Relative settling error from transient (None if not simulated).
    settling_error: float | None
    #: Whether the DC solve succeeded.
    dc_ok: bool
    #: Constraint violations by name -> normalized amount (>0 means violated).
    violations: dict[str, float]

    @property
    def feasible(self) -> bool:
        """True when every constraint is met."""
        return self.dc_ok and all(v <= 0.0 for v in self.violations.values())

    def cost(self, power_scale: float = 1e-3) -> float:
        """Scalar objective: normalized power plus constraint penalties.

        The linear penalty term dominates near-feasibility so the optimizer
        cannot trade a few percent of constraint violation for power.
        """
        if not self.dc_ok:
            return 1e6
        linear = sum(max(0.0, v) for v in self.violations.values())
        quadratic = sum(max(0.0, v) ** 2 for v in self.violations.values())
        return self.power / power_scale + 50.0 * linear + 500.0 * quadratic


@dataclass
class _StagedEvaluation:
    """Per-candidate state between the DC stage and the AC read-out."""

    sizing: object
    failed: bool = False
    power: float = float("inf")
    saturation: float = -1.0
    lin: LinearizedCircuit | None = None
    #: Amplifier transfer over :data:`_AC_FREQS` (gain point + loop grid).
    a_all: np.ndarray | None = None


class HybridEvaluator:
    """Evaluates two-stage-Miller sizings against an MDAC specification."""

    def __init__(
        self,
        mdac: MdacSpec,
        tech: Technology,
        common_mode: float | None = None,
        transient_points: int = 500,
        kernel: str = "compiled",
        template_store: TemplateStore | str | None = None,
        dc_kernel: str = "chained",
    ):
        if kernel not in EVAL_KERNELS:
            raise SynthesisError(
                f"unknown evaluation kernel {kernel!r} (known: {EVAL_KERNELS})"
            )
        if dc_kernel not in DC_KERNELS:
            raise SynthesisError(
                f"unknown DC kernel {dc_kernel!r} (known: {DC_KERNELS})"
            )
        if dc_kernel == "batched" and kernel != "compiled":
            raise SynthesisError(
                "dc_kernel='batched' requires the compiled evaluation kernel "
                "(the lockstep solver stacks compiled stamp programs)"
            )
        self.mdac = mdac
        self.tech = tech
        self.network = MdacNetwork.from_spec(mdac)
        self.common_mode = common_mode if common_mode is not None else 0.45 * tech.vdd
        self.transient_points = transient_points
        self.kernel = kernel
        self.dc_kernel = dc_kernel
        #: Optional on-disk store of compiled stamp templates — workers
        #: point this at ``<cache_dir>/templates`` so they load compiled
        #: programs instead of recompiling per job.
        self.template_store = (
            TemplateStore(template_store)
            if isinstance(template_store, (str, bytes)) or hasattr(template_store, "__fspath__")
            else template_store
        )
        self._warm_x: np.ndarray | None = None
        #: Counters for the ablation benchmarks.
        self.equation_evals = 0
        self.transient_evals = 0
        #: Warm-state trace of the last :meth:`evaluate_batch` call — the
        #: ``_warm_x`` snapshot after each candidate, consumed by the
        #: speculative batcher (:mod:`repro.synth.batcheval`) to rewind the
        #: evaluator to any consumed prefix.
        self._batch_warm_trace: list[np.ndarray | None] = []
        #: Scratch buffer for the per-candidate AC system stack.
        self._ac_stack_buf: np.ndarray | None = None
        #: Grow-once scratch for fused batch AC solves (chunked).
        self._batch_scratch = _AcScratch()
        #: Bound stamp template, reused (rebound) across candidates.
        self._bound = None
        #: Grow-once pool of per-candidate bindings for the batched DC
        #: kernel (the lockstep block needs every member bound at once).
        self._bound_pool: "list[object | None]" = []

    def _bind(self, bench: Circuit):
        """Bind (or rebind) the compiled stamp template onto ``bench``.

        The sizing loop produces the same topology every candidate, so one
        :class:`~repro.analysis.template.BoundMna` is reused and only its
        value slots refresh.
        """
        bound = self._bound
        if bound is not None and bound.template.key == bench.topology_key():
            return bound.rebind(bench)
        bound = bind_template(bench, store=self.template_store)
        self._bound = bound
        return bound

    def _bind_pool(self, slot: int, bench: Circuit):
        """Bind ``bench`` onto the pooled per-candidate binding ``slot``.

        The batched DC kernel needs every population member bound
        simultaneously; the pool grows to the largest population seen and
        slots rebind (value refresh only) on subsequent batches.
        """
        pool = self._bound_pool
        while len(pool) <= slot:
            pool.append(None)
        bound = pool[slot]
        if bound is not None and bound.template.key == bench.topology_key():
            return bound.rebind(bench)
        bound = bind_template(bench, store=self.template_store)
        pool[slot] = bound
        return bound

    def _ac_scratch(self, size: int) -> np.ndarray:
        """Reusable (n_freq, size, size) complex buffer for the AC stack."""
        if self._ac_stack_buf is None or self._ac_stack_buf.shape[1] != size:
            self._ac_stack_buf = np.empty(
                (len(_AC_FREQS), size, size), dtype=complex
            )
        return self._ac_stack_buf

    # -- testbench -----------------------------------------------------------

    def _ac_bench(self, sizing: TwoStageSizing) -> Circuit:
        """Opamp + supplies + high-impedance unity feedback + effective load."""
        amp = build_two_stage_miller(self.tech, sizing)
        bench = Circuit(f"acbench_{amp.name}")
        for element in amp:
            bench.add(element)
        b = CircuitBuilder("tb", tech=self.tech)
        b.v("vdd", "gnd", dc=self.tech.vdd, name="vdd_src")
        b.v("inp", "gnd", dc=self.common_mode, ac=1.0, name="vin_src")
        # DC feedback path for biasing; invisible above ~1 kHz.
        b.r("out", "inm", 1e9, name="rfb")
        b.c("inm", "gnd", 1e-6, name="cfb")
        b.c("out", "gnd", self.network.c_eff, name="cload")
        for element in b.circuit:
            bench.add(element)
        return bench

    # -- evaluation ----------------------------------------------------------

    def evaluate(
        self, sizing: TwoStageSizing, run_transient: bool = False
    ) -> EvalResult:
        """Hybrid evaluation; set ``run_transient`` for the simulation half."""
        if self.dc_kernel == "batched":
            # Single-candidate case of the lockstep path: cold starts make
            # a population of one identical to the member's batch result.
            return self.evaluate_batch([sizing], run_transient)[0]
        staged = self._stage_equation(sizing)
        if staged.failed:
            return self._infeasible(sizing)
        try:
            if self.kernel == "compiled":
                # One stacked solve covers the DC-gain point and loop grid;
                # the system stack reuses a per-evaluator scratch buffer.
                lin = staged.lin
                stack = ac_system_stack(
                    lin, _AC_FREQS, out=self._ac_scratch(lin.size)
                )
                solution = solve_ac_stack(stack, lin.b_ac, _AC_FREQS)
                staged.a_all = solution[:, lin.index("out")]
            else:
                # The seed's two separate per-frequency sweeps.
                gain_point = ac_transfer(
                    staged.lin, "out", np.array([_DC_GAIN_FREQ]), batched=False
                )
                loop = ac_transfer(staged.lin, "out", _LOOP_FREQS, batched=False)
                staged.a_all = np.concatenate((gain_point, loop))
        except (AnalysisError, ReproError):
            return self._infeasible(sizing)
        return self._finish(staged, run_transient)

    def evaluate_batch(
        self, sizings: list[TwoStageSizing], run_transient: bool = False
    ) -> list[EvalResult]:
        """Score a population; bit-identical to sequential :meth:`evaluate`.

        DC solves run candidate-by-candidate in list order (the warm-start
        chain is order-dependent, and keeping the serial order is what makes
        the costs bit-identical), then the compiled kernel fuses every
        surviving candidate's AC sweep into one stacked linear solve.  On
        the legacy kernel this falls back to a plain sequential loop.
        """
        if self.kernel != "compiled":
            results = []
            self._batch_warm_trace = []
            for sizing in sizings:
                results.append(self.evaluate(sizing, run_transient))
                self._batch_warm_trace.append(
                    None if self._warm_x is None else self._warm_x.copy()
                )
            return results

        if self.dc_kernel == "batched":
            staged = self._stage_batched(sizings)
            # Cold starts leave no warm chain to rewind: speculative
            # replays (synth/batcheval.py) are trivially exact.
            self._batch_warm_trace = [None] * len(sizings)
            pending = [s for s in staged if s.lin is not None]
            if pending:
                _solve_staged_ac(pending, self._batch_scratch)
            return [
                self._infeasible(s.sizing)
                if s.failed
                else self._finish(s, run_transient)
                for s in staged
            ]

        staged: list[_StagedEvaluation] = []
        self._batch_warm_trace = []
        for sizing in sizings:
            staged.append(self._stage_equation(sizing))
            self._batch_warm_trace.append(
                None if self._warm_x is None else self._warm_x.copy()
            )

        pending = [s for s in staged if s.lin is not None]
        if pending:
            _solve_staged_ac(pending, self._batch_scratch)

        return [
            self._infeasible(s.sizing) if s.failed else self._finish(s, run_transient)
            for s in staged
        ]

    def _stage_batched(
        self, sizings: "list[TwoStageSizing]"
    ) -> "list[_StagedEvaluation]":
        """Cold-start lockstep DC staging for the batched kernel.

        Every candidate binds its own pooled template slot, one population
        solve (:func:`repro.analysis.dcbatch.solve_dc_batch`) replaces the
        chained walk, and per-member failures degrade that member alone.
        Like the chained path's cold restart, a candidate whose cold-start
        solution is degenerate is infeasible — there is no further guess to
        fall back to.
        """
        staged: "list[_StagedEvaluation]" = []
        bounds = []
        for i, sizing in enumerate(sizings):
            self.equation_evals += 1
            staged.append(_StagedEvaluation(sizing=sizing))
            bench = self._ac_bench(sizing)
            bounds.append(self._bind_pool(i, bench))
        batch = solve_dc_batch(bounds, initial_guess=self._dc_guess())
        for st, bound, op in zip(staged, bounds, batch.solutions):
            if op is None or self._degenerate(op):
                st.failed = True
                continue
            st.power = (
                self.tech.vdd
                * abs(op.supply_current("vdd_src"))
                * DIFFERENTIAL_FACTOR
            )
            st.saturation = self._saturation_margin(op)
            try:
                st.lin = bound.linearize(op)
            except (AnalysisError, ReproError):
                st.failed = True
        return staged

    def _stage_equation(self, sizing: TwoStageSizing) -> "_StagedEvaluation":
        """DC solve + linearization — the sequential half of an evaluation."""
        staged, bench, bound, op = self._stage_dc(sizing)
        if staged.failed:
            return staged
        try:
            if bound is not None:
                staged.lin = bound.linearize(op)
            else:
                staged.lin = linearize(bench, op, include_noise=False)
        except (AnalysisError, ReproError):
            staged.failed = True
        return staged

    def _stage_dc(self, sizing: TwoStageSizing):
        """The order-dependent half: bench build, DC solve, power read-out.

        Returns ``(staged, bench, bound, op)`` so corner-set evaluation can
        interleave per-corner DC chains and defer linearization to the
        corner-stacked template binding.
        """
        self.equation_evals += 1
        staged = _StagedEvaluation(sizing=sizing)
        bench = self._ac_bench(sizing)
        bound = self._bind(bench) if self.kernel == "compiled" else None
        try:
            op = self._solve_dc(bench, assembly=bound)
        except (ConvergenceError, ReproError):
            staged.failed = True
            return staged, bench, bound, None
        staged.power = (
            self.tech.vdd
            * abs(op.supply_current("vdd_src"))
            * DIFFERENTIAL_FACTOR
        )
        staged.saturation = self._saturation_margin(op)
        return staged, bench, bound, op

    def _finish(
        self, staged: "_StagedEvaluation", run_transient: bool
    ) -> EvalResult:
        """Metrics + violations from a staged evaluation's AC sweep."""
        a_all = staged.a_all
        dc_gain = abs(float(np.real(a_all[0])))
        loop_unity, pm = self._loop_margin_values(a_all[1:])
        settling = None
        if run_transient:
            settling = self._transient_settling(staged.sizing)
        violations = self._violations(
            dc_gain, loop_unity, pm, staged.saturation, settling
        )
        return EvalResult(
            sizing=staged.sizing,
            power=staged.power,
            dc_gain=dc_gain,
            loop_unity_hz=loop_unity,
            phase_margin=pm,
            saturation_margin=staged.saturation,
            settling_error=settling,
            dc_ok=True,
            violations=violations,
        )

    def _dc_guess(self) -> dict[str, float]:
        vdd, cm = self.tech.vdd, self.common_mode
        return {
            "vdd": vdd,
            "inp": cm,
            "inm": cm,
            "out": cm,
            "nz": cm,
            "o1": vdd - 0.9,  # PMOS second-stage gate bias point
            "x": vdd - 0.9,
            "nbias": 0.8,
            "tail": 0.5,
        }

    def _degenerate(self, op: DcSolution) -> bool:
        """Detect the parasitic rail-stuck solution of the feedback bench."""
        vout = op.voltages.get("out", 0.0)
        if not 0.15 * self.tech.vdd < vout < 0.85 * self.tech.vdd:
            return True
        m2 = op.device_ops.get("m2")
        return m2 is not None and m2.region == "cutoff"

    def _solve_dc(self, bench: Circuit, assembly=None) -> DcSolution:
        if self._warm_x is not None:
            try:
                op = solve_dc(bench, x0=self._warm_x, assembly=assembly)
                if not self._degenerate(op):
                    self._warm_x = op.x
                    return op
            except (ConvergenceError, ReproError):
                pass
        op = solve_dc(bench, initial_guess=self._dc_guess(), assembly=assembly)
        if self._degenerate(op):
            raise ConvergenceError("amplifier stuck in a degenerate operating point")
        self._warm_x = op.x
        return op

    def _saturation_margin(self, op: DcSolution) -> float:
        margins = []
        for name in _SIGNAL_DEVICES:
            if name not in op.device_ops:
                continue
            device = op.device_ops[name]
            margins.append(abs(device.vds) - device.vdsat)
        return min(margins) if margins else -1.0

    def _loop_margin_values(
        self, a: np.ndarray
    ) -> tuple[float | None, float | None]:
        """Unity crossing and phase margin of the loop gain a(s)*beta.

        ``a`` is the amplifier transfer over :data:`_LOOP_FREQS`; a(s) is
        measured from the non-inverting input (phase 0 at DC); the phase is
        unwrapped along the sweep so margins past -180 degrees report as
        negative instead of aliasing.
        """
        beta = self.network.beta
        freqs = _LOOP_FREQS
        loop_mag = np.abs(a) * beta
        phase = np.degrees(np.unwrap(np.angle(a)))
        # Last downward unity crossing (vectorized form of the legacy scan).
        down = np.nonzero((loop_mag[:-1] >= 1.0) & (loop_mag[1:] < 1.0))[0]
        if len(down) == 0:
            return None, None
        crossing = int(down[-1])
        # Log-interpolate the crossing frequency and phase.
        m1, m2 = loop_mag[crossing], loop_mag[crossing + 1]
        t = math.log(m1) / (math.log(m1) - math.log(m2))
        fx = freqs[crossing] ** (1 - t) * freqs[crossing + 1] ** t
        ph = phase[crossing] * (1 - t) + phase[crossing + 1] * t
        return fx, 180.0 + ph

    def _transient_settling(self, sizing: TwoStageSizing) -> float | None:
        """Nonlinear closed-loop settling error (the simulation half)."""
        self.transient_evals += 1
        amp = build_two_stage_miller(self.tech, sizing)
        # Per-side worst step of the differential implementation: each side
        # carries half the differential residue range.
        output_step = self.mdac.output_swing / 4.0
        step = -output_step / (self.network.cs / self.network.cf)
        bench, ideal = build_settling_bench(
            amp,
            self.network,
            self.tech,
            step_voltage=step,
            common_mode=self.common_mode,
        )
        t_settle = self.mdac.linear_settling_time + self.mdac.slew_time
        t_stop = 1.0e-9 + t_settle
        dt = t_settle / self.transient_points
        try:
            result = simulate_transient(bench, t_stop=t_stop, dt=dt, record=["out"])
        except (ConvergenceError, AnalysisError):
            return 1.0
        v = result.voltage("out")
        start = float(v[np.searchsorted(result.time, 1.0e-9) - 1])
        final = float(v[-1])
        if ideal == 0:
            return 1.0
        return abs((final - start) - ideal) / abs(ideal)

    def _violations(
        self,
        dc_gain: float,
        loop_unity: float | None,
        pm: float | None,
        saturation: float,
        settling: float | None,
    ) -> dict[str, float]:
        v: dict[str, float] = {}
        v["dc_gain"] = (self.mdac.dc_gain_min - dc_gain) / self.mdac.dc_gain_min
        required_bw = self.mdac.closed_loop_bw_hz
        if loop_unity is None:
            v["bandwidth"] = 1.0
        else:
            v["bandwidth"] = (required_bw - loop_unity) / required_bw
        if pm is None:
            v["phase_margin"] = 1.0
        else:
            v["phase_margin"] = (PHASE_MARGIN_MIN - pm) / PHASE_MARGIN_MIN
        v["saturation"] = (SATURATION_MARGIN - saturation) / self.tech.vdd * 10.0
        if settling is not None:
            v["settling"] = (settling - self.mdac.settling_error) / self.mdac.settling_error / 10.0
            # The nonlinear transient *is* the settling requirement; when it
            # holds, the conservative linear bandwidth proxy is informative
            # only (the hybrid-evaluation principle of Section 3).
            if settling <= self.mdac.settling_error:
                v["bandwidth"] = min(v["bandwidth"], 0.0)
        return v

    def _infeasible(self, sizing: TwoStageSizing) -> EvalResult:
        return EvalResult(
            sizing=sizing,
            power=float("inf"),
            dc_gain=0.0,
            loop_unity_hz=None,
            phase_margin=None,
            saturation_margin=-1.0,
            settling_error=None,
            dc_ok=False,
            violations={"dc": 1.0},
        )


class CornerSetEvaluator:
    """Candidates×corners evaluation through one fused tensor solve.

    Multi-corner figure-of-merit computation (Barrandon et al.) evaluates
    the same candidates under every process corner.  Corners share the
    testbench topology, so this holds one :class:`HybridEvaluator` per
    corner (each with its own order-dependent DC warm-start chain), runs
    the per-corner DC solves serially, linearizes all corners at once
    through a corner-stacked template binding
    (:class:`~repro.analysis.template.BoundMnaStack`), and fuses every
    candidate's and corner's AC sweep into a single candidates×corners×freq
    ``np.linalg.solve`` tensor.

    **Bit-identity:** ``evaluate_batch(sizings)[c]`` equals
    ``self.corners[c].evaluate_batch(sizings)`` run standalone, result for
    result — each corner's DC chain sees the same candidate sequence, the
    stacked linearization replays each corner's scatter program unchanged,
    and the tensor solve applies LAPACK per (n, n) slice.
    ``tests/synth/test_corner_batch.py`` locks this down.
    """

    def __init__(
        self,
        mdac: MdacSpec,
        techs: "list[Technology]",
        common_mode: float | None = None,
        transient_points: int = 500,
        kernel: str = "compiled",
        template_store: TemplateStore | str | None = None,
        dc_kernel: str = "chained",
    ):
        if not techs:
            raise SynthesisError("CornerSetEvaluator needs at least one corner")
        self.corners = [
            HybridEvaluator(
                mdac,
                tech,
                common_mode=common_mode,
                transient_points=transient_points,
                kernel=kernel,
                template_store=template_store,
                dc_kernel=dc_kernel,
            )
            for tech in techs
        ]
        self.kernel = kernel
        self.dc_kernel = dc_kernel
        self._stack: BoundMnaStack | None = None
        self._tensor_scratch = _AcScratch()

    @property
    def equation_evals(self) -> int:
        """Total equation evaluations across all corners."""
        return sum(ev.equation_evals for ev in self.corners)

    def _corner_stack(self) -> BoundMnaStack | None:
        """The corner-stacked binding over the corners' current bounds."""
        bounds = [ev._bound for ev in self.corners]
        if any(b is None for b in bounds):
            return None
        key = bounds[0].template.key
        if any(b.template.key != key for b in bounds[1:]):
            return None
        stack = self._stack
        if stack is None or len(stack.corners) != len(bounds) or any(
            sb is not b for sb, b in zip(stack.corners, bounds)
        ):
            stack = BoundMnaStack.from_bounds(bounds)
            self._stack = stack
        return stack

    def evaluate_batch(
        self, sizings: "list[TwoStageSizing]", run_transient: bool = False
    ) -> "list[list[EvalResult]]":
        """Score ``sizings`` under every corner; returns ``[corner][candidate]``.

        The legacy kernel has no batched form — it falls back to per-corner
        sequential evaluation (the baseline the benchmarks measure the
        tensor path against).
        """
        if self.kernel != "compiled":
            return [ev.evaluate_batch(sizings, run_transient) for ev in self.corners]
        if self.dc_kernel == "batched":
            return self._evaluate_batch_lockstep(sizings, run_transient)

        n_corners = len(self.corners)
        staged: list[list[_StagedEvaluation]] = [[] for _ in range(n_corners)]
        pending: list[_StagedEvaluation] = []
        for sizing in sizings:
            # Candidate-major staging: every corner's DC chain still sees
            # the candidates in list order, identical to its solo run.
            rows = [ev._stage_dc(sizing) for ev in self.corners]
            stack = None
            if all(op is not None for (_, _, _, op) in rows):
                stack = self._corner_stack()
            if stack is not None:
                # One corner-dimension slot refresh + stacked linearize.
                try:
                    lins = stack.refresh().linearize(
                        [op for (_, _, _, op) in rows]
                    )
                except (AnalysisError, ReproError):
                    lins = None
                    for st, _, _, _ in rows:
                        st.failed = True
                if lins is not None:
                    for (st, _, _, _), lin in zip(rows, lins):
                        st.lin = lin
            else:
                for st, bench, bound, op in rows:
                    if op is None:
                        continue
                    try:
                        if bound is not None:
                            st.lin = bound.linearize(op)
                        else:
                            st.lin = linearize(bench, op, include_noise=False)
                    except (AnalysisError, ReproError):
                        st.failed = True
            for c, (st, _, _, _) in enumerate(rows):
                staged[c].append(st)
                if st.lin is not None:
                    pending.append(st)

        if pending:
            # The candidates×corners×freq tensor: one chunked fused solve.
            _solve_staged_ac(pending, self._tensor_scratch)

        return [
            [
                ev._infeasible(st.sizing)
                if st.failed or st.a_all is None
                else ev._finish(st, run_transient)
                for st in staged[c]
            ]
            for c, ev in enumerate(self.corners)
        ]

    def _evaluate_batch_lockstep(
        self, sizings: "list[TwoStageSizing]", run_transient: bool
    ) -> "list[list[EvalResult]]":
        """The candidates×corners block as one lockstep DC solve.

        Every (candidate, corner) member joins a single
        :func:`~repro.analysis.dcbatch.solve_dc_batch` population — corners
        share the testbench topology, so the whole block iterates as one
        masked Newton stack — and the surviving members' AC sweeps fuse
        into the usual candidates×corners×freq tensor solve.  Each member
        cold-starts from *its corner's* bias guess (supplies and common
        modes differ per corner), so results are order-independent across
        both axes.
        """
        staged: "list[list[_StagedEvaluation]]" = [[] for _ in self.corners]
        bounds = []
        guesses = []
        entries: "list[tuple[int, _StagedEvaluation]]" = []
        for i, sizing in enumerate(sizings):
            for c, ev in enumerate(self.corners):
                ev.equation_evals += 1
                st = _StagedEvaluation(sizing=sizing)
                staged[c].append(st)
                bench = ev._ac_bench(sizing)
                bounds.append(ev._bind_pool(i, bench))
                guesses.append(ev._dc_guess())
                entries.append((c, st))
        batch = solve_dc_batch(bounds, initial_guess=guesses)
        pending: "list[_StagedEvaluation]" = []
        for (c, st), bound, op in zip(entries, bounds, batch.solutions):
            ev = self.corners[c]
            if op is None or ev._degenerate(op):
                st.failed = True
                continue
            st.power = (
                ev.tech.vdd
                * abs(op.supply_current("vdd_src"))
                * DIFFERENTIAL_FACTOR
            )
            st.saturation = ev._saturation_margin(op)
            try:
                st.lin = bound.linearize(op)
            except (AnalysisError, ReproError):
                st.failed = True
                continue
            pending.append(st)
        if pending:
            _solve_staged_ac(pending, self._tensor_scratch)
        return [
            [
                ev._infeasible(st.sizing)
                if st.failed or st.a_all is None
                else ev._finish(st, run_transient)
                for st in staged[c]
            ]
            for c, ev in enumerate(self.corners)
        ]
