"""Hooke-Jeeves pattern search: local polish after the global anneal."""

from __future__ import annotations

from collections.abc import Callable

import numpy as np


def pattern_search(
    cost_fn: Callable[[np.ndarray], float],
    x0: np.ndarray,
    budget: int = 120,
    step: float = 0.08,
    shrink: float = 0.5,
    min_step: float = 0.005,
    speculation: int = 0,
) -> tuple[np.ndarray, float, int]:
    """Coordinate pattern search in [0,1]^d from ``x0``.

    Returns ``(best_x, best_cost, evaluations)``.  Deterministic: probes
    +-step along every coordinate, moves to any improvement, shrinks the
    step when a full sweep fails.

    ``speculation`` > 1 (with a batch-capable ``cost_fn`` — see
    :class:`~repro.synth.batcheval.BatchCostFunction`) pre-scores each
    sweep's poll set as one batch under the no-improvement prediction; the
    serial sweep replays against the cache and falls back to fresh
    evaluations from the first improving move on.  Results are
    bit-identical to ``speculation=0``.
    """
    x = np.clip(np.asarray(x0, dtype=float), 0.0, 1.0)
    cost = cost_fn(x)
    evaluations = 1
    current_step = step
    dimension = len(x)
    speculative = speculation > 1 and hasattr(cost_fn, "speculate")

    while evaluations < budget and current_step >= min_step:
        if speculative:
            # The adaptive depth bounds how much of the poll set is
            # prepaid under the no-improvement prediction (0 = skip while
            # sweeps keep improving early); any depth is bit-identical.
            limit = min(speculation, budget - evaluations)
            if hasattr(cost_fn, "advise_depth"):
                limit = cost_fn.advise_depth(limit)
            proposals = []
            for i in range(dimension):
                for sign in (+1.0, -1.0):
                    if evaluations + len(proposals) >= budget:
                        break
                    if len(proposals) >= limit:
                        break
                    trial = x.copy()
                    trial[i] = np.clip(trial[i] + sign * current_step, 0.0, 1.0)
                    if trial[i] == x[i]:
                        continue
                    proposals.append(trial)
            if proposals:
                cost_fn.speculate(proposals)
        improved = False
        for i in range(dimension):
            for sign in (+1.0, -1.0):
                if evaluations >= budget:
                    break
                trial = x.copy()
                trial[i] = np.clip(trial[i] + sign * current_step, 0.0, 1.0)
                if trial[i] == x[i]:
                    continue
                trial_cost = cost_fn(trial)
                evaluations += 1
                if trial_cost < cost:
                    x, cost = trial, trial_cost
                    improved = True
                    break
        if not improved:
            current_step *= shrink
    if speculative:
        cost_fn.flush()
    return x, cost, evaluations
