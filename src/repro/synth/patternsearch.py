"""Hooke-Jeeves pattern search: local polish after the global anneal."""

from __future__ import annotations

from collections.abc import Callable

import numpy as np


def pattern_search(
    cost_fn: Callable[[np.ndarray], float],
    x0: np.ndarray,
    budget: int = 120,
    step: float = 0.08,
    shrink: float = 0.5,
    min_step: float = 0.005,
) -> tuple[np.ndarray, float, int]:
    """Coordinate pattern search in [0,1]^d from ``x0``.

    Returns ``(best_x, best_cost, evaluations)``.  Deterministic: probes
    +-step along every coordinate, moves to any improvement, shrinks the
    step when a full sweep fails.
    """
    x = np.clip(np.asarray(x0, dtype=float), 0.0, 1.0)
    cost = cost_fn(x)
    evaluations = 1
    current_step = step
    dimension = len(x)

    while evaluations < budget and current_step >= min_step:
        improved = False
        for i in range(dimension):
            for sign in (+1.0, -1.0):
                if evaluations >= budget:
                    break
                trial = x.copy()
                trial[i] = np.clip(trial[i] + sign * current_step, 0.0, 1.0)
                if trial[i] == x[i]:
                    continue
                trial_cost = cost_fn(trial)
                evaluations += 1
                if trial_cost < cost:
                    x, cost = trial, trial_cost
                    improved = True
                    break
        if not improved:
            current_step *= shrink
    return x, cost, evaluations
