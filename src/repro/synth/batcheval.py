"""Speculative batch evaluation: population-vectorized cost calls that stay
bit-identical to the serial optimizer loops.

The optimizers (:func:`~repro.synth.anneal.anneal`,
:func:`~repro.synth.de.differential_evolution`,
:func:`~repro.synth.patternsearch.pattern_search`) are sequential by
construction — each proposal may depend on the previous outcome, and the
evaluator's DC warm-start chain makes even the *cost* of a candidate depend
on evaluation order.  A naive "evaluate the next N proposals as a batch"
would therefore change results.

:class:`BatchCostFunction` keeps batching honest with *speculation*:

1. The optimizer predicts its next few proposals (assuming the common
   outcome — rejection — for each step) and hands them to
   :meth:`BatchCostFunction.speculate`, which scores them in order through
   :meth:`~repro.synth.evaluator.HybridEvaluator.evaluate_batch` (one
   stacked AC solve for the whole batch) while snapshotting the evaluator's
   warm state after every candidate.
2. The optimizer then replays its canonical serial loop.  Each cost call
   is matched against the speculation queue: an exact-vector match pops the
   cached cost — which is bit-identical to what a fresh serial evaluation
   would have produced, because the batch ran in the same order from the
   same warm state.
3. The first mismatch (the prediction failed: a proposal was accepted, so
   later proposals changed) flushes the queue, rewinds the evaluator's warm
   state and evaluation counters to the consumed prefix, and evaluation
   continues serially.

Costs, optimizer trajectories and the evaluator's reported
``equation_evals`` are exactly those of the unbatched run; the only trace
of speculation is wall time and the :attr:`BatchCostFunction.discarded`
counter.  ``tests/synth/test_kernel_equivalence.py`` locks this down.

Under the batched DC kernel (``HybridEvaluator(dc_kernel="batched")``)
the warm-state snapshots in the queue are trivially ``None`` — cold-start
lockstep trajectories do not depend on evaluation order — and a
speculated batch genuinely batches the DC Newton stage too (one lockstep
solve for the whole proposal block instead of one per proposal).  That is
where speculation earns its auto-on default; on the chained kernel the
DC walk stays serial and speculation only ties it (see
``benchmarks/bench_evaluator_kernel.py`` for both receipts).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.synth.evaluator import CornerSetEvaluator, HybridEvaluator
from repro.synth.space import DesignSpace

#: Adaptive speculation depth bounds.  The controller tracks an estimate
#: of the proposal stream's prediction *run length* (how many speculated
#: proposals get consumed before an acceptance breaks the prediction) and
#: sizes batches to it: acceptance-heavy phases (early anneal, improving
#: pattern-search sweeps) disable speculation outright — a discarded
#: speculated proposal costs a full evaluation, so depth there is pure
#: waste — while rejection-dominated phases (late anneal, stalled polish
#: sweeps) run deep, fully-consumed batches.  The controller is
#: outcome-driven and therefore deterministic: the same cost trajectory
#: always yields the same depths — and any depth sequence is bit-identical
#: anyway, only wall time moves.
_DEPTH_MIN = 2
_DEPTH_MAX = 64
#: Run-length estimate below which speculation is paused: with batch and
#: serial evaluation at per-candidate parity, short runs waste more in
#: discards than batching recovers.
_MIN_RUNLEN = 4.0
#: Proposals to leave unspeculated before probing again after a pause.
_SKIP_SPAN = 16


@dataclass
class _Speculated:
    """One pre-evaluated proposal: the exact vector, its cost, the state."""

    x: np.ndarray
    cost: float
    #: Evaluator warm state after this candidate (serial-order snapshot).
    warm_after: np.ndarray | None
    #: Cumulative equation evaluations after this candidate.
    evals_after: int


class BatchCostFunction:
    """A cost function over unit vectors with a speculation queue.

    Callable like the plain ``lambda u: evaluator.evaluate(decode(u)).cost()``
    the optimizers use; additionally exposes :meth:`speculate` /
    :attr:`pending` for optimizers that can predict their next proposals.
    """

    def __init__(
        self,
        evaluator: HybridEvaluator,
        space: DesignSpace,
        power_scale: float = 1e-3,
    ):
        self.evaluator = evaluator
        self.space = space
        self.power_scale = power_scale
        self._queue: list[_Speculated] = []
        self._queue_head = 0
        #: Warm state / counter to rewind to on a flush (consumed prefix).
        self._rewind_warm: np.ndarray | None = None
        self._rewind_evals = 0
        #: Total proposals pre-evaluated by :meth:`speculate`.
        self.speculated = 0
        #: Speculated proposals consumed by exact match.
        self.hits = 0
        #: Speculated proposals thrown away after a misprediction.
        self.discarded = 0
        # Adaptive-depth controller state: estimated prediction run length,
        # back-off countdown, and a one-shot shallow probe after a pause.
        self._runlen = float(_DEPTH_MIN)
        self._skip = 0
        self._probe = True

    @property
    def pending(self) -> int:
        """Speculated proposals not yet consumed."""
        return len(self._queue) - self._queue_head

    def advise_depth(self, limit: int) -> int:
        """How many proposals to speculate next, at most ``limit``.

        Returns 0 while the controller is backing off (the proposal
        stream's recent acceptance rate makes rejection-path predictions
        worthless — every discard costs a full evaluation), a shallow
        probe right after a back-off span, else the estimated run length
        clipped to ``limit``.  Optimizers treat 0 as "skip speculation
        this step"; results are bit-identical whatever this returns.
        """
        if limit <= 0:
            return 0
        if self._skip > 0:
            self._skip -= 1
            if self._skip == 0:
                self._probe = True
            return 0
        if self._probe:
            self._probe = False
            return min(_DEPTH_MIN, limit)
        if self._runlen < _MIN_RUNLEN:
            self._skip = _SKIP_SPAN
            return 0
        return min(int(self._runlen), _DEPTH_MAX, limit)

    def speculate(self, proposals: list[np.ndarray]) -> None:
        """Pre-evaluate ``proposals`` in order as one batch.

        Any stale queue is flushed first (rewinding the evaluator), so the
        batch scores from exactly the state a serial run would see.
        """
        self.flush()
        if not proposals:
            return
        evaluator = self.evaluator
        self._rewind_warm = (
            None if evaluator._warm_x is None else evaluator._warm_x.copy()
        )
        self._rewind_evals = evaluator.equation_evals
        sizings = [self.space.decode(u) for u in proposals]
        results = evaluator.evaluate_batch(sizings)
        evals_base = self._rewind_evals
        self._queue = [
            _Speculated(
                x=np.array(u, dtype=float, copy=True),
                cost=result.cost(self.power_scale),
                warm_after=trace,
                evals_after=evals_base + i + 1,
            )
            for i, (u, result, trace) in enumerate(
                zip(proposals, results, evaluator._batch_warm_trace)
            )
        ]
        self._queue_head = 0
        self.speculated += len(self._queue)

    def flush(self) -> None:
        """Discard unconsumed speculation and rewind the evaluator.

        After a flush the evaluator's warm chain and ``equation_evals``
        are exactly what a serial run consuming the matched prefix would
        have left behind.
        """
        stale = self.pending
        if stale == 0 and not self._queue:
            return
        self.discarded += stale
        # Mispredicted batch: fold the observed consumed prefix into the
        # run-length estimate (short runs push it under the pause floor).
        if stale > 0:
            self._runlen = 0.5 * (self._runlen + self._queue_head)
        evaluator = self.evaluator
        if self._queue_head > 0:
            consumed = self._queue[self._queue_head - 1]
            warm = consumed.warm_after
            evaluator._warm_x = None if warm is None else warm.copy()
            evaluator.equation_evals = consumed.evals_after
        else:
            warm = self._rewind_warm
            evaluator._warm_x = None if warm is None else warm.copy()
            evaluator.equation_evals = self._rewind_evals
        self._queue = []
        self._queue_head = 0

    def __call__(self, u: np.ndarray) -> float:
        if self._queue_head < len(self._queue):
            head = self._queue[self._queue_head]
            if np.array_equal(u, head.x):
                self._queue_head += 1
                self.hits += 1
                if self._queue_head == len(self._queue):
                    # Fully consumed: the evaluator state already matches
                    # the serial run, nothing to rewind — and the
                    # prediction held for the whole batch, so the true run
                    # length is at least the depth: grow the estimate.
                    batch = len(self._queue)
                    self._queue = []
                    self._queue_head = 0
                    self._runlen = max(self._runlen, float(batch + 2))
                return head.cost
            self.flush()
        return self.evaluator.evaluate(self.space.decode(u)).cost(self.power_scale)


class CornerBatchCostFunction:
    """Worst-corner cost over a process-corner set, tensor-batched.

    The multi-corner figure of merit (a candidate is only as good as its
    worst corner) evaluated through
    :meth:`~repro.synth.evaluator.CornerSetEvaluator.evaluate_batch`: one
    call scores a whole population under every corner with a single
    candidates×corners×freq kernel invocation instead of per-corner loops.
    Callable like the plain cost functions for drop-in optimizer use;
    :meth:`score_population` is the batched entry point.
    """

    def __init__(
        self,
        evaluator: CornerSetEvaluator,
        space: DesignSpace,
        power_scale: float = 1e-3,
    ):
        self.evaluator = evaluator
        self.space = space
        self.power_scale = power_scale

    def score_population(self, proposals: "list[np.ndarray]") -> "list[float]":
        """Worst-corner cost of each proposal, one fused tensor solve."""
        if not len(proposals):
            return []
        sizings = [self.space.decode(u) for u in proposals]
        per_corner = self.evaluator.evaluate_batch(sizings)
        return [
            max(corner[i].cost(self.power_scale) for corner in per_corner)
            for i in range(len(sizings))
        ]

    def __call__(self, u: np.ndarray) -> float:
        return self.score_population([u])[0]


__all__ = ["BatchCostFunction", "CornerBatchCostFunction"]
