"""Block-level circuit synthesis — the commercial-tool substitute.

The paper sizes each MDAC with Cadence NeoCircuit, an annealing-based
sizing tool driven by a hybrid equation + simulation evaluation.  This
package reproduces that flow end to end:

* :mod:`repro.synth.space` — design variables with bounds *reduced* by the
  DPI/SFG analysis of the opamp topology (the paper's step 1);
* :mod:`repro.synth.evaluator` — the hybrid evaluation: DC simulation for
  small-signal extraction, numerical transfer function for gain/GBW/phase
  margin (fast equations), and full nonlinear transient settling for the
  large-swing behaviour (trustworthy simulation);
* :mod:`repro.synth.anneal` / :mod:`repro.synth.de` — global optimizers;
* :mod:`repro.synth.synthesis` — the per-block synthesis driver;
* :mod:`repro.synth.retarget` — warm-started re-synthesis to new specs,
  reproducing the paper's "2-3 weeks first, 1 day for retargets" economy.
"""

from repro.synth.space import DesignSpace, DesignVariable, two_stage_space
from repro.synth.evaluator import EVAL_KERNELS, EvalResult, HybridEvaluator
from repro.synth.anneal import anneal
from repro.synth.batcheval import BatchCostFunction
from repro.synth.de import differential_evolution
from repro.synth.result import SynthesisResult
from repro.synth.synthesis import synthesize_mdac
from repro.synth.retarget import retarget_mdac

__all__ = [
    "BatchCostFunction",
    "DesignSpace",
    "DesignVariable",
    "EVAL_KERNELS",
    "two_stage_space",
    "HybridEvaluator",
    "EvalResult",
    "anneal",
    "differential_evolution",
    "SynthesisResult",
    "synthesize_mdac",
    "retarget_mdac",
]
