"""Design spaces for opamp sizing, reduced by DPI/SFG-derived relations.

The paper's block flow first draws the circuit's signal-flow graph and
derives the symbolic transfer function via Mason's rule; the resulting
pole/zero relations then *shrink the design space* before any optimization
runs.  For the two-stage Miller opamp those relations are (validated
against the DPI/SFG engine in ``tests/sfg/test_dpi.py``):

* unity-gain bandwidth ``GBW = gm1 / (2 pi Cc)``;
* non-dominant pole ``p2 ~ gm6 / C_L``;
* 60-degree phase margin needs ``p2 >= ~2.2 GBW``, i.e.
  ``gm6 >= 2.2 gm1 C_L / Cc``;
* the nulling resistor cancels the RHP zero at ``gm6 / Cc``.

Given the MDAC spec (required loaded GBW, load, feedback factor), these
relations bound every variable to about a decade instead of the raw 4-6
decades a blind search would face.
"""

from __future__ import annotations

import math
from collections.abc import Callable, Sequence
from dataclasses import dataclass

import numpy as np

from repro.blocks.mdac import MdacNetwork
from repro.blocks.opamp import TwoStageSizing
from repro.errors import SynthesisError
from repro.specs.stage import MdacSpec
from repro.tech.process import Technology


@dataclass(frozen=True)
class DesignVariable:
    """One optimizable sizing variable with (log-scaled) bounds."""

    name: str
    low: float
    high: float
    log_scale: bool = True

    def __post_init__(self) -> None:
        if self.low <= 0 or self.high <= self.low:
            raise SynthesisError(f"bad bounds for {self.name}: [{self.low}, {self.high}]")

    def from_unit(self, u: float) -> float:
        """Map u in [0,1] to the variable's range."""
        u = min(max(u, 0.0), 1.0)
        if self.log_scale:
            return self.low * (self.high / self.low) ** u
        return self.low + (self.high - self.low) * u

    def to_unit(self, value: float) -> float:
        """Inverse of :meth:`from_unit` (clipped)."""
        value = min(max(value, self.low), self.high)
        if self.log_scale:
            return math.log(value / self.low) / math.log(self.high / self.low)
        return (value - self.low) / (self.high - self.low)


class DesignSpace:
    """An ordered set of design variables plus a sizing factory."""

    def __init__(
        self,
        variables: Sequence[DesignVariable],
        factory: Callable[[dict[str, float]], object],
    ):
        names = [v.name for v in variables]
        if len(set(names)) != len(names):
            raise SynthesisError("duplicate design-variable names")
        self.variables = list(variables)
        self.factory = factory

    @property
    def dimension(self) -> int:
        """Number of design variables."""
        return len(self.variables)

    def decode(self, unit_vector: np.ndarray) -> object:
        """Map a [0,1]^d vector to a sizing object."""
        if len(unit_vector) != self.dimension:
            raise SynthesisError("unit vector has wrong dimension")
        values = {
            v.name: v.from_unit(float(u)) for v, u in zip(self.variables, unit_vector)
        }
        return self.factory(values)

    def encode(self, values: dict[str, float]) -> np.ndarray:
        """Map named values back into [0,1]^d."""
        return np.array([v.to_unit(values[v.name]) for v in self.variables])

    def random(self, rng: np.random.Generator) -> np.ndarray:
        """A uniform random point in [0,1]^d."""
        return rng.random(self.dimension)


def two_stage_space(mdac: MdacSpec, tech: Technology) -> DesignSpace:
    """SFG-reduced design space for a two-stage Miller opamp on this spec.

    Centres every bound on the Mason-rule relations listed in the module
    docstring, spanning roughly a decade around each nominal value.
    """
    network = MdacNetwork.from_spec(mdac)
    c_eff = network.c_eff

    # Nominal compensation cap: a fraction of the effective load.
    cc_nom = max(0.4 * c_eff, 0.1e-12)
    # gm1 from GBW = beta-referred closed-loop bandwidth requirement.
    gbw = mdac.gbw_hz
    gm1_nom = 2 * math.pi * gbw * cc_nom
    i_tail_nom = gm1_nom / 7.0  # gm/Id ~ 7 at moderate inversion
    # gm6 for the phase-margin relation.
    gm6_nom = 2.2 * gm1_nom * c_eff / cc_nom
    i2_nom = gm6_nom / 7.0
    stage2_ratio_nom = max(i2_nom / i_tail_nom, 0.5)

    # Widths from gm = sqrt(2 kp (W/L) I): W = gm^2 L / (2 kp I).
    l_in = 2 * tech.lmin
    w1_nom = gm1_nom**2 * l_in / (2 * tech.nmos.kp * (i_tail_nom / 2))
    w6_nom = gm6_nom**2 * l_in / (2 * tech.pmos.kp * i2_nom)

    def bounded(nominal: float, lo_factor: float, hi_factor: float, floor: float):
        return max(nominal * lo_factor, floor), max(nominal * hi_factor, floor * 4)

    w1_lo, w1_hi = bounded(w1_nom, 0.3, 6.0, tech.wmin)
    w6_lo, w6_hi = bounded(w6_nom, 0.3, 6.0, tech.wmin)
    it_lo, it_hi = bounded(i_tail_nom, 0.3, 5.0, 5e-6)
    cc_lo, cc_hi = bounded(cc_nom, 0.25, 4.0, 50e-15)

    variables = [
        DesignVariable("w_input", w1_lo, w1_hi),
        DesignVariable("w_load", w1_lo * 0.25, w1_hi),
        DesignVariable("w_stage2", w6_lo, w6_hi),
        DesignVariable("w_tail", max(0.2 * w1_nom, tech.wmin), max(2 * w1_nom, 4 * tech.wmin)),
        DesignVariable("l_input", 1.2 * tech.lmin, 4.0 * tech.lmin),
        DesignVariable("l_mirror", 1.5 * tech.lmin, 5.0 * tech.lmin),
        DesignVariable("i_tail", it_lo, it_hi),
        DesignVariable("stage2_ratio", max(0.3 * stage2_ratio_nom, 0.3), max(4 * stage2_ratio_nom, 1.2)),
        DesignVariable("c_comp", cc_lo, cc_hi),
    ]

    def factory(values: dict[str, float]) -> TwoStageSizing:
        return TwoStageSizing(
            w_input=values["w_input"],
            w_load=values["w_load"],
            w_stage2=values["w_stage2"],
            w_tail=values["w_tail"],
            l_input=values["l_input"],
            l_mirror=values["l_mirror"],
            i_tail=values["i_tail"],
            stage2_ratio=values["stage2_ratio"],
            c_comp=values["c_comp"],
        )

    return DesignSpace(variables, factory)
