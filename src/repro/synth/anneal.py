"""Simulated annealing over a unit hypercube (the NeoCircuit-style engine)."""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

import numpy as np

from repro.errors import SynthesisError


@dataclass
class AnnealResult:
    """Outcome of one annealing run."""

    #: Best point found (unit coordinates).
    best_x: np.ndarray
    #: Best cost.
    best_cost: float
    #: Cost of the best point after each evaluation (learning curve).
    history: list[float]
    #: Total evaluations spent.
    evaluations: int
    #: Evaluations needed to first reach within 5% of the final best.
    evals_to_converge: int


def anneal(
    cost_fn: Callable[[np.ndarray], float],
    dimension: int,
    budget: int = 400,
    seed: int = 1,
    x0: np.ndarray | None = None,
    t_start: float = 1.0,
    t_end: float = 1e-3,
    step_start: float = 0.35,
    step_end: float = 0.02,
    speculation: int = 0,
) -> AnnealResult:
    """Metropolis annealing with a geometric temperature/step schedule.

    ``cost_fn`` maps a point in [0,1]^dimension to a scalar cost; lower is
    better.  ``x0`` warm-starts the search (the retargeting mechanism).

    ``speculation`` > 1 enables speculative proposal batches when
    ``cost_fn`` is a :class:`~repro.synth.batcheval.BatchCostFunction`:
    the next proposals are pre-drawn along the predicted
    rejection path (the RNG is rewound afterwards, so the stream the serial
    loop sees is untouched) and scored as one batch; the serial Metropolis
    replay then consumes the cached costs until the prediction breaks.
    Results are bit-identical to ``speculation=0`` — only wall time and the
    batcher's discard counter differ.
    """
    if budget < 2:
        raise SynthesisError("budget must be >= 2")
    rng = np.random.default_rng(seed)
    x = rng.random(dimension) if x0 is None else np.clip(np.asarray(x0, float), 0, 1)
    cost = cost_fn(x)
    best_x, best_cost = x.copy(), cost
    history = [best_cost]
    speculative = speculation > 1 and hasattr(cost_fn, "speculate")

    for k in range(1, budget):
        if speculative and cost_fn.pending == 0:
            # Predict the next proposals assuming each step is a rejection
            # with the acceptance draw consumed (the common late-anneal
            # path), then rewind the RNG so the replay below re-draws the
            # exact same stream.  The batcher's adaptive controller sizes
            # the batch to the stream's recent acceptance behaviour (0 =
            # skip: acceptance is too high for predictions to survive);
            # the depth never changes results, only how much is prepaid.
            limit = min(speculation, budget - k)
            if hasattr(cost_fn, "advise_depth"):
                limit = cost_fn.advise_depth(limit)
            if limit > 0:
                state = rng.bit_generator.state
                proposals = []
                for j in range(limit):
                    frac = (k + j) / (budget - 1)
                    spec_step = step_start * (step_end / step_start) ** frac
                    proposals.append(
                        np.clip(x + rng.normal(0.0, spec_step, dimension), 0.0, 1.0)
                    )
                    rng.random()  # the predicted acceptance draw
                rng.bit_generator.state = state
                cost_fn.speculate(proposals)
        frac = k / (budget - 1)
        temperature = t_start * (t_end / t_start) ** frac
        step = step_start * (step_end / step_start) ** frac
        candidate = np.clip(x + rng.normal(0.0, step, dimension), 0.0, 1.0)
        candidate_cost = cost_fn(candidate)
        delta = candidate_cost - cost
        if delta <= 0 or rng.random() < np.exp(-delta / max(temperature, 1e-12)):
            x, cost = candidate, candidate_cost
            if cost < best_cost:
                best_x, best_cost = x.copy(), cost
        history.append(best_cost)
    if speculative:
        cost_fn.flush()

    threshold = best_cost * 1.05 if best_cost > 0 else best_cost
    evals_to_converge = next(
        (i + 1 for i, c in enumerate(history) if c <= threshold), budget
    )
    return AnnealResult(
        best_x=best_x,
        best_cost=best_cost,
        history=history,
        evaluations=budget,
        evals_to_converge=evals_to_converge,
    )
