"""Differential evolution — the alternative global optimizer.

Included to cross-check the annealer (an optimizer-choice ablation): both
should land on comparable power for the same block spec.
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

from repro.errors import SynthesisError
from repro.synth.anneal import AnnealResult


def differential_evolution(
    cost_fn: Callable[[np.ndarray], float],
    dimension: int,
    budget: int = 400,
    seed: int = 1,
    population: int = 12,
    weight: float = 0.7,
    crossover: float = 0.8,
    x0: np.ndarray | None = None,
    speculation: int = 0,
) -> AnnealResult:
    """DE/rand/1/bin over the unit hypercube within an evaluation budget.

    ``speculation`` > 1 (with a batch-capable ``cost_fn`` — see
    :class:`~repro.synth.batcheval.BatchCostFunction`) pre-scores each
    generation's trial vectors as one batch: DE's RNG stream is
    outcome-independent, so the trials can be pre-drawn against a population
    snapshot (RNG rewound afterwards) and the serial selection replay
    consumes the cached costs until an acceptance invalidates a later
    trial.  Results are bit-identical to ``speculation=0``.
    """
    if budget < population * 2:
        raise SynthesisError("budget must cover at least two generations")
    rng = np.random.default_rng(seed)
    pop = rng.random((population, dimension))
    if x0 is not None:
        pop[0] = np.clip(np.asarray(x0, float), 0.0, 1.0)
    speculative = speculation > 1 and hasattr(cost_fn, "speculate")
    if speculative:
        # The seeding generation is outcome-independent, so pre-scoring it
        # is pure batching: every entry is a guaranteed queue hit.
        cost_fn.speculate([x for x in pop])
    costs = np.array([cost_fn(x) for x in pop])
    evaluations = population
    history = [float(np.min(costs))] * population

    while evaluations < budget:
        if speculative:
            # Adaptive depth: generations with many selections mispredict
            # the later trials, so let the batcher size the prepaid prefix
            # (0 = skip this generation); any depth is bit-identical.
            limit = min(speculation, budget - evaluations)
            if hasattr(cost_fn, "advise_depth"):
                limit = cost_fn.advise_depth(limit)
            state = rng.bit_generator.state
            snapshot = pop.copy()
            proposals = []
            for i in range(population):
                if evaluations + len(proposals) >= budget:
                    break
                if len(proposals) >= limit:
                    break
                a, b, c = rng.choice(population, size=3, replace=False)
                mutant = np.clip(
                    snapshot[a] + weight * (snapshot[b] - snapshot[c]), 0.0, 1.0
                )
                mask = rng.random(dimension) < crossover
                mask[rng.integers(dimension)] = True
                proposals.append(np.where(mask, mutant, snapshot[i]))
            rng.bit_generator.state = state
            if proposals:
                cost_fn.speculate(proposals)
        for i in range(population):
            if evaluations >= budget:
                break
            a, b, c = rng.choice(population, size=3, replace=False)
            mutant = np.clip(pop[a] + weight * (pop[b] - pop[c]), 0.0, 1.0)
            mask = rng.random(dimension) < crossover
            mask[rng.integers(dimension)] = True
            trial = np.where(mask, mutant, pop[i])
            trial_cost = cost_fn(trial)
            evaluations += 1
            if trial_cost <= costs[i]:
                pop[i], costs[i] = trial, trial_cost
            history.append(float(np.min(costs)))
    if speculative:
        cost_fn.flush()

    best = int(np.argmin(costs))
    best_cost = float(costs[best])
    threshold = best_cost * 1.05 if best_cost > 0 else best_cost
    evals_to_converge = next(
        (i + 1 for i, c in enumerate(history) if c <= threshold), evaluations
    )
    return AnnealResult(
        best_x=pop[best].copy(),
        best_cost=best_cost,
        history=history,
        evaluations=evaluations,
        evals_to_converge=evals_to_converge,
    )
