"""Retargeting: re-synthesize a sized block against a new specification.

The paper reports that setting up the first synthesis took 2-3 weeks while
subsequent blocks took about a day, because only the specification changes.
Mechanically that is a warm start: the previous solution, scaled by the
ratio of required transconductances and load capacitances, seeds a much
shorter search.  ``benchmarks/bench_retarget.py`` measures the resulting
evaluation-count reduction.
"""

from __future__ import annotations

import numpy as np

from repro.specs.stage import MdacSpec
from repro.synth.result import SynthesisResult
from repro.synth.space import two_stage_space
from repro.synth.synthesis import synthesize_mdac
from repro.tech.process import Technology


def retarget_mdac(
    previous: SynthesisResult,
    new_spec: MdacSpec,
    tech: Technology,
    budget: int = 60,
    seed: int = 7,
    verify_transient: bool = True,
    kernel: str = "compiled",
    speculation: int = -1,
    template_store: str | None = None,
    dc_kernel: str = "chained",
) -> SynthesisResult:
    """Warm-started synthesis of ``new_spec`` from a previously sized block.

    The previous sizing is scaled by the gm-requirement ratio (currents and
    widths) and the effective-load ratio (compensation cap), then encoded
    into the *new* spec's design space as the annealer's starting point.
    """
    old = previous.final.sizing
    gm_ratio = new_spec.gm_required / previous.spec.gm_required
    load_ratio = new_spec.c_eff / previous.spec.c_eff

    seeded = {
        "w_input": old.w_input * gm_ratio,
        "w_load": old.w_load * gm_ratio,
        "w_stage2": old.w_stage2 * gm_ratio,
        "w_tail": old.w_tail * gm_ratio,
        "l_input": old.l_input,
        "l_mirror": old.l_mirror,
        "i_tail": old.i_tail * gm_ratio,
        "stage2_ratio": old.stage2_ratio,
        "c_comp": old.c_comp * load_ratio,
    }
    space = two_stage_space(new_spec, tech)
    x0 = np.clip(space.encode(seeded), 0.0, 1.0)
    return synthesize_mdac(
        new_spec,
        tech,
        budget=budget,
        seed=seed,
        x0=x0,
        verify_transient=verify_transient,
        retargeted=True,
        kernel=kernel,
        speculation=speculation,
        template_store=template_store,
        dc_kernel=dc_kernel,
    )
