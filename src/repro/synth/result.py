"""Synthesis result container."""

from __future__ import annotations

from dataclasses import dataclass

from repro.specs.stage import MdacSpec
from repro.synth.evaluator import EvalResult


@dataclass
class SynthesisResult:
    """Outcome of synthesizing one MDAC block."""

    #: The spec that was targeted.
    spec: MdacSpec
    #: Final evaluation of the chosen sizing (includes transient check).
    final: EvalResult
    #: Optimizer cost trace (best-so-far per evaluation).
    history: list[float]
    #: Equation-mode evaluations spent.
    equation_evals: int
    #: Transient (simulation-mode) evaluations spent.
    transient_evals: int
    #: Whether this synthesis was warm-started from another block.
    retargeted: bool
    #: Wall-clock time the search + verification took [s].
    wall_seconds: float = 0.0

    @property
    def power(self) -> float:
        """Synthesized block power [W]."""
        return self.final.power

    @property
    def feasible(self) -> bool:
        """True when the final design meets every constraint."""
        return self.final.feasible

    def summary(self) -> str:
        """One-line human-readable summary."""
        pm = self.final.phase_margin
        pm_text = f"{pm:.1f} deg" if pm is not None else "n/a"
        settle = self.final.settling_error
        settle_text = f"{settle:.2e}" if settle is not None else "n/a"
        return (
            f"m={self.spec.stage_bits} acc={self.spec.input_accuracy_bits}b: "
            f"P={self.power * 1e3:.2f} mW, A0={self.final.dc_gain:.0f}, "
            f"PM={pm_text}, settle={settle_text} (spec {self.spec.settling_error:.1e}), "
            f"{'feasible' if self.feasible else 'INFEASIBLE'}"
        )
