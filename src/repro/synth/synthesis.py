"""Per-block synthesis driver: space reduction -> anneal -> verify.

One call sizes one MDAC's opamp against its block spec, exactly in the
paper's style: the SFG-reduced space is searched by annealing on the fast
equation metrics, and the winner is verified (and if needed, repaired) with
the nonlinear transient settling simulation.
"""

from __future__ import annotations

import dataclasses
import time

import numpy as np

from repro.errors import SynthesisError
from repro.specs.stage import MdacSpec
from repro.synth.anneal import anneal
from repro.synth.batcheval import BatchCostFunction
from repro.synth.de import differential_evolution
from repro.synth.evaluator import HybridEvaluator
from repro.synth.patternsearch import pattern_search
from repro.synth.result import SynthesisResult
from repro.synth.space import two_stage_space
from repro.tech.process import Technology

#: Multiplicative current/cc bump applied per repair round when the
#: transient verification misses the settling spec.
_REPAIR_FACTOR = 1.30
_MAX_REPAIRS = 3

#: Depth a negative ("auto") ``speculation`` resolves to under the batched
#: DC kernel.  The chained kernel resolves auto to 0: its warm-start walk
#: cannot batch the DC stage, so speculated proposals only tie the serial
#: loop and discards are pure loss (the BENCH_PR10.json receipt measures
#: ~0.8x chained vs ~1.2x batched at this depth).
_AUTO_SPECULATION_DEPTH = 8


def synthesize_mdac(
    mdac: MdacSpec,
    tech: Technology,
    budget: int = 400,
    seed: int = 1,
    optimizer: str = "anneal",
    x0: np.ndarray | None = None,
    verify_transient: bool = True,
    retargeted: bool = False,
    kernel: str = "compiled",
    speculation: int = -1,
    template_store: str | None = None,
    dc_kernel: str = "chained",
) -> SynthesisResult:
    """Synthesize one MDAC opamp; returns the verified result.

    ``optimizer`` is ``"anneal"`` (default, NeoCircuit-style) or ``"de"``.
    ``x0`` (unit coordinates) warm-starts the search — used by retargeting.

    ``kernel`` selects the equation-evaluation kernel (``"compiled"``, the
    template+batched-solve default, or ``"legacy"``, the reference walk);
    ``speculation`` > 1 additionally batches optimizer proposals through
    :class:`~repro.synth.batcheval.BatchCostFunction`, with the batch
    depth adapting to the proposal stream's acceptance behaviour; a
    negative depth means "auto" — :data:`_AUTO_SPECULATION_DEPTH` under
    the batched DC kernel, off under the chained one.  ``template_store``
    points at an on-disk compiled-template store
    (:class:`~repro.analysis.template.TemplateStore` directory) so worker
    processes load the stamp program instead of recompiling it.  All three
    knobs are pure performance choices: results are bit-identical across
    them.  ``dc_kernel`` is *not*: ``"batched"`` replaces the chained
    warm-start DC walk with cold-start population lockstep solves
    (:mod:`repro.analysis.dcbatch`), which changes the Newton trajectories
    and therefore the synthesized result's identity.
    """
    start = time.perf_counter()
    if speculation < 0:
        speculation = _AUTO_SPECULATION_DEPTH if dc_kernel == "batched" else 0
    space = two_stage_space(mdac, tech)
    evaluator = HybridEvaluator(
        mdac, tech, kernel=kernel, template_store=template_store,
        dc_kernel=dc_kernel,
    )

    if speculation > 1 and kernel == "compiled":
        cost_fn = BatchCostFunction(evaluator, space)
    else:
        def cost_fn(u: np.ndarray) -> float:
            return evaluator.evaluate(space.decode(u)).cost()

    if optimizer == "anneal":
        run = anneal(
            cost_fn,
            space.dimension,
            budget=budget,
            seed=seed,
            x0=x0,
            speculation=speculation,
        )
    elif optimizer == "de":
        run = differential_evolution(
            cost_fn,
            space.dimension,
            budget=budget,
            seed=seed,
            x0=x0,
            speculation=speculation,
        )
    else:
        raise SynthesisError(f"unknown optimizer {optimizer!r}")

    # Local polish: a short pattern search closes the last few percent of
    # constraint margin the annealer leaves behind.
    polish_budget = max(40, budget // 4)
    best_x, _, _ = pattern_search(
        cost_fn, run.best_x, budget=polish_budget, speculation=speculation
    )

    sizing = space.decode(best_x)
    final = evaluator.evaluate(sizing, run_transient=verify_transient)

    # Repair loop: if the large-swing simulation disagrees with the linear
    # prediction, bump the bias current and compensation and re-verify.
    repairs = 0
    while (
        verify_transient
        and final.settling_error is not None
        and final.settling_error > mdac.settling_error
        and repairs < _MAX_REPAIRS
    ):
        repairs += 1
        sizing = dataclasses.replace(
            sizing,
            i_tail=sizing.i_tail * _REPAIR_FACTOR,
            w_input=sizing.w_input * _REPAIR_FACTOR,
            w_stage2=sizing.w_stage2 * _REPAIR_FACTOR,
            w_tail=sizing.w_tail * _REPAIR_FACTOR,
            # A modest compensation bump keeps the phase margin growing with
            # the extra second-stage transconductance.
            c_comp=sizing.c_comp * 1.15,
        )
        final = evaluator.evaluate(sizing, run_transient=True)

    return SynthesisResult(
        spec=mdac,
        final=final,
        history=run.history,
        equation_evals=evaluator.equation_evals,
        transient_evals=evaluator.transient_evals,
        retargeted=retargeted,
        wall_seconds=time.perf_counter() - start,
    )
