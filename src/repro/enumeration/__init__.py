"""Candidate enumeration for pipelined ADC stage-resolution configurations.

Implements Section 2 of the paper: enumerate the front-end stage
resolutions ``m1-m2-...`` subject to the bandwidth constraint ``m_i <= 4``,
the area constraint ``m_i >= m_{i+1}``, and the observation that power is
dominated by the stages whose output must still settle to better than 7-bit
accuracy (so only ``K - 7`` effective front-end bits are enumerated).
"""

from repro.enumeration.candidates import (
    PipelineCandidate,
    enumerate_candidates,
    enumerate_full_pipelines,
)

__all__ = [
    "PipelineCandidate",
    "enumerate_candidates",
    "enumerate_full_pipelines",
]
