"""Enumeration of pipelined-ADC stage-resolution candidates.

Bookkeeping conventions (consistent with the paper's equation
``sum_i (m_i - 1) = K``):

* A stage that resolves ``m_i`` raw bits contributes ``m_i - 1`` *effective*
  bits; the remaining bit is redundancy consumed by the digital-correction
  logic.
* The *front end* comprises the stages whose output residue still needs
  better than ``backend_bits`` (default 7) bits of accuracy, i.e. the
  stages covering the first ``K - backend_bits`` effective bits.  For a
  13-bit converter this gives the paper's seven candidates covering the
  "first 6 bits".
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

from repro.errors import EnumerationError

#: The paper's accuracy threshold: stages are enumerated while the residue
#: still requires more than this many bits.
DEFAULT_BACKEND_BITS = 7

#: Closed-loop-bandwidth constraint from the paper: m_i <= 4.
DEFAULT_MAX_STAGE_BITS = 4

#: Smallest practical stage: 1.5-bit (2 raw bits).
DEFAULT_MIN_STAGE_BITS = 2


@dataclass(frozen=True)
class PipelineCandidate:
    """A front-end stage-resolution configuration for a K-bit pipeline."""

    #: Raw per-stage resolutions m_i (including the redundancy bit).
    resolutions: tuple[int, ...]
    #: Target converter resolution K in bits.
    total_bits: int
    #: Effective bits the un-enumerated backend must resolve.
    backend_bits: int

    def __post_init__(self) -> None:
        if not self.resolutions:
            raise EnumerationError("candidate needs at least one stage")
        if any(m < 2 for m in self.resolutions):
            raise EnumerationError("stage resolutions must be >= 2 raw bits")

    @property
    def stage_count(self) -> int:
        """Number of enumerated front-end stages."""
        return len(self.resolutions)

    @property
    def effective_bits(self) -> tuple[int, ...]:
        """Effective bits per stage (m_i - 1)."""
        return tuple(m - 1 for m in self.resolutions)

    @property
    def frontend_bits(self) -> int:
        """Total effective bits resolved by the enumerated front end."""
        return sum(self.effective_bits)

    @cached_property
    def label(self) -> str:
        """Human-readable form, e.g. ``"4-3-2"``."""
        return "-".join(str(m) for m in self.resolutions)

    def bits_resolved_before(self, stage_index: int) -> int:
        """Effective bits resolved before stage ``stage_index`` (0-based)."""
        if not 0 <= stage_index < self.stage_count:
            raise EnumerationError(
                f"stage_index {stage_index} out of range for {self.label}"
            )
        return sum(self.effective_bits[:stage_index])

    def input_accuracy_bits(self, stage_index: int) -> int:
        """Bits of accuracy the stage's *input* must carry (K - resolved)."""
        return self.total_bits - self.bits_resolved_before(stage_index)

    def output_accuracy_bits(self, stage_index: int) -> int:
        """Bits of accuracy the stage's *output residue* must settle to."""
        return self.input_accuracy_bits(stage_index) - self.effective_bits[stage_index]

    def stage_gain(self, stage_index: int) -> int:
        """Interstage (residue) gain 2^(m_i - 1)."""
        return 2 ** self.effective_bits[stage_index]

    def __str__(self) -> str:
        return f"{self.label} ({self.total_bits}-bit)"


def enumerate_candidates(
    total_bits: int,
    backend_bits: int = DEFAULT_BACKEND_BITS,
    max_stage_bits: int = DEFAULT_MAX_STAGE_BITS,
    min_stage_bits: int = DEFAULT_MIN_STAGE_BITS,
    monotone: bool = True,
) -> list[PipelineCandidate]:
    """All front-end candidates for a ``total_bits``-bit pipelined ADC.

    Enumerates non-increasing (if ``monotone``) sequences of raw stage
    resolutions in ``[min_stage_bits, max_stage_bits]`` whose effective bits
    sum exactly to ``total_bits - backend_bits``.  For the paper's settings
    and K=13 this returns the seven configurations of Fig. 1.

    Candidates are sorted most-aggressive-first (larger leading stages).
    """
    if total_bits <= backend_bits:
        raise EnumerationError(
            f"total_bits ({total_bits}) must exceed backend_bits ({backend_bits})"
        )
    if not 2 <= min_stage_bits <= max_stage_bits:
        raise EnumerationError("need 2 <= min_stage_bits <= max_stage_bits")

    frontend_target = total_bits - backend_bits
    results: list[tuple[int, ...]] = []

    def extend(prefix: tuple[int, ...], remaining: int) -> None:
        if remaining == 0:
            results.append(prefix)
            return
        upper = prefix[-1] if (monotone and prefix) else max_stage_bits
        for m in range(min(upper, max_stage_bits), min_stage_bits - 1, -1):
            effective = m - 1
            if effective <= remaining:
                extend(prefix + (m,), remaining - effective)

    extend((), frontend_target)
    results.sort(reverse=True)
    return [
        PipelineCandidate(resolutions=r, total_bits=total_bits, backend_bits=backend_bits)
        for r in results
    ]


def enumerate_full_pipelines(
    total_bits: int,
    max_stage_bits: int = DEFAULT_MAX_STAGE_BITS,
    min_stage_bits: int = DEFAULT_MIN_STAGE_BITS,
    monotone: bool = True,
    max_candidates: int = 10000,
) -> list[PipelineCandidate]:
    """Complete pipelines: effective bits sum to exactly ``total_bits``.

    This is the unconstrained design space the paper prunes; it is exposed
    for the enumeration ablation benchmark.  ``backend_bits`` is zero in the
    returned candidates.
    """
    candidates = enumerate_candidates(
        total_bits,
        backend_bits=0,
        max_stage_bits=max_stage_bits,
        min_stage_bits=min_stage_bits,
        monotone=monotone,
    )
    if len(candidates) > max_candidates:
        raise EnumerationError(
            f"{len(candidates)} full pipelines exceed max_candidates={max_candidates}"
        )
    return candidates
