"""Block-synthesis cache keyed by the MDAC reuse key.

Two stages with the same ``(stage_bits, input_accuracy_bits)`` under the
same system spec get identical block specifications, so one synthesis
serves them all.  This is exactly how eleven-odd MDAC syntheses covered all
seven 13-bit candidates in the paper; the first block of a given stage
resolution is synthesized cold and subsequent specs are *retargeted* from
the nearest already-sized block.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.specs.stage import MdacSpec
from repro.synth.result import SynthesisResult
from repro.synth.retarget import retarget_mdac
from repro.synth.synthesis import synthesize_mdac
from repro.tech.process import Technology


@dataclass
class BlockCache:
    """Synthesize-once cache with retarget-based warm starts."""

    tech: Technology
    budget: int = 400
    retarget_budget: int = 80
    seed: int = 1
    verify_transient: bool = True
    results: dict[tuple[int, int], SynthesisResult] = field(default_factory=dict)
    #: How many synthesis calls were cold vs retargeted (for reporting).
    cold_runs: int = 0
    retargeted_runs: int = 0
    cache_hits: int = 0

    def get(self, mdac: MdacSpec) -> SynthesisResult:
        """Return the synthesized block for this spec, reusing or retargeting."""
        key = mdac.reuse_key
        if key in self.results:
            self.cache_hits += 1
            return self.results[key]

        donor = self._nearest_donor(mdac)
        if donor is None:
            result = synthesize_mdac(
                mdac,
                self.tech,
                budget=self.budget,
                seed=self.seed,
                verify_transient=self.verify_transient,
            )
            self.cold_runs += 1
        else:
            result = retarget_mdac(
                donor,
                mdac,
                self.tech,
                budget=self.retarget_budget,
                verify_transient=self.verify_transient,
            )
            self.retargeted_runs += 1
        self.results[key] = result
        return result

    def _nearest_donor(self, mdac: MdacSpec) -> SynthesisResult | None:
        """The already-sized block with the closest gm requirement."""
        if not self.results:
            return None
        return min(
            self.results.values(),
            key=lambda r: abs(r.spec.gm_required - mdac.gm_required)
            / mdac.gm_required,
        )

    @property
    def unique_blocks(self) -> int:
        """Number of distinct MDAC specs synthesized so far."""
        return len(self.results)
