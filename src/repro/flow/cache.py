"""Block-synthesis caches keyed by the MDAC reuse key.

Two stages with the same ``(stage_bits, input_accuracy_bits)`` under the
same system spec get identical block specifications, so one synthesis
serves them all.  This is exactly how eleven-odd MDAC syntheses covered all
seven 13-bit candidates in the paper; the first block of a given stage
resolution is synthesized cold and subsequent specs are *retargeted* from
the nearest already-sized block.

Two cache tiers are provided:

* :class:`BlockCache` — the in-memory synthesize-once cache.  It serves
  both the legacy serial ``get`` path and the wave scheduler in
  :mod:`repro.engine.scheduler` (via ``admit``/``load_persistent``).
* :class:`PersistentBlockCache` — adds a content-addressed on-disk layer
  (see :mod:`repro.engine.persist`) so repeated runs — rate sweeps,
  designer-rule extraction, CI — skip synthesis entirely.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from repro.engine.persist import load_result, store_result
from repro.errors import SpecificationError
from repro.obs import metrics
from repro.specs.stage import MdacSpec
from repro.synth.result import SynthesisResult
from repro.tech.process import Technology


@dataclass
class BlockCache:
    """Synthesize-once cache with retarget-based warm starts."""

    tech: Technology
    budget: int = 400
    retarget_budget: int = 80
    seed: int = 1
    retarget_seed: int = 7
    verify_transient: bool = True
    #: Equation-evaluation kernel ('compiled'/'legacy') and speculative
    #: batch depth (negative = auto, resolved from the DC kernel) handed
    #: to every synthesis job.  Results are bit-identical across kernels,
    #: so neither knob enters the content fingerprint — caches filled by
    #: one kernel serve the other.
    eval_kernel: str = "compiled"
    eval_speculation: int = -1
    #: DC Newton kernel ('chained'/'batched').  Unlike the knobs above this
    #: changes results (cold-start lockstep trajectories vs warm chains),
    #: so it *does* enter the content fingerprint — 'batched' entries never
    #: serve a 'chained' run or vice versa.
    dc_kernel: str = "chained"
    results: dict[tuple[int, int], SynthesisResult] = field(default_factory=dict)
    #: How many synthesis calls were cold vs retargeted (for reporting).
    cold_runs: int = 0
    retargeted_runs: int = 0
    #: Lookups served from the in-memory result map.
    cache_hits: int = 0
    #: External warm-start donors (blocks sized for *other* system specs,
    #: e.g. by earlier scenarios of a campaign).  They join the scheduler's
    #: donor scan ahead of this cache's own results but never satisfy a
    #: reuse key — see :func:`repro.engine.scheduler.plan_synthesis`.
    donor_pool: tuple[SynthesisResult, ...] = ()
    #: Warm-start *attempts* seeded from the external donor pool.  A
    #: successful attempt lands in ``retargeted_runs``; a failed one
    #: escalates (below) and its block is counted in ``cold_runs`` instead.
    pool_warm_starts: int = 0
    #: Retarget searches that ran, missed feasibility and were discarded in
    #: favor of a cold resolution (see the escalation step in
    #: :func:`repro.engine.scheduler.execute_plan`).  Exactly the extra
    #: search work beyond ``cold_runs + retargeted_runs``; cache-served
    #: escalations (a previously persisted failed attempt) do not count.
    pool_escalations: int = 0

    def get(self, mdac: MdacSpec) -> SynthesisResult:
        """Return the synthesized block for this spec, reusing or retargeting.

        Misses resolve through the wave scheduler as a one-node plan, so the
        serial ``get`` path and the batched :func:`execute_plan` path share
        one implementation of donor selection, fingerprinting, persistent
        lookup and admission — they cannot drift apart.
        """
        key = mdac.reuse_key
        hit = self.lookup(key)
        if hit is not None:
            self.cache_hits += 1
            metrics.counter("cache.memory_hits")
            return hit

        # Imported here: the scheduler sits in the engine package, which
        # must stay importable without repro.flow.
        from repro.engine.backend import SerialBackend
        from repro.engine.scheduler import execute_plan, plan_synthesis

        resolved = execute_plan(
            plan_synthesis([mdac], self.results, donors=self.donor_pool),
            self,
            SerialBackend(),
        )
        return resolved[key]

    def lookup(self, key: tuple[int, int]) -> SynthesisResult | None:
        """In-memory lookup without touching the hit counter."""
        return self.results.get(key)

    def admit(
        self,
        key: tuple[int, int],
        result: SynthesisResult,
        fingerprint: str | None = None,
        newly_synthesized: bool = True,
    ) -> None:
        """Record a resolved block, maintaining the effort counters.

        ``newly_synthesized`` distinguishes fresh search work (counted as
        cold or retargeted from ``result.retargeted``) from blocks loaded
        out of the persistent layer (counted there, not here).
        """
        if newly_synthesized:
            if result.retargeted:
                self.retargeted_runs += 1
                metrics.counter("cache.retargeted_runs")
            else:
                self.cold_runs += 1
                metrics.counter("cache.cold_runs")
        self.results[key] = result
        if fingerprint is not None and newly_synthesized:
            self._persist(fingerprint, result)

    def load_persistent(
        self, fingerprint: str, spec: MdacSpec | None = None
    ) -> SynthesisResult | None:
        """Persistent-layer lookup; the in-memory cache has none.

        ``spec`` is the block being resolved — fingerprint-only caches
        ignore it, but spec-aware layers (the campaign ledger) use it to
        serve an already-sized block for the identical spec even when the
        search hyper-parameters (donor, budget) differ.
        """
        return None

    def _persist(self, fingerprint: str, result: SynthesisResult) -> None:
        """Write-through hook; the in-memory cache drops it."""

    @property
    def template_dir(self) -> str | None:
        """Directory for persisted compiled stamp templates (None = off).

        The in-memory cache has no disk layer, so compiled templates stay
        in-process; the persistent cache parks them next to the block
        results so pool/queue workers skip recompilation.
        """
        return None

    @property
    def unique_blocks(self) -> int:
        """Number of distinct MDAC specs synthesized so far."""
        return len(self.results)

    @property
    def synthesis_runs(self) -> int:
        """Actual searches performed (cold + retargeted)."""
        return self.cold_runs + self.retargeted_runs


@dataclass
class PersistentBlockCache(BlockCache):
    """Block cache backed by a content-addressed directory on disk.

    Entries are keyed by :func:`repro.engine.persist.block_fingerprint` —
    a hash of the MDAC spec, technology, budget, seed, verification flag
    and (for retargets) the donor design — so a fingerprint hit is exact:
    the stored result is what this synthesis would have produced.
    """

    cache_dir: str | None = None
    #: Blocks served from disk instead of a fresh search.
    persistent_hits: int = 0

    def __post_init__(self) -> None:
        if self.cache_dir is None:
            raise SpecificationError("PersistentBlockCache requires cache_dir")

    @property
    def template_dir(self) -> str | None:
        """Compiled stamp templates live under ``<cache_dir>/templates``."""
        if self.cache_dir is None:
            return None
        return os.path.join(self.cache_dir, "templates")

    def load_persistent(
        self, fingerprint: str, spec: MdacSpec | None = None
    ) -> SynthesisResult | None:
        result = load_result(self.cache_dir, fingerprint)
        if result is not None:
            self.persistent_hits += 1
            metrics.counter("cache.persistent_hits")
        else:
            metrics.counter("cache.persistent_misses")
        return result

    def _persist(self, fingerprint: str, result: SynthesisResult) -> None:
        store_result(self.cache_dir, fingerprint, result)
