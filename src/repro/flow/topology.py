"""Topology optimization: enumerate -> translate -> evaluate -> rank."""

from __future__ import annotations

from dataclasses import dataclass

from repro.enumeration.candidates import PipelineCandidate, enumerate_candidates
from repro.errors import SpecificationError
from repro.flow.cache import BlockCache
from repro.power.analytic import CandidatePower, candidate_power
from repro.power.comparator import sub_adc_power
from repro.power.model import PowerModel, DEFAULT_POWER_MODEL
from repro.specs.adc import AdcSpec
from repro.specs.stage import StagePlan, plan_stages


@dataclass(frozen=True)
class CandidateEvaluation:
    """One candidate's evaluated power."""

    candidate: PipelineCandidate
    plan: StagePlan
    #: Per-stage total power [W] (MDAC + sub-ADC).
    stage_powers: tuple[float, ...]
    #: Per-stage MDAC-only power [W].
    mdac_powers: tuple[float, ...]
    #: Which path produced the MDAC numbers: 'analytic' or 'synthesis'.
    mode: str
    #: Whether every synthesized block met its constraints (True for analytic).
    all_feasible: bool

    @property
    def total_power(self) -> float:
        """Front-end total [W]."""
        return sum(self.stage_powers)

    @property
    def label(self) -> str:
        """Candidate label, e.g. '4-3-2'."""
        return self.candidate.label


@dataclass(frozen=True)
class TopologyResult:
    """Ranked outcome of one topology-optimization run."""

    spec: AdcSpec
    evaluations: tuple[CandidateEvaluation, ...]
    #: Unique MDAC blocks synthesized (0 in analytic mode).
    unique_blocks: int

    @property
    def best(self) -> CandidateEvaluation:
        """The minimum-power candidate."""
        return self.evaluations[0]

    def power_table(self) -> list[tuple[str, float]]:
        """(label, total mW) rows, best first."""
        return [(e.label, e.total_power * 1e3) for e in self.evaluations]


def optimize_topology(
    spec: AdcSpec,
    mode: str = "analytic",
    model: PowerModel = DEFAULT_POWER_MODEL,
    cache: BlockCache | None = None,
    candidates: list[PipelineCandidate] | None = None,
) -> TopologyResult:
    """Run the full designer-driven flow for one ADC spec.

    ``mode`` selects the MDAC evaluation path:

    * ``"analytic"`` — the fast equation-based screen (every candidate);
    * ``"synthesis"`` — transistor-level block synthesis with reuse via the
      :class:`BlockCache` (the paper's Fig. 1 flow).

    Sub-ADC power always comes from the comparator model; ranking ascending
    by total front-end power.
    """
    if candidates is None:
        candidates = enumerate_candidates(spec.resolution_bits)
    if mode not in ("analytic", "synthesis"):
        raise SpecificationError(f"unknown mode {mode!r}")

    if mode == "synthesis" and cache is None:
        cache = BlockCache(spec.tech)

    evaluations: list[CandidateEvaluation] = []
    for candidate in candidates:
        plan = plan_stages(spec, candidate)
        if mode == "analytic":
            cp: CandidatePower = candidate_power(spec, candidate, model, plan)
            stage_powers = tuple(s.total_power for s in cp.stages)
            mdac_powers = tuple(s.mdac.total_power for s in cp.stages)
            feasible = True
        else:
            mdac_powers_list: list[float] = []
            stage_powers_list: list[float] = []
            feasible = True
            for mdac_spec, sub_spec in zip(plan.mdacs, plan.sub_adcs):
                block = cache.get(mdac_spec)
                feasible &= block.feasible
                mdac_w = block.power + model.fixed_overhead_w
                sub_w = sub_adc_power(sub_spec, model, vdd=spec.tech.vdd).total_power
                mdac_powers_list.append(mdac_w)
                stage_powers_list.append(mdac_w + sub_w)
            stage_powers = tuple(stage_powers_list)
            mdac_powers = tuple(mdac_powers_list)
        evaluations.append(
            CandidateEvaluation(
                candidate=candidate,
                plan=plan,
                stage_powers=stage_powers,
                mdac_powers=mdac_powers,
                mode=mode,
                all_feasible=feasible,
            )
        )

    evaluations.sort(key=lambda e: e.total_power)
    return TopologyResult(
        spec=spec,
        evaluations=tuple(evaluations),
        unique_blocks=cache.unique_blocks if cache else 0,
    )
