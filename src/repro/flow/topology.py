"""Topology optimization: enumerate -> translate -> evaluate -> rank.

Every evaluation path now runs through the execution engine
(:mod:`repro.engine`): analytic screening fans candidates out over the
configured backend, and synthesis mode hands the deduplicated block
workload to the wave scheduler, which preserves the serial nearest-donor
warm-start semantics while letting independent blocks size in parallel.
The default :class:`~repro.engine.config.FlowConfig` keeps everything
serial and in-memory, so callers that never touch ``config`` see the same
behaviour (and bit-identical results) as before.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.engine.backend import ExecutionBackend
from repro.engine.config import FlowConfig
from repro.engine.scheduler import execute_plan, plan_synthesis
from repro.enumeration.candidates import PipelineCandidate, enumerate_candidates
from repro.errors import SpecificationError
from repro.flow.cache import BlockCache
from repro.power.analytic import CandidatePower, candidate_power
from repro.power.comparator import sub_adc_power
from repro.power.model import PowerModel, DEFAULT_POWER_MODEL
from repro.specs.adc import AdcSpec
from repro.specs.stage import StagePlan, plan_stages


@dataclass(frozen=True)
class CandidateEvaluation:
    """One candidate's evaluated power."""

    candidate: PipelineCandidate
    plan: StagePlan
    #: Per-stage total power [W] (MDAC + sub-ADC).
    stage_powers: tuple[float, ...]
    #: Per-stage MDAC-only power [W].
    mdac_powers: tuple[float, ...]
    #: Which path produced the MDAC numbers: 'analytic' or 'synthesis'.
    mode: str
    #: Whether every synthesized block met its constraints (True for analytic).
    all_feasible: bool

    @property
    def total_power(self) -> float:
        """Front-end total [W]."""
        return sum(self.stage_powers)

    @property
    def label(self) -> str:
        """Candidate label, e.g. '4-3-2'."""
        return self.candidate.label


@dataclass(frozen=True)
class TopologyResult:
    """Ranked outcome of one topology-optimization run."""

    spec: AdcSpec
    evaluations: tuple[CandidateEvaluation, ...]
    #: Unique MDAC blocks synthesized (0 in analytic mode).
    unique_blocks: int

    @property
    def best(self) -> CandidateEvaluation:
        """The minimum-power candidate."""
        return self.evaluations[0]

    def power_table(self) -> list[tuple[str, float]]:
        """(label, total mW) rows, best first."""
        return [(e.label, e.total_power * 1e3) for e in self.evaluations]


@dataclass(frozen=True)
class _AnalyticTask:
    """Picklable per-candidate analytic evaluation unit."""

    spec: AdcSpec
    candidate: PipelineCandidate
    model: PowerModel


def _evaluate_analytic(task: _AnalyticTask) -> CandidateEvaluation:
    """Analytic evaluation of one candidate — pool-dispatchable."""
    plan = plan_stages(task.spec, task.candidate)
    cp: CandidatePower = candidate_power(task.spec, task.candidate, task.model, plan)
    return CandidateEvaluation(
        candidate=task.candidate,
        plan=plan,
        stage_powers=tuple(s.total_power for s in cp.stages),
        mdac_powers=tuple(s.mdac.total_power for s in cp.stages),
        mode="analytic",
        all_feasible=True,
    )


def _evaluate_synthesis(
    plan: StagePlan,
    cache: BlockCache,
    model: PowerModel,
    spec: AdcSpec,
) -> CandidateEvaluation:
    """Assemble one candidate's evaluation from fully resolved blocks."""
    mdac_powers: list[float] = []
    stage_powers: list[float] = []
    feasible = True
    for mdac_spec, sub_spec in zip(plan.mdacs, plan.sub_adcs):
        block = cache.get(mdac_spec)
        feasible &= block.feasible
        mdac_w = block.power + model.fixed_overhead_w
        sub_w = sub_adc_power(sub_spec, model, vdd=spec.tech.vdd).total_power
        mdac_powers.append(mdac_w)
        stage_powers.append(mdac_w + sub_w)
    return CandidateEvaluation(
        candidate=plan.candidate,
        plan=plan,
        stage_powers=tuple(stage_powers),
        mdac_powers=tuple(mdac_powers),
        mode="synthesis",
        all_feasible=feasible,
    )


def optimize_topology(
    spec: AdcSpec,
    mode: str = "analytic",
    model: PowerModel = DEFAULT_POWER_MODEL,
    cache: BlockCache | None = None,
    candidates: list[PipelineCandidate] | None = None,
    config: FlowConfig | None = None,
    backend: ExecutionBackend | None = None,
) -> TopologyResult:
    """Run the full designer-driven flow for one ADC spec.

    ``mode`` selects the MDAC evaluation path:

    * ``"analytic"`` — the fast equation-based screen (every candidate);
    * ``"synthesis"`` — transistor-level block synthesis with reuse via the
      :class:`BlockCache` (the paper's Fig. 1 flow).

    ``config`` selects the execution backend, synthesis budgets and the
    optional persistent block cache; an explicitly passed ``cache`` wins
    over ``config.make_cache`` (its budgets then drive the scheduler), and
    an explicitly passed ``backend`` is reused without being closed —
    callers sharing a pool across several runs own its lifecycle.

    Sub-ADC power always comes from the comparator model; ranking ascending
    by total front-end power.  Rankings are backend-independent: the wave
    scheduler fixes every warm start before dispatch, so serial and
    process-pool runs synthesize identical blocks.
    """
    if candidates is None:
        candidates = enumerate_candidates(spec.resolution_bits)
    if mode not in ("analytic", "synthesis"):
        raise SpecificationError(f"unknown mode {mode!r}")
    if config is None:
        config = FlowConfig()

    owns_backend = backend is None
    if backend is None:
        backend = config.make_backend()
    try:
        if mode == "analytic":
            tasks = [_AnalyticTask(spec, cand, model) for cand in candidates]
            evaluations = backend.map(_evaluate_analytic, tasks)
        else:
            if cache is None:
                cache = config.make_cache(spec.tech)
            stage_plans = [plan_stages(spec, cand) for cand in candidates]
            all_specs = [m for p in stage_plans for m in p.mdacs]
            synth_plan = plan_synthesis(
                all_specs, cache.results, donors=cache.donor_pool
            )
            execute_plan(synth_plan, cache, backend)
            evaluations = [
                _evaluate_synthesis(p, cache, model, spec) for p in stage_plans
            ]
    finally:
        if owns_backend:
            backend.close()

    evaluations.sort(key=lambda e: e.total_power)
    return TopologyResult(
        spec=spec,
        evaluations=tuple(evaluations),
        unique_blocks=cache.unique_blocks if cache else 0,
    )
