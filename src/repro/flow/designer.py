"""Designer-rule extraction: the decision diagram of the paper's Fig. 3.

Sweeping the topology optimizer over target resolutions yields simple rules
a designer can apply without rerunning anything — which first-stage
resolution to pick per resolution band, and that the last enumerated stage
is always 1.5-bit.  Each resolution's optimization is independent, so the
sweep fans out over the configured execution backend; inside a pool worker
the nested flow call is forced serial to avoid oversubscription.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.engine.config import FlowConfig
from repro.power.model import PowerModel, DEFAULT_POWER_MODEL
from repro.specs.adc import AdcSpec


@dataclass(frozen=True)
class DesignerRule:
    """One extracted rule: a resolution band and its first-stage choice."""

    #: Inclusive resolution band [bits].
    k_min: int
    k_max: int
    #: Optimal first-stage raw resolution for the band.
    first_stage_bits: int
    #: Winning configuration label per swept resolution in the band.
    winners: tuple[str, ...]

    def __str__(self) -> str:
        band = (
            f"K = {self.k_min}" if self.k_min == self.k_max
            else f"{self.k_min} <= K <= {self.k_max}"
        )
        return f"{band}: first stage {self.first_stage_bits}-bit ({', '.join(self.winners)})"


@dataclass(frozen=True)
class _SweepTask:
    """Picklable per-resolution optimization unit."""

    resolution_bits: int
    sample_rate_hz: float
    model: PowerModel
    config: FlowConfig


@dataclass(frozen=True)
class SweepPoint:
    """Slim per-resolution sweep outcome.

    The minimal facts rule compression needs — produced by this module's
    own backend sweep or assembled from campaign scenario results (see
    :func:`repro.experiments.fig3.fig3_designer_rules`).
    """

    resolution_bits: int
    winner_label: str
    first_stage_bits: int
    last_stage_bits: int


def _sweep_one(task: _SweepTask) -> SweepPoint:
    """Optimize one resolution — pool-dispatchable."""
    from repro.flow.topology import optimize_topology

    spec = AdcSpec(
        resolution_bits=task.resolution_bits, sample_rate_hz=task.sample_rate_hz
    )
    best = optimize_topology(
        spec, mode="analytic", model=task.model, config=task.config
    ).best
    return SweepPoint(
        resolution_bits=task.resolution_bits,
        winner_label=best.label,
        first_stage_bits=best.candidate.resolutions[0],
        last_stage_bits=best.candidate.resolutions[-1],
    )


def extract_rules(
    resolutions: list[int] | None = None,
    model: PowerModel = DEFAULT_POWER_MODEL,
    sample_rate_hz: float = 40e6,
    two_bit_rule_range: tuple[int, int] = (10, 13),
    config: FlowConfig | None = None,
) -> tuple[list[DesignerRule], dict[int, str], bool]:
    """Sweep K, find winners, and compress into first-stage-choice bands.

    Returns ``(rules, winners_by_k, last_stage_always_2bit)``; the 2-bit
    last-stage rule is evaluated over ``two_bit_rule_range`` — the paper
    states it for 10..13-bit converters.  ``resolutions`` need not be
    contiguous: bands cover only the resolutions actually swept.
    """
    if resolutions is None:
        resolutions = list(range(9, 15))
    if config is None:
        config = FlowConfig()

    tasks = [
        _SweepTask(k, sample_rate_hz, model, config.serial())
        for k in sorted(set(resolutions))
    ]
    backend = config.make_backend()
    try:
        points = backend.map(_sweep_one, tasks)
    finally:
        backend.close()
    return compress_rules(points, two_bit_rule_range)


def compress_rules(
    points: list[SweepPoint],
    two_bit_rule_range: tuple[int, int] = (10, 13),
) -> tuple[list[DesignerRule], dict[int, str], bool]:
    """Compress swept winners into first-stage-choice bands.

    Pure function over :class:`SweepPoint` data, shared by
    :func:`extract_rules` and the campaign-backed Fig. 3 driver.  Returns
    ``(rules, winners_by_k, last_stage_always_2bit)``.
    """
    by_k = {p.resolution_bits: p for p in points}
    winners = {k: by_k[k].winner_label for k in sorted(by_k)}
    last_stage_2bit = all(
        p.last_stage_bits == 2
        for p in points
        if two_bit_rule_range[0] <= p.resolution_bits <= two_bit_rule_range[1]
    )

    rules: list[DesignerRule] = []
    ks = sorted(winners)
    band_start_idx = 0
    for i, k in enumerate(ks):
        first_bits = by_k[k].first_stage_bits
        is_last = i == len(ks) - 1
        next_first = None if is_last else by_k[ks[i + 1]].first_stage_bits
        if is_last or next_first != first_bits:
            rules.append(
                DesignerRule(
                    k_min=ks[band_start_idx],
                    k_max=k,
                    first_stage_bits=first_bits,
                    winners=tuple(winners[j] for j in ks[band_start_idx : i + 1]),
                )
            )
            band_start_idx = i + 1
    return rules, winners, last_stage_2bit
