"""Designer-rule extraction: the decision diagram of the paper's Fig. 3.

Sweeping the topology optimizer over target resolutions yields simple rules
a designer can apply without rerunning anything — which first-stage
resolution to pick per resolution band, and that the last enumerated stage
is always 1.5-bit.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.flow.topology import optimize_topology
from repro.power.model import PowerModel, DEFAULT_POWER_MODEL
from repro.specs.adc import AdcSpec


@dataclass(frozen=True)
class DesignerRule:
    """One extracted rule: a resolution band and its first-stage choice."""

    #: Inclusive resolution band [bits].
    k_min: int
    k_max: int
    #: Optimal first-stage raw resolution for the band.
    first_stage_bits: int
    #: Winning configuration label per resolution in the band.
    winners: tuple[str, ...]

    def __str__(self) -> str:
        band = (
            f"K = {self.k_min}" if self.k_min == self.k_max
            else f"{self.k_min} <= K <= {self.k_max}"
        )
        return f"{band}: first stage {self.first_stage_bits}-bit ({', '.join(self.winners)})"


def extract_rules(
    resolutions: list[int] | None = None,
    model: PowerModel = DEFAULT_POWER_MODEL,
    sample_rate_hz: float = 40e6,
    two_bit_rule_range: tuple[int, int] = (10, 13),
) -> tuple[list[DesignerRule], dict[int, str], bool]:
    """Sweep K, find winners, and compress into first-stage-choice bands.

    Returns ``(rules, winners_by_k, last_stage_always_2bit)``; the 2-bit
    last-stage rule is evaluated over ``two_bit_rule_range`` — the paper
    states it for 10..13-bit converters.
    """
    if resolutions is None:
        resolutions = list(range(9, 15))
    winners: dict[int, str] = {}
    last_stage_2bit = True
    for k in resolutions:
        spec = AdcSpec(resolution_bits=k, sample_rate_hz=sample_rate_hz)
        best = optimize_topology(spec, mode="analytic", model=model).best
        winners[k] = best.label
        if two_bit_rule_range[0] <= k <= two_bit_rule_range[1]:
            last_stage_2bit &= best.candidate.resolutions[-1] == 2

    rules: list[DesignerRule] = []
    ks = sorted(winners)
    band_start = ks[0]
    for i, k in enumerate(ks):
        first_bits = int(winners[k].split("-")[0])
        is_last = i == len(ks) - 1
        next_first = None if is_last else int(winners[ks[i + 1]].split("-")[0])
        if is_last or next_first != first_bits:
            rules.append(
                DesignerRule(
                    k_min=band_start,
                    k_max=k,
                    first_stage_bits=first_bits,
                    winners=tuple(winners[j] for j in range(band_start, k + 1)),
                )
            )
            if not is_last:
                band_start = ks[i + 1]
    return rules, winners, last_stage_2bit
