"""The designer-driven topology-optimization flow (the paper's core).

``optimize_topology`` chains everything: enumerate candidates, translate
specs, evaluate every stage (analytically, or by transistor-level synthesis
with block reuse), add sub-ADC power, and rank.  ``extract_rules`` distils
the sweep into the designer decision diagram of Fig. 3.
"""

from repro.engine.config import FlowConfig
from repro.flow.cache import BlockCache, PersistentBlockCache
from repro.flow.topology import CandidateEvaluation, TopologyResult, optimize_topology
from repro.flow.designer import (
    DesignerRule,
    SweepPoint,
    compress_rules,
    extract_rules,
)

__all__ = [
    "BlockCache",
    "PersistentBlockCache",
    "FlowConfig",
    "optimize_topology",
    "TopologyResult",
    "CandidateEvaluation",
    "DesignerRule",
    "SweepPoint",
    "compress_rules",
    "extract_rules",
]
