"""Compact MOSFET model: smoothed square law with velocity saturation.

The model is a SPICE level-1 style square law augmented with:

* a smooth effective overdrive ``veff = softmax(vgs - vth, 0)`` so the
  cutoff/strong-inversion corner is continuously differentiable (Newton
  never sees a kink);
* a ``tanh`` triode/saturation blend, again for C1 continuity;
* velocity-saturation degradation ``1 / (1 + veff / (esat * L))``;
* channel-length modulation ``(1 + lambda * vds)`` with ``lambda``
  inversely proportional to channel length;
* body effect on the threshold voltage.

PMOS devices and reverse (drain/source swapped) operation are handled by
terminal transformations, as in SPICE.  All derivatives are analytic, so the
DC Newton solver converges quadratically near a solution.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.tech.process import MosfetParams

#: Smoothing width for the cutoff transition [V].
_VEFF_DELTA = 5e-3
#: Minimum off conductance to keep Jacobians non-singular [S].
_GDS_MIN = 1e-12


@dataclass(frozen=True)
class MosfetOperatingPoint:
    """Small-signal view of a MOSFET at a DC operating point.

    Currents/voltages are in the device's *terminal* convention (drain
    current positive into the drain for NMOS conducting normally; negative
    for PMOS).  Derivatives are partials of the terminal drain current with
    respect to terminal voltages, suitable for direct MNA stamping.
    """

    ids: float  #: Terminal drain current [A] (into drain).
    vgs: float  #: Applied gate-source voltage [V].
    vds: float  #: Applied drain-source voltage [V].
    vbs: float  #: Applied bulk-source voltage [V].
    vth: float  #: Effective threshold (polarity-normalized, positive) [V].
    vov: float  #: Effective overdrive used by the model [V].
    vdsat: float  #: Saturation voltage [V].
    gm: float  #: d(ids)/d(vgs) [S].
    gds: float  #: d(ids)/d(vds) [S].
    gmb: float  #: d(ids)/d(vbs) [S].
    cgs: float  #: Gate-source capacitance [F].
    cgd: float  #: Gate-drain capacitance [F].
    cgb: float  #: Gate-bulk capacitance [F].
    cdb: float  #: Drain-bulk junction capacitance [F].
    csb: float  #: Source-bulk junction capacitance [F].
    region: str  #: 'cutoff', 'triode' or 'saturation'.


def _veff(vov: float) -> tuple[float, float]:
    """Smooth max(vov, 0) and its derivative."""
    root = math.sqrt(vov * vov + 4.0 * _VEFF_DELTA * _VEFF_DELTA)
    veff = 0.5 * (vov + root)
    dveff = 0.5 * (1.0 + vov / root)
    return veff, dveff


def _threshold(params: MosfetParams, vsb: float) -> tuple[float, float]:
    """Body-affected threshold and d(vth)/d(vsb) (polarity-normalized)."""
    vsb_clamped = max(vsb, -params.phi + 0.05)
    sq = math.sqrt(params.phi + vsb_clamped)
    vth = params.vth0 + params.gamma * (sq - math.sqrt(params.phi))
    if vsb > -params.phi + 0.05:
        dvth = params.gamma / (2.0 * sq)
    else:
        dvth = 0.0
    return vth, dvth


def _forward_current(
    params: MosfetParams, w: float, l: float, vgs: float, vds: float, vbs: float
) -> tuple[float, float, float, float, float, float]:
    """Normalized (NMOS-like, vds >= 0) current and partial derivatives.

    Returns ``(id, gm, gds, gmb, veff, vdsat, vth)``.
    """
    # _threshold and _veff, inlined: this function runs once per device per
    # Newton iteration, where the call overhead alone was measurable.
    vsb = -vbs
    vsb_clamped = max(vsb, -params.phi + 0.05)
    sq = math.sqrt(params.phi + vsb_clamped)
    vth = params.vth0 + params.gamma * (sq - math.sqrt(params.phi))
    if vsb > -params.phi + 0.05:
        dvth_dvsb = params.gamma / (2.0 * sq)
    else:
        dvth_dvsb = 0.0
    vov = vgs - vth
    root = math.sqrt(vov * vov + 4.0 * _VEFF_DELTA * _VEFF_DELTA)
    veff = 0.5 * (vov + root)
    dveff_dvov = 0.5 * (1.0 + vov / root)

    beta = params.kp * (w / l)
    esat_l = params.esat * l
    sat_factor = 1.0 / (1.0 + veff / esat_l)
    dsat_dveff = -sat_factor * sat_factor / esat_l

    t = math.tanh(vds / veff)
    sech2 = 1.0 - t * t
    vdse = veff * t
    dvdse_dvds = sech2
    dvdse_dveff = t - (vds / veff) * sech2

    core = (veff - 0.5 * vdse) * vdse
    dcore_dveff = vdse + (veff - vdse) * dvdse_dveff
    dcore_dvds = (veff - vdse) * dvdse_dvds

    clm = 1.0 + (params.lambda_l / l) * vds
    ids = beta * core * clm * sat_factor

    dids_dveff = beta * clm * (dcore_dveff * sat_factor + core * dsat_dveff)
    gm = dids_dveff * dveff_dvov
    gds = beta * (dcore_dvds * clm * sat_factor + core * (params.lambda_l / l) * sat_factor)
    # d(ids)/d(vbs): raising vbs lowers vsb, lowers vth, raises vov.
    gmb = dids_dveff * dveff_dvov * dvth_dvsb

    gds = max(gds, _GDS_MIN)
    return ids, gm, gds, gmb, veff, veff, vth


def _capacitances(
    params: MosfetParams, w: float, l: float, region: str
) -> tuple[float, float, float, float, float]:
    """Meyer-style capacitances (cgs, cgd, cgb, cdb, csb) for a region."""
    cox_total = params.cox * w * l
    cov = params.cov * w
    cj = params.cj * w * params.ldiff
    if region == "saturation":
        return (2.0 / 3.0) * cox_total + cov, cov, 0.0, cj, cj
    if region == "triode":
        return 0.5 * cox_total + cov, 0.5 * cox_total + cov, 0.0, cj, cj
    return cov, cov, cox_total, cj, cj


def dc_current(
    params: MosfetParams,
    w: float,
    l: float,
    vgs: float,
    vds: float,
    vbs: float = 0.0,
) -> tuple[float, float, float, float]:
    """Terminal drain current and partial derivatives at a bias point.

    Returns ``(ids, gm, gds, gmb)`` where each derivative is the partial of
    the terminal drain current with respect to the *terminal* vgs/vds/vbs.
    Handles PMOS (sign transformation) and reverse mode (vds < 0 after
    normalization) exactly like SPICE.
    """
    p = params.polarity
    # Polarity normalization: analyze an equivalent NMOS.
    nvgs, nvds, nvbs = p * vgs, p * vds, p * vbs

    if nvds >= 0.0:
        ids, gm, gds, gmb, _, _, _ = _forward_current(params, w, l, nvgs, nvds, nvbs)
        # d(p*I)/d(p*V) transformation cancels: terminal derivative = normalized.
        return p * ids, gm, gds, gmb
    # Reverse mode: swap drain and source.
    swapped_vgs = nvgs - nvds  # becomes vgd
    swapped_vds = -nvds
    swapped_vbs = nvbs - nvds  # becomes vbd
    ids, gm_s, gds_s, gmb_s, _, _, _ = _forward_current(
        params, w, l, swapped_vgs, swapped_vds, swapped_vbs
    )
    ids_term = -ids
    gm = -gm_s
    gmb = -gmb_s
    gds = gm_s + gds_s + gmb_s
    return p * ids_term, gm, gds, gmb


def operating_point(
    params: MosfetParams,
    w: float,
    l: float,
    vgs: float,
    vds: float,
    vbs: float = 0.0,
) -> MosfetOperatingPoint:
    """Full small-signal operating point (currents, conductances, caps)."""
    p = params.polarity
    nvgs, nvds, nvbs = p * vgs, p * vds, p * vbs
    reverse = nvds < 0.0
    if reverse:
        fvgs, fvds, fvbs = nvgs - nvds, -nvds, nvbs - nvds
    else:
        fvgs, fvds, fvbs = nvgs, nvds, nvbs

    # One forward-model evaluation serves current, derivatives and the
    # threshold: the terminal transformation below is exactly what
    # dc_current applies, so the values are bit-identical to calling it
    # (the model used to be evaluated three times here; hot sizing loops
    # noticed).
    ids, fgm, fgds, fgmb, veff, vdsat, vth = _forward_current(
        params, w, l, fvgs, fvds, fvbs
    )
    if reverse:
        gm, gds, gmb = -fgm, fgm + fgds + fgmb, -fgmb
        ids = -ids
    else:
        gm, gds, gmb = fgm, fgds, fgmb

    if fvgs - vth < 0.0:
        region = "cutoff"
    elif fvds < vdsat:
        region = "triode"
    else:
        region = "saturation"

    cgs, cgd, cgb, cdb, csb = _capacitances(params, w, l, region)
    if reverse:
        cgs, cgd = cgd, cgs
        cdb, csb = csb, cdb

    return MosfetOperatingPoint(
        ids=p * ids,
        vgs=vgs,
        vds=vds,
        vbs=vbs,
        vth=vth,
        vov=veff,
        vdsat=vdsat,
        gm=gm,
        gds=gds,
        gmb=gmb,
        cgs=cgs,
        cgd=cgd,
        cgb=cgb,
        cdb=cdb,
        csb=csb,
        region=region,
    )


def thermal_noise_psd(params: MosfetParams, gm: float) -> float:
    """Drain thermal-noise current PSD 4kT*gamma*gm [A^2/Hz]."""
    from repro.constants import KT_ROOM

    return 4.0 * KT_ROOM * params.noise_gamma * abs(gm)


def flicker_noise_psd(
    params: MosfetParams, w: float, l: float, gm: float, frequency_hz: float
) -> float:
    """Drain flicker-noise current PSD kf*gm^2/(Cox*W*L*f) [A^2/Hz]."""
    if frequency_hz <= 0:
        raise ValueError("flicker noise needs a positive frequency")
    return params.kf * gm * gm / (params.cox * w * l * frequency_hz)
