"""Technology models: the 0.25 um 3.3 V CMOS process the paper targets.

The paper synthesizes MDACs in a 0.25 um 3.3 V CMOS process using foundry
BSIM models inside a commercial tool.  We substitute a compact square-law
model with velocity saturation and channel-length modulation
(:mod:`repro.tech.mosfet`), plus passive-component matching/parasitic models
(:mod:`repro.tech.passives`).  Synthesis trends — gm/Id, intrinsic gain,
f_T scaling — drive the paper's result, and those are captured here; BSIM
minutiae are not needed (see DESIGN.md, substitutions table).
"""

from repro.tech.process import (
    CORNERS,
    MosfetParams,
    Technology,
    CMOS025,
    CMOS025_SLOW,
    resolve_corner,
)
from repro.tech.mosfet import MosfetOperatingPoint, dc_current, operating_point
from repro.tech.passives import (
    capacitor_mismatch_sigma,
    min_capacitor,
    switch_on_resistance,
)

__all__ = [
    "CORNERS",
    "MosfetParams",
    "Technology",
    "CMOS025",
    "CMOS025_SLOW",
    "MosfetOperatingPoint",
    "dc_current",
    "operating_point",
    "capacitor_mismatch_sigma",
    "min_capacitor",
    "resolve_corner",
    "switch_on_resistance",
]
