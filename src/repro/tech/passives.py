"""Passive-component models: capacitor matching and switch sizing.

Capacitor matching drives the MDAC's DAC accuracy and therefore puts a
*floor* under unit-capacitor size at high resolution; the kT/C noise
requirement scales caps down by 4x per resolved front-end bit until that
floor (or the parasitic floor) is hit.  This interplay is what moves the
paper's optimum from 3-2... at 10 bits to 4-3-2... at 13 bits.
"""

from __future__ import annotations

import math

from repro.tech.process import Technology


def capacitor_mismatch_sigma(tech: Technology, capacitance: float) -> float:
    """Relative 1-sigma mismatch of a capacitor of the given value.

    Pelgrom-style scaling: sigma(dC/C) = A_C / sqrt(area), with area
    implied by the process capacitor density.
    """
    if capacitance <= 0:
        raise ValueError(f"capacitance must be positive, got {capacitance!r}")
    area_um2 = capacitance / tech.cap_density / 1e-12  # m^2 -> um^2
    return tech.cap_matching / math.sqrt(area_um2)


def capacitor_for_mismatch(tech: Technology, sigma_target: float) -> float:
    """Smallest capacitor whose relative mismatch is below ``sigma_target``."""
    if sigma_target <= 0:
        raise ValueError(f"sigma_target must be positive, got {sigma_target!r}")
    area_um2 = (tech.cap_matching / sigma_target) ** 2
    return max(area_um2 * 1e-12 * tech.cap_density, tech.cap_min)


def min_capacitor(tech: Technology) -> float:
    """Smallest manufacturable capacitor in this technology."""
    return tech.cap_min


def switch_on_resistance(
    tech: Technology, width: float, vgs_drive: float | None = None
) -> float:
    """On-resistance of a minimum-length NMOS switch of the given width."""
    if width <= 0:
        raise ValueError(f"width must be positive, got {width!r}")
    nmos = tech.nmos
    vdrive = tech.vdd if vgs_drive is None else vgs_drive
    vov = vdrive - nmos.vth0
    if vov <= 0:
        raise ValueError("switch drive voltage below threshold")
    return 1.0 / (nmos.kp * (width / tech.lmin) * vov)


def switch_width_for_settling(
    tech: Technology, capacitance: float, settle_time: float, accuracy: float
) -> float:
    """Switch width so an RC sampling network settles to ``accuracy``.

    The sampling time constant must satisfy ``tau <= settle_time / ln(1/accuracy)``.
    """
    if not 0 < accuracy < 1:
        raise ValueError(f"accuracy must be in (0,1), got {accuracy!r}")
    if settle_time <= 0 or capacitance <= 0:
        raise ValueError("settle_time and capacitance must be positive")
    n_tau = math.log(1.0 / accuracy)
    r_max = settle_time / (n_tau * capacitance)
    nmos = tech.nmos
    vov = tech.vdd - nmos.vth0
    width = tech.lmin / (nmos.kp * vov * r_max)
    return max(width, tech.wmin)
