"""Process parameters for the target technology.

``CMOS025`` models a generic 0.25 um, 3.3 V analog CMOS process with
representative textbook constants (Johns & Martin / Razavi era values), which
is what the paper's flow targets.  All values are SI.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

from repro.constants import EPSILON_0, EPSILON_SIO2
from repro.errors import SpecificationError


@dataclass(frozen=True)
class MosfetParams:
    """Compact-model parameters for one device polarity.

    The DC model is a smoothed square law with mobility degradation /
    velocity saturation and channel-length modulation; see
    :mod:`repro.tech.mosfet` for the equations.
    """

    #: Device polarity: +1 for NMOS, -1 for PMOS.
    polarity: int
    #: Zero-bias threshold voltage magnitude [V].
    vth0: float
    #: Transconductance parameter mu*Cox [A/V^2].
    kp: float
    #: Channel-length modulation coefficient per unit length [1/V * m].
    #: lambda = lambda_l / L so longer devices have higher output resistance.
    lambda_l: float
    #: Critical field for velocity saturation [V/m]; Id degrades by
    #: 1/(1 + Vov/(esat*L)).
    esat: float
    #: Body-effect coefficient [sqrt(V)].
    gamma: float
    #: Surface potential 2*phi_F [V].
    phi: float
    #: Gate-oxide capacitance per area [F/m^2].
    cox: float
    #: Gate-drain/source overlap capacitance per width [F/m].
    cov: float
    #: Junction capacitance per area [F/m^2].
    cj: float
    #: Source/drain diffusion length [m].
    ldiff: float
    #: Thermal-noise excess factor (gamma_noise, ~2/3 long channel).
    noise_gamma: float
    #: Flicker-noise coefficient [V^2*F].
    kf: float

    def __post_init__(self) -> None:
        if self.polarity not in (+1, -1):
            raise ValueError(f"polarity must be +1 or -1, got {self.polarity}")
        for name in ("vth0", "kp", "esat", "cox"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")


@dataclass(frozen=True)
class Technology:
    """A full process description: devices, passives, supply."""

    name: str
    #: Nominal supply voltage [V].
    vdd: float
    #: Minimum drawn channel length [m].
    lmin: float
    #: Minimum device width [m].
    wmin: float
    nmos: MosfetParams
    pmos: MosfetParams
    #: Capacitor density [F/m^2] (MiM / poly-poly).
    cap_density: float
    #: Capacitor matching coefficient: sigma(dC/C) = cap_matching / sqrt(area[um^2]).
    cap_matching: float
    #: Smallest manufacturable unit capacitor [F].
    cap_min: float
    #: Routing/parasitic cap floor at an amplifier output [F].
    cpar_floor: float

    def device(self, polarity: str) -> MosfetParams:
        """Return device parameters by polarity name ('nmos' or 'pmos')."""
        if polarity == "nmos":
            return self.nmos
        if polarity == "pmos":
            return self.pmos
        raise ValueError(f"unknown device polarity {polarity!r}")


def _cox(tox_m: float) -> float:
    return EPSILON_0 * EPSILON_SIO2 / tox_m


_TOX = 5.7e-9
_COX = _cox(_TOX)  # ~6.06e-3 F/m^2

#: Generic 0.25 um 3.3 V CMOS — the paper's target process.
CMOS025 = Technology(
    name="cmos025",
    vdd=3.3,
    lmin=0.25e-6,
    wmin=0.5e-6,
    nmos=MosfetParams(
        polarity=+1,
        vth0=0.50,
        kp=380e-4 * _COX,  # mu_n = 380 cm^2/Vs
        lambda_l=0.05e-6,  # lambda = 0.2/V at L = 0.25 um
        esat=4.0e6,
        gamma=0.45,
        phi=0.85,
        cox=_COX,
        cov=0.30e-9,  # 0.3 fF/um
        cj=1.0e-3,  # 1 fF/um^2
        ldiff=0.6e-6,
        noise_gamma=0.85,  # short-channel excess above 2/3
        kf=2.0e-25,
    ),
    pmos=MosfetParams(
        polarity=-1,
        vth0=0.55,
        kp=90e-4 * _COX,  # mu_p = 90 cm^2/Vs
        lambda_l=0.06e-6,
        esat=1.2e7,  # holes velocity-saturate later
        gamma=0.40,
        phi=0.85,
        cox=_COX,
        cov=0.30e-9,
        cj=1.1e-3,
        ldiff=0.6e-6,
        noise_gamma=0.85,
        kf=8.0e-26,
    ),
    cap_density=1.0e-3,  # 1 fF/um^2 MiM
    cap_matching=0.004,  # 0.4 % mismatch for a 1 um^2 unit (MiM)
    cap_min=5e-15,
    cpar_floor=50e-15,
)


def _slow_device(params: MosfetParams) -> MosfetParams:
    """Derate one polarity to its slow-process corner.

    Classic SS-corner shifts: higher threshold (thicker effective oxide /
    dopant skew), lower mobility, and slightly earlier velocity saturation.
    Capacitances are left at nominal — corner cap skew is second-order for
    the power trends this flow ranks on.
    """
    return dataclasses.replace(
        params,
        vth0=params.vth0 + 0.06,
        kp=params.kp * 0.85,
        esat=params.esat * 0.9,
    )


#: Slow / low-voltage corner of the same 0.25 um process: worst-case-speed
#: devices at a 10 % reduced supply (3.0 V).  Blocks sized here carry more
#: bias margin, so corner campaigns bound the nominal design's power from
#: above.  Registered in :data:`CORNERS` so campaign grids can sweep it.
CMOS025_SLOW = Technology(
    name="cmos025_slow",
    vdd=3.0,
    lmin=CMOS025.lmin,
    wmin=CMOS025.wmin,
    nmos=_slow_device(CMOS025.nmos),
    pmos=_slow_device(CMOS025.pmos),
    cap_density=CMOS025.cap_density,
    cap_matching=CMOS025.cap_matching,
    cap_min=CMOS025.cap_min,
    cpar_floor=CMOS025.cpar_floor,
)

#: Registered technology corners, by campaign-grid tag.  Extension point:
#: register a new tag here and ``CampaignGrid.corners`` /
#: ``repro-adc campaign --corners`` / service requests pick it up.
CORNERS: dict[str, Technology] = {
    "nom": CMOS025,
    "slow": CMOS025_SLOW,
}


def resolve_corner(tag: str) -> Technology:
    """Look a corner tag up in :data:`CORNERS`.

    The one place the "unknown corner" error is worded — the campaign
    grid axis parser and the service request validators all resolve
    through here, so CLI and HTTP clients see the same message.
    """
    try:
        return CORNERS[tag]
    except KeyError:
        raise SpecificationError(
            f"unknown technology corner {tag!r} "
            f"(registered: {', '.join(sorted(CORNERS))})"
        ) from None
