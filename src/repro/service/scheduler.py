"""The asyncio job scheduler: priority + fairness queues over executor threads.

``JobScheduler`` is the heart of the service.  It owns the in-memory job
table (mirrored to the :class:`~repro.service.jobs.JobStore` at every state
transition), the run queue, and the bridge between the asyncio control
plane and the *blocking* optimization flow:

* **Queueing** — jobs wait in per-priority buckets (lowest number first);
  inside a bucket the scheduler round-robins across client tags, so a
  client that floods fifty submissions shares the bucket fairly with the
  client that submitted one.
* **Coalescing** — submissions are content-addressed
  (:func:`~repro.service.jobs.parse_request`).  A submission whose key is
  already queued, running or done attaches to the existing job instead of
  enqueueing a duplicate: one computation, N satisfied clients.  Failed or
  cancelled keys re-enqueue on resubmission.
* **Executor bridging** — worker coroutines pull the next key and run the
  blocking flow (`run_campaign` / `optimize_topology`) on a thread pool via
  ``loop.run_in_executor``; progress callbacks hop back onto the loop with
  ``call_soon_threadsafe`` and fan out to event subscribers.
* **Drain & recovery** — :meth:`drain` cancels running campaigns at their
  next scenario boundary (the engine's :class:`CancelToken`), requeues
  them, and waits the workers out; :meth:`start` re-enqueues every
  persisted ``queued``/``running`` record, so a restarted server picks the
  queue back up without recomputing completed jobs (their results are on
  disk, keyed by content).
"""

from __future__ import annotations

import asyncio
import dataclasses
import time
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from typing import Any

from repro.campaign.runner import run_campaign
from repro.obs import metrics
from repro.engine.cancel import CancelToken
from repro.errors import CampaignInterrupted, SpecificationError
from repro.flow.topology import optimize_topology
from repro.service.jobs import (
    TERMINAL_STATES,
    JobRecord,
    JobRequest,
    JobStore,
    campaign_payload,
    parse_request,
    topology_payload,
)

#: Job states a new identical submission can attach to (coalesce).
_COALESCABLE = ("queued", "running", "done")


class JobScheduler:
    """Priority/fairness job queue executing on a thread pool.

    All state is owned by the event loop that runs :meth:`start`; the only
    cross-thread traffic is the executor publishing progress through
    ``call_soon_threadsafe``.
    """

    def __init__(
        self,
        store: JobStore,
        *,
        job_workers: int = 1,
        cache_dir: str | None = None,
        broker_dir: str | None = None,
    ):
        if job_workers < 1:
            raise SpecificationError("job_workers must be >= 1")
        self.store = store
        self.job_workers = job_workers
        #: Server-side persistent block-cache directory for every job.
        self.cache_dir = cache_dir
        #: Directory of the server's task broker: a ``backend: broker`` job
        #: is pointed here, so its tasks appear on the same broker the
        #: ``/v1/broker/*`` routes serve and any attached ``repro-adc
        #: worker`` executes them.  Clients never choose the path.
        self.broker_dir = broker_dir
        self.jobs: dict[str, JobRecord] = {}
        self._buckets: dict[int, dict[str, deque[str]]] = {}
        self._rr: dict[int, deque[str]] = {}
        self._subscribers: dict[str, set[asyncio.Queue]] = {}
        self._tokens: dict[str, CancelToken] = {}
        self._workers: list[asyncio.Task] = []
        self._wakeup = asyncio.Event()
        self._draining = False
        self._seq = 0
        self._loop: asyncio.AbstractEventLoop | None = None
        self._executor = ThreadPoolExecutor(
            max_workers=job_workers, thread_name_prefix="repro-job"
        )
        self.counters = {
            "submissions": 0,
            "coalesced": 0,
            "executions": 0,
            "completed": 0,
            "failed": 0,
            "requeued": 0,
            "recovered": 0,
        }

    def _count(self, name: str) -> None:
        """Bump an instance counter, mirrored into the obs registry.

        The instance dict keeps per-scheduler exactness (``stats()`` and
        the tests read it); the ``service.*`` mirror is what ``/v1/metrics``
        and an aggregated ``metrics.json`` see.
        """
        self.counters[name] += 1
        metrics.counter(f"service.{name}")

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> None:
        """Recover persisted jobs and start the worker coroutines."""
        self._loop = asyncio.get_running_loop()
        for record in self.store.load_all():
            if record.key in self.jobs:
                continue  # submitted live before start(): already queued
            self.jobs[record.key] = record
            self._seq = max(self._seq, record.seq)
            if record.state == "done" and self.store.result_ready(record.key):
                continue
            if record.state in ("queued", "running", "done"):
                # running = interrupted mid-job; done-without-result = the
                # artifacts vanished.  Both re-enqueue; campaign jobs resume
                # from their per-job checkpointed store.
                record.state = "queued"
                self.store.save(record)
                self._enqueue(record)
                self._count("recovered")
        for _ in range(self.job_workers):
            self._workers.append(asyncio.ensure_future(self._worker()))

    async def drain(self) -> None:
        """Stop gracefully: cancel running campaigns at the next scenario
        boundary, requeue them, and wait the workers out.

        Idempotent.  After a drain the persisted queue is exactly what a
        restarted scheduler re-enqueues.
        """
        if not self._draining:
            self._draining = True
            for token in self._tokens.values():
                token.cancel()
            self._wakeup.set()
        if self._workers:
            await asyncio.gather(*self._workers, return_exceptions=True)
            self._workers.clear()
        self._executor.shutdown(wait=True)

    @property
    def draining(self) -> bool:
        return self._draining

    # -- submission & queue --------------------------------------------------

    def submit(self, body: Any) -> tuple[JobRecord, bool]:
        """Admit one submission; returns ``(record, coalesced)``.

        Raises :class:`SpecificationError` for malformed bodies and when
        the scheduler is draining (the server maps both to HTTP errors).
        """
        if self._draining:
            raise SpecificationError("service is draining; resubmit after restart")
        request = parse_request(body)
        self._count("submissions")
        record = self.jobs.get(request.key)
        stale_done = (
            record is not None
            and record.state == "done"
            and not self.store.result_ready(record.key)
        )
        if record is not None and not stale_done and record.state in _COALESCABLE:
            record.submissions += 1
            self._count("coalesced")
            if record.state == "queued" and request.priority < record.priority:
                # A more urgent identical submission escalates the queued
                # job rather than waiting at the original priority.
                self._escalate(record, request.priority)
            self.store.save(record)
            return record, True
        if record is not None:  # failed, cancelled, or done-with-lost-result
            record.state = "queued"
            record.error = None
            record.submissions += 1
            record.finished_unix = None
            record.priority = request.priority  # the re-run takes the new urgency
        else:
            record = JobRecord(
                key=request.key,
                kind=request.kind,
                request=request.body,
                priority=request.priority,
                client=request.client,
                seq=self._next_seq(),
                total_scenarios=request.total_scenarios,
            )
            self.jobs[record.key] = record
        self.store.save(record)
        self._enqueue(record)
        self._publish(record.key, {"event": "queued"})
        return record, False

    def cancel(self, key: str) -> bool:
        """Cancel a *queued* job; returns whether anything was cancelled.

        Running jobs are not interrupted (blocking backends finish their
        current work; a drain is the graceful way to stop those), and
        terminal jobs are left alone.
        """
        record = self.jobs.get(key)
        if record is None or record.state != "queued":
            return False
        bucket = self._buckets.get(record.priority, {})
        queue = bucket.get(record.client)
        if queue is None or key not in queue:
            return False
        queue.remove(key)
        self._forget_if_empty(record.priority, record.client)
        record.state = "cancelled"
        record.finished_unix = time.time()
        self.store.save(record)
        self._publish(key, {"event": "cancelled"})
        return True

    def find(self, job_id: str) -> JobRecord | None:
        """Resolve a short id or full key to its record."""
        record = self.jobs.get(job_id)
        if record is not None:
            return record
        matches = [r for k, r in self.jobs.items() if k.startswith(job_id)]
        return matches[0] if len(matches) == 1 else None

    def stats(self) -> dict:
        """Queue/coalescing counters for ``GET /stats`` and the bench."""
        queued = sum(
            len(queue)
            for bucket in self._buckets.values()
            for queue in bucket.values()
        )
        return {
            **self.counters,
            "queued": queued,
            "running": len(self._tokens),
            "jobs": len(self.jobs),
            "draining": self._draining,
        }

    def _next_seq(self) -> int:
        self._seq += 1
        return self._seq

    def _enqueue(self, record: JobRecord) -> None:
        bucket = self._buckets.setdefault(record.priority, {})
        bucket.setdefault(record.client, deque()).append(record.key)
        rotation = self._rr.setdefault(record.priority, deque())
        if record.client not in rotation:
            rotation.append(record.client)
        self._wakeup.set()

    def _escalate(self, record: JobRecord, priority: int) -> None:
        """Move a queued record into a more urgent priority bucket."""
        bucket = self._buckets.get(record.priority, {})
        queue = bucket.get(record.client)
        if queue is None or record.key not in queue:
            return  # a worker already picked it up
        queue.remove(record.key)
        self._forget_if_empty(record.priority, record.client)
        record.priority = priority
        self._enqueue(record)

    def _forget_if_empty(self, priority: int, client: str) -> None:
        bucket = self._buckets.get(priority)
        if bucket is None:
            return
        queue = bucket.get(client)
        if queue is not None and not queue:
            del bucket[client]
            rotation = self._rr.get(priority)
            if rotation is not None and client in rotation:
                rotation.remove(client)
        if not bucket:
            self._buckets.pop(priority, None)
            self._rr.pop(priority, None)

    def _pop_next(self) -> str | None:
        """Next key to run: lowest priority bucket, clients round-robin."""
        for priority in sorted(self._buckets):
            rotation = self._rr.get(priority, deque())
            for _ in range(len(rotation)):
                client = rotation[0]
                rotation.rotate(-1)
                queue = self._buckets[priority].get(client)
                if queue:
                    key = queue.popleft()
                    self._forget_if_empty(priority, client)
                    return key
        return None

    # -- events --------------------------------------------------------------

    def subscribe(self, key: str) -> asyncio.Queue:
        """Open an event stream on a job: a snapshot, then live events."""
        queue: asyncio.Queue = asyncio.Queue()
        record = self.jobs[key]
        queue.put_nowait({"event": "state", **record.summary()})
        self._subscribers.setdefault(key, set()).add(queue)
        return queue

    def unsubscribe(self, key: str, queue: asyncio.Queue) -> None:
        subscribers = self._subscribers.get(key)
        if subscribers is not None:
            subscribers.discard(queue)
            if not subscribers:
                del self._subscribers[key]

    def _publish(self, key: str, extra: dict) -> None:
        record = self.jobs[key]
        if extra.get("event") == "scenario":
            record.completed_scenarios = extra.get(
                "completed", record.completed_scenarios
            )
        event = {**extra, **record.summary(), "event": extra.get("event")}
        for queue in self._subscribers.get(key, ()):  # snapshot-safe: no resize
            queue.put_nowait(event)

    def _publish_threadsafe(self, key: str, extra: dict) -> None:
        assert self._loop is not None
        self._loop.call_soon_threadsafe(self._publish, key, extra)

    # -- execution -----------------------------------------------------------

    async def _worker(self) -> None:
        while True:
            if self._draining:
                return
            key = self._pop_next()
            if key is None:
                self._wakeup.clear()
                if self._draining:
                    return
                await self._wakeup.wait()
                continue
            try:
                await self._run_job(key)
            except Exception as exc:
                # A failure outside the job's own guard (e.g. the record
                # store became unwritable) must not kill the worker — a
                # dead worker would wedge the whole server while /healthz
                # keeps reporting ok.  Mark the job failed best-effort and
                # keep serving.
                record = self.jobs.get(key)
                if record is not None and record.state == "running":
                    record.state = "failed"
                    record.error = f"scheduler error: {type(exc).__name__}: {exc}"
                    self._count("failed")
                    try:
                        self.store.save(record)
                    except Exception:
                        pass  # the store is the thing that is broken
                    self._publish(key, {"event": "failed"})

    async def _run_job(self, key: str) -> None:
        record = self.jobs[key]
        token = CancelToken()
        self._tokens[key] = token
        assert self._loop is not None
        try:
            record.state = "running"
            record.executions += 1
            self._count("executions")
            self.store.save(record)
            self._publish(key, {"event": "started"})
            await self._loop.run_in_executor(
                self._executor, self._execute, record, token
            )
        except CampaignInterrupted as exc:
            record.state = "queued"
            record.completed_scenarios = exc.completed
            self._count("requeued")
            self._save_quietly(record)
            self._publish(key, {"event": "requeued"})
            self._enqueue(record)
        except Exception as exc:  # job failure must not kill the worker
            record.state = "failed"
            record.error = f"{type(exc).__name__}: {exc}"
            record.finished_unix = time.time()
            self._count("failed")
            self._save_quietly(record)
            self._publish(key, {"event": "failed"})
        else:
            record.state = "done"
            record.completed_scenarios = record.total_scenarios
            record.finished_unix = time.time()
            self._count("completed")
            self._save_quietly(record)
            self._publish(key, {"event": "done"})
        finally:
            self._tokens.pop(key, None)

    def _save_quietly(self, record: JobRecord) -> None:
        """Persist a terminal transition without masking the event.

        If the record store is unwritable (disk full), the in-memory state
        is still authoritative for live clients — the terminal event must
        reach them regardless.  The stale on-disk record only costs an
        idempotent re-execution after a restart (results are
        content-addressed), which is strictly better than a silent hang.
        """
        try:
            self.store.save(record)
        except Exception:
            import traceback

            traceback.print_exc()

    def _execute(self, record: JobRecord, token: CancelToken) -> None:
        """Run one job's blocking flow (executor thread)."""
        request = JobRequest(
            kind=record.kind,
            body=record.request,
            key=record.key,
            priority=record.priority,
            client=record.client,
        )
        config = request.config(cache_dir=self.cache_dir)
        if config.backend == "broker":
            if self.broker_dir is None:
                raise SpecificationError(
                    "this server has no task broker; submit with a local "
                    "backend (serial, thread, process, queue)"
                )
            # Dispatch through the server's own directory broker — the same
            # state the HTTP broker routes serve — so remote workers execute
            # the tasks while this thread assembles results.
            config = dataclasses.replace(config, queue_dir=self.broker_dir)
        if record.kind == "campaign":
            grid = request.grid()

            def progress(scenario_result) -> None:
                rec = scenario_result.record
                self._publish_threadsafe(
                    record.key,
                    {
                        "event": "scenario",
                        "label": rec.label,
                        "winner": rec.winner,
                        "winner_power_w": rec.winner_power_w,
                        "completed": rec.index + 1,
                        "replayed": scenario_result.replayed,
                    },
                )

            # resume=True replays this job's own checkpoints: a requeued or
            # recovered job re-executes only the scenarios that never
            # committed.  On a fresh store it is a no-op.
            result = run_campaign(
                grid,
                config,
                progress=progress,
                store_dir=self.store.campaign_store_dir(record.key),
                resume=True,
                cancel=token,
            )
            self.store.write_result(record.key, campaign_payload(result.records))
        else:
            result = optimize_topology(
                request.spec(), mode=request.mode, config=config
            )
            self.store.write_result(record.key, topology_payload(result))


__all__ = ["JobScheduler", "TERMINAL_STATES"]
