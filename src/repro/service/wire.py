"""One wire format for everything that crosses a process boundary.

Before this module, three serializers had grown independently: the job
store's canonical result summaries (``topology_payload`` /
``campaign_payload`` in :mod:`repro.service.jobs`), the work-queue's task
identity payload (:meth:`~repro.engine.scheduler.SynthesisJob.queue_payload`),
and the ad-hoc lease JSON inside :mod:`repro.engine.workqueue`.  The broker
fabric adds a fourth concern — shipping arbitrary ``(fn, task)`` dispatches
to remote workers — so all of them now live here, with explicit schema
versions, and the broker, the job store and the queue share one format.

Layering: this is a *leaf* module — stdlib plus
:mod:`repro.engine.persist` only — so both the engine (broker, work queue,
scheduler) and the service (jobs, server) can import it without cycles.
Engine modules that are part of the ``repro`` package import chain load it
lazily inside functions.

Compatibility contracts enforced by ``tests/service/test_wire.py``:

* :func:`synthesis_task_payload` must stay **byte-identical** to the PR 4
  ``SynthesisJob.queue_payload`` dict — its digest keys every persisted
  ``.ack.pkl``; changing it orphans every completed task on disk.  Its
  ``"kind"`` field is the schema tag (a ``"schema"`` key would change the
  digest).
* Result payloads stay raw :mod:`pickle` bytes on disk (the PR 4 ack
  format — old acks still replay); :func:`encode_result_b64` /
  :func:`decode_result_b64` only wrap them for JSON transport over the
  HTTP broker, and :func:`decode_result` reads them through the
  restricted unpickler described below.
* :func:`parse_lease` accepts every lease body ever written: the v1 fabric
  dict (pid/worker/host/deadline), the PR 4 ``{"pid": N}`` dict, a bare
  integer, and garbage (which parses to a dead claim, never an error).

Trust model: task and result bodies are pickle *bytes* (the PR 4 ack
format), but they are never fed to a bare ``pickle.loads``.  Both decode
through :func:`restricted_loads`, whose ``find_class`` admits only
``repro.*`` **classes** plus a fixed allow-list of data-carrier globals
(container builtins, numpy array reconstruction).  Arbitrary importables —
``os.system``, ``subprocess.Popen``, ``builtins.eval``, even ``repro``
module-level *functions* (call gadgets: ``REDUCE`` invokes whatever
``find_class`` returns) — raise ``pickle.UnpicklingError`` before any code
runs.  Together with the worker's task-function allow-list this is what
lets a broker accept envelopes from untrusted submitters without handing
them code execution; what remains reachable is constructing ``repro`` data
objects with attacker-chosen fields, which the task functions treat as
(possibly garbage) work.
"""

from __future__ import annotations

import base64
import binascii
import io
import json
import pickle
from typing import Any, Callable, Iterable

#: Version tag stamped on v1 wire payloads (task envelopes, leases,
#: result summaries).  Bump when a payload changes shape; readers accept
#: anything ``<=`` their own version.
WIRE_SCHEMA = 1


def canonical_json(payload: Any) -> bytes:
    """Sorted-key, whitespace-free JSON + newline — the artifact format."""
    return (json.dumps(payload, sort_keys=True, separators=(",", ":")) + "\n").encode(
        "utf-8"
    )


# -- restricted unpickling ----------------------------------------------------

#: Non-``repro`` globals a wire pickle may reference: pure data carriers
#: whose construction runs no caller-supplied code.  Everything here is a
#: container/value type or a numpy array-reconstruction hook (the names
#: numpy itself emits for ``ndarray.__reduce__``, old and new layouts).
_SAFE_GLOBALS = frozenset(
    [("builtins", name) for name in (
        "bool", "bytearray", "bytes", "complex", "dict", "float",
        "frozenset", "int", "list", "range", "set", "slice", "str", "tuple",
    )]
    + [
        ("collections", "OrderedDict"),
        ("collections", "deque"),
        ("copyreg", "_reconstructor"),
        ("numpy", "dtype"),
        ("numpy", "ndarray"),
        ("numpy.core.multiarray", "_reconstruct"),
        ("numpy.core.multiarray", "scalar"),
        ("numpy.core.numeric", "_frombuffer"),
        ("numpy._core.multiarray", "_reconstruct"),
        ("numpy._core.multiarray", "scalar"),
        ("numpy._core.numeric", "_frombuffer"),
    ]
)


class _RestrictedUnpickler(pickle.Unpickler):
    """``pickle.Unpickler`` that refuses code-execution gadgets.

    ``find_class`` is the only door a pickle has into the interpreter's
    namespace; narrowing it to :data:`_SAFE_GLOBALS` plus ``repro.*``
    *classes* (not functions — ``REDUCE`` calls whatever comes back) turns
    a hostile payload into an :class:`pickle.UnpicklingError` instead of a
    remote shell.
    """

    def find_class(self, module: str, name: str) -> Any:
        if (module, name) in _SAFE_GLOBALS:
            return super().find_class(module, name)
        if module == "repro" or module.startswith("repro."):
            target = super().find_class(module, name)
            if isinstance(target, type):
                return target
            raise pickle.UnpicklingError(
                f"wire payloads may reference repro classes, not "
                f"{module}.{name} (a {type(target).__name__})"
            )
        raise pickle.UnpicklingError(
            f"wire payloads may not reference {module}.{name}"
        )


def restricted_loads(payload: bytes) -> Any:
    """``pickle.loads`` through the wire allow-list (see module docstring).

    Raises :class:`pickle.UnpicklingError` (or the usual truncation/codec
    errors) for anything referencing a global outside the allow-list.
    """
    return _RestrictedUnpickler(io.BytesIO(payload)).load()


# -- task envelopes -----------------------------------------------------------


def function_name(fn: Callable) -> str:
    """The importable ``module.qualname`` identity of a task function."""
    return f"{fn.__module__}.{fn.__qualname__}"


def encode_task(fn: Callable, task: Any, trace: dict | None = None) -> dict:
    """A JSON-able envelope shipping one ``(fn, task)`` dispatch.

    The function travels by importable name (workers re-resolve it — code
    never crosses the wire), the task object as a base64 pickle.  When span
    tracing is active (or ``trace`` is passed explicitly), the submitter's
    span context rides along under ``"trace"`` so a remote worker can
    parent its execution span into the same trace tree.  The key is
    advisory: :func:`decode_task` ignores it, task *identity* digests
    :func:`synthesis_task_payload` (never the envelope), and pre-fabric
    workers see an unknown key they never read — so telemetry cannot
    change what executes or which acks replay.
    """
    payload = pickle.dumps(task, protocol=pickle.HIGHEST_PROTOCOL)
    envelope = {
        "schema": WIRE_SCHEMA,
        "fn": function_name(fn),
        "task_pkl": base64.b64encode(payload).decode("ascii"),
    }
    if trace is None:
        # Imported lazily and narrowly: wire stays a leaf module, and the
        # context is only captured when a trace sink is actually configured.
        from repro.obs.trace import TRACER, current_context

        if TRACER.enabled:
            trace = current_context()
    if isinstance(trace, dict):
        trace_id, span_id = trace.get("trace"), trace.get("span")
        if isinstance(trace_id, str) and isinstance(span_id, str):
            envelope["trace"] = {"trace": trace_id, "span": span_id}
    return envelope


def trace_context(envelope: Any) -> dict | None:
    """The span context riding a task envelope, or None.

    Tolerant by design — envelopes from pre-telemetry submitters, or with
    a malformed ``"trace"`` value, simply yield no parent.
    """
    if not isinstance(envelope, dict):
        return None
    context = envelope.get("trace")
    if not isinstance(context, dict):
        return None
    trace_id, span_id = context.get("trace"), context.get("span")
    if isinstance(trace_id, str) and isinstance(span_id, str):
        return {"trace": trace_id, "span": span_id}
    return None


def decode_task(envelope: dict) -> tuple[str, Any]:
    """Inverse of :func:`encode_task`: ``(fn_name, task)``.

    Raises ``ValueError`` for envelopes from a *newer* schema or with a
    malformed body — a worker must reject what it cannot faithfully run.
    The body is unpickled through :func:`restricted_loads`, so a hostile
    envelope surfaces as a rejection, never as code execution.
    """
    if not isinstance(envelope, dict):
        raise ValueError("task envelope must be a JSON object")
    schema = envelope.get("schema", 0)
    if not isinstance(schema, int) or schema > WIRE_SCHEMA:
        raise ValueError(
            f"task envelope schema {schema!r} is newer than this worker "
            f"(speaks <= {WIRE_SCHEMA})"
        )
    fn_name = envelope.get("fn")
    if not isinstance(fn_name, str) or "." not in fn_name:
        raise ValueError(f"task envelope has no importable fn ({fn_name!r})")
    try:
        task = restricted_loads(base64.b64decode(envelope["task_pkl"]))
    except (KeyError, TypeError, ValueError, binascii.Error,
            pickle.UnpicklingError, EOFError, AttributeError,
            ImportError, IndexError) as exc:
        raise ValueError(f"task envelope body is unreadable ({exc})") from exc
    return fn_name, task


# -- result payloads ----------------------------------------------------------


def encode_result(result: Any) -> bytes:
    """Raw result bytes — exactly the PR 4 ``.ack.pkl`` format."""
    return pickle.dumps(result, protocol=pickle.HIGHEST_PROTOCOL)


def decode_result(payload: bytes) -> Any:
    """Inverse of :func:`encode_result`, via :func:`restricted_loads`.

    Ack bytes come back from brokers other processes write into, so the
    submitter applies the same allow-list the worker applies to tasks;
    raises like ``pickle.loads`` on truncation or a disallowed global.
    """
    return restricted_loads(payload)


def encode_result_b64(payload: bytes) -> str:
    """Wrap raw result bytes for a JSON body (the HTTP broker's ack)."""
    return base64.b64encode(payload).decode("ascii")


def decode_result_b64(text: str) -> bytes:
    """Inverse of :func:`encode_result_b64`; raises ``ValueError``."""
    try:
        return base64.b64decode(text, validate=True)
    except (TypeError, binascii.Error) as exc:
        raise ValueError(f"result payload is not valid base64 ({exc})") from exc


# -- leases -------------------------------------------------------------------


def lease_body(
    pid: int,
    worker: str | None = None,
    host: str | None = None,
    deadline: float | None = None,
) -> str:
    """The lease file / lease record JSON text (schema-tagged)."""
    payload: dict[str, Any] = {"schema": WIRE_SCHEMA, "pid": int(pid)}
    if worker is not None:
        payload["worker"] = worker
    if host is not None:
        payload["host"] = host
    if deadline is not None:
        payload["deadline"] = float(deadline)
    return json.dumps(payload, sort_keys=True)


def parse_lease(text: str) -> dict:
    """Tolerant lease parse: always a dict, never an exception.

    Returns ``{"pid": int, "worker": str | None, "host": str | None,
    "deadline": float | None}``.  A PR 4 lease (``{"pid": N}`` or a bare
    integer) parses with the new fields ``None``; truncated JSON, binary
    garbage or an empty file (a crash mid-write) parse to ``pid=0`` — a
    dead claim the reclaim sweep may break.
    """
    dead = {"pid": 0, "worker": None, "host": None, "deadline": None}
    try:
        payload = json.loads(text)
    except (json.JSONDecodeError, UnicodeDecodeError):
        try:
            return {**dead, "pid": int(text.strip() or "0")}
        except ValueError:
            return dead
    if not isinstance(payload, dict):
        try:
            return {**dead, "pid": int(payload)}
        except (TypeError, ValueError):
            return dead
    parsed = dict(dead)
    try:
        parsed["pid"] = int(payload.get("pid", 0))
    except (TypeError, ValueError):
        parsed["pid"] = 0
    worker = payload.get("worker")
    parsed["worker"] = worker if isinstance(worker, str) else None
    host = payload.get("host")
    parsed["host"] = host if isinstance(host, str) else None
    try:
        deadline = payload.get("deadline")
        parsed["deadline"] = None if deadline is None else float(deadline)
    except (TypeError, ValueError):
        parsed["deadline"] = None
    return parsed


# -- task identity ------------------------------------------------------------


def synthesis_task_payload(job: Any) -> dict:
    """Stable identity of one :class:`~repro.engine.scheduler.SynthesisJob`.

    The dict whose digest keys the job's queue/broker acks.  **Byte-stability
    contract**: this must reproduce the PR 4 ``queue_payload`` exactly —
    changing a key, a default, or the ``dc_kernel`` conditionality orphans
    every ack already on disk.  ``"kind"`` doubles as the schema tag.

    Two fields of the raw dataclass cannot enter a content address: the
    donor's ``wall_seconds`` is nondeterministic (so the donor collapses to
    its :func:`~repro.engine.persist.sizing_digest`), and the
    kernel/speculation/template knobs are excluded because results are
    bit-identical across them.  ``dc_kernel`` *does* change results, so it
    joins the payload — but only when non-default, keeping acks written
    before the knob existed valid for default runs.
    """
    from repro.engine.persist import sizing_digest

    payload: dict[str, Any] = {
        "kind": "synthesis_job",
        "spec": job.spec,
        "tech": job.tech,
        "budget": job.budget,
        "seed": job.seed,
        "verify_transient": bool(job.verify_transient),
        "donor": None if job.donor is None else sizing_digest(job.donor),
        "retarget_budget": job.retarget_budget,
        "retarget_seed": job.retarget_seed,
    }
    if job.dc_kernel != "chained":
        payload["dc_kernel"] = job.dc_kernel
    return payload


# -- result summaries (the service's ``result.json``) --------------------------


def topology_payload(result: Any) -> bytes:
    """Canonical JSON bytes for one :class:`TopologyResult`.

    Shared by the service (optimize-job ``result.json``) and by anyone
    serializing a direct :func:`~repro.flow.topology.optimize_topology`
    call — byte-identity between the two paths follows from sharing this
    serializer plus the flow's own determinism guarantees.
    """
    spec = result.spec
    return canonical_json(
        {
            "schema": WIRE_SCHEMA,
            "kind": "optimize",
            "spec": {
                "resolution_bits": spec.resolution_bits,
                "sample_rate_hz": spec.sample_rate_hz,
                "full_scale": spec.full_scale,
                "tech": spec.tech.name,
            },
            "winner": result.best.label,
            "rankings": [
                [e.label, e.total_power] for e in result.evaluations
            ],
            "all_feasible": all(e.all_feasible for e in result.evaluations),
            "unique_blocks": result.unique_blocks,
        }
    )


def campaign_payload(records: Iterable[Any]) -> bytes:
    """Canonical JSON summary for a finished campaign job."""
    return canonical_json(
        {
            "schema": WIRE_SCHEMA,
            "kind": "campaign",
            "scenarios": [
                {
                    "label": r.label,
                    "winner": r.winner,
                    "winner_power_w": r.winner_power_w,
                    "fom_j_per_step": r.fom_j_per_step,
                }
                for r in records
            ],
        }
    )


__all__ = [
    "WIRE_SCHEMA",
    "campaign_payload",
    "canonical_json",
    "decode_result",
    "decode_result_b64",
    "decode_task",
    "encode_result",
    "encode_result_b64",
    "encode_task",
    "function_name",
    "lease_body",
    "parse_lease",
    "restricted_loads",
    "synthesis_task_payload",
    "topology_payload",
    "trace_context",
]
