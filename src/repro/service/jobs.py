"""Job model and the content-addressed job store.

A *job* is one optimization request: either a whole campaign grid
(``kind="campaign"``) or a single-spec topology optimization
(``kind="optimize"``).  Requests arrive as JSON; :func:`parse_request`
validates the body, rebuilds the typed objects (grid, spec, config) and
assigns the job its **content key** — the digest that drives request
coalescing.

The key deliberately reuses the PR 4 manifest machinery: a campaign job's
key hashes :func:`~repro.campaign.manifest.grid_digest` and
:func:`~repro.campaign.manifest.config_digest`, an optimize job's key
hashes the spec, the mode and the same config digest.  Because the config
digest covers only *result-relevant* fields (budgets, seeds — the
behavioral Monte-Carlo seed and draw count included — and verification),
two requests that differ solely in execution knobs — backend, worker
count, eval kernel, behavioral kernel — map to the same key and coalesce: the repo-wide
guarantee that results are byte-identical across those knobs is what makes
that safe.

The :class:`JobStore` persists both halves of a job:

* ``jobs/<key>.json`` — the :class:`JobRecord` (request, state, accounting),
  atomically rewritten at every state transition so a killed server
  recovers its queue;
* ``results/<key>/`` — the result artifacts.  Campaign jobs execute into
  ``results/<key>/store/``, a full checkpointed campaign store (the same
  files ``run_campaign(..., store_dir=...)`` writes, checkpoints included),
  which is what makes an interrupted job resumable and the served bytes
  identical to a direct run.  Every finished job also writes
  ``result.json`` — the canonical JSON summary — whose presence is the
  completion marker.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.campaign.grid import CampaignGrid
from repro.campaign.manifest import MANIFEST_FILENAME, config_digest, grid_digest
from repro.campaign.store import (
    META_FILENAME,
    REPORT_FILENAME,
    RESULTS_FILENAME,
)
from repro.engine.backend import BACKENDS
from repro.engine.config import FlowConfig
from repro.engine.persist import atomic_write_bytes, digest
from repro.errors import SpecificationError
from repro.obs.metrics import METRICS_FILENAME, TELEMETRY_MODES
from repro.service.wire import campaign_payload, topology_payload
from repro.specs.adc import AdcSpec
from repro.tech.process import resolve_corner

#: Job kinds the service executes.
JOB_KINDS = ("campaign", "optimize")

#: Job lifecycle states (see docs/service.md).
JOB_STATES = ("queued", "running", "done", "failed", "cancelled")

#: Terminal job states (event streams close after one of these).  Lives
#: here rather than in the scheduler so the HTTP client never depends on
#: the scheduler/executor layer.  (Importing any ``repro`` submodule
#: still runs the package ``__init__``, which loads the flow stack —
#: this keeps the *layering* clean, not the interpreter footprint.)
TERMINAL_STATES = ("done", "failed", "cancelled")

#: FlowConfig fields a request may set.  ``cache_dir`` and ``queue_dir``
#: are host paths and ``broker_url`` is deployment topology — all three are
#: server policy, never client input (a ``backend: broker`` job is pointed
#: at the server's own directory broker by the scheduler).
CONFIG_FIELDS = (
    "backend",
    "max_workers",
    "budget",
    "retarget_budget",
    "seed",
    "retarget_seed",
    "verify_transient",
    "eval_kernel",
    "eval_speculation",
    "dc_kernel",
    "behavioral_draws",
    "behavioral_seed",
    "behavioral_kernel",
    "telemetry",
)

#: Subdirectory names inside the service store root.
JOBS_DIRNAME = "jobs"
RESULTS_DIRNAME = "results"

#: Canonical result-summary artifact (its presence marks completion).
RESULT_FILENAME = "result.json"

#: Characters of the key exposed as the short job id.
JOB_ID_LENGTH = 12


def build_config(
    config_body: dict | None, cache_dir: str | None = None
) -> FlowConfig:
    """Build the job's :class:`FlowConfig` from the request's config dict.

    Unknown fields and unknown backend names fail with a single-line
    :class:`SpecificationError` naming the valid choices; ``cache_dir`` is
    the *server's* persistent block-cache directory (clients cannot point
    the server at host paths).
    """
    body = dict(config_body or {})
    unknown = sorted(set(body) - set(CONFIG_FIELDS))
    if unknown:
        raise SpecificationError(
            f"unknown config field(s) {', '.join(unknown)} "
            f"(valid: {', '.join(CONFIG_FIELDS)})"
        )
    backend = body.get("backend", "serial")
    if backend not in BACKENDS:
        raise SpecificationError(
            f"unknown execution backend {backend!r} "
            f"(valid: {', '.join(sorted(BACKENDS))})"
        )
    kernel = body.get("eval_kernel", "compiled")
    if kernel not in ("compiled", "legacy"):
        raise SpecificationError(
            f"unknown eval kernel {kernel!r} (valid: compiled, legacy)"
        )
    dc_kernel = body.get("dc_kernel", "chained")
    if dc_kernel not in ("chained", "batched"):
        raise SpecificationError(
            f"unknown DC kernel {dc_kernel!r} (valid: chained, batched)"
        )
    behavioral_kernel = body.get("behavioral_kernel", "batch")
    if behavioral_kernel not in ("batch", "legacy"):
        raise SpecificationError(
            f"unknown behavioral kernel {behavioral_kernel!r} "
            "(valid: batch, legacy)"
        )
    telemetry = body.get("telemetry", "metrics")
    if telemetry not in TELEMETRY_MODES:
        raise SpecificationError(
            f"unknown telemetry mode {telemetry!r} "
            f"(valid: {', '.join(TELEMETRY_MODES)})"
        )
    try:
        return FlowConfig(cache_dir=cache_dir, **body)
    except TypeError as exc:
        raise SpecificationError(f"bad config: {exc}") from exc


def build_grid(grid_body: dict) -> CampaignGrid:
    """Build a :class:`CampaignGrid` from a request's grid dict.

    Corners are given as registered tags (see
    :data:`repro.tech.process.CORNERS`) so requests stay pure JSON — the
    server resolves them to technologies.
    """
    if not isinstance(grid_body, dict) or "resolutions" not in grid_body:
        raise SpecificationError(
            "campaign request needs grid.resolutions (a list of bit widths)"
        )
    unknown = sorted(
        set(grid_body)
        - {"resolutions", "sample_rates_hz", "modes", "corners", "full_scale"}
    )
    if unknown:
        raise SpecificationError(
            f"unknown grid field(s) {', '.join(unknown)} (valid: resolutions, "
            "sample_rates_hz, modes, corners, full_scale)"
        )
    corners = tuple(
        (tag, resolve_corner(tag)) for tag in grid_body.get("corners", ["nom"])
    )
    return CampaignGrid(
        resolutions=tuple(int(k) for k in grid_body["resolutions"]),
        sample_rates_hz=tuple(
            float(r) for r in grid_body.get("sample_rates_hz", [40e6])
        ),
        modes=tuple(grid_body.get("modes", ["analytic"])),
        corners=corners,
        full_scale=float(grid_body.get("full_scale", 2.0)),
    )


def build_spec(spec_body: dict) -> tuple[AdcSpec, str]:
    """Build an (AdcSpec, corner tag) pair from an optimize request."""
    if not isinstance(spec_body, dict) or "resolution_bits" not in spec_body:
        raise SpecificationError(
            "optimize request needs spec.resolution_bits (an int)"
        )
    unknown = sorted(
        set(spec_body)
        - {"resolution_bits", "sample_rate_hz", "full_scale", "corner"}
    )
    if unknown:
        raise SpecificationError(
            f"unknown spec field(s) {', '.join(unknown)} (valid: "
            "resolution_bits, sample_rate_hz, full_scale, corner)"
        )
    corner = spec_body.get("corner", "nom")
    spec = AdcSpec(
        resolution_bits=int(spec_body["resolution_bits"]),
        sample_rate_hz=float(spec_body.get("sample_rate_hz", 40e6)),
        full_scale=float(spec_body.get("full_scale", 2.0)),
        tech=resolve_corner(corner),
    )
    return spec, corner


@dataclass(frozen=True)
class JobRequest:
    """One validated submission: typed objects plus the content key."""

    kind: str
    #: Normalized request body (pure JSON; what the record persists).
    body: dict
    #: Content address — identical requests share it (coalescing).
    key: str
    priority: int = 0
    client: str = "anon"
    #: Scenario count (grid size for campaigns, 1 for optimize jobs) —
    #: computed at parse time so admission never re-expands the grid.
    total_scenarios: int = 1

    def grid(self) -> CampaignGrid:
        """The campaign grid (campaign jobs only)."""
        return build_grid(self.body["grid"])

    def spec(self) -> AdcSpec:
        """The system spec (optimize jobs only)."""
        return build_spec(self.body["spec"])[0]

    @property
    def mode(self) -> str:
        """Flow mode of an optimize job."""
        return self.body.get("mode", "analytic")

    def config(self, cache_dir: str | None = None) -> FlowConfig:
        """The job's FlowConfig (server-side cache policy applied)."""
        return build_config(self.body.get("config"), cache_dir=cache_dir)


def parse_request(body: Any) -> JobRequest:
    """Validate a submission body and assign its content key.

    Raises :class:`SpecificationError` with a single-line message for any
    malformed field — the server maps those to HTTP 400.
    """
    if not isinstance(body, dict):
        raise SpecificationError("request body must be a JSON object")
    kind = body.get("kind", "campaign")
    if kind not in JOB_KINDS:
        raise SpecificationError(
            f"unknown job kind {kind!r} (valid: {', '.join(JOB_KINDS)})"
        )
    try:
        priority = int(body.get("priority", 0))
    except (TypeError, ValueError):
        raise SpecificationError("priority must be an integer") from None
    client = str(body.get("client", "anon")) or "anon"
    config = build_config(body.get("config"))

    total_scenarios = 1
    if kind == "campaign":
        grid = build_grid(body.get("grid"))
        total_scenarios = grid.size
        key = digest(
            {
                "kind": "campaign",
                "grid": grid_digest(grid),
                "config": config_digest(config),
            }
        )
        normalized = {
            "kind": kind,
            "grid": {
                "resolutions": list(grid.resolutions),
                "sample_rates_hz": list(grid.sample_rates_hz),
                "modes": list(grid.modes),
                "corners": [tag for tag, _ in grid.corners],
                "full_scale": grid.full_scale,
            },
            "config": dict(body.get("config") or {}),
        }
    else:
        spec, corner = build_spec(body.get("spec"))
        mode = body.get("mode", "analytic")
        if mode not in ("analytic", "synthesis"):
            raise SpecificationError(
                f"unknown flow mode {mode!r} (valid: analytic, synthesis)"
            )
        key = digest(
            {
                "kind": "optimize",
                "spec": spec,
                "mode": mode,
                "config": config_digest(config),
            }
        )
        normalized = {
            "kind": kind,
            "spec": {
                "resolution_bits": spec.resolution_bits,
                "sample_rate_hz": spec.sample_rate_hz,
                "full_scale": spec.full_scale,
                "corner": corner,
            },
            "mode": mode,
            "config": dict(body.get("config") or {}),
        }
    return JobRequest(
        kind=kind,
        body=normalized,
        key=key,
        priority=priority,
        client=client,
        total_scenarios=total_scenarios,
    )


@dataclass
class JobRecord:
    """Durable state of one job (one per content key)."""

    key: str
    kind: str
    #: Normalized request body — enough to re-execute the job.
    request: dict
    state: str = "queued"
    priority: int = 0
    #: Client tag of the *first* submission (fairness bucket).
    client: str = "anon"
    #: Submission order across the store (listing order).
    seq: int = 0
    #: Total submissions that mapped to this key (coalescing counter).
    submissions: int = 1
    #: Times this key actually computed (0 for never-run, 1 normally).
    executions: int = 0
    error: str | None = None
    #: Scenario progress (campaigns; 1/1 for optimize jobs).
    completed_scenarios: int = 0
    total_scenarios: int = 0
    #: Wall-clock bookkeeping (meta only — never in result artifacts).
    submitted_unix: float = field(default_factory=time.time)
    finished_unix: float | None = None

    @property
    def job_id(self) -> str:
        """Short id clients address the job by (key prefix)."""
        return self.key[:JOB_ID_LENGTH]

    def summary(self) -> dict:
        """The API's job object."""
        return {
            "id": self.job_id,
            "key": self.key,
            "kind": self.kind,
            "state": self.state,
            "priority": self.priority,
            "client": self.client,
            "submissions": self.submissions,
            "executions": self.executions,
            "completed_scenarios": self.completed_scenarios,
            "total_scenarios": self.total_scenarios,
            "error": self.error,
        }

    def to_json(self) -> bytes:
        payload = {
            "key": self.key,
            "kind": self.kind,
            "request": self.request,
            "state": self.state,
            "priority": self.priority,
            "client": self.client,
            "seq": self.seq,
            "submissions": self.submissions,
            "executions": self.executions,
            "error": self.error,
            "completed_scenarios": self.completed_scenarios,
            "total_scenarios": self.total_scenarios,
            "submitted_unix": self.submitted_unix,
            "finished_unix": self.finished_unix,
        }
        return (json.dumps(payload, sort_keys=True, indent=2) + "\n").encode("utf-8")

    @classmethod
    def from_json(cls, text: str) -> "JobRecord":
        payload = json.loads(text)
        return cls(**payload)


# ``topology_payload`` / ``campaign_payload`` live in
# :mod:`repro.service.wire` (one wire module for every canonical
# serializer) and are re-exported here for compatibility.


class JobStore:
    """Durable job records + content-addressed result artifacts."""

    def __init__(self, root: str | Path):
        self.root = Path(root)
        self.jobs_dir = self.root / JOBS_DIRNAME
        self.results_dir = self.root / RESULTS_DIRNAME

    # -- records -------------------------------------------------------------

    def save(self, record: JobRecord) -> None:
        """Atomically persist one record (every state transition)."""
        atomic_write_bytes(self.jobs_dir / f"{record.key}.json", record.to_json())

    def load_all(self) -> list[JobRecord]:
        """All persisted records in submission (``seq``) order.

        Unreadable record files are skipped — a half-written record from a
        crash degrades to "job unknown", and the client simply resubmits
        (the content key makes that idempotent).
        """
        records: list[JobRecord] = []
        if not self.jobs_dir.is_dir():
            return records
        for path in sorted(self.jobs_dir.glob("*.json")):
            try:
                records.append(JobRecord.from_json(path.read_text(encoding="utf-8")))
            except (OSError, json.JSONDecodeError, KeyError, TypeError, ValueError):
                continue
        records.sort(key=lambda r: r.seq)
        return records

    # -- results -------------------------------------------------------------

    def result_dir(self, key: str) -> Path:
        """Root of one job's result artifacts."""
        return self.results_dir / key

    def campaign_store_dir(self, key: str) -> Path:
        """The checkpointed campaign store a campaign job executes into."""
        return self.result_dir(key) / "store"

    def write_result(self, key: str, payload: bytes) -> Path:
        """Commit the canonical summary — the completion marker."""
        return atomic_write_bytes(self.result_dir(key) / RESULT_FILENAME, payload)

    def result_ready(self, key: str) -> bool:
        """Whether the job's result artifacts are complete on disk."""
        return (self.result_dir(key) / RESULT_FILENAME).is_file()

    def read_result(self, key: str) -> bytes | None:
        """The canonical summary bytes, or ``None`` before completion."""
        try:
            return (self.result_dir(key) / RESULT_FILENAME).read_bytes()
        except OSError:
            return None

    def artifacts(self, key: str) -> dict[str, Path]:
        """Servable artifact name -> path map (existing files only).

        Names are a fixed whitelist — artifact requests can never traverse
        outside the result directory.
        """
        result_dir = self.result_dir(key)
        store = self.campaign_store_dir(key)
        candidates = {
            RESULT_FILENAME: result_dir / RESULT_FILENAME,
            RESULTS_FILENAME: store / RESULTS_FILENAME,
            REPORT_FILENAME: store / REPORT_FILENAME,
            MANIFEST_FILENAME: store / MANIFEST_FILENAME,
            META_FILENAME: store / META_FILENAME,
            METRICS_FILENAME: store / METRICS_FILENAME,
        }
        return {name: path for name, path in candidates.items() if path.is_file()}


__all__ = [
    "CONFIG_FIELDS",
    "JOB_KINDS",
    "JOB_STATES",
    "RESULT_FILENAME",
    "TERMINAL_STATES",
    "JobRecord",
    "JobRequest",
    "JobStore",
    "build_config",
    "build_grid",
    "build_spec",
    "campaign_payload",
    "parse_request",
    "topology_payload",
]
