"""The asyncio HTTP front end of the optimization service.

Stdlib-only: a hand-rolled HTTP/1.1 layer over ``asyncio.start_server``
(one request per connection, ``Connection: close``), which is exactly
enough for a JSON control API plus **streaming** job-event responses —
``GET /v1/jobs/<id>/events`` holds the connection open and writes one JSON
line per event until the job reaches a terminal state, so clients follow a
campaign scenario-by-scenario without polling.

The API is versioned: every route lives under ``/v1/``.  The original
unversioned paths still answer (identical payloads) but carry a
``Deprecation: true`` response header; new clients must speak ``/v1/``.
The broker routes are ``/v1``-only — they postdate the versioning, so no
deprecated alias exists.

Routes (see ``docs/service.md`` for payloads):

=======  =================================  ========================================
POST     ``/v1/jobs``                       submit (returns the job + coalesced flag)
GET      ``/v1/jobs``                       list all jobs
GET      ``/v1/jobs/<id>``                  one job's state
GET      ``/v1/jobs/<id>/events``           NDJSON event stream until terminal
GET      ``/v1/jobs/<id>/result``           canonical result summary (done jobs)
GET      ``/v1/jobs/<id>/artifacts``        servable artifact names
GET      ``/v1/jobs/<id>/artifacts/<name>`` raw artifact bytes (byte-identical
                                            to a direct ``run_campaign`` store)
POST     ``/v1/jobs/<id>/cancel``           cancel a queued job
POST     ``/v1/drain``                      graceful drain (SIGTERM equivalent)
GET      ``/v1/healthz``, ``/v1/stats``     liveness / queue + coalescing counters
GET      ``/v1/metrics``                    this process's metrics-registry snapshot
POST     ``/v1/broker/tasks``               publish a task envelope
POST     ``/v1/broker/lease``               claim one pending task (worker pull)
POST     ``/v1/broker/ack``                 store a completed task's result
POST     ``/v1/broker/nack``                record a failed execution
POST     ``/v1/broker/heartbeat``           extend a worker's lease
POST     ``/v1/broker/status``              batched ack/lease/failure poll
POST     ``/v1/broker/discard``             drop a stored ack
POST     ``/v1/broker/reclaim``             break stale leases now
GET      ``/v1/broker/results/<key>``       ack payload bytes (404 until acked)
GET      ``/v1/broker/tasks/<key>``         one task's completion/failure state
GET      ``/v1/broker/stats``               broker counters + queue + fleet census
GET      ``/v1/broker/workers``             live worker census records
POST     ``/v1/broker/workers``             register / refresh one worker record
=======  =================================  ========================================

``OptimizationService`` wires the scheduler to the socket and owns the
graceful-shutdown path: SIGTERM (or ``POST /v1/drain``) cancels running
campaigns at their next scenario boundary, requeues them, persists the
queue and exits — a subsequent start resumes it.  ``BackgroundServer``
runs the whole service on a daemon thread with its own event loop, for
tests, benchmarks and notebook use.
"""

from __future__ import annotations

import asyncio
import json
import signal
import threading
import traceback
from pathlib import Path
from typing import Any

from repro.engine.broker import DEFAULT_LEASE_TTL, DirectoryBroker, check_key
from repro.errors import ServiceError, SpecificationError
from repro.service.jobs import JobStore
from repro.service.scheduler import TERMINAL_STATES, JobScheduler

#: Largest accepted request body [bytes].
MAX_BODY_BYTES = 4 * 1024 * 1024

#: Version segment of the current HTTP surface.
API_VERSION = "v1"

#: Subdirectory of the service store holding the task broker's files.
BROKER_DIRNAME = "broker"

_STATUS_TEXT = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    409: "Conflict",
    413: "Payload Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


def _response_head(
    status: int,
    content_type: str,
    length: int | None,
    deprecated: bool = False,
) -> bytes:
    lines = [
        f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'Unknown')}",
        f"Content-Type: {content_type}",
        "Connection: close",
        "Cache-Control: no-store",
    ]
    if deprecated:
        # RFC 9745 deprecation signal: the unversioned alias still works,
        # but clients should move to the /v1/ path.
        lines.append("Deprecation: true")
    if length is not None:
        lines.append(f"Content-Length: {length}")
    return ("\r\n".join(lines) + "\r\n\r\n").encode("ascii")


class _HttpError(Exception):
    """Internal: routed straight to an error response."""

    def __init__(self, status: int, message: str):
        self.status = status
        self.message = message
        super().__init__(message)


class OptimizationService:
    """One serving process: a JobScheduler behind an asyncio HTTP API."""

    def __init__(
        self,
        store_dir: str | Path,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        job_workers: int = 1,
        cache_dir: str | None = None,
        lease_ttl: float = DEFAULT_LEASE_TTL,
    ):
        self.store = JobStore(store_dir)
        #: The server's task broker: one directory inside the store, shared
        #: by the ``/v1/broker/*`` routes (remote workers) and by
        #: ``backend: broker`` jobs (the scheduler publishes there).
        self.broker = DirectoryBroker(
            self.store.root / BROKER_DIRNAME, lease_ttl=lease_ttl
        )
        self.scheduler = JobScheduler(
            self.store,
            job_workers=job_workers,
            cache_dir=cache_dir,
            broker_dir=str(self.broker.root),
        )
        self.host = host
        self.port = port
        self._server: asyncio.AbstractServer | None = None
        self._connections: set[asyncio.Task] = set()
        self._stop_requested = asyncio.Event()

    @property
    def base_url(self) -> str:
        return f"http://{self.host}:{self.port}"

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> None:
        """Recover the queue, start the workers, bind the socket."""
        await self.scheduler.start()
        self._server = await asyncio.start_server(self._handle, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        """Graceful shutdown: drain the scheduler, then close the socket."""
        await self.scheduler.drain()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for task in list(self._connections):
            task.cancel()
        if self._connections:
            await asyncio.gather(*self._connections, return_exceptions=True)

    def request_stop(self) -> None:
        """Signal-handler / drain-route hook: initiate shutdown."""
        self._stop_requested.set()

    async def run(
        self,
        on_ready: Any = None,
        on_drain: Any = None,
    ) -> None:
        """Serve until SIGTERM/SIGINT (or ``POST /drain``), then drain.

        ``on_ready`` / ``on_drain`` are optional zero-argument callables
        (the CLI prints status lines through them) invoked after the
        socket binds and when shutdown begins.
        """
        await self.start()
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(sig, self.request_stop)
            except (NotImplementedError, RuntimeError, ValueError):
                pass  # non-main thread or unsupported platform
        if on_ready is not None:
            on_ready()
        await self._stop_requested.wait()
        if on_drain is not None:
            on_drain()
        await self.stop()

    # -- HTTP plumbing -------------------------------------------------------

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._connections.add(task)
        try:
            try:
                head = await asyncio.wait_for(
                    reader.readuntil(b"\r\n\r\n"), timeout=30.0
                )
            except (
                asyncio.IncompleteReadError,
                asyncio.LimitOverrunError,
                asyncio.TimeoutError,
            ):
                return
            request_line, _, header_block = head.decode("latin-1").partition("\r\n")
            try:
                method, path, _version = request_line.split(" ", 2)
            except ValueError:
                await self._send_error(writer, 400, "malformed request line")
                return
            headers = {}
            for line in header_block.split("\r\n"):
                name, sep, value = line.partition(":")
                if sep:
                    headers[name.strip().lower()] = value.strip()
            try:
                length = int(headers.get("content-length", "0") or "0")
            except ValueError:
                length = -1
            if length < 0:
                await self._send_error(writer, 400, "bad Content-Length")
                return
            if length > MAX_BODY_BYTES:
                await self._send_error(writer, 413, "request body too large")
                return
            try:
                body = (
                    await asyncio.wait_for(reader.readexactly(length), timeout=30.0)
                    if length
                    else b""
                )
            except (asyncio.IncompleteReadError, asyncio.TimeoutError):
                return  # client stalled or hung up mid-body
            parts = [p for p in path.split("?", 1)[0].split("/") if p]
            deprecated = parts[:1] != [API_VERSION]
            if not deprecated:
                parts = parts[1:]
            try:
                await self._route(method, parts, path, body, writer, deprecated)
            except _HttpError as exc:
                await self._send_error(writer, exc.status, exc.message, deprecated)
            except (SpecificationError, ServiceError) as exc:
                await self._send_error(writer, 400, str(exc), deprecated)
            except (ConnectionError, asyncio.CancelledError):
                raise
            except Exception as exc:  # never kill the accept loop
                await self._send_error(
                    writer, 500, f"{type(exc).__name__}: {exc}", deprecated
                )
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            if task is not None:
                self._connections.discard(task)
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _send_json(
        self,
        writer: asyncio.StreamWriter,
        payload: Any,
        status: int = 200,
        deprecated: bool = False,
    ) -> None:
        body = (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
        writer.write(
            _response_head(status, "application/json", len(body), deprecated) + body
        )
        await writer.drain()

    async def _send_bytes(
        self,
        writer: asyncio.StreamWriter,
        payload: bytes,
        content_type: str,
        deprecated: bool = False,
    ) -> None:
        writer.write(
            _response_head(200, content_type, len(payload), deprecated) + payload
        )
        await writer.drain()

    async def _send_error(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        message: str,
        deprecated: bool = False,
    ) -> None:
        try:
            await self._send_json(
                writer, {"error": message}, status=status, deprecated=deprecated
            )
        except (ConnectionError, OSError):
            pass

    # -- routing -------------------------------------------------------------

    def _record(self, job_id: str):
        record = self.scheduler.find(job_id)
        if record is None:
            raise _HttpError(404, f"unknown job {job_id!r}")
        return record

    async def _route(
        self,
        method: str,
        parts: list[str],
        path: str,
        body: bytes,
        writer: asyncio.StreamWriter,
        deprecated: bool,
    ) -> None:
        if method == "GET" and parts == ["healthz"]:
            stats = self.scheduler.stats()
            await self._send_json(
                writer,
                {
                    "status": "draining" if stats["draining"] else "ok",
                    "queued": stats["queued"],
                    "running": stats["running"],
                    "jobs": stats["jobs"],
                },
                deprecated=deprecated,
            )
            return
        if method == "GET" and parts == ["stats"]:
            await self._send_json(writer, self.scheduler.stats(), deprecated=deprecated)
            return
        if method == "GET" and parts == ["metrics"]:
            if deprecated:
                # Postdates versioning, like the broker surface: /v1 only.
                raise _HttpError(404, f"no route for {method} {path} (use /v1)")
            from repro.obs import metrics as obs

            await self._send_json(
                writer,
                {"telemetry": obs.telemetry_mode(), "metrics": obs.snapshot()},
            )
            return
        if method == "POST" and parts == ["drain"]:
            self.request_stop()
            await self._send_json(writer, {"status": "draining"}, deprecated=deprecated)
            return
        if parts and parts[0] == "broker":
            if deprecated:
                # The broker surface postdates versioning: /v1 only, no alias.
                raise _HttpError(404, f"no route for {method} {path} (use /v1)")
            await self._route_broker(method, parts[1:], path, body, writer)
            return
        if parts and parts[0] == "jobs":
            if method == "POST" and len(parts) == 1:
                if self.scheduler.draining:
                    # 503, not 400: the request may be perfectly valid —
                    # retry-after-restart is the right client policy.
                    raise _HttpError(
                        503, "service is draining; resubmit after restart"
                    )
                payload = self._parse_body(body)
                record, coalesced = self.scheduler.submit(payload)
                await self._send_json(
                    writer,
                    {"job": record.summary(), "coalesced": coalesced},
                    deprecated=deprecated,
                )
                return
            if method == "GET" and len(parts) == 1:
                records = sorted(self.scheduler.jobs.values(), key=lambda r: r.seq)
                await self._send_json(
                    writer,
                    {"jobs": [r.summary() for r in records]},
                    deprecated=deprecated,
                )
                return
            if len(parts) >= 2:
                record = self._record(parts[1])
                if method == "GET" and len(parts) == 2:
                    await self._send_json(
                        writer, {"job": record.summary()}, deprecated=deprecated
                    )
                    return
                if method == "POST" and parts[2:] == ["cancel"]:
                    cancelled = self.scheduler.cancel(record.key)
                    await self._send_json(
                        writer,
                        {"job": record.summary(), "cancelled": cancelled},
                        deprecated=deprecated,
                    )
                    return
                if method == "GET" and parts[2:] == ["events"]:
                    await self._stream_events(record, writer, deprecated)
                    return
                if method == "GET" and parts[2:] == ["result"]:
                    payload = self.store.read_result(record.key)
                    if payload is None:
                        raise _HttpError(
                            409, f"job {record.job_id} is {record.state}, not done"
                        )
                    await self._send_bytes(
                        writer, payload, "application/json", deprecated
                    )
                    return
                if method == "GET" and parts[2:] == ["artifacts"]:
                    await self._send_json(
                        writer,
                        {"artifacts": sorted(self.store.artifacts(record.key))},
                        deprecated=deprecated,
                    )
                    return
                if method == "GET" and len(parts) == 4 and parts[2] == "artifacts":
                    artifacts = self.store.artifacts(record.key)
                    artifact = artifacts.get(parts[3])
                    if artifact is None:
                        raise _HttpError(
                            404,
                            f"no artifact {parts[3]!r} for job {record.job_id} "
                            f"(available: {', '.join(sorted(artifacts)) or 'none'})",
                        )
                    # Read off-loop: a multi-MB results.jsonl must not
                    # stall every other connection's event stream.
                    payload = await asyncio.get_running_loop().run_in_executor(
                        None, artifact.read_bytes
                    )
                    await self._send_bytes(
                        writer, payload, "application/octet-stream", deprecated
                    )
                    return
        raise _HttpError(404, f"no route for {method} {path}")

    # -- the broker surface ----------------------------------------------------

    @staticmethod
    def _broker_key(value: Any) -> str:
        try:
            return check_key(value)
        except ValueError as exc:
            raise _HttpError(400, str(exc)) from exc

    async def _route_broker(
        self,
        method: str,
        parts: list[str],
        path: str,
        body: bytes,
        writer: asyncio.StreamWriter,
    ) -> None:
        """``/v1/broker/*``: the :class:`DirectoryBroker` over HTTP.

        Every broker call touches the filesystem, so each runs off-loop in
        the default executor — a slow disk must not stall event streams.
        """
        loop = asyncio.get_running_loop()

        async def offload(fn, *args):
            return await loop.run_in_executor(None, fn, *args)

        if method == "GET" and parts == ["stats"]:
            await self._send_json(writer, await offload(self.broker.stats))
            return
        if method == "GET" and parts == ["workers"]:
            await self._send_json(
                writer, {"workers": await offload(self.broker.workers)}
            )
            return
        if method == "GET" and len(parts) == 2 and parts[0] == "results":
            payload = await offload(self.broker.result, self._broker_key(parts[1]))
            if payload is None:
                raise _HttpError(404, f"no result for task {parts[1]}")
            await self._send_bytes(writer, payload, "application/octet-stream")
            return
        if method == "GET" and len(parts) == 2 and parts[0] == "tasks":
            key = self._broker_key(parts[1])
            acked = await offload(lambda: self.broker.result(key) is not None)
            failure = await offload(self.broker.failure, key)
            await self._send_json(writer, {"acked": acked, "failure": failure})
            return
        if method != "POST":
            raise _HttpError(404, f"no route for {method} {path}")
        payload = self._parse_body(body) if body else {}
        if not isinstance(payload, dict):
            raise _HttpError(400, "broker request body must be a JSON object")
        if parts == ["tasks"]:
            envelope = payload.get("envelope")
            if not isinstance(envelope, dict):
                raise _HttpError(400, "task submission needs an envelope object")
            submitted = await offload(
                self.broker.submit, self._broker_key(payload.get("key")), envelope
            )
            await self._send_json(writer, {"submitted": submitted})
            return
        if parts == ["lease"]:
            worker = str(payload.get("worker") or "anon")
            leased = await offload(self.broker.lease, worker)
            task = (
                None
                if leased is None
                else {"key": leased[0], "envelope": leased[1]}
            )
            await self._send_json(writer, {"task": task})
            return
        if parts == ["ack"]:
            from repro.service import wire

            key = self._broker_key(payload.get("key"))
            try:
                result = wire.decode_result_b64(str(payload.get("result_b64", "")))
            except ValueError as exc:
                raise _HttpError(400, str(exc)) from exc
            worker = payload.get("worker")
            await offload(self.broker.ack, key, result, worker)
            await self._send_json(writer, {"ok": True})
            return
        if parts == ["nack"]:
            key = self._broker_key(payload.get("key"))
            error = payload.get("error")
            retries = await offload(
                self.broker.nack,
                key,
                payload.get("worker"),
                None if error is None else str(error),
            )
            await self._send_json(writer, {"retries": retries})
            return
        if parts == ["heartbeat"]:
            key = self._broker_key(payload.get("key"))
            worker = str(payload.get("worker") or "anon")
            ok = await offload(self.broker.heartbeat, key, worker)
            await self._send_json(writer, {"ok": ok})
            return
        if parts == ["status"]:
            keys = payload.get("keys")
            if not isinstance(keys, list) or len(keys) > 1000:
                raise _HttpError(
                    400, "status poll needs a keys list (at most 1000 keys)"
                )
            checked = [self._broker_key(key) for key in keys]
            statuses = await offload(self.broker.statuses, checked)
            await self._send_json(writer, {"statuses": statuses})
            return
        if parts == ["discard"]:
            await offload(self.broker.discard, self._broker_key(payload.get("key")))
            await self._send_json(writer, {"ok": True})
            return
        if parts == ["reclaim"]:
            reclaimed = await offload(self.broker.reclaim)
            await self._send_json(writer, {"reclaimed": reclaimed})
            return
        if parts == ["workers"]:
            record = payload.get("record")
            if not isinstance(record, dict):
                raise _HttpError(400, "worker registration needs a record object")
            try:
                await offload(self.broker.register_worker, record)
            except ValueError as exc:
                raise _HttpError(400, str(exc)) from exc
            await self._send_json(writer, {"ok": True})
            return
        raise _HttpError(404, f"no route for {method} {path}")

    @staticmethod
    def _parse_body(body: bytes) -> Any:
        try:
            return json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise _HttpError(400, f"request body is not valid JSON ({exc})") from exc

    async def _stream_events(
        self, record, writer: asyncio.StreamWriter, deprecated: bool = False
    ) -> None:
        """NDJSON event stream: snapshot first, then live until terminal."""
        queue = self.scheduler.subscribe(record.key)
        try:
            writer.write(
                _response_head(200, "application/x-ndjson", None, deprecated)
            )
            await writer.drain()
            while True:
                event = await queue.get()
                writer.write(
                    (json.dumps(event, sort_keys=True) + "\n").encode("utf-8")
                )
                await writer.drain()
                if event.get("state") in TERMINAL_STATES:
                    return
        finally:
            self.scheduler.unsubscribe(record.key, queue)


class BackgroundServer:
    """An :class:`OptimizationService` on a daemon thread (tests, benches).

    The thread runs its own event loop; :meth:`stop` requests a graceful
    drain and joins.  Usable as a context manager::

        with BackgroundServer(store_dir=tmp) as server:
            ServiceClient(server.base_url).submit(...)
    """

    def __init__(
        self,
        store_dir: str | Path,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        job_workers: int = 1,
        cache_dir: str | None = None,
        lease_ttl: float = DEFAULT_LEASE_TTL,
        startup_timeout: float = 30.0,
    ):
        self.service = OptimizationService(
            store_dir,
            host=host,
            port=port,
            job_workers=job_workers,
            cache_dir=cache_dir,
            lease_ttl=lease_ttl,
        )
        self._ready = threading.Event()
        self._loop: asyncio.AbstractEventLoop | None = None
        self._startup_error: BaseException | None = None
        self._thread = threading.Thread(
            target=self._run, name="repro-service", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(startup_timeout):
            raise ServiceError("optimization service failed to start in time")
        if self._startup_error is not None:
            raise ServiceError(
                f"optimization service failed to start: {self._startup_error}"
            )

    def _run(self) -> None:
        async def main() -> None:
            self._loop = asyncio.get_running_loop()
            try:
                await self.service.start()
            except BaseException as exc:
                self._startup_error = exc
                self._ready.set()
                raise
            self._ready.set()
            await self.service._stop_requested.wait()
            await self.service.stop()

        try:
            asyncio.run(main())
        except BaseException:
            # A post-startup crash must not vanish silently: clients would
            # only ever see opaque "cannot reach service" timeouts.
            if self._ready.is_set():
                traceback.print_exc()
            else:
                self._ready.set()

    @property
    def base_url(self) -> str:
        return self.service.base_url

    def stop(self) -> None:
        """Drain gracefully and join the server thread."""
        if self._loop is not None and self._thread.is_alive():
            self._loop.call_soon_threadsafe(self.service.request_stop)
        self._thread.join(timeout=60.0)

    def __enter__(self) -> "BackgroundServer":
        return self

    def __exit__(self, *exc: object) -> None:
        self.stop()


__all__ = [
    "API_VERSION",
    "BROKER_DIRNAME",
    "BackgroundServer",
    "MAX_BODY_BYTES",
    "OptimizationService",
]
