"""Async optimization service: long-running job orchestration over HTTP.

The service layer turns the batch reproducer into a serving system: a
long-running asyncio process accepts topology-optimization and campaign
jobs over a JSON HTTP API, schedules them through the existing
:mod:`repro.engine` backends (the blocking flow runs on executor threads),
and streams progress events back to clients.

Three properties define it:

* **Request coalescing** — jobs are content-addressed with the PR 4
  manifest digests (grid digest + result-relevant config digest), so N
  identical submissions — concurrent or repeated — collapse onto *one*
  computation, and every client receives byte-identical results
  (:mod:`repro.service.jobs`).
* **Fair scheduling** — an asyncio :class:`~repro.service.scheduler.JobScheduler`
  drains priority buckets lowest-first and round-robins between clients
  inside a bucket, so one flooding client cannot starve another
  (:mod:`repro.service.scheduler`).
* **Durable lifecycle** — job records and results live on disk; campaign
  jobs execute into per-job checkpointed campaign stores, so a SIGTERM'd
  server drains at a scenario boundary and a restarted one resumes its
  queue without recomputing anything that finished
  (:mod:`repro.service.server`).

Quickstart::

    repro-adc serve --store svc &
    repro-adc submit --bits 10-12 --watch
    repro-adc jobs

or programmatically::

    from repro.service import BackgroundServer, ServiceClient

    with BackgroundServer(store_dir="svc") as server:
        client = ServiceClient(server.base_url)
        job = client.submit({"kind": "campaign",
                             "grid": {"resolutions": [10, 11]}})
        client.wait(job["job"]["id"])

See ``docs/service.md`` for the API, the job lifecycle and the coalescing
semantics.
"""

from typing import Any

__all__ = [
    "BackgroundServer",
    "JobRecord",
    "JobRequest",
    "JobScheduler",
    "JobStore",
    "OptimizationService",
    "ServiceClient",
    "campaign_payload",
    "parse_request",
    "topology_payload",
    "wire",
]

#: Public name -> defining submodule.  Resolved lazily (PEP 562) so
#: importing one piece (say ``ServiceClient``) does not also construct
#: the scheduler/server modules and their executor machinery.  (The
#: ``repro`` package ``__init__`` itself still imports the flow stack,
#: so this is about layering, not interpreter footprint.)
_EXPORTS = {
    "BackgroundServer": "repro.service.server",
    "OptimizationService": "repro.service.server",
    "JobScheduler": "repro.service.scheduler",
    "JobRecord": "repro.service.jobs",
    "JobRequest": "repro.service.jobs",
    "JobStore": "repro.service.jobs",
    "parse_request": "repro.service.jobs",
    "campaign_payload": "repro.service.wire",
    "topology_payload": "repro.service.wire",
    "ServiceClient": "repro.service.client",
}


def __getattr__(name: str) -> Any:
    import importlib

    if name == "wire":  # the wire module itself is part of the API
        return importlib.import_module("repro.service.wire")
    try:
        module_name = _EXPORTS[name]
    except KeyError:
        raise AttributeError(
            f"module 'repro.service' has no attribute {name!r}"
        ) from None
    return getattr(importlib.import_module(module_name), name)


def __dir__() -> list[str]:
    return sorted(__all__)
