"""Blocking client for the optimization service (stdlib ``http.client``).

``ServiceClient`` is the library the CLI (``repro-adc submit`` /
``repro-adc jobs``) and the benchmarks talk through.  Control calls are
plain request/response JSON; :meth:`ServiceClient.watch` consumes the
server's streaming NDJSON event endpoint line-by-line, so a caller follows
a running campaign scenario-by-scenario without polling::

    client = ServiceClient("http://127.0.0.1:8765")
    job = client.submit({"kind": "campaign", "grid": {"resolutions": [10, 11]}})
    for event in client.watch(job["job"]["id"]):
        print(event["event"], event.get("label"))

Transport failures and HTTP error payloads both surface as
:class:`~repro.errors.ServiceError` with the server's single-line message,
so CLI users see ``repro-adc: error: ...`` instead of a traceback.
"""

from __future__ import annotations

import json
import time
from http.client import HTTPConnection, HTTPException
from pathlib import Path
from typing import Any, Iterator
from urllib.parse import urlsplit

from repro.errors import ServiceError
from repro.service.jobs import TERMINAL_STATES


class ServiceClient:
    """Talk to one service instance at ``base_url``."""

    def __init__(self, base_url: str, timeout: float = 600.0):
        split = urlsplit(base_url if "//" in base_url else f"http://{base_url}")
        if split.scheme not in ("", "http"):
            raise ServiceError(
                f"unsupported service URL scheme {split.scheme!r} (use http://)"
            )
        if not split.hostname:
            raise ServiceError(f"cannot parse service URL {base_url!r}")
        self.host = split.hostname
        self.port = split.port or 80
        self.timeout = timeout
        self.base_url = f"http://{self.host}:{self.port}"

    # -- transport -----------------------------------------------------------

    def _connect(self, timeout: float | None = None) -> HTTPConnection:
        return HTTPConnection(
            self.host, self.port, timeout=self.timeout if timeout is None else timeout
        )

    def _request_bytes(
        self, method: str, path: str, body: Any = None, timeout: float | None = None
    ) -> tuple[int, bytes]:
        connection = self._connect(timeout)
        try:
            payload = None
            headers = {}
            if body is not None:
                payload = json.dumps(body).encode("utf-8")
                headers["Content-Type"] = "application/json"
            connection.request(method, path, body=payload, headers=headers)
            response = connection.getresponse()
            return response.status, response.read()
        except (OSError, HTTPException) as exc:
            raise ServiceError(
                f"cannot reach optimization service at {self.base_url} ({exc})"
            ) from exc
        finally:
            connection.close()

    def _request(
        self, method: str, path: str, body: Any = None, timeout: float | None = None
    ) -> Any:
        status, data = self._request_bytes(method, path, body, timeout)
        if status >= 400:
            raise ServiceError(self._error_message(status, data))
        try:
            return json.loads(data) if data else {}
        except json.JSONDecodeError as exc:
            raise ServiceError(
                f"malformed response from {self.base_url} ({exc})"
            ) from exc

    @staticmethod
    def _error_message(status: int, data: bytes) -> str:
        try:
            return str(json.loads(data)["error"])
        except (json.JSONDecodeError, KeyError, TypeError, UnicodeDecodeError):
            return f"service returned HTTP {status}"

    # -- control API ---------------------------------------------------------

    def submit(self, request: dict) -> dict:
        """Submit a job body; returns ``{"job": ..., "coalesced": ...}``."""
        return self._request("POST", "/v1/jobs", body=request)

    def jobs(self) -> list[dict]:
        """All jobs known to the server, in submission order."""
        return self._request("GET", "/v1/jobs")["jobs"]

    def job(self, job_id: str) -> dict:
        """One job's current state."""
        return self._request("GET", f"/v1/jobs/{job_id}")["job"]

    def cancel(self, job_id: str) -> dict:
        """Cancel a queued job."""
        return self._request("POST", f"/v1/jobs/{job_id}/cancel")

    def result(self, job_id: str) -> dict:
        """The canonical result summary of a done job."""
        status, data = self._request_bytes("GET", f"/v1/jobs/{job_id}/result")
        if status >= 400:
            raise ServiceError(self._error_message(status, data))
        return json.loads(data)

    def artifacts(self, job_id: str) -> list[str]:
        """Names of the job's servable artifacts."""
        return self._request("GET", f"/v1/jobs/{job_id}/artifacts")["artifacts"]

    def artifact(self, job_id: str, name: str) -> bytes:
        """Raw artifact bytes (e.g. ``results.jsonl`` — byte-identical to a
        direct ``run_campaign`` store)."""
        status, data = self._request_bytes("GET", f"/v1/jobs/{job_id}/artifacts/{name}")
        if status >= 400:
            raise ServiceError(self._error_message(status, data))
        return data

    def download(self, job_id: str, dest_dir: str | Path) -> dict[str, Path]:
        """Fetch every artifact into ``dest_dir``; returns name -> path."""
        directory = Path(dest_dir)
        directory.mkdir(parents=True, exist_ok=True)
        paths: dict[str, Path] = {}
        for name in self.artifacts(job_id):
            path = directory / name
            path.write_bytes(self.artifact(job_id, name))
            paths[name] = path
        return paths

    def stats(self) -> dict:
        """Scheduler counters (queue depth, coalescing, executions)."""
        return self._request("GET", "/v1/stats")

    def health(self) -> dict:
        """Liveness summary."""
        return self._request("GET", "/v1/healthz")

    def drain(self) -> dict:
        """Ask the server to drain gracefully (it exits afterwards)."""
        return self._request("POST", "/v1/drain")

    # -- streaming -----------------------------------------------------------

    def watch(self, job_id: str, timeout: float | None = None) -> Iterator[dict]:
        """Stream a job's events (one dict per line) until terminal.

        The first event is a state snapshot, so watching a finished job
        yields exactly one terminal event.  The stream ends early (without
        a terminal event) if the server drains mid-job, the connection is
        severed, or ``timeout`` (a socket timeout for this stream only;
        defaults to the client timeout) elapses between events — callers
        that must outlive those should loop :meth:`wait`.
        """
        connection = HTTPConnection(
            self.host,
            self.port,
            timeout=self.timeout if timeout is None else timeout,
        )
        try:
            try:
                connection.request("GET", f"/v1/jobs/{job_id}/events")
                response = connection.getresponse()
            except (OSError, HTTPException) as exc:
                raise ServiceError(
                    f"cannot reach optimization service at {self.base_url} ({exc})"
                ) from exc
            if response.status >= 400:
                raise ServiceError(
                    self._error_message(response.status, response.read())
                )
            while True:
                try:
                    line = response.readline()
                except (OSError, HTTPException):
                    return  # stream severed (drain/kill/timeout): end
                if not line:
                    return
                line = line.strip()
                if not line:
                    continue
                try:
                    yield json.loads(line)
                except json.JSONDecodeError:
                    return  # truncated final line from a severed stream
        finally:
            connection.close()

    #: How long ``wait`` tolerates an unreachable server (a drain-restart
    #: window) before giving up, when no explicit timeout bounds it.
    RESTART_GRACE_S = 30.0

    def wait(self, job_id: str, timeout: float | None = None) -> dict:
        """Block until the job is terminal; returns its final summary.

        Survives severed event streams *and* brief unreachability (the
        server drained on SIGTERM and is restarting — the lifecycle
        docs/service.md advertises) by re-polling with a grace window;
        raises :class:`ServiceError` when ``timeout`` elapses or the
        service stays down past :attr:`RESTART_GRACE_S`.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        unreachable_since: float | None = None
        while True:
            remaining = None
            if deadline is not None:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise ServiceError(f"timed out waiting for job {job_id}")
            try:
                # The poll shares the remaining budget too — a stalled
                # server must not hold this call for the full client
                # timeout.
                job = self._request(
                    "GET", f"/v1/jobs/{job_id}", timeout=remaining
                )["job"]
            except ServiceError:
                now = time.monotonic()
                if unreachable_since is None:
                    unreachable_since = now
                if now - unreachable_since > self.RESTART_GRACE_S:
                    raise
                time.sleep(0.5)
                continue
            unreachable_since = None
            if job["state"] in TERMINAL_STATES:
                return job
            # Cap the stream's socket timeout at the remaining budget so a
            # quiet stream cannot overshoot the caller's deadline.
            last_state = None
            try:
                for event in self.watch(job_id, timeout=remaining):
                    if event.get("state") in TERMINAL_STATES:
                        return self.job(job_id)
                    last_state = event.get("state")
                    if deadline is not None and time.monotonic() > deadline:
                        break
            except ServiceError:
                pass  # stream refused mid-restart: the re-poll's grace
                # window decides when to give up
            if deadline is not None and time.monotonic() > deadline:
                raise ServiceError(
                    f"timed out waiting for job {job_id} "
                    f"(last state {last_state!r})"
                )
            time.sleep(0.1)


__all__ = ["ServiceClient"]
