"""Trace spans: nested monotonic timings exported as JSONL files.

``span("synth.wave", wave=1)`` opens a span as a context manager (or
decorates a function); on exit one JSON line is appended to this
process's trace file — ``<trace_dir>/<host>-<pid>.jsonl`` — recording the
span name, ids, wall-clock start, monotonic duration and attributes.
Spans nest per thread: the innermost open span is the parent of the next
one opened on that thread, so a scenario span encloses its wave spans
which enclose their synthesis-job spans.

**Propagation.**  Within a process, nesting is automatic (a per-thread
stack).  Across processes, :func:`current_context` captures the open
span's ``{"trace", "span"}`` ids; the broker backend rides that context
on task envelopes (:func:`repro.service.wire.encode_task`) and a
``repro-adc worker`` adopts it as the parent of its execution span — so
a remote task's span joins the submitting campaign's trace.  The context
is carried *next to* the task payload, never inside it: task keys and
ack digests are computed from the payload alone, so tracing cannot
perturb content addressing or replay.

**Enablement.**  The tracer is off unless a sink directory is configured
— explicitly via :func:`configure_tracing` (the campaign runner points
it at ``<store>/traces/`` when ``FlowConfig.telemetry == "trace"``) or
inherited through the :data:`TRACE_ENV` environment variable (how pool
worker processes join the parent's trace directory).  Disabled spans
cost one attribute check and allocate nothing that outlives the call.
"""

from __future__ import annotations

import functools
import json
import os
import socket
import threading
import time
import uuid
from pathlib import Path

#: Campaign-store subdirectory holding per-process trace files.
TRACE_DIRNAME = "traces"

#: Environment variable carrying the sink directory into worker processes.
TRACE_ENV = "REPRO_OBS_TRACE_DIR"


def _new_id() -> str:
    return uuid.uuid4().hex[:16]


class Tracer:
    """Per-process span recorder with a per-thread nesting stack."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._tls = threading.local()
        self._dir: str | None = None
        self._handle = None
        self._handle_pid: int | None = None
        self._host = socket.gethostname()
        #: Optional worker identity stamped on every emitted span.
        self.worker: str | None = None

    # -- configuration ---------------------------------------------------

    def configure(self, trace_dir: str | Path | None) -> None:
        """Point the tracer at a sink directory (``None`` disables it)."""
        with self._lock:
            self._dir = None if trace_dir is None else str(trace_dir)
            if self._handle is not None:
                try:
                    self._handle.close()
                except OSError:
                    pass
            self._handle = None
            self._handle_pid = None

    def sink_dir(self) -> str | None:
        """The effective sink: explicit configuration, else the env var."""
        if self._dir is not None:
            return self._dir
        return os.environ.get(TRACE_ENV) or None

    @property
    def enabled(self) -> bool:
        return self.sink_dir() is not None

    # -- the per-thread span stack ---------------------------------------

    def _stack(self) -> list:
        stack = getattr(self._tls, "stack", None)
        if stack is None:
            stack = []
            self._tls.stack = stack
        return stack

    def current_context(self) -> dict | None:
        """``{"trace", "span"}`` of the innermost open span, or ``None``."""
        stack = getattr(self._tls, "stack", None)
        if not stack:
            return None
        trace_id, span_id = stack[-1]
        return {"trace": trace_id, "span": span_id}

    # -- emission --------------------------------------------------------

    def _emit(self, record: dict) -> None:
        sink = self.sink_dir()
        if sink is None:
            return
        line = json.dumps(record, sort_keys=True) + "\n"
        try:
            with self._lock:
                # Re-open after configure() or a fork: each process must
                # own its file, or interleaved writes would shear lines.
                if self._handle is None or self._handle_pid != os.getpid():
                    Path(sink).mkdir(parents=True, exist_ok=True)
                    path = Path(sink) / f"{self._host}-{os.getpid()}.jsonl"
                    self._handle = open(path, "a", encoding="utf-8")
                    self._handle_pid = os.getpid()
                self._handle.write(line)
                self._handle.flush()
        except OSError:
            # Tracing must never fail the work it observes.
            pass


class _Span:
    """One ``span(...)`` invocation: context manager *and* decorator."""

    __slots__ = (
        "_tracer", "name", "attrs", "_parent",
        "_ids", "_start_unix", "_t0",
    )

    def __init__(self, tracer: Tracer, name: str, parent: dict | None, attrs: dict):
        self._tracer = tracer
        self.name = name
        self.attrs = attrs
        self._parent = parent
        self._ids = None

    def __enter__(self) -> "_Span":
        tracer = self._tracer
        if not tracer.enabled:
            return self
        stack = tracer._stack()
        if self._parent is not None:
            trace_id = str(self._parent.get("trace") or _new_id())
            parent_id = self._parent.get("span")
            parent_id = str(parent_id) if parent_id else None
        elif stack:
            trace_id, parent_id = stack[-1][0], stack[-1][1]
        else:
            trace_id, parent_id = _new_id(), None
        span_id = _new_id()
        self._ids = (trace_id, span_id, parent_id)
        stack.append((trace_id, span_id))
        self._start_unix = time.time()
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if self._ids is None:
            return False
        duration = time.perf_counter() - self._t0
        tracer = self._tracer
        stack = tracer._stack()
        trace_id, span_id, parent_id = self._ids
        self._ids = None
        if stack and stack[-1] == (trace_id, span_id):
            stack.pop()
        record = {
            "name": self.name,
            "trace": trace_id,
            "span": span_id,
            "parent": parent_id,
            "start_unix": self._start_unix,
            "duration_s": duration,
            "pid": os.getpid(),
            "thread": threading.get_ident(),
            "host": tracer._host,
        }
        if tracer.worker is not None:
            record["worker"] = tracer.worker
        if self.attrs:
            record["attrs"] = self.attrs
        if exc_type is not None:
            record["error"] = exc_type.__name__
        tracer._emit(record)
        return False

    def __call__(self, fn):
        """Decorator form: each call runs inside a fresh span."""

        @functools.wraps(fn)
        def wrapped(*args, **kwargs):
            with _Span(self._tracer, self.name, self._parent, self.attrs):
                return fn(*args, **kwargs)

        return wrapped


#: The process-global tracer every ``span()`` call records into.
TRACER = Tracer()


def span(name: str, parent: dict | None = None, **attrs) -> _Span:
    """Open a named span on the global tracer.

    Usable as a context manager (``with span("synth.wave", wave=1):``) or
    a decorator (``@span("synth.job")``).  ``parent`` accepts a context
    captured by :func:`current_context` — possibly in another process —
    to stitch distributed spans into one trace.
    """
    return _Span(TRACER, name, parent, attrs)


def current_context() -> dict | None:
    """The open span's propagation context for this thread, or ``None``."""
    return TRACER.current_context()


def configure_tracing(trace_dir: str | Path | None) -> None:
    """Enable (or, with ``None``, disable) span export for this process."""
    TRACER.configure(trace_dir)


def trace_enabled() -> bool:
    """Whether spans are currently being exported."""
    return TRACER.enabled


__all__ = [
    "TRACE_DIRNAME",
    "TRACE_ENV",
    "TRACER",
    "Tracer",
    "configure_tracing",
    "current_context",
    "span",
    "trace_enabled",
]
