"""Replay exported traces into a flame-style text report.

``repro-adc trace <store>`` reads every ``<store>/traces/*.jsonl`` file
(one per process that traced — the campaign runner plus any pool
workers), stitches spans into parent/child trees by their recorded ids,
and renders each trace as an indented tree with wall-clock durations:

    trace 3f2a...  2 processes, 14 spans
      campaign.run                              12.031s
        campaign.scenario                        5.902s  label=13bit-40MHz
          synth.wave                             4.411s  wave=0 jobs=3
            synth.job                            1.520s  key=(4, 13)

Spans whose parent never flushed (a killed worker) are promoted to roots
of their trace rather than dropped — a partial trace still renders.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.obs.trace import TRACE_DIRNAME


def read_spans(store_dir: str | Path) -> list[dict]:
    """Every parseable span record under ``<store_dir>/traces/``.

    Accepts either a results store (containing ``traces/``) or the trace
    directory itself.  Torn or malformed lines are skipped.
    """
    root = Path(store_dir)
    trace_dir = root / TRACE_DIRNAME
    if not trace_dir.is_dir():
        trace_dir = root
    spans: list[dict] = []
    try:
        paths = sorted(trace_dir.glob("*.jsonl"))
    except OSError:
        return spans
    for path in paths:
        try:
            text = path.read_text(encoding="utf-8")
        except OSError:
            continue
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue
            if isinstance(record, dict) and "name" in record and "span" in record:
                spans.append(record)
    return spans


def _format_attrs(span: dict) -> str:
    attrs = span.get("attrs")
    if not isinstance(attrs, dict) or not attrs:
        return ""
    body = " ".join(f"{k}={attrs[k]}" for k in sorted(attrs))
    return f"  {body}"


def render_trace(spans: list[dict]) -> str:
    """The flame-style text report for a list of span records."""
    if not spans:
        return "no spans recorded (run with --telemetry trace)\n"

    by_trace: dict[str, list[dict]] = {}
    for span in spans:
        by_trace.setdefault(str(span.get("trace", "?")), []).append(span)

    lines: list[str] = []
    processes = {(s.get("host"), s.get("pid")) for s in spans}
    lines.append(
        f"trace report: {len(spans)} span(s), {len(by_trace)} trace(s), "
        f"{len(processes)} process(es)"
    )
    name_width = max(
        (len(str(s.get("name", ""))) + 2 * _depth_bound for s in spans),
        default=24,
    )

    for trace_id in sorted(by_trace, key=lambda t: _trace_start(by_trace[t])):
        members = by_trace[trace_id]
        ids = {str(s["span"]) for s in members}
        children: dict[str | None, list[dict]] = {}
        roots: list[dict] = []
        for span in members:
            parent = span.get("parent")
            if parent is not None and str(parent) in ids:
                children.setdefault(str(parent), []).append(span)
            else:
                roots.append(span)  # true root, or an orphan: still render
        for bucket in children.values():
            bucket.sort(key=_span_start)
        roots.sort(key=_span_start)

        trace_processes = {(s.get("host"), s.get("pid")) for s in members}
        lines.append("")
        lines.append(
            f"trace {trace_id}  {len(trace_processes)} process(es), "
            f"{len(members)} span(s)"
        )

        def walk(span: dict, depth: int) -> None:
            indent = "  " * (depth + 1)
            name = f"{indent}{span.get('name', '?')}"
            duration = span.get("duration_s", 0.0)
            try:
                duration = float(duration)
            except (TypeError, ValueError):
                duration = 0.0
            lines.append(
                f"{name:<{name_width}} {duration:>9.3f}s{_format_attrs(span)}"
            )
            for child in children.get(str(span["span"]), ()):  # noqa: B023
                walk(child, min(depth + 1, _depth_bound))

        for root in roots:
            walk(root, 0)

    return "\n".join(lines) + "\n"


#: Indentation cap — deeper nesting is flattened, never dropped.
_depth_bound = 12


def _span_start(span: dict) -> float:
    try:
        return float(span.get("start_unix", 0.0))
    except (TypeError, ValueError):
        return 0.0


def _trace_start(members: list[dict]) -> float:
    return min((_span_start(s) for s in members), default=0.0)


__all__ = ["read_spans", "render_trace"]
