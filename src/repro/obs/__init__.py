"""Unified observability: metrics registry, trace spans, fleet liveness.

``repro.obs`` is the one telemetry substrate every layer reports into —
the compiled-kernel counters (``TEMPLATE_STATS`` / ``NEWTON_STATS`` are
thin views over it), block-cache accounting, scheduler waves, campaign
scenarios, broker lease lifecycle and service job coalescing.  Three
pillars, all stdlib-only:

* **metrics** (:mod:`repro.obs.metrics`) — a process-global
  :class:`MetricsRegistry` of named counters/gauges/histograms with
  ``snapshot()`` / ``merge()`` / ``reset()`` semantics, so pool, queue and
  broker workers can each accumulate locally and a campaign can fold every
  snapshot into one aggregated ``metrics.json`` in its results store;
* **traces** (:mod:`repro.obs.trace`) — a ``span("synth.wave", **attrs)``
  context-manager/decorator with monotonic timings and parent/child
  nesting, exported as JSONL files under ``<store>/traces/`` and rendered
  into a flame-style text report by ``repro-adc trace <store>``
  (:mod:`repro.obs.report`);
* **fleet liveness** — worker census records (registration on first
  lease, heartbeat metadata) kept by the broker layer
  (:mod:`repro.engine.broker`) and surfaced through ``/v1/broker/stats``,
  ``/v1/metrics`` and ``repro-adc status``.

Telemetry is an *execution* knob (``FlowConfig.telemetry``: ``"off"`` /
``"metrics"`` / ``"trace"``): it never enters manifests, fingerprints or
task payloads, and campaign records are byte-identical whichever mode ran
them — only the side artifacts (``metrics.json``, ``traces/``) appear or
disappear.
"""

from repro.obs.metrics import (
    METRICS_DIRNAME,
    REGISTRY,
    SPOOL_ENV,
    TELEMETRY_MODES,
    CounterView,
    MetricsRegistry,
    aggregate_snapshots,
    counter,
    gauge,
    merge_snapshot,
    metrics_enabled,
    observe,
    read_spool_snapshots,
    reset_all,
    set_mode,
    snapshot,
    telemetry_mode,
    write_spool_snapshot,
)
from repro.obs.report import read_spans, render_trace
from repro.obs.trace import (
    TRACE_DIRNAME,
    TRACE_ENV,
    TRACER,
    configure_tracing,
    current_context,
    span,
    trace_enabled,
)

__all__ = [
    "METRICS_DIRNAME",
    "REGISTRY",
    "SPOOL_ENV",
    "TELEMETRY_MODES",
    "TRACER",
    "TRACE_DIRNAME",
    "TRACE_ENV",
    "CounterView",
    "MetricsRegistry",
    "aggregate_snapshots",
    "configure_tracing",
    "counter",
    "current_context",
    "gauge",
    "merge_snapshot",
    "metrics_enabled",
    "observe",
    "read_spans",
    "read_spool_snapshots",
    "render_trace",
    "reset_all",
    "set_mode",
    "snapshot",
    "span",
    "telemetry_mode",
    "trace_enabled",
    "write_spool_snapshot",
]
