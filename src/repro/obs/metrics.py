"""The process-global metrics registry: counters, gauges, histograms.

One :class:`MetricsRegistry` per process (:data:`REGISTRY`) absorbs every
subsystem's accounting under dotted names (``template.compiled``,
``newton.converged``, ``broker.acked``, ``service.coalesced``, ...).  The
legacy module-level stat dicts — ``TEMPLATE_STATS`` in
:mod:`repro.analysis.template` and ``NEWTON_STATS`` in
:mod:`repro.analysis.dcbatch` — are kept as :class:`CounterView` mappings
over the registry, so their historical ``STATS["key"] += 1`` call sites
(and the benchmarks that read them) keep working unchanged while the
storage, reset and snapshot semantics are unified here.

Three primitives:

* **counter** — monotonically accumulated number (``counter(name, n)``);
* **gauge** — last-set value (``gauge(name, v)``);
* **histogram** — ``count/total/min/max`` summary of observed values
  (``observe(name, v)``).

``snapshot()`` returns a pure-JSON dict; ``merge_snapshot()`` folds one
into the live registry (counters and histogram counts add, gauges keep
the maximum — the only order-independent choice); ``aggregate_snapshots``
folds many into a fresh dict.  That is the cross-worker contract: each
pool/queue/broker worker accumulates locally and ships a snapshot (via
the metrics spool directory or its broker census record), and the
campaign runner folds them all into the store's ``metrics.json``.

**Gating.**  :func:`set_mode` applies ``FlowConfig.telemetry``:
``"off"`` turns the module-level :func:`counter`/:func:`gauge`/
:func:`observe` helpers into no-ops.  :class:`CounterView` writes bypass
the gate on purpose — the legacy kernel counters predate the telemetry
knob and benchmarks/tests rely on them unconditionally.  Metrics never
feed back into results: the registry is export-only state, excluded from
manifests, fingerprints and task payloads.
"""

from __future__ import annotations

import json
import os
import socket
import tempfile
import threading
from collections.abc import MutableMapping
from pathlib import Path

#: Valid ``FlowConfig.telemetry`` values, in increasing verbosity.
TELEMETRY_MODES = ("off", "metrics", "trace")

#: Campaign-store subdirectory where worker processes spool snapshots.
METRICS_DIRNAME = "metrics"

#: Aggregated registry snapshot written into a campaign results store.
METRICS_FILENAME = "metrics.json"

#: Environment variable pointing worker processes at the spool directory.
#: Pool workers inherit it from the campaign runner (like the BLAS pins in
#: :mod:`repro.engine.threads`) and rewrite their cumulative snapshot
#: there after every synthesis job.
SPOOL_ENV = "REPRO_OBS_METRICS_DIR"


def _plain_number(value):
    """Coerce numpy scalars (and bools) to plain JSON-safe numbers."""
    if isinstance(value, bool):
        return int(value)
    if isinstance(value, (int, float)):
        return value
    item = getattr(value, "item", None)
    if callable(item):
        return item()
    return float(value)


class MetricsRegistry:
    """Named counters/gauges/histograms with snapshot-merge semantics.

    Thread-safe: every mutation takes one short lock, cheap enough for
    the hot kernel counters (the bench gate in ``benchmarks/bench_obs.py``
    holds metrics-mode overhead under 3% on the DC workload).
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, float] = {}
        self._gauges: dict[str, float] = {}
        self._histograms: dict[str, dict[str, float]] = {}

    # -- mutation --------------------------------------------------------

    def counter(self, name: str, amount: float = 1) -> None:
        """Add ``amount`` to counter ``name`` (created at zero)."""
        amount = _plain_number(amount)
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + amount

    def set_counter(self, name: str, value: float) -> None:
        """Set counter ``name`` to an absolute value (the view hook)."""
        value = _plain_number(value)
        with self._lock:
            self._counters[name] = value

    def gauge(self, name: str, value: float) -> None:
        """Set gauge ``name`` to its latest value."""
        value = _plain_number(value)
        with self._lock:
            self._gauges[name] = value

    def observe(self, name: str, value: float) -> None:
        """Record one observation into histogram ``name``."""
        value = _plain_number(value)
        with self._lock:
            h = self._histograms.get(name)
            if h is None:
                h = {"count": 0, "total": 0.0, "min": value, "max": value}
                self._histograms[name] = h
            h["count"] += 1
            h["total"] += value
            h["min"] = min(h["min"], value)
            h["max"] = max(h["max"], value)

    def reset(self) -> None:
        """Drop every metric (test/benchmark hook)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()

    # -- reads -----------------------------------------------------------

    def get_counter(self, name: str, default: float = 0):
        """Current value of counter ``name`` (``default`` if unset)."""
        with self._lock:
            return self._counters.get(name, default)

    def snapshot(self) -> dict:
        """Pure-JSON copy of the whole registry."""
        with self._lock:
            return {
                "counters": dict(self._counters),
                "gauges": dict(self._gauges),
                "histograms": {k: dict(v) for k, v in self._histograms.items()},
            }

    def merge(self, snapshot: dict) -> None:
        """Fold one :meth:`snapshot` into this registry.

        Counters and histogram counts/totals add; histogram min/max
        widen; gauges keep the maximum (the only merge that does not
        depend on worker ordering).  Malformed snapshots merge what they
        can and ignore the rest — aggregation must never fail a campaign.
        """
        if not isinstance(snapshot, dict):
            return
        counters = snapshot.get("counters")
        if isinstance(counters, dict):
            for name, value in counters.items():
                if isinstance(value, (int, float)):
                    self.counter(str(name), value)
        gauges = snapshot.get("gauges")
        if isinstance(gauges, dict):
            for name, value in gauges.items():
                if not isinstance(value, (int, float)):
                    continue
                with self._lock:
                    prior = self._gauges.get(str(name))
                    self._gauges[str(name)] = (
                        value if prior is None else max(prior, value)
                    )
        histograms = snapshot.get("histograms")
        if isinstance(histograms, dict):
            for name, h in histograms.items():
                if not isinstance(h, dict):
                    continue
                try:
                    count = int(h["count"])
                    total = float(h["total"])
                    lo, hi = float(h["min"]), float(h["max"])
                except (KeyError, TypeError, ValueError):
                    continue
                with self._lock:
                    mine = self._histograms.get(str(name))
                    if mine is None:
                        self._histograms[str(name)] = {
                            "count": count, "total": total, "min": lo, "max": hi,
                        }
                    else:
                        mine["count"] += count
                        mine["total"] += total
                        mine["min"] = min(mine["min"], lo)
                        mine["max"] = max(mine["max"], hi)

    def lines(self) -> list[str]:
        """The stable, name-sorted ``repro-adc --verbose`` rendering.

        One ``<name> <value>`` line per metric; histograms expand into
        ``<name>.count/.total/.min/.max`` so every line stays a single
        name/value pair (the format documented in docs/engine.md).
        """
        snap = self.snapshot()
        flat: dict[str, float] = dict(snap["counters"])
        flat.update(snap["gauges"])
        for name, h in snap["histograms"].items():
            for stat in ("count", "total", "min", "max"):
                flat[f"{name}.{stat}"] = h[stat]
        return [f"{name} {_format_value(value)}" for name, value in sorted(flat.items())]


def _format_value(value) -> str:
    if isinstance(value, float) and not value.is_integer():
        return f"{value:.6g}"
    return str(int(value))


class CounterView(MutableMapping):
    """Dict-like view over a fixed set of registry counters.

    Keeps the historical module-level stat dicts (``TEMPLATE_STATS``,
    ``NEWTON_STATS``) source-compatible — ``STATS["key"] += 1``,
    ``dict(STATS)``, ``sorted(STATS.items())`` all behave exactly as they
    did on the plain dicts — while the registry owns the storage, so one
    ``reset_all()`` (and the autouse test fixture built on it) covers
    every counter in the process.
    """

    __slots__ = ("_registry", "_prefix", "_keys")

    def __init__(self, registry: MetricsRegistry, prefix: str, keys):
        self._registry = registry
        self._prefix = prefix
        self._keys = tuple(keys)

    def _qualify(self, key: str) -> str:
        if key not in self._keys:
            raise KeyError(key)
        return f"{self._prefix}.{key}"

    def __getitem__(self, key: str):
        return self._registry.get_counter(self._qualify(key))

    def __setitem__(self, key: str, value) -> None:
        self._registry.set_counter(self._qualify(key), value)

    def __delitem__(self, key: str) -> None:
        raise TypeError("counter views have a fixed key set")

    def __iter__(self):
        return iter(self._keys)

    def __len__(self) -> int:
        return len(self._keys)

    def __repr__(self) -> str:
        return f"CounterView({dict(self)!r})"


#: The process-global registry every subsystem reports into.
REGISTRY = MetricsRegistry()

#: Current telemetry mode; mirrors ``FlowConfig.telemetry``'s default.
_MODE = "metrics"


def set_mode(mode: str) -> None:
    """Apply a ``FlowConfig.telemetry`` value to this process."""
    from repro.errors import SpecificationError

    if mode not in TELEMETRY_MODES:
        raise SpecificationError(
            f"unknown telemetry mode {mode!r} "
            f"(valid: {', '.join(TELEMETRY_MODES)})"
        )
    global _MODE
    _MODE = mode


def telemetry_mode() -> str:
    """The process's current telemetry mode."""
    return _MODE


def metrics_enabled() -> bool:
    """Whether the gated module-level helpers record anything."""
    return _MODE != "off"


def counter(name: str, amount: float = 1) -> None:
    """Gated counter increment (no-op when telemetry is off)."""
    if _MODE != "off":
        REGISTRY.counter(name, amount)


def gauge(name: str, value: float) -> None:
    """Gated gauge set (no-op when telemetry is off)."""
    if _MODE != "off":
        REGISTRY.gauge(name, value)


def observe(name: str, value: float) -> None:
    """Gated histogram observation (no-op when telemetry is off)."""
    if _MODE != "off":
        REGISTRY.observe(name, value)


def snapshot() -> dict:
    """Snapshot of the process-global registry."""
    return REGISTRY.snapshot()


def merge_snapshot(snap: dict) -> None:
    """Fold one snapshot into the process-global registry."""
    REGISTRY.merge(snap)


def reset_all(mode: str = "metrics") -> None:
    """Zero every metric and restore the default mode (test hook)."""
    REGISTRY.reset()
    set_mode(mode)


def aggregate_snapshots(snapshots) -> dict:
    """Fold many snapshots into one (a fresh registry does the math)."""
    folded = MetricsRegistry()
    for snap in snapshots:
        folded.merge(snap)
    return folded.snapshot()


# -- the cross-process spool ------------------------------------------------


def _spool_path(directory: str | Path) -> Path:
    host = socket.gethostname()
    return Path(directory) / f"metrics-{host}-{os.getpid()}.json"


def write_spool_snapshot(directory: str | Path | None = None) -> Path | None:
    """Atomically (re)write this process's cumulative snapshot file.

    ``directory`` defaults to :data:`SPOOL_ENV` from the environment —
    how pool workers find the campaign's spool without any plumbing
    through task payloads.  Returns the written path, or ``None`` when
    there is no spool configured or the write failed (telemetry must
    never fail the work it observes).
    """
    if directory is None:
        directory = os.environ.get(SPOOL_ENV) or None
    if directory is None or _MODE == "off":
        return None
    path = _spool_path(directory)
    payload = json.dumps(snapshot(), indent=2, sort_keys=True) + "\n"
    try:
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=str(path.parent), suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(payload)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
    except OSError:
        return None
    return path


def read_spool_snapshots(directory: str | Path, exclude_self: bool = False) -> list[dict]:
    """Every readable snapshot spooled under ``directory``.

    Unreadable or half-written files are skipped — the spool is advisory.
    ``exclude_self`` drops this process's own file: an aggregator that
    already holds its live registry must not count it a second time (the
    serial backend runs jobs in the aggregating process, so its spool file
    duplicates the live counters).
    """
    snapshots: list[dict] = []
    own = _spool_path(directory) if exclude_self else None
    try:
        paths = sorted(Path(directory).glob("metrics-*.json"))
    except OSError:
        return snapshots
    for path in paths:
        if own is not None and path == own:
            continue
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            continue
        if isinstance(payload, dict):
            snapshots.append(payload)
    return snapshots


__all__ = [
    "METRICS_DIRNAME",
    "METRICS_FILENAME",
    "REGISTRY",
    "SPOOL_ENV",
    "TELEMETRY_MODES",
    "CounterView",
    "MetricsRegistry",
    "aggregate_snapshots",
    "counter",
    "gauge",
    "merge_snapshot",
    "metrics_enabled",
    "observe",
    "read_spool_snapshots",
    "reset_all",
    "set_mode",
    "snapshot",
    "telemetry_mode",
    "write_spool_snapshot",
]
