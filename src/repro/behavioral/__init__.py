"""Behavioral (bit-level) pipelined ADC simulation.

This package answers the system-level question the electrical specs are
derived from: does a candidate configuration, with realistic block errors,
actually convert at the target resolution?  It provides:

* :mod:`repro.behavioral.pipeline` — stage-accurate conversion with
  redundancy and digital error correction;
* :mod:`repro.behavioral.nonideal` — per-stage error models (finite gain,
  incomplete settling, comparator offsets, noise, DAC level errors);
* :mod:`repro.behavioral.metrics` — SNDR/ENOB/SFDR from coherent sine
  tests, INL/DNL from histogram tests;
* :mod:`repro.behavioral.signals` — coherent test-signal generators;
* :mod:`repro.behavioral.batch` — the vectorized draws x samples x stages
  Monte-Carlo kernel (bit-identical to the scalar walk);
* :mod:`repro.behavioral.verify` — seeded mismatch injection and the
  SNDR/ENOB verdicts the campaign layer stores.
"""

from repro.behavioral.batch import BatchResult, simulate_draws
from repro.behavioral.pipeline import BehavioralPipeline, PipelineStage
from repro.behavioral.nonideal import StageErrorModel
from repro.behavioral.correction import combine_codes
from repro.behavioral.metrics import enob, inl_dnl, sfdr_db, sndr_db
from repro.behavioral.signals import coherent_sine, full_scale_sine, pick_coherent_cycles
from repro.behavioral.verify import (
    BehavioralVerdict,
    MismatchSpec,
    draw_error_models,
    verify_candidate,
)

__all__ = [
    "BatchResult",
    "BehavioralPipeline",
    "BehavioralVerdict",
    "MismatchSpec",
    "PipelineStage",
    "StageErrorModel",
    "combine_codes",
    "draw_error_models",
    "simulate_draws",
    "sndr_db",
    "enob",
    "sfdr_db",
    "inl_dnl",
    "coherent_sine",
    "full_scale_sine",
    "pick_coherent_cycles",
    "verify_candidate",
]
