"""Test-signal generation for converter characterization."""

from __future__ import annotations

import math

import numpy as np

from repro.errors import SpecificationError


def coherent_sine(
    n_samples: int,
    cycles: int,
    amplitude: float,
    offset: float = 0.0,
    phase: float = 0.0,
) -> np.ndarray:
    """A sine that completes exactly ``cycles`` periods in ``n_samples``.

    Coherent sampling puts all signal energy in one FFT bin; ``cycles``
    should be odd and coprime with ``n_samples`` so every code is exercised.
    """
    if n_samples < 8:
        raise SpecificationError("n_samples too small")
    if not 0 < cycles < n_samples / 2:
        raise SpecificationError("cycles must be in (0, n_samples/2)")
    if math.gcd(cycles, n_samples) != 1:
        raise SpecificationError(
            f"cycles={cycles} and n_samples={n_samples} must be coprime"
        )
    t = np.arange(n_samples)
    return offset + amplitude * np.sin(2 * np.pi * cycles * t / n_samples + phase)


def full_scale_sine(n_samples: int, cycles: int, full_scale: float, backoff_db: float = 0.5) -> np.ndarray:
    """A near-full-scale coherent sine (backed off to avoid clipping)."""
    amplitude = (full_scale / 2.0) * 10 ** (-backoff_db / 20.0)
    return coherent_sine(n_samples, cycles, amplitude)


def pick_coherent_cycles(n_samples: int, fraction: float = 0.234) -> int:
    """Bin-locked cycle count nearest ``fraction * n_samples``.

    Returns the odd cycle count coprime with ``n_samples`` closest to the
    requested frequency fraction — the selection rule that keeps every
    SNDR capture leakage-free (all carrier energy in one FFT bin) while
    exercising every code (coprimality walks the full phase lattice).
    Ties prefer the lower frequency.
    """
    if n_samples < 8:
        raise SpecificationError("n_samples too small")
    if not 0.0 < fraction < 0.5:
        raise SpecificationError("fraction must be in (0, 0.5)")
    target = max(1, round(fraction * n_samples))
    for delta in range(n_samples):
        for candidate in (target - delta, target + delta):
            if (
                0 < candidate < n_samples / 2
                and candidate % 2 == 1
                and math.gcd(candidate, n_samples) == 1
            ):
                return candidate
    raise SpecificationError(
        f"no coherent cycle count exists for n_samples={n_samples}"
    )
