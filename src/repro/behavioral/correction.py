"""Digital error correction: combine redundant stage codes into one word.

Each stage's code ``c_i`` (``0 .. 2^m_i - 2``) represents the signed DAC
index ``d_i = c_i - (levels_i - 1)/2``.  Unrolling the residue recursion
``v_{i+1} = 2^{e_i} v_i - d_i FS/2`` (``e_i = m_i - 1``) gives

``v_1 = FS/2 * sum_i d_i 2^{-E_i} + v_backend 2^{-E_n}``

with ``E_i`` the cumulative effective bits.  In LSB-of-K units every term
is an integer, so the combination — the "digital correction logic" the
paper budgets one redundant bit per stage for — is exact integer addition.
Comparator offsets move ``d_i`` by one step and the residue compensates,
which is why the redundancy absorbs sub-ADC errors.
"""

from __future__ import annotations

from repro.errors import SpecificationError


def combine_codes(
    stage_codes: list[int],
    stage_bits: list[int],
    backend_code: int,
    backend_bits: int,
    total_bits: int,
) -> int:
    """Combine front-end stage codes and the backend code into a K-bit word.

    Returns an unsigned code in ``[0, 2^total_bits - 1]`` (clipped).
    """
    if len(stage_codes) != len(stage_bits):
        raise SpecificationError("one code per stage required")
    cumulative = 0
    acc = 0
    for code, m in zip(stage_codes, stage_bits):
        levels = 2**m - 1
        if not 0 <= code < levels:
            raise SpecificationError(f"code {code} out of range for {m}-bit stage")
        cumulative += m - 1
        if cumulative > total_bits - 1:
            raise SpecificationError("stages resolve more than total_bits")
        d = code - (levels - 1) // 2  # signed DAC index, always an integer
        acc += d * 2 ** (total_bits - 1 - cumulative)
    if backend_bits != total_bits - cumulative:
        raise SpecificationError(
            f"backend_bits {backend_bits} != remaining {total_bits - cumulative}"
        )
    if not 0 <= backend_code < 2**backend_bits:
        raise SpecificationError("backend code out of range")
    word = 2 ** (total_bits - 1) + acc + (backend_code - 2 ** (backend_bits - 1))
    return max(0, min(2**total_bits - 1, word))
