"""Vectorized Monte-Carlo pipeline simulation: draws × samples × stages.

The PR 3 pattern applied to the behavioral tier: the scalar per-sample
walk of :class:`~repro.behavioral.pipeline.BehavioralPipeline` stays as
the ``legacy`` reference kernel, and :func:`simulate_draws` evaluates the
whole input record × mismatch-draw matrix as one ``(draws, samples)``
numpy array program per stage — bit-identical to the scalar walk, which
is what lets ``FlowConfig.behavioral_kernel`` be a pure speed knob.

Bit-identity holds because every kernel stage replays the scalar
arithmetic op-for-op on float64 arrays (numpy elementwise double ops are
the same IEEE operations the scalar walk performs) and because thermal
noise replays the scalar RNG *stream*: the scalar walk consumes one
standard normal per noisy stage per sample (sample-major, stage-minor),
exactly the C-order fill of ``Generator.standard_normal((samples, k))``,
and ``Generator.normal(0.0, sigma)`` is ``0.0 + sigma * z`` on that same
stream.  The equivalence is enforced by
``tests/behavioral/test_batch_kernel.py`` and the ``behavioral`` stage of
``benchmarks/run_all.py --check``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.behavioral.correction import combine_codes
from repro.behavioral.nonideal import StageErrorModel
from repro.behavioral.pipeline import BehavioralPipeline
from repro.blocks.sah import SampleAndHold
from repro.blocks.subadc import FlashSubAdc
from repro.enumeration.candidates import PipelineCandidate
from repro.errors import SpecificationError

#: Behavioral simulation kernels (mirrors the eval_kernel naming).
BEHAVIORAL_KERNELS = ("batch", "legacy")


@dataclass(frozen=True)
class BatchResult:
    """Full conversion trace of one draws × samples simulation."""

    #: Raw per-stage codes, shape ``(draws, samples, stage_count)``.
    stage_codes: np.ndarray
    #: Final residue entering the ideal backend, shape ``(draws, samples)``.
    residues: np.ndarray
    #: Backend quantizer codes, shape ``(draws, samples)``.
    backend_codes: np.ndarray
    #: Corrected K-bit output words, shape ``(draws, samples)``.
    codes: np.ndarray = field(default=None)  # type: ignore[assignment]


def simulate_draws(
    candidate: PipelineCandidate,
    full_scale: float,
    error_draws: Sequence[Sequence[StageErrorModel]],
    samples: np.ndarray,
    rngs: Sequence[np.random.Generator] | None = None,
    kernel: str = "batch",
    sah: SampleAndHold | None = None,
) -> BatchResult:
    """Convert ``samples`` under every mismatch draw with one kernel call.

    ``error_draws`` holds one per-stage error-model tuple per Monte-Carlo
    draw; ``rngs`` supplies one independent generator per draw (required
    whenever any error model carries thermal noise — each draw owns its
    noise stream so draws are order-independent and replayable).  Both
    kernels consume the generators identically, so the same seeded
    generators produce bit-identical traces either way.
    """
    if kernel not in BEHAVIORAL_KERNELS:
        raise SpecificationError(
            f"unknown behavioral kernel {kernel!r} "
            f"(valid: {', '.join(BEHAVIORAL_KERNELS)})"
        )
    if sah is None:
        sah = SampleAndHold()
    error_draws = [tuple(models) for models in error_draws]
    for models in error_draws:
        if len(models) != candidate.stage_count:
            raise SpecificationError("one error model per stage required")
    if rngs is not None and len(rngs) != len(error_draws):
        raise SpecificationError("one rng per draw required")
    noisy = sah.noise_rms > 0.0 or any(
        model.noise_rms > 0.0 for models in error_draws for model in models
    )
    if noisy and rngs is None:
        raise SpecificationError("rngs required when any draw carries noise")
    samples = np.asarray(samples, dtype=float)
    if kernel == "legacy":
        return _simulate_legacy(candidate, full_scale, error_draws, samples, rngs, sah)
    return _simulate_batch(candidate, full_scale, error_draws, samples, rngs, sah)


def _simulate_legacy(
    candidate: PipelineCandidate,
    full_scale: float,
    error_draws: list[tuple[StageErrorModel, ...]],
    samples: np.ndarray,
    rngs: Sequence[np.random.Generator] | None,
    sah: SampleAndHold,
) -> BatchResult:
    """The reference kernel: the existing scalar walk, one sample at a time.

    Reuses the scalar building blocks verbatim —
    :meth:`~repro.blocks.sah.SampleAndHold.sample`,
    :meth:`~repro.behavioral.pipeline.PipelineStage.convert`, the ideal
    backend quantizer and :func:`~repro.behavioral.correction.combine_codes`
    — in exactly the order :meth:`BehavioralPipeline.convert` applies them,
    so its codes (and RNG consumption) match the pipeline walk bit for bit.
    """
    draws, n_samples = len(error_draws), len(samples)
    n_stages = candidate.stage_count
    stage_codes = np.zeros((draws, n_samples, n_stages), dtype=np.int64)
    residues = np.zeros((draws, n_samples))
    backend_codes = np.zeros((draws, n_samples), dtype=np.int64)
    codes = np.zeros((draws, n_samples), dtype=np.int64)
    stage_bits = list(candidate.resolutions)
    for d, models in enumerate(error_draws):
        pipeline = BehavioralPipeline(
            candidate, full_scale, stage_errors=models, sah=sah
        )
        stages = pipeline._stages()
        rng = rngs[d] if rngs is not None else None
        for s in range(n_samples):
            v = pipeline.sah.sample(float(samples[s]), rng)
            sample_codes: list[int] = []
            for j, stage in enumerate(stages):
                code, v = stage.convert(v, rng)
                sample_codes.append(code)
                stage_codes[d, s, j] = code
            residues[d, s] = v
            backend = pipeline._backend_quantize(v)
            backend_codes[d, s] = backend
            codes[d, s] = combine_codes(
                sample_codes,
                stage_bits,
                backend,
                pipeline.backend_bits,
                pipeline.total_bits,
            )
    return BatchResult(stage_codes, residues, backend_codes, codes)


def _simulate_batch(
    candidate: PipelineCandidate,
    full_scale: float,
    error_draws: list[tuple[StageErrorModel, ...]],
    samples: np.ndarray,
    rngs: Sequence[np.random.Generator] | None,
    sah: SampleAndHold,
) -> BatchResult:
    """The vectorized kernel: one (draws, samples) array program per stage."""
    draws, n_samples = len(error_draws), len(samples)
    n_stages = candidate.stage_count
    total_bits = candidate.total_bits
    backend_bits = total_bits - candidate.frontend_bits
    # Structural validation the scalar walk performs inside combine_codes.
    if candidate.frontend_bits > total_bits - 1:
        raise SpecificationError("stages resolve more than total_bits")

    # Thermal-noise replay: the scalar walk consumes one standard normal
    # per noisy source per sample, sample-major.  Pre-draw each draw's
    # whole (samples, sources) block from its own generator — the same
    # stream positions — and hand out columns per source.
    sah_noisy = sah.noise_rms > 0.0
    sigmas = np.array(
        [[model.noise_rms for model in models] for models in error_draws]
    ).reshape(draws, n_stages)
    column = np.full((draws, n_stages), -1, dtype=int)
    noise_blocks: list[np.ndarray | None] = [None] * draws
    for d in range(draws):
        col = 1 if sah_noisy else 0
        for c in range(n_stages):
            if sigmas[d, c] > 0.0:
                column[d, c] = col
                col += 1
        if col:
            noise_blocks[d] = rngs[d].standard_normal((n_samples, col))

    # Sample-and-hold: vin * (1 + gain_error) + noise, like the scalar walk.
    v = np.broadcast_to(
        samples * (1.0 + sah.gain_error), (draws, n_samples)
    ).copy()
    if sah_noisy:
        for d in range(draws):
            v[d] = v[d] + (0.0 + sah.noise_rms * noise_blocks[d][:, 0])
    else:
        v = v + 0.0  # the scalar walk's `+ noise` with noise == 0.0

    stage_codes = np.zeros((draws, n_samples, n_stages), dtype=np.int64)
    for c in range(n_stages):
        m = candidate.resolutions[c]
        levels = 2**m - 1
        # Stage input noise (consumed before the sub-ADC decision).
        if np.any(sigmas[:, c] > 0.0):
            noise = np.zeros((draws, n_samples))
            for d in range(draws):
                if sigmas[d, c] > 0.0:
                    noise[d] = 0.0 + sigmas[d, c] * noise_blocks[d][:, column[d, c]]
            v = np.where((sigmas[:, c] > 0.0)[:, None], v + noise, v)
        # Thermometer decision: loop over the <= 2^m - 2 comparators so the
        # working set stays at (draws, samples) — never (draws, samples,
        # comparators).
        thresholds = FlashSubAdc(m, full_scale).ideal_thresholds()
        offsets = np.zeros((draws, levels - 1))
        for d, models in enumerate(error_draws):
            if models[c].comparator_offsets:
                if len(models[c].comparator_offsets) != levels - 1:
                    raise SpecificationError(
                        f"{m}-bit stage needs {levels - 1} offsets"
                    )
                offsets[d] = models[c].comparator_offsets
        code = np.zeros((draws, n_samples), dtype=np.int64)
        for j in range(levels - 1):
            code += (v + offsets[:, j : j + 1]) > thresholds[j]
        stage_codes[:, :, c] = code
        # MDAC residue: gain * vin - dac, per-draw gain and DAC errors.
        gain = np.array(
            [
                2.0 ** (m - 1) * models[c].effective_gain_factor
                for models in error_draws
            ]
        )
        dac = (code - (levels - 1) / 2.0) * full_scale / 2.0
        if any(models[c].dac_level_errors for models in error_draws):
            level_errors = np.zeros((draws, levels))
            for d, models in enumerate(error_draws):
                if models[c].dac_level_errors:
                    if len(models[c].dac_level_errors) != levels:
                        raise SpecificationError("one DAC error per level required")
                    level_errors[d] = models[c].dac_level_errors
            dac = dac + np.take_along_axis(level_errors, code, axis=1)
        v = gain[:, None] * v - dac

    # Ideal backend quantizer, then the exact integer correction.
    n = 2**backend_bits
    backend_codes = np.clip(
        np.floor((v / full_scale + 0.5) * n), 0, n - 1
    ).astype(np.int64)
    cumulative = 0
    acc = np.zeros((draws, n_samples), dtype=np.int64)
    for c, m in enumerate(candidate.resolutions):
        levels = 2**m - 1
        cumulative += m - 1
        acc += (stage_codes[:, :, c] - (levels - 1) // 2) * (
            2 ** (total_bits - 1 - cumulative)
        )
    word = 2 ** (total_bits - 1) + acc + (backend_codes - 2 ** (backend_bits - 1))
    codes = np.clip(word, 0, 2**total_bits - 1)
    return BatchResult(stage_codes, v, backend_codes, codes)


__all__ = ["BEHAVIORAL_KERNELS", "BatchResult", "simulate_draws"]
