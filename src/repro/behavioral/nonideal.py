"""Per-stage error models for the behavioral pipeline."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class StageErrorModel:
    """Imperfections of one pipeline stage.

    * ``gain_error`` — relative interstage-gain error (finite opamp gain,
      capacitor ratio error): actual gain = G * (1 + gain_error).
    * ``settling_error`` — relative dynamic error left at the end of the
      amplification phase; it scales the *step* the output makes.
    * ``comparator_offsets`` — per-comparator input-referred offsets [V];
      redundancy should absorb these up to FS/2^(m+1).
    * ``noise_rms`` — input-referred noise added to the residue input [V].
    * ``dac_level_errors`` — additive error of each DAC level [V]
      (capacitor mismatch); length 2^m - 1 or empty.
    """

    gain_error: float = 0.0
    settling_error: float = 0.0
    comparator_offsets: tuple[float, ...] = ()
    noise_rms: float = 0.0
    dac_level_errors: tuple[float, ...] = ()

    @staticmethod
    def ideal() -> "StageErrorModel":
        """No errors at all."""
        return StageErrorModel()

    @property
    def effective_gain_factor(self) -> float:
        """Combined multiplicative gain factor including settling loss."""
        return (1.0 + self.gain_error) * (1.0 - self.settling_error)
