"""Converter metrics: SNDR/ENOB/SFDR via coherent FFT, INL/DNL via histogram."""

from __future__ import annotations

import math

import numpy as np

from repro.errors import SpecificationError


def _spectrum(codes: np.ndarray) -> np.ndarray:
    """Magnitude-squared single-sided spectrum of a code record (DC removed)."""
    x = np.asarray(codes, dtype=float)
    x = x - np.mean(x)
    spectrum = np.abs(np.fft.rfft(x)) ** 2
    spectrum[0] = 0.0
    return spectrum


def sndr_db(codes: np.ndarray, signal_bin: int) -> float:
    """Signal-to-noise-and-distortion ratio of a coherent sine capture [dB]."""
    spectrum = _spectrum(codes)
    if not 0 < signal_bin < len(spectrum):
        raise SpecificationError(f"signal_bin {signal_bin} out of range")
    signal = spectrum[signal_bin]
    noise = np.sum(spectrum) - signal
    if noise <= 0.0:
        return float("inf")
    return 10.0 * math.log10(signal / noise)


def enob(codes: np.ndarray, signal_bin: int) -> float:
    """Effective number of bits: (SNDR - 1.76) / 6.02."""
    return (sndr_db(codes, signal_bin) - 1.76) / 6.02


def sfdr_db(codes: np.ndarray, signal_bin: int) -> float:
    """Spurious-free dynamic range [dB]: carrier over the largest spur."""
    spectrum = _spectrum(codes)
    if not 0 < signal_bin < len(spectrum):
        raise SpecificationError(f"signal_bin {signal_bin} out of range")
    signal = spectrum[signal_bin]
    spurs = spectrum.copy()
    spurs[signal_bin] = 0.0
    largest = float(np.max(spurs))
    if largest <= 0.0:
        return float("inf")
    return 10.0 * math.log10(signal / largest)


def inl_dnl(
    codes: np.ndarray, total_bits: int, clip_codes: int = 8
) -> tuple[np.ndarray, np.ndarray]:
    """INL and DNL in LSB from a sine histogram test.

    Uses the standard sine-histogram density correction.  The first and
    last ``clip_codes`` codes are excluded (sine peaks distort the
    histogram tails).  Returns ``(inl, dnl)`` arrays over the analyzed
    code range.
    """
    n_codes = 2**total_bits
    hist = np.bincount(np.asarray(codes, dtype=int), minlength=n_codes).astype(float)
    if hist.sum() < 10 * n_codes:
        raise SpecificationError(
            "histogram too sparse: need >= 10 hits per code on average"
        )
    total = hist.sum()
    # Ideal sine PDF between codes: p(k) proportional to
    # asin((k+1-mid)/A) - asin((k-mid)/A).  Estimate amplitude and midpoint
    # from the full exercised code extent (the quantile-based alternative
    # biases the range inward and bows the INL).
    nonzero = np.nonzero(hist)[0]
    lo0, hi0 = int(nonzero[0]), int(nonzero[-1]) + 1
    mid = (lo0 + hi0) / 2.0
    amp = (hi0 - lo0) / 2.0 + 0.5
    lo = lo0 + clip_codes
    hi = hi0 - clip_codes
    if hi - lo < 16:
        raise SpecificationError("too few exercised codes for INL/DNL")

    def ideal_fraction(k: np.ndarray) -> np.ndarray:
        a = np.clip((k - mid) / amp, -1.0, 1.0)
        b = np.clip((k + 1 - mid) / amp, -1.0, 1.0)
        return (np.arcsin(b) - np.arcsin(a)) / np.pi

    k = np.arange(lo, hi)
    ideal = ideal_fraction(k)
    measured = hist[lo:hi] / total
    with np.errstate(divide="ignore", invalid="ignore"):
        dnl = measured / ideal - 1.0
    dnl[~np.isfinite(dnl)] = 0.0
    inl = np.cumsum(dnl)
    inl -= np.linspace(inl[0], inl[-1], len(inl))  # endpoint-fit
    return inl, dnl
