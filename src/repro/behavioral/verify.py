"""Monte-Carlo behavioral verification of an optimized topology.

Closes the loop the analytic flow leaves open: after the optimizer picks a
topology from equation-level power models, this module stresses that
topology in the time domain — per-stage error models derived from the
synthesized block requirements (:func:`repro.specs.stage.plan_stages`)
plus seeded random mismatch — and reports the simulated SNDR/ENOB the
campaign layer stores next to every analytic number.

Determinism contract: every random quantity descends from one integer
seed through a fixed :class:`numpy.random.SeedSequence` spawn tree —
``seed -> (parameter stream, per-draw noise streams)`` — and parameter
draws are consumed in a fixed order (draw-major; per stage: gain, then
comparator offsets, then DAC levels).  Replaying the same seed therefore
reproduces every draw bit for bit, which is what lets checkpointed
behavioral scenarios resume, shard and merge byte-identically.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.behavioral.batch import BatchResult, simulate_draws
from repro.behavioral.metrics import sndr_db
from repro.behavioral.nonideal import StageErrorModel
from repro.behavioral.signals import full_scale_sine, pick_coherent_cycles
from repro.enumeration.candidates import PipelineCandidate
from repro.errors import SpecificationError
from repro.specs.adc import AdcSpec
from repro.specs.stage import StagePlan, plan_stages

#: Record length for SNDR captures: long enough for a clean noise floor,
#: short enough that a 1000-draw batch stays comfortably in memory.
SAMPLES = 2048


@dataclass(frozen=True)
class MismatchSpec:
    """How much nonideality to inject, scaled to each block's own budget.

    Each sigma multiplies the tolerance the stage plan already computed
    for that error mechanism, so "0.25" always means "a quarter of what
    the block was specified to tolerate" regardless of resolution or
    stage split.
    """

    #: Random residue-gain error sigma, x the stage settling error eps.
    gain_error_sigma: float = 0.25
    #: Comparator offset sigma, x the sub-ADC offset tolerance FS/2^(m+1).
    offset_sigma: float = 0.25
    #: Per-level DAC error sigma, x the converter LSB.
    dac_error_sigma: float = 0.25
    #: Stage input-referred noise, x the stage's rms noise allocation.
    noise_sigma: float = 0.5
    #: Include the deterministic imperfections every real block carries:
    #: incomplete settling at the specified eps and the static gain error
    #: floor -eps/2 implied by the minimum DC gain 2/(eps*beta).
    systematic: bool = True

    @classmethod
    def ideal(cls) -> "MismatchSpec":
        """No injected errors at all — the pipeline becomes a pure quantizer."""
        return cls(
            gain_error_sigma=0.0,
            offset_sigma=0.0,
            dac_error_sigma=0.0,
            noise_sigma=0.0,
            systematic=False,
        )


DEFAULT_MISMATCH = MismatchSpec()


def draw_error_models(
    plan: StagePlan,
    draws: int,
    seed: int,
    mismatch: MismatchSpec = DEFAULT_MISMATCH,
) -> tuple[tuple[tuple[StageErrorModel, ...], ...], tuple[np.random.Generator, ...]]:
    """Sample ``draws`` per-stage error-model tuples plus their noise streams.

    The parameter stream always consumes the same count per draw (one
    gain, ``comparator_count`` offsets, ``2^m - 1`` DAC levels per stage)
    with the sigmas applied as pure scale factors, so draw d's mismatch
    realization is comparable across :class:`MismatchSpec` settings.
    """
    if draws < 1:
        raise SpecificationError("draws must be >= 1")
    root = np.random.SeedSequence(seed)
    param_seq, noise_seq = root.spawn(2)
    rng = np.random.default_rng(param_seq)
    lsb = plan.spec.lsb
    all_draws: list[tuple[StageErrorModel, ...]] = []
    for _ in range(draws):
        models: list[StageErrorModel] = []
        for mdac, sub_adc in zip(plan.mdacs, plan.sub_adcs):
            eps = mdac.settling_error
            gain_z = rng.standard_normal()
            offset_z = rng.standard_normal(sub_adc.comparator_count)
            dac_z = rng.standard_normal(2**mdac.stage_bits - 1)
            gain_error = mismatch.gain_error_sigma * eps * gain_z
            settling = 0.0
            if mismatch.systematic:
                # Static gain error from the minimum-DC-gain opamp:
                # -1/(A0*beta) with A0 = 2/(eps*beta) is exactly -eps/2.
                gain_error -= eps / 2.0
                settling = eps
            offsets = mismatch.offset_sigma * sub_adc.offset_tolerance * offset_z
            dac_errors = mismatch.dac_error_sigma * lsb * dac_z
            noise_rms = mismatch.noise_sigma * math.sqrt(mdac.noise_allocation)
            models.append(
                StageErrorModel(
                    gain_error=float(gain_error),
                    settling_error=settling,
                    comparator_offsets=tuple(float(x) for x in offsets),
                    noise_rms=noise_rms,
                    dac_level_errors=tuple(float(x) for x in dac_errors),
                )
            )
        all_draws.append(tuple(models))
    noise_rngs = tuple(np.random.default_rng(s) for s in noise_seq.spawn(draws))
    return tuple(all_draws), noise_rngs


@dataclass(frozen=True)
class BehavioralVerdict:
    """Monte-Carlo simulation outcome for one candidate topology."""

    candidate: PipelineCandidate
    draws: int
    seed: int
    samples: int
    #: Coherent input cycle count (also the carrier's FFT bin).
    cycles: int
    #: Per-draw SNDR [dB], in draw order.
    sndr_db: tuple[float, ...]
    #: Per-draw effective number of bits.
    enob: tuple[float, ...]

    @property
    def sndr_db_mean(self) -> float:
        return sum(self.sndr_db) / len(self.sndr_db)

    @property
    def sndr_db_min(self) -> float:
        return min(self.sndr_db)

    @property
    def enob_mean(self) -> float:
        return sum(self.enob) / len(self.enob)

    @property
    def enob_min(self) -> float:
        return min(self.enob)


def verify_candidate(
    spec: AdcSpec,
    candidate: PipelineCandidate,
    *,
    draws: int,
    seed: int,
    kernel: str = "batch",
    mismatch: MismatchSpec = DEFAULT_MISMATCH,
    samples: int = SAMPLES,
) -> BehavioralVerdict:
    """Simulate ``draws`` mismatch realizations of one topology.

    Drives a near-full-scale coherent sine through the behavioral
    pipeline under per-stage error models derived from the candidate's
    stage plan, and distills each draw's code record into SNDR/ENOB.
    """
    plan = plan_stages(spec, candidate)
    models, rngs = draw_error_models(plan, draws, seed, mismatch)
    cycles = pick_coherent_cycles(samples)
    stimulus = full_scale_sine(samples, cycles, spec.full_scale)
    result: BatchResult = simulate_draws(
        candidate, spec.full_scale, models, stimulus, rngs=rngs, kernel=kernel
    )
    sndr = tuple(sndr_db(result.codes[d], cycles) for d in range(draws))
    return BehavioralVerdict(
        candidate=candidate,
        draws=draws,
        seed=seed,
        samples=samples,
        cycles=cycles,
        sndr_db=sndr,
        enob=tuple((s - 1.76) / 6.02 for s in sndr),
    )


__all__ = [
    "DEFAULT_MISMATCH",
    "SAMPLES",
    "BehavioralVerdict",
    "MismatchSpec",
    "draw_error_models",
    "verify_candidate",
]
