"""Stage-accurate behavioral pipelined ADC."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.behavioral.correction import combine_codes
from repro.behavioral.nonideal import StageErrorModel
from repro.blocks.sah import SampleAndHold
from repro.blocks.subadc import FlashSubAdc
from repro.enumeration.candidates import PipelineCandidate
from repro.errors import SpecificationError


@dataclass(frozen=True)
class PipelineStage:
    """One pipeline stage: sub-ADC decision plus MDAC residue."""

    stage_bits: int
    full_scale: float
    errors: StageErrorModel = field(default_factory=StageErrorModel.ideal)

    def __post_init__(self) -> None:
        if self.errors.comparator_offsets:
            expected = 2**self.stage_bits - 2
            if len(self.errors.comparator_offsets) != expected:
                raise SpecificationError(
                    f"{self.stage_bits}-bit stage needs {expected} offsets"
                )
        if self.errors.dac_level_errors:
            if len(self.errors.dac_level_errors) != 2**self.stage_bits - 1:
                raise SpecificationError("one DAC error per level required")

    def _sub_adc(self) -> FlashSubAdc:
        if self.errors.comparator_offsets:
            return FlashSubAdc.with_offsets(
                self.stage_bits, self.full_scale, list(self.errors.comparator_offsets)
            )
        return FlashSubAdc(self.stage_bits, self.full_scale)

    def convert(
        self, vin: float, rng: np.random.Generator | None = None
    ) -> tuple[int, float]:
        """Return (code, residue) for one input sample."""
        if self.errors.noise_rms > 0.0:
            if rng is None:
                raise SpecificationError("rng required for noisy stage")
            vin = vin + rng.normal(0.0, self.errors.noise_rms)
        code = self._sub_adc().quantize(vin, rng)
        levels = 2**self.stage_bits - 1
        gain = 2.0 ** (self.stage_bits - 1) * self.errors.effective_gain_factor
        dac = (code - (levels - 1) / 2.0) * self.full_scale / 2.0
        if self.errors.dac_level_errors:
            dac += self.errors.dac_level_errors[code]
        return code, gain * vin - dac


@dataclass(frozen=True)
class BehavioralPipeline:
    """A complete K-bit pipelined converter: front-end stages + ideal backend.

    The enumerated front-end stages come from a candidate configuration;
    the backend (the paper's un-enumerated "...") is modelled as an ideal
    quantizer of the final residue at the remaining resolution.
    """

    candidate: PipelineCandidate
    full_scale: float = 2.0
    stage_errors: tuple[StageErrorModel, ...] = ()
    sah: SampleAndHold = field(default_factory=SampleAndHold)

    def __post_init__(self) -> None:
        if self.stage_errors and len(self.stage_errors) != self.candidate.stage_count:
            raise SpecificationError("one error model per stage required")

    @property
    def total_bits(self) -> int:
        """Converter resolution K."""
        return self.candidate.total_bits

    @property
    def backend_bits(self) -> int:
        """Bits resolved by the ideal backend."""
        return self.candidate.total_bits - self.candidate.frontend_bits

    def _stages(self) -> list[PipelineStage]:
        errors = self.stage_errors or tuple(
            StageErrorModel.ideal() for _ in range(self.candidate.stage_count)
        )
        return [
            PipelineStage(m, self.full_scale, e)
            for m, e in zip(self.candidate.resolutions, errors)
        ]

    def convert(self, vin: float, rng: np.random.Generator | None = None) -> int:
        """Convert one sample to a K-bit output code."""
        v = self.sah.sample(vin, rng)
        codes: list[int] = []
        for stage in self._stages():
            code, v = stage.convert(v, rng)
            codes.append(code)
        backend_code = self._backend_quantize(v)
        return combine_codes(
            codes,
            list(self.candidate.resolutions),
            backend_code,
            self.backend_bits,
            self.total_bits,
        )

    def _backend_quantize(self, residue: float) -> int:
        """Ideal backend: quantize the residue to the remaining bits."""
        n = 2**self.backend_bits
        code = int(np.floor((residue / self.full_scale + 0.5) * n))
        return max(0, min(n - 1, code))

    def convert_array(
        self, samples: np.ndarray, rng: np.random.Generator | None = None
    ) -> np.ndarray:
        """Convert an array of samples."""
        return np.array([self.convert(float(v), rng) for v in samples], dtype=int)
