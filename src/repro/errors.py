"""Exception hierarchy for the repro library.

Every error raised deliberately by the library derives from
:class:`ReproError` so applications can catch library failures without
swallowing programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class NetlistError(ReproError):
    """Raised for malformed circuits (unknown nets, duplicate names, ...)."""


class AnalysisError(ReproError):
    """Base class for simulation-engine failures."""


class ConvergenceError(AnalysisError):
    """Raised when an iterative solver (DC Newton, transient) fails to converge."""


class SingularCircuitError(AnalysisError):
    """Raised when the MNA system is singular (floating node, V-source loop)."""


class SymbolicError(ReproError):
    """Raised for invalid symbolic-algebra operations."""


class SfgError(ReproError):
    """Raised for malformed signal-flow graphs or Mason's-rule failures."""


class SpecificationError(ReproError):
    """Raised when a system or block specification is inconsistent."""


class EnumerationError(ReproError):
    """Raised when candidate enumeration is asked for an infeasible target."""


class SynthesisError(ReproError):
    """Raised when block-level synthesis cannot produce a feasible design."""


class CampaignInterrupted(ReproError):
    """Raised when a campaign honours a cancellation at a scenario boundary.

    Every scenario counted in ``completed`` has already committed its
    checkpoint, so the interrupted store resumes byte-identically with
    ``run_campaign(..., resume=True)``.
    """

    def __init__(self, completed: int, total: int):
        self.completed = completed
        self.total = total
        super().__init__(
            f"campaign interrupted after {completed}/{total} scenario(s); "
            "resume with run_campaign(..., resume=True)"
        )


class ServiceError(ReproError):
    """Raised for optimization-service failures (bad requests, transport)."""
