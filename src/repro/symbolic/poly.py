"""Polynomials in the Laplace variable ``s`` with symbolic coefficients.

A :class:`Poly` stores coefficients in ascending powers of ``s``:
``Poly([a0, a1, a2])`` represents ``a0 + a1*s + a2*s**2``.  Coefficients are
:class:`repro.symbolic.expr.Expr` instances, so a polynomial can carry
small-signal parameters symbolically and be bound to numbers later with
:meth:`Poly.evaluate_coeffs`.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

import numpy as np

from repro.errors import SymbolicError
from repro.symbolic.expr import Expr, Number, ZERO, ONE, as_expr


class Poly:
    """An immutable polynomial in ``s`` over symbolic coefficients."""

    __slots__ = ("coeffs",)

    def __init__(self, coeffs: Sequence[Expr | Number]):
        normalized = [as_expr(c) for c in coeffs]
        while len(normalized) > 1 and normalized[-1].is_zero():
            normalized.pop()
        if not normalized:
            normalized = [ZERO]
        object.__setattr__(self, "coeffs", tuple(normalized))

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("Poly objects are immutable")

    # -- constructors ----------------------------------------------------------

    @staticmethod
    def constant(value: Expr | Number) -> "Poly":
        """The degree-0 polynomial ``value``."""
        return Poly([as_expr(value)])

    @staticmethod
    def s() -> "Poly":
        """The monomial ``s``."""
        return Poly([ZERO, ONE])

    @staticmethod
    def admittance(conductance: Expr | Number, capacitance: Expr | Number) -> "Poly":
        """The admittance polynomial ``g + s*c`` of a parallel RC branch."""
        return Poly([as_expr(conductance), as_expr(capacitance)])

    # -- basic properties --------------------------------------------------------

    @property
    def degree(self) -> int:
        """Degree of the polynomial (0 for constants, including zero)."""
        return len(self.coeffs) - 1

    def is_zero(self) -> bool:
        """True iff this is the structural zero polynomial."""
        return len(self.coeffs) == 1 and self.coeffs[0].is_zero()

    def free_symbols(self) -> frozenset[str]:
        """Union of symbols over all coefficients."""
        out: frozenset[str] = frozenset()
        for c in self.coeffs:
            out |= c.free_symbols()
        return out

    # -- ring operations ---------------------------------------------------------

    def __add__(self, other: "Poly | Expr | Number") -> "Poly":
        other = _as_poly(other)
        n = max(len(self.coeffs), len(other.coeffs))
        out = []
        for i in range(n):
            a = self.coeffs[i] if i < len(self.coeffs) else ZERO
            b = other.coeffs[i] if i < len(other.coeffs) else ZERO
            out.append(a + b)
        return Poly(out)

    def __radd__(self, other: "Expr | Number") -> "Poly":
        return self.__add__(other)

    def __sub__(self, other: "Poly | Expr | Number") -> "Poly":
        return self + (_as_poly(other) * Poly.constant(-1.0))

    def __rsub__(self, other: "Expr | Number") -> "Poly":
        return _as_poly(other) - self

    def __mul__(self, other: "Poly | Expr | Number") -> "Poly":
        other = _as_poly(other)
        if self.is_zero() or other.is_zero():
            return Poly([ZERO])
        out: list[Expr] = [ZERO] * (len(self.coeffs) + len(other.coeffs) - 1)
        for i, a in enumerate(self.coeffs):
            if a.is_zero():
                continue
            for j, b in enumerate(other.coeffs):
                if b.is_zero():
                    continue
                out[i + j] = out[i + j] + a * b
        return Poly(out)

    def __rmul__(self, other: "Expr | Number") -> "Poly":
        return self.__mul__(other)

    def __neg__(self) -> "Poly":
        return self * Poly.constant(-1.0)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Poly):
            return NotImplemented
        return self.coeffs == other.coeffs

    def __hash__(self) -> int:
        return hash(self.coeffs)

    def __repr__(self) -> str:
        return f"Poly({self!s})"

    def __str__(self) -> str:
        parts = []
        for i, c in enumerate(self.coeffs):
            if c.is_zero() and len(self.coeffs) > 1:
                continue
            if i == 0:
                parts.append(str(c))
            elif i == 1:
                parts.append(f"({c})*s")
            else:
                parts.append(f"({c})*s**{i}")
        return " + ".join(parts) if parts else "0"

    # -- evaluation ----------------------------------------------------------------

    def substitute(self, bindings: Mapping[str, Expr | Number]) -> "Poly":
        """Substitute symbols in every coefficient."""
        return Poly([c.substitute(bindings) for c in self.coeffs])

    def evaluate_coeffs(self, bindings: Mapping[str, float]) -> np.ndarray:
        """Bind all symbols, returning numeric coefficients (ascending powers)."""
        return np.array([c.evaluate(bindings) for c in self.coeffs], dtype=float)

    def __call__(self, s_value: complex, bindings: Mapping[str, float]) -> complex:
        """Evaluate the polynomial at a complex frequency ``s_value``."""
        coeffs = self.evaluate_coeffs(bindings)
        return complex(np.polyval(coeffs[::-1], s_value))

    def roots(self, bindings: Mapping[str, float]) -> np.ndarray:
        """Numeric roots after binding all symbols (ascending-power input)."""
        coeffs = self.evaluate_coeffs(bindings)
        # Strip trailing (highest-order) zeros that would confuse np.roots.
        nonzero = np.nonzero(coeffs)[0]
        if len(nonzero) == 0:
            raise SymbolicError("cannot take roots of the zero polynomial")
        coeffs = coeffs[: nonzero[-1] + 1]
        if len(coeffs) == 1:
            return np.array([], dtype=complex)
        return np.roots(coeffs[::-1])


def _as_poly(value: "Poly | Expr | Number") -> Poly:
    if isinstance(value, Poly):
        return value
    return Poly.constant(value)
