"""Codegen: compile symbolic expressions into vectorized numpy callables.

The :class:`~repro.symbolic.expr.Expr` tree walk is perfectly fine for a
handful of evaluations, but the DPI/SFG path produces transfer functions
whose coefficients are deep product-sum trees, and sweeping them (frequency
grids, population scoring, Monte-Carlo bindings) re-walks the tree per
point.  This module compiles an expression once into a plain Python
function of its symbols — flat three-address code with common-subexpression
elimination, built from numpy-compatible operators — so evaluation is a
single call that also *broadcasts*: pass scalars for one binding, or equal
length arrays to score a whole population per coefficient in one shot.

Numerical note: compiled evaluation uses left-to-right summation (the only
form that vectorizes), while :meth:`Expr.evaluate` uses ``math.fsum``; the
two agree to float round-off, not bit-for-bit.  Code that needs the exact
legacy bits (none of the hot paths do — see
:func:`repro.symbolic.ratfunc.RationalFunction.unity_gain_frequency`,
which instead hoists the *exact* coefficient evaluation out of its scan
loop) should keep calling ``evaluate``.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

import numpy as np

from repro.errors import SymbolicError
from repro.symbolic.expr import Add, Const, Expr, Mul, Pow, Sym
from repro.symbolic.poly import Poly


class _Codegen:
    """Emit three-address statements for expression DAGs with CSE."""

    def __init__(self, arg_names: dict[str, str]):
        self.arg_names = arg_names
        self.lines: list[str] = []
        self._cache: dict[object, str] = {}
        self._count = 0

    def _temp(self, rhs: str) -> str:
        name = f"t{self._count}"
        self._count += 1
        self.lines.append(f"    {name} = {rhs}")
        return name

    def emit(self, expr: Expr) -> str:
        """Return a source fragment (argument, constant or temp name)."""
        key = expr._key
        hit = self._cache.get(key)
        if hit is not None:
            return hit
        if isinstance(expr, Const):
            out = repr(expr.value)
        elif isinstance(expr, Sym):
            try:
                out = self.arg_names[expr.name]
            except KeyError:
                raise SymbolicError(
                    f"expression uses symbol {expr.name!r} missing from the "
                    "compilation symbol list"
                ) from None
        elif isinstance(expr, Add):
            out = self._temp(" + ".join(self.emit(t) for t in expr.terms))
        elif isinstance(expr, Mul):
            out = self._temp(" * ".join(self.emit(f) for f in expr.factors))
        elif isinstance(expr, Pow):
            out = self._temp(f"{self.emit(expr.base)} ** {expr.exponent}")
        else:  # pragma: no cover - the Expr hierarchy is closed
            raise SymbolicError(f"cannot compile {type(expr).__name__}")
        self._cache[key] = out
        return out


def _build_function(
    name: str, symbols_order: Sequence[str], bodies: Sequence[Expr]
) -> object:
    """Compile ``bodies`` into one function of the ordered symbols."""
    args = {s: f"a{i}" for i, s in enumerate(symbols_order)}
    gen = _Codegen(args)
    results = [gen.emit(b) for b in bodies]
    source = (
        f"def {name}({', '.join(args.values())}):\n"
        + "\n".join(gen.lines)
        + ("\n" if gen.lines else "")
        + f"    return ({', '.join(results)}{',' if len(results) == 1 else ''})\n"
    )
    namespace: dict[str, object] = {}
    exec(compile(source, f"<compiled {name}>", "exec"), namespace)
    fn = namespace[name]
    fn.__source__ = source  # introspection / tests
    return fn


class CompiledExpr:
    """One expression compiled over an ordered symbol tuple."""

    def __init__(self, expr: Expr, symbols_order: Sequence[str] | None = None):
        self.expr = expr
        if symbols_order is None:
            symbols_order = sorted(expr.free_symbols())
        self.symbols = tuple(symbols_order)
        self._fn = _build_function("expr_fn", self.symbols, [expr])

    def __call__(self, bindings: Mapping[str, float | np.ndarray]):
        """Evaluate with scalar or broadcastable array bindings."""
        try:
            args = [bindings[s] for s in self.symbols]
        except KeyError as exc:
            raise SymbolicError(f"no binding provided for symbol {exc.args[0]!r}") from None
        return self._fn(*args)[0]


class CompiledPoly:
    """A polynomial's coefficients compiled into one callable."""

    def __init__(self, poly: Poly, symbols_order: Sequence[str] | None = None):
        self.poly = poly
        if symbols_order is None:
            symbols_order = sorted(poly.free_symbols())
        self.symbols = tuple(symbols_order)
        self._fn = _build_function("poly_fn", self.symbols, list(poly.coeffs))

    def coeffs(self, bindings: Mapping[str, float | np.ndarray]) -> np.ndarray:
        """Numeric coefficients, ascending powers; shape ``(..., n_coeff)``.

        Scalar bindings give a 1-D array; array bindings of shape ``(B,)``
        give ``(B, n_coeff)`` — one polynomial per population member.
        """
        try:
            args = [bindings[s] for s in self.symbols]
        except KeyError as exc:
            raise SymbolicError(f"no binding provided for symbol {exc.args[0]!r}") from None
        raw = self._fn(*args)
        broadcast = np.broadcast(*(np.asarray(c) for c in raw)) if raw else None
        shape = broadcast.shape if broadcast is not None else ()
        out = np.empty(shape + (len(raw),), dtype=float)
        for k, c in enumerate(raw):
            out[..., k] = c
        return out


class CompiledRationalFunction:
    """A transfer function compiled for population-vectorized evaluation."""

    def __init__(self, ratfunc, symbols_order: Sequence[str] | None = None):
        self.ratfunc = ratfunc
        if symbols_order is None:
            symbols_order = sorted(ratfunc.free_symbols())
        self.symbols = tuple(symbols_order)
        self.num = CompiledPoly(ratfunc.num, self.symbols)
        self.den = CompiledPoly(ratfunc.den, self.symbols)

    def numeric_coeffs(
        self, bindings: Mapping[str, float | np.ndarray]
    ) -> tuple[np.ndarray, np.ndarray]:
        """Unnormalized (num, den) coefficient arrays, shape ``(..., n)``."""
        return self.num.coeffs(bindings), self.den.coeffs(bindings)

    def frequency_response(
        self,
        frequencies_hz: np.ndarray,
        bindings: Mapping[str, float | np.ndarray],
    ) -> np.ndarray:
        """Complex response over frequencies; shape ``(..., F)``.

        With scalar bindings this matches
        :meth:`~repro.symbolic.ratfunc.RationalFunction.frequency_response`
        to float round-off; with ``(B,)``-array bindings it evaluates all
        ``B`` parameter sets against the grid in one vectorized pass.
        """
        num, den = self.numeric_coeffs(bindings)
        s = 2j * np.pi * np.asarray(frequencies_hz, dtype=float)
        return _polyval_ascending(num, s) / _polyval_ascending(den, s)


def _polyval_ascending(coeffs: np.ndarray, s: np.ndarray) -> np.ndarray:
    """Horner evaluation of ascending-power ``(..., n)`` coefficients."""
    acc = np.zeros(coeffs.shape[:-1] + s.shape, dtype=complex)
    for k in range(coeffs.shape[-1] - 1, -1, -1):
        acc = acc * s + coeffs[..., k, None]
    return acc


def compile_expr(
    expr: Expr, symbols_order: Sequence[str] | None = None
) -> CompiledExpr:
    """Compile an expression into a numpy-vectorized callable."""
    return CompiledExpr(expr, symbols_order)


def compile_poly(
    poly: Poly, symbols_order: Sequence[str] | None = None
) -> CompiledPoly:
    """Compile a polynomial's coefficient vector into one callable."""
    return CompiledPoly(poly, symbols_order)


def compile_ratfunc(ratfunc, symbols_order=None) -> CompiledRationalFunction:
    """Compile a rational function for population-vectorized sweeps."""
    return CompiledRationalFunction(ratfunc, symbols_order)


__all__ = [
    "CompiledExpr",
    "CompiledPoly",
    "CompiledRationalFunction",
    "compile_expr",
    "compile_poly",
    "compile_ratfunc",
]
