"""Rational functions in ``s`` — the shape of every circuit transfer function.

A :class:`RationalFunction` is a pair of :class:`~repro.symbolic.poly.Poly`
objects.  Mason's rule produces these directly; binding the small-signal
symbols turns one into a numeric transfer function with poles, zeros, DC
gain, unity-gain frequency and phase margin.
"""

from __future__ import annotations

import math
from collections.abc import Mapping

import numpy as np

from repro.errors import SymbolicError
from repro.symbolic.expr import Expr, Number, as_expr
from repro.symbolic.poly import Poly, _as_poly


class RationalFunction:
    """An immutable ratio of two polynomials in ``s``."""

    __slots__ = ("num", "den", "_compiled")

    def __init__(self, num: Poly | Expr | Number, den: Poly | Expr | Number = 1.0):
        num = _as_poly(num)
        den = _as_poly(den)
        if den.is_zero():
            raise SymbolicError("rational function with zero denominator")
        object.__setattr__(self, "num", num)
        object.__setattr__(self, "den", den)
        object.__setattr__(self, "_compiled", None)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("RationalFunction objects are immutable")

    def compiled(self):
        """The codegen'd form of this transfer function (cached).

        Returns a
        :class:`repro.symbolic.compile.CompiledRationalFunction` whose
        coefficient evaluation is a single flat function call instead of a
        recursive tree walk, and whose bindings may be arrays — one sweep
        for a whole population of small-signal parameter sets.
        """
        if self._compiled is None:
            from repro.symbolic.compile import CompiledRationalFunction

            object.__setattr__(self, "_compiled", CompiledRationalFunction(self))
        return self._compiled

    # -- constructors ---------------------------------------------------------

    @staticmethod
    def zero() -> "RationalFunction":
        """The zero transfer function."""
        return RationalFunction(0.0, 1.0)

    @staticmethod
    def one() -> "RationalFunction":
        """The unity transfer function."""
        return RationalFunction(1.0, 1.0)

    # -- field operations -------------------------------------------------------

    def __add__(self, other: "RationalFunction | Poly | Expr | Number") -> "RationalFunction":
        other = as_ratfunc(other)
        if self.den == other.den:
            return RationalFunction(self.num + other.num, self.den)
        return RationalFunction(
            self.num * other.den + other.num * self.den, self.den * other.den
        )

    def __radd__(self, other: "Poly | Expr | Number") -> "RationalFunction":
        return self.__add__(other)

    def __sub__(self, other: "RationalFunction | Poly | Expr | Number") -> "RationalFunction":
        return self + (as_ratfunc(other) * RationalFunction(-1.0))

    def __rsub__(self, other: "Poly | Expr | Number") -> "RationalFunction":
        return as_ratfunc(other) - self

    def __mul__(self, other: "RationalFunction | Poly | Expr | Number") -> "RationalFunction":
        other = as_ratfunc(other)
        if self.is_zero() or other.is_zero():
            return RationalFunction.zero()
        return RationalFunction(self.num * other.num, self.den * other.den)

    def __rmul__(self, other: "Poly | Expr | Number") -> "RationalFunction":
        return self.__mul__(other)

    def __truediv__(self, other: "RationalFunction | Poly | Expr | Number") -> "RationalFunction":
        other = as_ratfunc(other)
        if other.is_zero():
            raise SymbolicError("division of rational function by zero")
        return RationalFunction(self.num * other.den, self.den * other.num)

    def __rtruediv__(self, other: "Poly | Expr | Number") -> "RationalFunction":
        return as_ratfunc(other) / self

    def __neg__(self) -> "RationalFunction":
        return self * RationalFunction(-1.0)

    def __repr__(self) -> str:
        return f"RationalFunction(({self.num!s}) / ({self.den!s}))"

    def is_zero(self) -> bool:
        """True iff the numerator is structurally zero."""
        return self.num.is_zero()

    def free_symbols(self) -> frozenset[str]:
        """Union of symbols in numerator and denominator."""
        return self.num.free_symbols() | self.den.free_symbols()

    def substitute(self, bindings: Mapping[str, Expr | Number]) -> "RationalFunction":
        """Substitute symbols in both polynomials."""
        return RationalFunction(
            self.num.substitute(bindings), self.den.substitute(bindings)
        )

    # -- numeric views -----------------------------------------------------------

    def __call__(self, s_value: complex, bindings: Mapping[str, float] | None = None) -> complex:
        """Evaluate the transfer function at complex frequency ``s_value``."""
        bindings = bindings or {}
        den = self.den(s_value, bindings)
        if den == 0:
            raise SymbolicError(f"pole hit exactly at s = {s_value!r}")
        return self.num(s_value, bindings) / den

    def numeric_coeffs(
        self, bindings: Mapping[str, float] | None = None
    ) -> tuple[np.ndarray, np.ndarray]:
        """Bind all symbols; return (num, den) coefficients, ascending powers.

        The pair is normalized so the denominator's leading nonzero
        coefficient is 1, which makes downstream root finding stable.
        """
        bindings = bindings or {}
        num = self.num.evaluate_coeffs(bindings)
        den = self.den.evaluate_coeffs(bindings)
        nz = np.nonzero(den)[0]
        if len(nz) == 0:
            raise SymbolicError("denominator evaluated to zero polynomial")
        lead = den[nz[-1]]
        return num / lead, den / lead

    def poles(self, bindings: Mapping[str, float] | None = None) -> np.ndarray:
        """Numeric poles (roots of the bound denominator)."""
        return self.den.roots(bindings or {})

    def zeros(self, bindings: Mapping[str, float] | None = None) -> np.ndarray:
        """Numeric zeros (roots of the bound numerator)."""
        if self.is_zero():
            return np.array([], dtype=complex)
        return self.num.roots(bindings or {})

    def dc_gain(self, bindings: Mapping[str, float] | None = None) -> float:
        """Gain at s = 0.  Raises if there is a pole at the origin."""
        bindings = bindings or {}
        den0 = self.den.coeffs[0].evaluate(bindings)
        if den0 == 0.0:
            raise SymbolicError("dc_gain undefined: pole at s = 0")
        num0 = self.num.coeffs[0].evaluate(bindings)
        return num0 / den0

    def frequency_response(
        self,
        frequencies_hz: np.ndarray,
        bindings: Mapping[str, float] | None = None,
    ) -> np.ndarray:
        """Complex response over an array of frequencies in Hz.

        Scalar bindings return shape ``(F,)``.  Array bindings of shape
        ``(B,)`` dispatch to the codegen'd form (:meth:`compiled`) and
        return ``(B, F)`` — one response per population member, without
        re-walking the coefficient trees per member.
        """
        if bindings and any(
            isinstance(v, np.ndarray) and v.ndim > 0 for v in bindings.values()
        ):
            return self.compiled().frequency_response(frequencies_hz, bindings)
        num, den = self.numeric_coeffs(bindings)
        s = 2j * math.pi * np.asarray(frequencies_hz, dtype=float)
        return np.polyval(num[::-1], s) / np.polyval(den[::-1], s)

    def unity_gain_frequency(
        self,
        bindings: Mapping[str, float] | None = None,
        f_min: float = 1.0,
        f_max: float = 1e12,
    ) -> float | None:
        """Frequency in Hz where |H| crosses 1, or None if it never does.

        Uses a log-spaced scan followed by bisection; adequate for the
        monotone-magnitude region around an opamp's unity crossing.

        The symbolic coefficients are bound *once* and reused across the
        scan and every bisection step (they are deterministic in the
        bindings, so this is exactly the value the per-step re-binding used
        to produce — just without ~60 redundant coefficient tree walks).
        """
        num, den = self.numeric_coeffs(bindings)

        def response_at(freqs: np.ndarray) -> np.ndarray:
            s = 2j * math.pi * np.asarray(freqs, dtype=float)
            return np.polyval(num[::-1], s) / np.polyval(den[::-1], s)

        freqs = np.logspace(math.log10(f_min), math.log10(f_max), 481)
        mags = np.abs(response_at(freqs))
        above = mags >= 1.0
        if not above.any() or above.all():
            return None
        # Find the last crossing from above to below 1.
        crossing_index = None
        for i in range(len(freqs) - 1):
            if above[i] and not above[i + 1]:
                crossing_index = i
        if crossing_index is None:
            return None
        lo, hi = freqs[crossing_index], freqs[crossing_index + 1]
        for _ in range(60):
            mid = math.sqrt(lo * hi)
            mag = abs(complex(response_at(np.array([mid]))[0]))
            if mag >= 1.0:
                lo = mid
            else:
                hi = mid
        return math.sqrt(lo * hi)

    def phase_margin_deg(
        self, bindings: Mapping[str, float] | None = None
    ) -> float | None:
        """Phase margin in degrees at the unity-gain crossing, or None."""
        fu = self.unity_gain_frequency(bindings)
        if fu is None:
            return None
        h = complex(self.frequency_response(np.array([fu]), bindings)[0])
        phase_deg = math.degrees(math.atan2(h.imag, h.real))
        return 180.0 + phase_deg


def as_ratfunc(value: "RationalFunction | Poly | Expr | Number") -> RationalFunction:
    """Coerce a polynomial/expression/number to a rational function."""
    if isinstance(value, RationalFunction):
        return value
    return RationalFunction(_as_poly(value), Poly.constant(1.0))
