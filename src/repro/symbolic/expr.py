"""Immutable symbolic expressions over named real-valued symbols.

Expressions form a commutative ring with rational powers restricted to
integer exponents (that is all circuit admittances need).  Construction
performs light normalization:

* constants fold (``2 + 3`` becomes ``5``);
* sums and products flatten and collect like terms
  (``g + g`` becomes ``2*g``, ``g*g`` becomes ``g**2``);
* a deterministic term ordering makes ``str`` output and equality stable.

The goal is predictable, fast evaluation — not full canonical simplification.
Two mathematically equal expressions built along different routes may compare
unequal structurally; tests that need semantic equality evaluate both at
random bindings instead.
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Mapping
from typing import Union

from repro.errors import SymbolicError

Number = Union[int, float]

#: Tolerance below which folded constants are treated as exactly zero.
_ZERO_TOL = 0.0  # exact: we only fold genuine float arithmetic


class Expr:
    """Base class for all symbolic expressions.

    Use the module-level helpers (:func:`symbols`, arithmetic operators) to
    build expressions; do not instantiate :class:`Expr` directly.
    """

    __slots__ = ("_hash", "_key")

    # -- construction helpers ------------------------------------------------

    def __add__(self, other: Expr | Number) -> Expr:
        return add(self, as_expr(other))

    def __radd__(self, other: Number) -> Expr:
        return add(as_expr(other), self)

    def __sub__(self, other: Expr | Number) -> Expr:
        return add(self, mul(Const(-1.0), as_expr(other)))

    def __rsub__(self, other: Number) -> Expr:
        return add(as_expr(other), mul(Const(-1.0), self))

    def __mul__(self, other: Expr | Number) -> Expr:
        return mul(self, as_expr(other))

    def __rmul__(self, other: Number) -> Expr:
        return mul(as_expr(other), self)

    def __truediv__(self, other: Expr | Number) -> Expr:
        return mul(self, power(as_expr(other), -1))

    def __rtruediv__(self, other: Number) -> Expr:
        return mul(as_expr(other), power(self, -1))

    def __neg__(self) -> Expr:
        return mul(Const(-1.0), self)

    def __pow__(self, exponent: int) -> Expr:
        return power(self, exponent)

    # -- protocol ------------------------------------------------------------

    def __hash__(self) -> int:
        return self._hash

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if not isinstance(other, Expr):
            return NotImplemented
        return self._key == other._key

    def __repr__(self) -> str:
        return f"Expr({self!s})"

    # -- interface -----------------------------------------------------------

    def evaluate(self, bindings: Mapping[str, float]) -> float:
        """Numerically evaluate with symbol values taken from ``bindings``."""
        raise NotImplementedError

    def substitute(self, bindings: Mapping[str, "Expr | Number"]) -> Expr:
        """Replace symbols with expressions/numbers; returns a new Expr."""
        raise NotImplementedError

    def free_symbols(self) -> frozenset[str]:
        """Names of all symbols appearing in this expression."""
        raise NotImplementedError

    def is_zero(self) -> bool:
        """True iff the expression is the literal constant 0."""
        return isinstance(self, Const) and self.value == 0.0

    def is_one(self) -> bool:
        """True iff the expression is the literal constant 1."""
        return isinstance(self, Const) and self.value == 1.0

    def constant_value(self) -> float | None:
        """The float value if this is a constant, else ``None``."""
        return self.value if isinstance(self, Const) else None


class Const(Expr):
    """A floating-point constant."""

    __slots__ = ("value",)

    def __init__(self, value: Number):
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise SymbolicError(f"Const requires a real number, got {value!r}")
        if not math.isfinite(value):
            raise SymbolicError(f"Const requires a finite number, got {value!r}")
        object.__setattr__(self, "value", float(value))
        object.__setattr__(self, "_key", ("c", float(value)))
        object.__setattr__(self, "_hash", hash(self._key))

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("Expr objects are immutable")

    def evaluate(self, bindings: Mapping[str, float]) -> float:
        return self.value

    def substitute(self, bindings: Mapping[str, Expr | Number]) -> Expr:
        return self

    def free_symbols(self) -> frozenset[str]:
        return frozenset()

    def __str__(self) -> str:
        if self.value == int(self.value) and abs(self.value) < 1e15:
            return str(int(self.value))
        return repr(self.value)


class Sym(Expr):
    """A named symbol, e.g. a small-signal parameter ``gm1``."""

    __slots__ = ("name",)

    def __init__(self, name: str):
        if not name or not isinstance(name, str):
            raise SymbolicError(f"symbol name must be a non-empty str, got {name!r}")
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "_key", ("s", name))
        object.__setattr__(self, "_hash", hash(self._key))

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("Expr objects are immutable")

    def evaluate(self, bindings: Mapping[str, float]) -> float:
        try:
            return float(bindings[self.name])
        except KeyError:
            raise SymbolicError(f"no binding provided for symbol {self.name!r}") from None

    def substitute(self, bindings: Mapping[str, Expr | Number]) -> Expr:
        if self.name in bindings:
            return as_expr(bindings[self.name])
        return self

    def free_symbols(self) -> frozenset[str]:
        return frozenset((self.name,))

    def __str__(self) -> str:
        return self.name


class Add(Expr):
    """A sum of two or more terms (flattened, like terms collected)."""

    __slots__ = ("terms",)

    def __init__(self, terms: tuple[Expr, ...]):
        # Callers must go through add(); this constructor trusts its input.
        object.__setattr__(self, "terms", terms)
        object.__setattr__(self, "_key", ("+",) + tuple(t._key for t in terms))
        object.__setattr__(self, "_hash", hash(self._key))

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("Expr objects are immutable")

    def evaluate(self, bindings: Mapping[str, float]) -> float:
        return math.fsum(t.evaluate(bindings) for t in self.terms)

    def substitute(self, bindings: Mapping[str, Expr | Number]) -> Expr:
        return add(*(t.substitute(bindings) for t in self.terms))

    def free_symbols(self) -> frozenset[str]:
        out: frozenset[str] = frozenset()
        for t in self.terms:
            out |= t.free_symbols()
        return out

    def __str__(self) -> str:
        parts = []
        for i, t in enumerate(self.terms):
            s = str(t)
            if i == 0:
                parts.append(s)
            elif s.startswith("-"):
                parts.append(f" - {s[1:]}")
            else:
                parts.append(f" + {s}")
        return "(" + "".join(parts) + ")"


class Mul(Expr):
    """A product of two or more factors (flattened, powers collected)."""

    __slots__ = ("factors",)

    def __init__(self, factors: tuple[Expr, ...]):
        object.__setattr__(self, "factors", factors)
        object.__setattr__(self, "_key", ("*",) + tuple(f._key for f in factors))
        object.__setattr__(self, "_hash", hash(self._key))

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("Expr objects are immutable")

    def evaluate(self, bindings: Mapping[str, float]) -> float:
        out = 1.0
        for f in self.factors:
            out *= f.evaluate(bindings)
        return out

    def substitute(self, bindings: Mapping[str, Expr | Number]) -> Expr:
        return mul(*(f.substitute(bindings) for f in self.factors))

    def free_symbols(self) -> frozenset[str]:
        out: frozenset[str] = frozenset()
        for f in self.factors:
            out |= f.free_symbols()
        return out

    def __str__(self) -> str:
        head = ""
        factors = list(self.factors)
        if isinstance(factors[0], Const):
            c = factors[0].value
            if c == -1.0 and len(factors) > 1:
                head = "-"
                factors = factors[1:]
        return head + "*".join(str(f) for f in factors)


class Pow(Expr):
    """An integer power of a base expression."""

    __slots__ = ("base", "exponent")

    def __init__(self, base: Expr, exponent: int):
        object.__setattr__(self, "base", base)
        object.__setattr__(self, "exponent", exponent)
        object.__setattr__(self, "_key", ("^", base._key, exponent))
        object.__setattr__(self, "_hash", hash(self._key))

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("Expr objects are immutable")

    def evaluate(self, bindings: Mapping[str, float]) -> float:
        b = self.base.evaluate(bindings)
        if b == 0.0 and self.exponent < 0:
            raise SymbolicError(
                f"division by zero evaluating {self.base!s}**{self.exponent}"
            )
        return b**self.exponent

    def substitute(self, bindings: Mapping[str, Expr | Number]) -> Expr:
        return power(self.base.substitute(bindings), self.exponent)

    def free_symbols(self) -> frozenset[str]:
        return self.base.free_symbols()

    def __str__(self) -> str:
        if self.exponent < 0:
            return f"{self.base}**({self.exponent})"
        return f"{self.base}**{self.exponent}"


# ---------------------------------------------------------------------------
# Smart constructors
# ---------------------------------------------------------------------------

ZERO = Const(0.0)
ONE = Const(1.0)


def as_expr(value: Expr | Number) -> Expr:
    """Coerce a Python number to :class:`Const`; pass expressions through."""
    if isinstance(value, Expr):
        return value
    return Const(value)


def symbols(names: str | Iterable[str]) -> list[Sym]:
    """Create symbols from a whitespace/comma separated string or iterable.

    >>> gm, ro = symbols("gm ro")
    """
    if isinstance(names, str):
        names = names.replace(",", " ").split()
    return [Sym(n) for n in names]


def _monomial_split(term: Expr) -> tuple[float, Expr]:
    """Split a term into (numeric coefficient, monomial-without-constant)."""
    if isinstance(term, Const):
        return term.value, ONE
    if isinstance(term, Mul):
        coeff = 1.0
        rest: list[Expr] = []
        for f in term.factors:
            if isinstance(f, Const):
                coeff *= f.value
            else:
                rest.append(f)
        if not rest:
            return coeff, ONE
        if len(rest) == 1:
            return coeff, rest[0]
        return coeff, Mul(tuple(rest))
    return 1.0, term


def add(*terms: Expr) -> Expr:
    """Build a normalized sum: flatten, collect like terms, fold constants."""
    constant = 0.0
    collected: dict[object, tuple[float, Expr]] = {}
    stack = list(terms)
    stack.reverse()
    while stack:
        t = stack.pop()
        if isinstance(t, Add):
            stack.extend(reversed(t.terms))
            continue
        if isinstance(t, Const):
            constant += t.value
            continue
        coeff, mono = _monomial_split(t)
        if mono.is_one():
            constant += coeff
            continue
        key = mono._key
        if key in collected:
            prev_coeff, _ = collected[key]
            collected[key] = (prev_coeff + coeff, mono)
        else:
            collected[key] = (coeff, mono)

    out: list[Expr] = []
    for coeff, mono in collected.values():
        if coeff == 0.0:
            continue
        if coeff == 1.0:
            out.append(mono)
        else:
            out.append(mul(Const(coeff), mono))
    out.sort(key=lambda e: repr(e._key))
    if constant != 0.0:
        out.append(Const(constant))
    if not out:
        return ZERO
    if len(out) == 1:
        return out[0]
    return Add(tuple(out))


def mul(*factors: Expr) -> Expr:
    """Build a normalized product: flatten, fold constants, collect powers."""
    constant = 1.0
    powers: dict[object, tuple[Expr, int]] = {}
    stack = list(factors)
    stack.reverse()
    while stack:
        f = stack.pop()
        if isinstance(f, Mul):
            stack.extend(reversed(f.factors))
            continue
        if isinstance(f, Const):
            constant *= f.value
            continue
        if isinstance(f, Pow):
            base, exp = f.base, f.exponent
        else:
            base, exp = f, 1
        key = base._key
        if key in powers:
            prev_base, prev_exp = powers[key]
            powers[key] = (prev_base, prev_exp + exp)
        else:
            powers[key] = (base, exp)

    if constant == 0.0:
        return ZERO

    out: list[Expr] = []
    for base, exp in powers.values():
        if exp == 0:
            continue
        if exp == 1:
            out.append(base)
        else:
            out.append(Pow(base, exp))
    out.sort(key=lambda e: repr(e._key))
    if not out:
        return Const(constant)
    # Distribute a non-unit constant into a single Add factor so that
    # expressions like a - a cancel structurally: -1*(x + 1) -> (-x - 1).
    if constant != 1.0 and len(out) == 1 and isinstance(out[0], Add):
        return add(*(mul(Const(constant), t) for t in out[0].terms))
    if constant != 1.0:
        out.insert(0, Const(constant))
    if len(out) == 1:
        return out[0]
    return Mul(tuple(out))


def power(base: Expr, exponent: int) -> Expr:
    """Build a normalized integer power of ``base``."""
    if isinstance(exponent, bool) or not isinstance(exponent, int):
        raise SymbolicError(f"exponent must be an int, got {exponent!r}")
    if exponent == 0:
        if base.is_zero():
            raise SymbolicError("0**0 is undefined")
        return ONE
    if exponent == 1:
        return base
    if isinstance(base, Const):
        if base.value == 0.0 and exponent < 0:
            raise SymbolicError("division by constant zero")
        return Const(base.value**exponent)
    if isinstance(base, Pow):
        return power(base.base, base.exponent * exponent)
    if isinstance(base, Mul):
        return mul(*(power(f, exponent) for f in base.factors))
    return Pow(base, exponent)
