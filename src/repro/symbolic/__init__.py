"""Lightweight symbolic algebra for circuit transfer functions.

The paper's block-level flow derives *symbolic* transfer functions from
signal-flow graphs via Mason's rule, then plugs in numeric small-signal
values ("formulating the numerical transfer function").  This package
implements just enough computer algebra for that:

* :mod:`repro.symbolic.expr` — immutable expression DAGs over named symbols
  (small-signal parameters such as ``gm1`` or ``cgs2``) with constant folding
  and like-term collection;
* :mod:`repro.symbolic.poly` — polynomials in the Laplace variable ``s``
  whose coefficients are expressions;
* :mod:`repro.symbolic.ratfunc` — rational functions in ``s`` (transfer
  functions) with pole/zero extraction once numeric bindings are supplied;
* :mod:`repro.symbolic.compile` — codegen of expressions/polynomials/
  transfer functions into flat numpy callables (CSE'd three-address code)
  that broadcast over arrays of bindings, replacing per-point recursive
  tree walks in sweep and population workloads.

No external CAS is used; expression swell is bounded because opamp-scale
signal-flow graphs have only a handful of loops.
"""

from repro.symbolic.expr import Expr, Sym, Const, symbols, as_expr
from repro.symbolic.poly import Poly
from repro.symbolic.ratfunc import RationalFunction
from repro.symbolic.compile import (
    CompiledExpr,
    CompiledPoly,
    CompiledRationalFunction,
    compile_expr,
    compile_poly,
    compile_ratfunc,
)

__all__ = [
    "Expr",
    "Sym",
    "Const",
    "symbols",
    "as_expr",
    "Poly",
    "RationalFunction",
    "CompiledExpr",
    "CompiledPoly",
    "CompiledRationalFunction",
    "compile_expr",
    "compile_poly",
    "compile_ratfunc",
]
