"""repro — reproduction of "Designer-Driven Topology Optimization for
Pipelined Analog to Digital Converters" (Chien et al., DATE 2005).

The package builds the paper's full stack from scratch:

* a circuit simulator (MNA DC/AC/transient/noise/pole-zero) and compact
  0.25 um CMOS device models (:mod:`repro.analysis`, :mod:`repro.tech`);
* the DPI/SFG + Mason's-rule symbolic transfer-function engine
  (:mod:`repro.sfg`, :mod:`repro.symbolic`);
* annealing-based block synthesis with hybrid equation + simulation
  evaluation — the NeoCircuit substitute (:mod:`repro.synth`);
* candidate enumeration, spec translation and power models
  (:mod:`repro.enumeration`, :mod:`repro.specs`, :mod:`repro.power`);
* the behavioral pipelined-ADC simulator (:mod:`repro.behavioral`);
* the topology-optimization flow and the experiments regenerating every
  figure (:mod:`repro.flow`, :mod:`repro.experiments`);
* the execution engine (backends, wave scheduler, persistent block cache —
  :mod:`repro.engine`) and the campaign layer for batched design-space
  sweeps with cross-scenario synthesis reuse (:mod:`repro.campaign`);
* the async optimization service — jobs over HTTP with content-keyed
  request coalescing and streaming progress (:mod:`repro.service`).

Quickstart::

    from repro import AdcSpec, optimize_topology
    result = optimize_topology(AdcSpec(resolution_bits=13))
    print(result.best.label)   # '4-3-2'
"""

from repro.campaign import CampaignGrid, CampaignResult, run_campaign
from repro.engine import (
    FlowConfig,
    ProcessPoolBackend,
    SerialBackend,
    ThreadPoolBackend,
)
from repro.enumeration import PipelineCandidate, enumerate_candidates
from repro.flow import BlockCache, PersistentBlockCache, optimize_topology
from repro.power import candidate_power
from repro.specs import AdcSpec, plan_stages
from repro.tech import CMOS025, CMOS025_SLOW

__version__ = "1.3.0"

__all__ = [
    "AdcSpec",
    "BlockCache",
    "CMOS025",
    "CMOS025_SLOW",
    "CampaignGrid",
    "CampaignResult",
    "FlowConfig",
    "PersistentBlockCache",
    "PipelineCandidate",
    "ProcessPoolBackend",
    "SerialBackend",
    "ThreadPoolBackend",
    "enumerate_candidates",
    "plan_stages",
    "candidate_power",
    "optimize_topology",
    "run_campaign",
    "__version__",
]
