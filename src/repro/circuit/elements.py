"""Circuit elements.

Every element is an immutable dataclass naming its terminals (net names) and
parameters.  Analysis code dispatches on the element type; elements carry no
behaviour beyond validation, in keeping with the netlist-as-data design.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.errors import NetlistError
from repro.tech.process import MosfetParams


@dataclass(frozen=True)
class Element:
    """Base class: a named element; subclasses define terminals."""

    name: str

    def __post_init__(self) -> None:
        if not self.name:
            raise NetlistError("element name must be non-empty")

    @property
    def nodes(self) -> tuple[str, ...]:
        """Net names this element touches, in terminal order."""
        raise NotImplementedError


def _check_positive(value: float, what: str) -> None:
    if value <= 0 or value != value:  # also rejects NaN
        raise NetlistError(f"{what} must be positive, got {value!r}")


@dataclass(frozen=True)
class Resistor(Element):
    """A linear resistor between ``n1`` and ``n2``."""

    n1: str
    n2: str
    resistance: float

    def __post_init__(self) -> None:
        super().__post_init__()
        _check_positive(self.resistance, "resistance")

    @property
    def nodes(self) -> tuple[str, ...]:
        return (self.n1, self.n2)


@dataclass(frozen=True)
class Capacitor(Element):
    """A linear capacitor between ``n1`` and ``n2``."""

    n1: str
    n2: str
    capacitance: float

    def __post_init__(self) -> None:
        super().__post_init__()
        _check_positive(self.capacitance, "capacitance")

    @property
    def nodes(self) -> tuple[str, ...]:
        return (self.n1, self.n2)


@dataclass(frozen=True)
class Inductor(Element):
    """A linear inductor between ``n1`` and ``n2`` (MNA branch element)."""

    n1: str
    n2: str
    inductance: float

    def __post_init__(self) -> None:
        super().__post_init__()
        _check_positive(self.inductance, "inductance")

    @property
    def nodes(self) -> tuple[str, ...]:
        return (self.n1, self.n2)


@dataclass(frozen=True)
class VoltageSource(Element):
    """An independent voltage source from ``positive`` to ``negative``.

    ``dc`` is the operating-point value; ``ac`` the small-signal magnitude;
    ``waveform`` (optional) a function of time for transient analysis, which
    overrides ``dc`` when present.
    """

    positive: str
    negative: str
    dc: float = 0.0
    ac: float = 0.0
    waveform: Callable[[float], float] | None = field(default=None, compare=False)

    @property
    def nodes(self) -> tuple[str, ...]:
        return (self.positive, self.negative)

    def value_at(self, time: float) -> float:
        """Source voltage at ``time`` for transient analysis."""
        if self.waveform is not None:
            return self.waveform(time)
        return self.dc


@dataclass(frozen=True)
class CurrentSource(Element):
    """An independent current source pushing current from ``positive`` to
    ``negative`` through the source (i.e. out of the ``negative`` terminal
    into the circuit, SPICE convention)."""

    positive: str
    negative: str
    dc: float = 0.0
    ac: float = 0.0
    waveform: Callable[[float], float] | None = field(default=None, compare=False)

    @property
    def nodes(self) -> tuple[str, ...]:
        return (self.positive, self.negative)

    def value_at(self, time: float) -> float:
        """Source current at ``time`` for transient analysis."""
        if self.waveform is not None:
            return self.waveform(time)
        return self.dc


@dataclass(frozen=True)
class Vcvs(Element):
    """Voltage-controlled voltage source: V(out) = gain * V(ctrl)."""

    out_positive: str
    out_negative: str
    ctrl_positive: str
    ctrl_negative: str
    gain: float

    @property
    def nodes(self) -> tuple[str, ...]:
        return (self.out_positive, self.out_negative, self.ctrl_positive, self.ctrl_negative)


@dataclass(frozen=True)
class Vccs(Element):
    """Voltage-controlled current source: I(out+ -> out-) = gm * V(ctrl)."""

    out_positive: str
    out_negative: str
    ctrl_positive: str
    ctrl_negative: str
    gm: float

    @property
    def nodes(self) -> tuple[str, ...]:
        return (self.out_positive, self.out_negative, self.ctrl_positive, self.ctrl_negative)


@dataclass(frozen=True)
class Mosfet(Element):
    """A MOSFET instance: terminals drain, gate, source, bulk.

    The compact model lives in :mod:`repro.tech.mosfet`; the instance holds
    geometry (``w``, ``l``) and a parameter set.  ``mult`` is the parallel
    multiplicity (m-factor).
    """

    drain: str
    gate: str
    source: str
    bulk: str
    params: MosfetParams
    w: float
    l: float
    mult: int = 1

    def __post_init__(self) -> None:
        super().__post_init__()
        _check_positive(self.w, "width")
        _check_positive(self.l, "length")
        if self.mult < 1:
            raise NetlistError(f"mult must be >= 1, got {self.mult}")

    @property
    def nodes(self) -> tuple[str, ...]:
        return (self.drain, self.gate, self.source, self.bulk)


@dataclass(frozen=True)
class Switch(Element):
    """An ideal clocked switch modelled as a two-state resistor.

    ``phase`` maps time [s] to True (closed, ``r_on``) or False (open,
    ``r_off``).  In DC and AC analyses the switch takes its state at t=0.
    """

    n1: str
    n2: str
    phase: Callable[[float], bool] = field(compare=False)
    r_on: float = 100.0
    r_off: float = 1e12

    def __post_init__(self) -> None:
        super().__post_init__()
        _check_positive(self.r_on, "r_on")
        _check_positive(self.r_off, "r_off")

    @property
    def nodes(self) -> tuple[str, ...]:
        return (self.n1, self.n2)

    def resistance_at(self, time: float) -> float:
        """Switch resistance at ``time``."""
        return self.r_on if self.phase(time) else self.r_off
