"""Fluent construction helper for circuits.

``CircuitBuilder`` auto-names elements (``r1``, ``m3``, ...) and returns the
created element so callers can keep references.  It exists purely for
ergonomics; everything can also be done with :class:`Circuit.add`.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Callable

from repro.circuit.elements import (
    Capacitor,
    CurrentSource,
    Inductor,
    Mosfet,
    Resistor,
    Switch,
    Vccs,
    Vcvs,
    VoltageSource,
)
from repro.circuit.netlist import Circuit
from repro.tech.process import MosfetParams, Technology


class CircuitBuilder:
    """Builds a :class:`Circuit` with automatically numbered element names."""

    def __init__(self, name: str = "circuit", tech: Technology | None = None):
        self.circuit = Circuit(name)
        self.tech = tech
        self._counters: dict[str, int] = defaultdict(int)

    def _next_name(self, prefix: str, name: str | None) -> str:
        if name is not None:
            return name
        self._counters[prefix] += 1
        return f"{prefix}{self._counters[prefix]}"

    def r(self, n1: str, n2: str, resistance: float, name: str | None = None) -> Resistor:
        """Add a resistor."""
        element = Resistor(self._next_name("r", name), n1, n2, resistance)
        self.circuit.add(element)
        return element

    def c(self, n1: str, n2: str, capacitance: float, name: str | None = None) -> Capacitor:
        """Add a capacitor."""
        element = Capacitor(self._next_name("c", name), n1, n2, capacitance)
        self.circuit.add(element)
        return element

    def l(self, n1: str, n2: str, inductance: float, name: str | None = None) -> Inductor:
        """Add an inductor."""
        element = Inductor(self._next_name("l", name), n1, n2, inductance)
        self.circuit.add(element)
        return element

    def v(
        self,
        positive: str,
        negative: str,
        dc: float = 0.0,
        ac: float = 0.0,
        waveform: Callable[[float], float] | None = None,
        name: str | None = None,
    ) -> VoltageSource:
        """Add an independent voltage source."""
        element = VoltageSource(
            self._next_name("v", name), positive, negative, dc, ac, waveform
        )
        self.circuit.add(element)
        return element

    def i(
        self,
        positive: str,
        negative: str,
        dc: float = 0.0,
        ac: float = 0.0,
        waveform: Callable[[float], float] | None = None,
        name: str | None = None,
    ) -> CurrentSource:
        """Add an independent current source."""
        element = CurrentSource(
            self._next_name("i", name), positive, negative, dc, ac, waveform
        )
        self.circuit.add(element)
        return element

    def vcvs(
        self,
        out_positive: str,
        out_negative: str,
        ctrl_positive: str,
        ctrl_negative: str,
        gain: float,
        name: str | None = None,
    ) -> Vcvs:
        """Add a voltage-controlled voltage source."""
        element = Vcvs(
            self._next_name("e", name),
            out_positive,
            out_negative,
            ctrl_positive,
            ctrl_negative,
            gain,
        )
        self.circuit.add(element)
        return element

    def vccs(
        self,
        out_positive: str,
        out_negative: str,
        ctrl_positive: str,
        ctrl_negative: str,
        gm: float,
        name: str | None = None,
    ) -> Vccs:
        """Add a voltage-controlled current source."""
        element = Vccs(
            self._next_name("g", name),
            out_positive,
            out_negative,
            ctrl_positive,
            ctrl_negative,
            gm,
        )
        self.circuit.add(element)
        return element

    def _mos(
        self,
        polarity: str,
        drain: str,
        gate: str,
        source: str,
        bulk: str,
        w: float,
        l: float,
        mult: int,
        name: str | None,
        params: MosfetParams | None,
    ) -> Mosfet:
        if params is None:
            if self.tech is None:
                raise ValueError(
                    "CircuitBuilder needs a Technology (or explicit params) for MOSFETs"
                )
            params = self.tech.device(polarity)
        element = Mosfet(
            self._next_name("m", name), drain, gate, source, bulk, params, w, l, mult
        )
        self.circuit.add(element)
        return element

    def nmos(
        self,
        drain: str,
        gate: str,
        source: str,
        bulk: str = "gnd",
        w: float = 1e-6,
        l: float = 0.25e-6,
        mult: int = 1,
        name: str | None = None,
        params: MosfetParams | None = None,
    ) -> Mosfet:
        """Add an NMOS transistor (bulk defaults to ground)."""
        return self._mos("nmos", drain, gate, source, bulk, w, l, mult, name, params)

    def pmos(
        self,
        drain: str,
        gate: str,
        source: str,
        bulk: str,
        w: float = 2e-6,
        l: float = 0.25e-6,
        mult: int = 1,
        name: str | None = None,
        params: MosfetParams | None = None,
    ) -> Mosfet:
        """Add a PMOS transistor (bulk is usually the supply net)."""
        return self._mos("pmos", drain, gate, source, bulk, w, l, mult, name, params)

    def switch(
        self,
        n1: str,
        n2: str,
        phase: Callable[[float], bool],
        r_on: float = 100.0,
        r_off: float = 1e12,
        name: str | None = None,
    ) -> Switch:
        """Add an ideal clocked switch."""
        element = Switch(self._next_name("s", name), n1, n2, phase, r_on, r_off)
        self.circuit.add(element)
        return element

    def build(self, validate: bool = True) -> Circuit:
        """Finish building; optionally validate the netlist."""
        if validate:
            self.circuit.validate()
        return self.circuit
