"""Circuit netlist representation.

A :class:`~repro.circuit.netlist.Circuit` is a named collection of elements
connected by string-named nets (``"0"`` and ``"gnd"`` are ground).  The
representation is *passive data*: all analysis (stamping, solving) lives in
:mod:`repro.analysis`, so circuits can be built, inspected and serialized
without pulling in numerics.
"""

from repro.circuit.elements import (
    Capacitor,
    CurrentSource,
    Element,
    Inductor,
    Mosfet,
    Resistor,
    Switch,
    Vccs,
    Vcvs,
    VoltageSource,
)
from repro.circuit.netlist import GROUND_NAMES, Circuit

__all__ = [
    "Circuit",
    "GROUND_NAMES",
    "Element",
    "Resistor",
    "Capacitor",
    "Inductor",
    "VoltageSource",
    "CurrentSource",
    "Vcvs",
    "Vccs",
    "Mosfet",
    "Switch",
]
