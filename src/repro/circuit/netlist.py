"""The :class:`Circuit` container: a named set of elements over string nets."""

from __future__ import annotations

from collections import defaultdict
from collections.abc import Iterator

from repro.circuit.elements import Element
from repro.errors import NetlistError

#: Net names treated as the global reference node.
GROUND_NAMES = frozenset({"0", "gnd", "GND"})


class Circuit:
    """A flat netlist: elements connected by string-named nets.

    Nets are created implicitly by referencing them from an element.  Names
    in :data:`GROUND_NAMES` are the reference node and are excluded from the
    unknowns of any analysis.
    """

    def __init__(self, name: str = "circuit"):
        if not name:
            raise NetlistError("circuit name must be non-empty")
        self.name = name
        self._elements: dict[str, Element] = {}
        self._topology_key: tuple | None = None

    # -- construction -----------------------------------------------------------

    def add(self, element: Element) -> Element:
        """Add an element; names must be unique within the circuit."""
        if element.name in self._elements:
            raise NetlistError(
                f"duplicate element name {element.name!r} in circuit {self.name!r}"
            )
        self._elements[element.name] = element
        self._topology_key = None
        return element

    def extend(self, elements: Iterator[Element] | list[Element]) -> None:
        """Add several elements."""
        for element in elements:
            self.add(element)

    def remove(self, name: str) -> Element:
        """Remove and return the element called ``name``."""
        try:
            element = self._elements.pop(name)
        except KeyError:
            raise NetlistError(f"no element named {name!r}") from None
        self._topology_key = None
        return element

    def replace(self, element: Element) -> Element:
        """Replace the element with the same name (must exist)."""
        if element.name not in self._elements:
            raise NetlistError(f"no element named {element.name!r} to replace")
        self._elements[element.name] = element
        self._topology_key = None
        return element

    def topology_key(self) -> tuple:
        """Hashable structural identity: element classes, names and nets.

        Two circuits with equal keys have identical MNA layouts and stamp
        *structure* — they may differ only in element values (resistances,
        device geometry, source levels).  This is what the layout cache in
        :mod:`repro.analysis.mna` and the compiled stamp templates in
        :mod:`repro.analysis.template` key on: a sizing loop rebuilds the
        same testbench topology hundreds of times with new values, and the
        key lets every rebuild reuse the structural work.
        """
        if self._topology_key is None:
            self._topology_key = tuple(
                (type(e).__name__, e.name, e.nodes)
                for e in self._elements.values()
            )
        return self._topology_key

    # -- inspection ----------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._elements)

    def __iter__(self) -> Iterator[Element]:
        return iter(self._elements.values())

    def __contains__(self, name: str) -> bool:
        return name in self._elements

    def __getitem__(self, name: str) -> Element:
        try:
            return self._elements[name]
        except KeyError:
            raise NetlistError(f"no element named {name!r}") from None

    @property
    def elements(self) -> tuple[Element, ...]:
        """All elements in insertion order."""
        return tuple(self._elements.values())

    def nets(self) -> list[str]:
        """All net names (including ground aliases), sorted, in the circuit."""
        seen: set[str] = set()
        for element in self._elements.values():
            seen.update(element.nodes)
        return sorted(seen)

    def non_ground_nets(self) -> list[str]:
        """Nets that are analysis unknowns, in deterministic order."""
        return [n for n in self.nets() if n not in GROUND_NAMES]

    def elements_of(self, element_type: type) -> list[Element]:
        """All elements of (a subclass of) the given type."""
        return [e for e in self._elements.values() if isinstance(e, element_type)]

    def connectivity(self) -> dict[str, list[str]]:
        """Map from net name to the element names touching it."""
        table: dict[str, list[str]] = defaultdict(list)
        for element in self._elements.values():
            for net in set(element.nodes):
                table[net].append(element.name)
        return dict(table)

    def validate(self) -> None:
        """Sanity-check the netlist; raises :class:`NetlistError` on problems.

        Checks that a ground reference exists and that no net is touched by a
        single terminal only (floating net), which would make MNA singular.
        """
        if not self._elements:
            raise NetlistError(f"circuit {self.name!r} is empty")
        nets = self.nets()
        if not any(n in GROUND_NAMES for n in nets):
            raise NetlistError(f"circuit {self.name!r} has no ground reference")
        terminal_counts: dict[str, int] = defaultdict(int)
        for element in self._elements.values():
            for net in element.nodes:
                terminal_counts[net] += 1
        floating = [
            net
            for net, count in terminal_counts.items()
            if count < 2 and net not in GROUND_NAMES
        ]
        if floating:
            raise NetlistError(
                f"circuit {self.name!r} has floating nets: {sorted(floating)}"
            )

    def __repr__(self) -> str:
        return f"Circuit({self.name!r}, {len(self)} elements, {len(self.nets())} nets)"
