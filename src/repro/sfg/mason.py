"""Mason's gain formula over a signal-flow graph.

``H = sum_k P_k * Delta_k / Delta`` where

* ``P_k`` are the forward-path gains from source to sink,
* ``Delta = 1 - sum(L_i) + sum(L_i L_j, non-touching) - ...`` is the graph
  determinant over all sets of pairwise non-touching loops, and
* ``Delta_k`` is the determinant of the subgraph not touching path ``k``.

All arithmetic is over symbolic rational functions, so the result is the
circuit's symbolic transfer function — the central object of the paper's
block-level evaluation flow.
"""

from __future__ import annotations

from repro.errors import SfgError
from repro.sfg.graph import SignalFlowGraph
from repro.symbolic import RationalFunction

#: Guard against combinatorial blow-up on pathological graphs.
_MAX_LOOPS = 64


def _determinant(
    loop_nodes: list[frozenset[str]], loop_gains: list[RationalFunction]
) -> RationalFunction:
    """Graph determinant over pairwise non-touching loop subsets."""
    delta = RationalFunction.one()
    n = len(loop_nodes)

    def recurse(start: int, used: frozenset[str], gain: RationalFunction, size: int):
        nonlocal delta
        for k in range(start, n):
            if used & loop_nodes[k]:
                continue
            term_gain = gain * loop_gains[k]
            sign = -1.0 if (size + 1) % 2 == 1 else 1.0
            delta = delta + term_gain * sign
            recurse(k + 1, used | loop_nodes[k], term_gain, size + 1)

    recurse(0, frozenset(), RationalFunction.one(), 0)
    return delta


def mason_gain(graph: SignalFlowGraph, source: str, sink: str) -> RationalFunction:
    """Symbolic transfer from ``source`` to ``sink`` by Mason's rule."""
    if source == sink:
        return RationalFunction.one()
    paths = graph.forward_paths(source, sink)
    if not paths:
        return RationalFunction.zero()

    cycles = graph.loops()
    if len(cycles) > _MAX_LOOPS:
        raise SfgError(
            f"graph {graph.name!r} has {len(cycles)} loops; Mason's rule would "
            f"blow up (limit {_MAX_LOOPS})"
        )
    loop_nodes = [frozenset(c) for c in cycles]
    loop_gains = [graph.loop_gain(c) for c in cycles]

    delta = _determinant(loop_nodes, loop_gains)
    if delta.is_zero():
        raise SfgError("graph determinant is identically zero")

    numerator = RationalFunction.zero()
    for path in paths:
        path_nodes = frozenset(path)
        # Keep only the loops that do not touch this forward path.
        keep = [k for k, nodes in enumerate(loop_nodes) if not (nodes & path_nodes)]
        delta_k = _determinant(
            [loop_nodes[k] for k in keep], [loop_gains[k] for k in keep]
        )
        numerator = numerator + graph.path_gain(path) * delta_k

    return numerator / delta
