"""Signal-flow graph container with rational-function branch weights."""

from __future__ import annotations

from collections.abc import Iterator

import networkx as nx

from repro.errors import SfgError
from repro.symbolic import RationalFunction
from repro.symbolic.ratfunc import as_ratfunc


class SignalFlowGraph:
    """A directed graph whose edges carry transfer weights.

    Parallel branches between the same pair of nodes are summed at insertion
    time, which is the signal-flow-graph composition rule.
    """

    def __init__(self, name: str = "sfg"):
        self.name = name
        self._graph = nx.DiGraph()

    def add_node(self, node: str) -> None:
        """Add a signal node (idempotent)."""
        self._graph.add_node(node)

    def add_branch(self, src: str, dst: str, weight) -> None:
        """Add a branch; parallel branches accumulate by addition."""
        if src == dst:
            raise SfgError(f"self-loop branch on {src!r}: use a loop via other nodes")
        weight = as_ratfunc(weight)
        if self._graph.has_edge(src, dst):
            self._graph[src][dst]["weight"] = self._graph[src][dst]["weight"] + weight
        else:
            self._graph.add_edge(src, dst, weight=weight)

    def weight(self, src: str, dst: str) -> RationalFunction:
        """Weight of the branch src -> dst."""
        try:
            return self._graph[src][dst]["weight"]
        except KeyError:
            raise SfgError(f"no branch {src!r} -> {dst!r}") from None

    @property
    def nodes(self) -> list[str]:
        """All signal nodes."""
        return list(self._graph.nodes)

    def branches(self) -> Iterator[tuple[str, str, RationalFunction]]:
        """Iterate (src, dst, weight) over all branches."""
        for src, dst, data in self._graph.edges(data=True):
            yield src, dst, data["weight"]

    def has_node(self, node: str) -> bool:
        """True if the node exists."""
        return node in self._graph

    def forward_paths(self, src: str, dst: str) -> list[list[str]]:
        """All simple paths from src to dst (Mason's forward paths)."""
        if not self.has_node(src):
            raise SfgError(f"unknown source node {src!r}")
        if not self.has_node(dst):
            raise SfgError(f"unknown sink node {dst!r}")
        return [list(p) for p in nx.all_simple_paths(self._graph, src, dst)]

    def loops(self) -> list[list[str]]:
        """All simple directed cycles (Mason's loops)."""
        return [list(c) for c in nx.simple_cycles(self._graph)]

    def path_gain(self, path: list[str]) -> RationalFunction:
        """Product of branch weights along a node path."""
        gain = RationalFunction.one()
        for a, b in zip(path, path[1:]):
            gain = gain * self.weight(a, b)
        return gain

    def loop_gain(self, cycle: list[str]) -> RationalFunction:
        """Product of branch weights around a cycle (closing edge included)."""
        gain = self.path_gain(cycle)
        return gain * self.weight(cycle[-1], cycle[0])

    def __repr__(self) -> str:
        return (
            f"SignalFlowGraph({self.name!r}, {self._graph.number_of_nodes()} nodes, "
            f"{self._graph.number_of_edges()} branches)"
        )
