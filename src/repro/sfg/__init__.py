"""Driving-Point Impedance / Signal-Flow Graph circuit analysis.

This package implements the symbolic half of the paper's block-level flow:

1. :mod:`repro.sfg.dpi` reads a linear(ized) circuit and builds its
   signal-flow graph by the Driving-Point Impedance method: each node
   equation ``V_k = Z_k * (I_k + sum_j y_kj V_j)`` becomes a set of SFG
   branches with rational-function weights carrying *symbolic* small-signal
   parameters (``gm_m1``, ``cgs_m2``, ...).
2. :mod:`repro.sfg.mason` applies Mason's gain formula to the graph,
   producing the symbolic transfer function.
3. Binding the symbols to values extracted from a DC simulation yields the
   "numerical transfer function" the paper evaluates in each synthesis
   iteration.
"""

from repro.sfg.graph import SignalFlowGraph
from repro.sfg.mason import mason_gain
from repro.sfg.dpi import build_sfg, small_signal_bindings

__all__ = [
    "SignalFlowGraph",
    "mason_gain",
    "build_sfg",
    "small_signal_bindings",
]
