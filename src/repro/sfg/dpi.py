"""Build a signal-flow graph from a circuit by the DPI method.

The Driving-Point Impedance formulation rewrites each node equation

``sum_j Y[k,j] * V_j = I_k``   as   ``V_k = Z_k * (I_k - sum_{j!=k} Y[k,j] V_j)``

with ``Z_k = 1 / Y[k,k]`` the driving-point impedance of node ``k``.  Each
term becomes an SFG branch, so Mason's rule recovers any transfer function
symbolically.  Admittances are built from *named symbols* — one per element
parameter (``g_r1``, ``c_cl``, ``gm_m1``, ``cgs_m1``, ...) — and
:func:`small_signal_bindings` extracts their numeric values from a DC
solution: exactly the paper's "DC simulation to extract small-signal values,
then formulate the numerical transfer function" flow.

Conventions:

* Nets driven by DC-only voltage sources (supplies, bias) are AC grounds.
* The input is the single source carrying a nonzero ``ac`` value; a voltage
  input's positive net becomes the SFG source node, a current input adds a
  source node named after the element.
* VCVS and inductors are not supported in DPI mode (not needed for the
  MDAC/opamp circuits this flow targets).
"""

from __future__ import annotations

from collections import defaultdict

from repro.analysis.dc import DcSolution
from repro.circuit.elements import (
    Capacitor,
    CurrentSource,
    Inductor,
    Mosfet,
    Resistor,
    Switch,
    Vccs,
    Vcvs,
    VoltageSource,
)
from repro.circuit.netlist import GROUND_NAMES, Circuit
from repro.errors import SfgError
from repro.sfg.graph import SignalFlowGraph
from repro.symbolic import Poly, RationalFunction, Sym
from repro.symbolic.ratfunc import as_ratfunc


def _classify_nodes(circuit: Circuit) -> tuple[str | None, set[str]]:
    """Find the AC input net (or None for current input) and AC-ground nets."""
    ac_grounds: set[str] = set()
    input_net: str | None = None
    for element in circuit.elements_of(VoltageSource):
        pos, neg = element.positive, element.negative
        if neg not in GROUND_NAMES:
            raise SfgError(
                f"voltage source {element.name!r} must be ground-referenced for DPI"
            )
        if element.ac != 0.0:
            if input_net is not None:
                raise SfgError("DPI supports exactly one AC input source")
            input_net = pos
        else:
            ac_grounds.add(pos)
    return input_net, ac_grounds


def build_sfg(circuit: Circuit, name: str | None = None) -> tuple[SignalFlowGraph, str]:
    """Build the DPI signal-flow graph of ``circuit``.

    Returns ``(graph, input_node)``.  The graph's signal nodes are the net
    names; use :func:`repro.sfg.mason.mason_gain` with the input node and an
    output net to obtain the symbolic transfer function.
    """
    input_net, ac_grounds = _classify_nodes(circuit)

    current_inputs = [e for e in circuit.elements_of(CurrentSource) if e.ac != 0.0]
    if input_net is None and not current_inputs:
        raise SfgError("circuit has no AC input (set ac= on one source)")
    if (input_net is not None and current_inputs) or len(current_inputs) > 1:
        raise SfgError("DPI supports exactly one AC input source")

    def node_kind(net: str) -> str:
        if net in GROUND_NAMES or net in ac_grounds:
            return "ground"
        if input_net is not None and net == input_net:
            return "input"
        return "signal"

    signal_nets = [n for n in circuit.non_ground_nets() if node_kind(n) == "signal"]

    # Matrix-entry bookkeeping: entry[(k, j)] accumulates Y[k, j] for rows k
    # that are signal nodes; columns j may be signal or input nodes.
    # diag[k] holds Y[k, k]; rhs[k] holds direct current injections.
    diag: dict[str, RationalFunction] = defaultdict(RationalFunction.zero)
    entry: dict[tuple[str, str], RationalFunction] = defaultdict(RationalFunction.zero)
    rhs: dict[str, RationalFunction] = defaultdict(RationalFunction.zero)

    def add_entry(row: str, col: str, value: RationalFunction) -> None:
        """Accumulate the matrix entry Y[row, col] (row must be a signal node)."""
        kind_col = node_kind(col)
        if kind_col == "ground":
            return
        if col == row:
            diag[row] = diag[row] + value
        else:
            entry[(row, col)] = entry[(row, col)] + value

    def stamp_admittance(n1: str, n2: str, y: RationalFunction) -> None:
        """Two-terminal admittance: Y[a,a] += y, Y[a,b] -= y (both rows)."""
        for a, b in ((n1, n2), (n2, n1)):
            if node_kind(a) != "signal":
                continue
            diag[a] = diag[a] + y
            add_entry(a, b, -y)

    def stamp_vccs(op_: str, on_: str, cp: str, cn: str, gm: RationalFunction) -> None:
        """Current gm*(v_cp - v_cn) leaving op_ into on_."""
        for row, row_sign in ((op_, 1.0), (on_, -1.0)):
            if node_kind(row) != "signal":
                continue
            for ctrl, ctrl_sign in ((cp, 1.0), (cn, -1.0)):
                add_entry(row, ctrl, gm * (row_sign * ctrl_sign))

    for element in circuit:
        if isinstance(element, (Resistor, Switch)):
            g = as_ratfunc(Sym(f"g_{element.name}"))
            stamp_admittance(element.nodes[0], element.nodes[1], g)
        elif isinstance(element, Capacitor):
            y = RationalFunction(Poly([0.0, Sym(f"c_{element.name}")]))
            stamp_admittance(element.n1, element.n2, y)
        elif isinstance(element, VoltageSource):
            continue  # classified already
        elif isinstance(element, CurrentSource):
            continue  # handled below (input) or open (dc bias)
        elif isinstance(element, Vccs):
            stamp_vccs(
                element.out_positive,
                element.out_negative,
                element.ctrl_positive,
                element.ctrl_negative,
                as_ratfunc(Sym(f"gm_{element.name}")),
            )
        elif isinstance(element, Mosfet):
            n = element.name
            d, g_, s, b = element.drain, element.gate, element.source, element.bulk
            stamp_vccs(d, s, g_, s, as_ratfunc(Sym(f"gm_{n}")))
            stamp_vccs(d, s, b, s, as_ratfunc(Sym(f"gmb_{n}")))
            stamp_admittance(d, s, as_ratfunc(Sym(f"gds_{n}")))
            for cap_name, t1, t2 in (
                ("cgs", g_, s),
                ("cgd", g_, d),
                ("cgb", g_, b),
                ("cdb", d, b),
                ("csb", s, b),
            ):
                y = RationalFunction(Poly([0.0, Sym(f"{cap_name}_{n}")]))
                stamp_admittance(t1, t2, y)
        elif isinstance(element, (Vcvs, Inductor)):
            raise SfgError(
                f"element {element.name!r} ({type(element).__name__}) is not "
                "supported by the DPI/SFG construction"
            )
        else:
            raise SfgError(f"unsupported element type {type(element).__name__}")

    # Current-source input: SPICE convention removes current from the
    # positive terminal, so I_k = -1 at positive, +1 at negative.
    source_node = input_net
    for src in current_inputs:
        source_node = src.name
        if node_kind(src.positive) == "signal":
            rhs[src.positive] = rhs[src.positive] - as_ratfunc(1.0)
        if node_kind(src.negative) == "signal":
            rhs[src.negative] = rhs[src.negative] + as_ratfunc(1.0)

    graph = SignalFlowGraph(name or f"sfg_{circuit.name}")
    graph.add_node(source_node)
    for net in signal_nets:
        graph.add_node(net)

    for k in signal_nets:
        y_kk = diag[k]
        if y_kk.is_zero():
            raise SfgError(f"node {k!r} has no self-admittance; DPI undefined")
        # V_k = (I_k - sum_{j!=k} Y[k,j] V_j) / Y[k,k]
        for (row, j), y_kj in entry.items():
            if row != k or y_kj.is_zero():
                continue
            graph.add_branch(j, k, -y_kj / y_kk)
        injection = rhs[k]
        if not injection.is_zero():
            graph.add_branch(source_node, k, injection / y_kk)

    return graph, source_node


def small_signal_bindings(circuit: Circuit, op: DcSolution) -> dict[str, float]:
    """Numeric values for every symbol the DPI construction may emit.

    Resistors/switches bind their conductance, capacitors their value, and
    MOSFETs bind gm/gds/gmb and the five compact-model capacitances from the
    operating point ``op``.
    """
    bindings: dict[str, float] = {}
    for element in circuit:
        if isinstance(element, Resistor):
            bindings[f"g_{element.name}"] = 1.0 / element.resistance
        elif isinstance(element, Switch):
            bindings[f"g_{element.name}"] = 1.0 / element.resistance_at(0.0)
        elif isinstance(element, Capacitor):
            bindings[f"c_{element.name}"] = element.capacitance
        elif isinstance(element, Vccs):
            bindings[f"gm_{element.name}"] = element.gm
        elif isinstance(element, Mosfet):
            device = op.device_ops[element.name]
            n = element.name
            bindings[f"gm_{n}"] = device.gm
            bindings[f"gds_{n}"] = device.gds
            bindings[f"gmb_{n}"] = device.gmb
            bindings[f"cgs_{n}"] = device.cgs
            bindings[f"cgd_{n}"] = device.cgd
            bindings[f"cgb_{n}"] = device.cgb
            bindings[f"cdb_{n}"] = device.cdb
            bindings[f"csb_{n}"] = device.csb
    return bindings
