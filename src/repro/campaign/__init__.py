"""Batched design-space sweeps on top of the execution engine.

The campaign layer turns the per-spec flow into a product surface: describe
a grid of converter targets (resolution × sample rate × flow mode ×
technology corner), run it as *one batch* that shares an execution backend,
a campaign-wide synthesis ledger and the persistent block cache across all
scenarios, and get back a structured results store (JSONL records) plus a
figure-of-merit comparison report.

Layering: ``campaign`` sits above ``flow`` and below ``experiments`` /
``cli`` — the figure drivers and the ``repro-adc campaign`` command are
thin clients of :func:`run_campaign`.  See ``docs/architecture.md``.

Quickstart::

    from repro.campaign import CampaignGrid, run_campaign

    grid = CampaignGrid(resolutions=(10, 11, 12, 13),
                        sample_rates_hz=(20e6, 40e6, 60e6))
    campaign = run_campaign(grid)
    print(campaign.report())
    campaign.save("campaign-out")     # results.jsonl + report.txt + meta.json
"""

from repro.campaign.grid import (
    CampaignGrid,
    Scenario,
    parse_int_axis,
    parse_rate_axis,
)
from repro.campaign.report import comparison_report
from repro.campaign.runner import (
    CampaignResult,
    LedgerBackedCache,
    ScenarioResult,
    SynthesisLedger,
    run_campaign,
)
from repro.campaign.store import (
    CampaignRecord,
    read_records,
    walden_fom,
    write_records,
)

__all__ = [
    "CampaignGrid",
    "CampaignRecord",
    "CampaignResult",
    "LedgerBackedCache",
    "Scenario",
    "ScenarioResult",
    "SynthesisLedger",
    "comparison_report",
    "parse_int_axis",
    "parse_rate_axis",
    "read_records",
    "run_campaign",
    "walden_fom",
    "write_records",
]
