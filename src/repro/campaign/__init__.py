"""Batched design-space sweeps on top of the execution engine.

The campaign layer turns the per-spec flow into a product surface: describe
a grid of converter targets (resolution × sample rate × flow mode ×
technology corner), run it as *one batch* that shares an execution backend,
a campaign-wide synthesis ledger and the persistent block cache across all
scenarios, and get back a structured results store (JSONL records) plus a
figure-of-merit comparison report.

Store-backed campaigns are a checkpointed work queue: a manifest pins the
store to one grid + config (``manifest.py``), every completed scenario
commits its record and ledger journal (``checkpoint.py``) so an
interrupted run resumes byte-identically, and grids shard
deterministically across machines (``grid.shard_scenarios``) with
``merge.merge_shards`` fusing the shard stores back into the single-run
store.

Layering: ``campaign`` sits above ``flow`` and below ``experiments`` /
``cli`` — the figure drivers and the ``repro-adc campaign`` command are
thin clients of :func:`run_campaign`.  See ``docs/architecture.md``.

Quickstart::

    from repro.campaign import CampaignGrid, run_campaign

    grid = CampaignGrid(resolutions=(10, 11, 12, 13),
                        sample_rates_hz=(20e6, 40e6, 60e6))
    campaign = run_campaign(grid)
    print(campaign.report())
    campaign.save("campaign-out")     # results.jsonl + report.txt + meta.json
"""

from repro.campaign.checkpoint import CheckpointStore
from repro.campaign.grid import (
    CampaignGrid,
    Scenario,
    parse_int_axis,
    parse_rate_axis,
    parse_shard,
    shard_scenarios,
)
from repro.campaign.manifest import (
    CampaignManifest,
    build_manifest,
    read_manifest,
    write_manifest,
)
from repro.campaign.merge import merge_shards
from repro.campaign.report import comparison_report
from repro.campaign.runner import (
    CampaignResult,
    LedgerBackedCache,
    ScenarioResult,
    SynthesisLedger,
    run_campaign,
)
from repro.campaign.store import (
    CampaignRecord,
    read_records,
    walden_fom,
    write_records,
)

__all__ = [
    "CampaignGrid",
    "CampaignManifest",
    "CampaignRecord",
    "CampaignResult",
    "CheckpointStore",
    "LedgerBackedCache",
    "Scenario",
    "ScenarioResult",
    "SynthesisLedger",
    "build_manifest",
    "comparison_report",
    "merge_shards",
    "parse_int_axis",
    "parse_rate_axis",
    "parse_shard",
    "read_manifest",
    "read_records",
    "run_campaign",
    "shard_scenarios",
    "walden_fom",
    "write_manifest",
    "write_records",
]
