"""Campaign grids: batched design-space sweeps expressed as axis products.

A :class:`CampaignGrid` describes a whole family of converter designs —
resolution × sample rate × flow mode × technology corner — and expands it
into an ordered tuple of :class:`Scenario` jobs, one per grid point.  The
expansion order is fixed — corner-major, then mode, then rate, with
resolution varying fastest — so a campaign is a deterministic program:
every backend sees the same scenario sequence, which is what lets the
runner guarantee backend-independent reports.

The grid shape follows Barrandon et al.'s figure-of-merit methodology
("Systematic Figure of Merit Computation for the Design of Pipeline ADC"):
sweep the (resolution, rate) plane, optimize each point, and compare the
winners on an energy-per-conversion-step axis.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SpecificationError
from repro.specs.adc import AdcSpec
from repro.tech.process import CMOS025, Technology, resolve_corner

#: Flow modes a scenario may request: the two ``optimize_topology``
#: evaluation paths plus 'behavioral' — time-domain Monte-Carlo
#: verification of the optimized topology (see
#: :mod:`repro.behavioral.verify`).
VALID_MODES = ("analytic", "synthesis", "behavioral")


def _rate_token(rate_hz: float) -> str:
    """Compact rate tag for scenario labels, e.g. ``40M`` or ``2.5M``."""
    msps = rate_hz / 1e6
    if msps == int(msps):
        return f"{int(msps)}M"
    return f"{msps:g}M"


@dataclass(frozen=True)
class Scenario:
    """One grid point: a fully specified topology-optimization job."""

    #: Position in the campaign's expansion order (0-based).
    index: int
    #: The system spec the flow optimizes.
    spec: AdcSpec
    #: Evaluation path: 'analytic', 'synthesis' or 'behavioral'.
    mode: str
    #: Technology-corner tag ('nom' unless the grid sweeps corners).
    corner: str

    @property
    def label(self) -> str:
        """Stable human-readable id, e.g. ``k13_40M_analytic``."""
        parts = [
            f"k{self.spec.resolution_bits}",
            _rate_token(self.spec.sample_rate_hz),
            self.mode,
        ]
        if self.corner != "nom":
            parts.append(self.corner)
        return "_".join(parts)


@dataclass(frozen=True)
class CampaignGrid:
    """Axis product defining a batched sweep.

    Axes keep their given order but must be duplicate-free — a duplicated
    value would silently run the same scenario twice and skew the
    comparison report.  ``corners`` maps corner tags to technologies,
    defaulting to the nominal process; slow/fast corners slot in as extra
    ``(tag, Technology)`` pairs without touching any other layer.
    """

    #: Target resolutions K [bits].
    resolutions: tuple[int, ...]
    #: Conversion rates [samples/s].
    sample_rates_hz: tuple[float, ...] = (40e6,)
    #: Flow modes to run each (K, rate) point under.
    modes: tuple[str, ...] = ("analytic",)
    #: Technology corners: (tag, Technology) pairs.
    corners: tuple[tuple[str, Technology], ...] = (("nom", CMOS025),)
    #: Differential full-scale range [V] shared by every scenario.
    full_scale: float = 2.0

    def __post_init__(self) -> None:
        for name in ("resolutions", "sample_rates_hz", "modes", "corners"):
            values = getattr(self, name)
            if not values:
                raise SpecificationError(f"campaign grid axis {name!r} is empty")
            keys = [v[0] if name == "corners" else v for v in values]
            if len(set(keys)) != len(keys):
                raise SpecificationError(
                    f"campaign grid axis {name!r} has duplicate values: {keys}"
                )
        for mode in self.modes:
            if mode not in VALID_MODES:
                raise SpecificationError(
                    f"unknown flow mode {mode!r} (valid: {', '.join(VALID_MODES)})"
                )

    @property
    def size(self) -> int:
        """Number of scenarios the grid expands to."""
        return (
            len(self.resolutions)
            * len(self.sample_rates_hz)
            * len(self.modes)
            * len(self.corners)
        )

    def expand(self) -> tuple[Scenario, ...]:
        """Expand the grid into its ordered scenario sequence.

        Resolutions vary fastest within a (corner, mode, rate) group so
        that consecutive synthesis scenarios are electrically adjacent —
        exactly the ordering that makes the campaign's cross-scenario
        warm-start pool effective (a K-bit block is the best donor for a
        (K±1)-bit block at the same rate).
        """
        scenarios: list[Scenario] = []
        for corner, tech in self.corners:
            for mode in self.modes:
                for rate in self.sample_rates_hz:
                    for k in self.resolutions:
                        scenarios.append(
                            Scenario(
                                index=len(scenarios),
                                spec=AdcSpec(
                                    resolution_bits=k,
                                    sample_rate_hz=rate,
                                    full_scale=self.full_scale,
                                    tech=tech,
                                ),
                                mode=mode,
                                corner=corner,
                            )
                        )
        return tuple(scenarios)


def parse_shard(text: str) -> tuple[int, int]:
    """Parse a CLI shard spec ``"K/N"`` -> (index, count), 1-based.

    ``"1/1"`` is the unsharded identity; ``"2/3"`` is the second of three
    shards of the same grid.
    """
    index_text, sep, count_text = text.partition("/")
    try:
        if not sep:
            raise ValueError
        index, count = int(index_text), int(count_text)
    except ValueError:
        raise SpecificationError(
            f"cannot parse shard spec {text!r} (expected K/N, e.g. 1/2)"
        ) from None
    if count < 1 or not 1 <= index <= count:
        raise SpecificationError(
            f"shard index out of range in {text!r} (need 1 <= K <= N)"
        )
    return index, count


def shard_scenarios(
    scenarios: tuple[Scenario, ...], index: int, count: int
) -> tuple[Scenario, ...]:
    """Deterministically select shard ``index`` of ``count`` shards.

    Sharding distributes *ledger-independent units*, never individual
    scenarios: every analytic scenario is its own unit (it touches no
    shared synthesis state), while the synthesis scenarios of one
    technology corner form one indivisible unit — the campaign ledger
    chains their warm-start donor pool in expansion order, so splitting a
    corner's chain across shards would change which donors each scenario
    sees and break the byte-identity of sharded vs. unsharded runs.
    Corners *are* independent units because the ledger's donor pool is
    technology-scoped (see
    :meth:`~repro.campaign.runner.SynthesisLedger.donors_for`) and its
    exact-hit layers digest the technology into their keys: nothing a
    slow-corner scenario records can influence a nominal-corner scenario.
    A corner sweep therefore splits cleanly across shards — one corner's
    synthesis chain per unit.  Behavioral scenarios verify the topology a
    synthesis scenario of the same corner selected (the runner's winner
    map), so they ride in that corner's synthesis unit whenever the grid
    has one; in a grid without synthesis for their corner they fall back
    to an analytic screen and are as independent as analytic scenarios.
    Units are assigned round-robin in
    expansion order, so the partition is a pure function of (grid, count):
    every shard of every run agrees on it without coordination.
    """
    if count < 1 or not 1 <= index <= count:
        raise SpecificationError(
            f"shard index out of range: {index}/{count} (need 1 <= K <= N)"
        )
    if count == 1:
        return tuple(scenarios)
    synthesis_techs = {
        s.spec.tech.name for s in scenarios if s.mode == "synthesis"
    }
    units: list[list[Scenario]] = []
    #: One synthesis unit per technology scope, keyed like the ledger's
    #: donor pool; created at first encounter to preserve round-robin order.
    synthesis_units: dict[str, list[Scenario]] = {}
    for scenario in scenarios:
        tech = scenario.spec.tech.name
        if scenario.mode == "synthesis" or (
            scenario.mode == "behavioral" and tech in synthesis_techs
        ):
            unit = synthesis_units.get(tech)
            if unit is None:
                unit = synthesis_units[tech] = []
                units.append(unit)
            unit.append(scenario)
        else:
            units.append([scenario])
    selected = [
        scenario
        for u, unit in enumerate(units)
        if u % count == index - 1
        for scenario in unit
    ]
    selected.sort(key=lambda s: s.index)
    return tuple(selected)


def count_shard_units(scenarios: tuple[Scenario, ...]) -> int:
    """Number of ledger-independent units sharding can distribute.

    Mirrors the grouping in :func:`shard_scenarios`: one unit per analytic
    scenario plus one per technology corner that has synthesis scenarios
    (behavioral scenarios join their corner's synthesis unit when one
    exists, otherwise each is its own unit).  A shard count above this
    leaves shards with no work — the CLI refuses such shard specs up
    front instead of silently running empty shards.
    """
    synthesis_techs = {
        s.spec.tech.name for s in scenarios if s.mode == "synthesis"
    }
    units = 0
    synthesis_scopes: set[str] = set()
    for scenario in scenarios:
        tech = scenario.spec.tech.name
        if scenario.mode == "synthesis" or (
            scenario.mode == "behavioral" and tech in synthesis_techs
        ):
            if tech not in synthesis_scopes:
                synthesis_scopes.add(tech)
                units += 1
        else:
            units += 1
    return units


def parse_int_axis(text: str) -> tuple[int, ...]:
    """Parse a CLI integer axis: ``"10-13"`` (inclusive) or ``"10,12,13"``.

    Mixed forms compose: ``"8,10-12"`` -> ``(8, 10, 11, 12)``.
    """
    values: list[int] = []
    for token in text.split(","):
        token = token.strip()
        if not token:
            continue
        lo, sep, hi = token.partition("-")
        try:
            if sep:
                start, stop = int(lo), int(hi)
                if stop < start:
                    raise ValueError
                values.extend(range(start, stop + 1))
            else:
                values.append(int(token))
        except ValueError:
            raise SpecificationError(
                f"cannot parse integer axis token {token!r} "
                "(expected N, N-M or a comma list)"
            ) from None
    if not values:
        raise SpecificationError(f"empty integer axis {text!r}")
    return tuple(values)


def parse_corner_axis(text: str) -> tuple[tuple[str, Technology], ...]:
    """Parse a CLI corner axis: comma list of registered corner tags.

    Tags resolve through :data:`repro.tech.process.CORNERS`
    (``"nom,slow"`` -> ``(("nom", CMOS025), ("slow", CMOS025_SLOW))``);
    an unknown tag fails naming the registered choices.
    """
    tags = [token.strip() for token in text.split(",") if token.strip()]
    if not tags:
        raise SpecificationError(f"empty corner axis {text!r}")
    return tuple((tag, resolve_corner(tag)) for tag in tags)


def parse_rate_axis(text: str) -> tuple[float, ...]:
    """Parse a CLI rate axis given in MSPS: ``"20,40,60"`` -> Hz values."""
    rates: list[float] = []
    for token in text.split(","):
        token = token.strip()
        if not token:
            continue
        try:
            msps = float(token)
        except ValueError:
            raise SpecificationError(
                f"cannot parse rate token {token!r} (expected MSPS numbers)"
            ) from None
        if msps <= 0:
            raise SpecificationError(f"sample rate must be positive, got {token!r}")
        rates.append(msps * 1e6)
    if not rates:
        raise SpecificationError(f"empty rate axis {text!r}")
    return tuple(rates)
