"""Campaign manifests: the identity card of a results store.

A :class:`CampaignManifest` is written next to ``results.jsonl`` and pins
down *which campaign* a store belongs to: the grid digest (every axis value
and technology, content-hashed), the result-relevant :class:`FlowConfig`
digest, the full scenario sequence, and — for sharded runs — which slice of
that sequence this store covers.  Two operations consume it:

* **resume** — ``run_campaign(..., resume=True)`` refuses to replay
  checkpoints into a store whose grid or config digest differs from the
  requested campaign (a silent mismatch would splice records from two
  different experiments into one report);
* **merge** — ``repro-adc merge`` refuses to fuse shard stores unless all
  manifests agree on the digests and together cover every scenario exactly
  once.

Only *result-relevant* configuration enters the config digest: budgets,
seeds (the synthesis seeds *and* the behavioral Monte-Carlo seed/draw
count — behavioral records are a function of both), the verification
flag, and the DC Newton kernel (``dc_kernel`` — the batched lockstep
kernel's cold-start trajectories differ from the chained warm walk, so
records are *not* interchangeable across it).  Execution knobs (backend,
workers, eval kernel, behavioral kernel, speculation) are excluded for
the same reason they are excluded
from block fingerprints — records are byte-identical across them — so a
campaign may be interrupted under one backend and resumed under another.
``cache_dir`` is also excluded, but for a different reason: it is a host
path, and pinning it would break resuming a store from another checkout
or machine.  The byte-identity caveat that already applies across
backends applies here too (see the README): rankings and winners never
depend on cache state, but the *accounting* fields of a record
(``persistent_hits`` vs ``cold_runs``) reflect what the persistent cache
held when the scenario ran — so the resumed-equals-uninterrupted
byte-identity guarantee is stated for runs without a shared persistent
cache (``cache_dir=None``), which is how the CI resume smoke runs.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

from repro.campaign.grid import CampaignGrid
from repro.engine.config import FlowConfig
from repro.engine.persist import atomic_write_bytes, digest
from repro.errors import SpecificationError

#: Manifest file name inside a campaign store directory.
MANIFEST_FILENAME = "manifest.json"

#: Bump when the manifest schema or digest payloads change shape.
#: v3: ``dc_kernel`` joined the config digest (result identity).
MANIFEST_VERSION = 3


def grid_digest(grid: CampaignGrid) -> str:
    """Content digest of the full grid definition (axes + technologies)."""
    return digest({"version": MANIFEST_VERSION, "grid": grid})


def config_digest(config: FlowConfig) -> str:
    """Digest of the FlowConfig fields that determine campaign records."""
    return digest(
        {
            "version": MANIFEST_VERSION,
            "budget": config.budget,
            "retarget_budget": config.retarget_budget,
            "seed": config.seed,
            "retarget_seed": config.retarget_seed,
            "verify_transient": bool(config.verify_transient),
            "behavioral_draws": config.behavioral_draws,
            "behavioral_seed": config.behavioral_seed,
            "dc_kernel": config.dc_kernel,
        }
    )


@dataclass(frozen=True)
class CampaignManifest:
    """Identity and coverage of one campaign results store."""

    #: Content digests pinning the experiment definition.
    grid_digest: str
    config_digest: str
    #: Every scenario label of the full grid, in expansion order.
    scenarios: tuple[str, ...]
    #: This store's shard (1-based index, total count); ``(1, 1)`` for an
    #: unsharded campaign.
    shard_index: int = 1
    shard_count: int = 1
    #: Labels of the scenarios assigned to this shard, in expansion order.
    shard_scenarios: tuple[str, ...] = ()
    #: Human-readable grid summary (display only — the digest is the truth).
    resolutions: tuple[int, ...] = ()
    sample_rates_hz: tuple[float, ...] = ()
    modes: tuple[str, ...] = ()
    corners: tuple[str, ...] = ()
    format_version: int = MANIFEST_VERSION

    @property
    def is_sharded(self) -> bool:
        """True when this store covers a strict subset of the grid."""
        return self.shard_count > 1

    def to_json(self) -> str:
        """Canonical JSON (indented for humans, key-sorted for diffing)."""
        payload = {
            "format_version": self.format_version,
            "grid_digest": self.grid_digest,
            "config_digest": self.config_digest,
            "scenarios": list(self.scenarios),
            "shard": {
                "index": self.shard_index,
                "count": self.shard_count,
                "scenarios": list(self.shard_scenarios),
            },
            "grid": {
                "resolutions": list(self.resolutions),
                "sample_rates_hz": list(self.sample_rates_hz),
                "modes": list(self.modes),
                "corners": list(self.corners),
            },
        }
        return json.dumps(payload, indent=2, sort_keys=True) + "\n"

    @classmethod
    def from_json(cls, text: str) -> "CampaignManifest":
        """Inverse of :meth:`to_json`."""
        try:
            payload = json.loads(text)
            shard = payload.get("shard", {})
            grid = payload.get("grid", {})
            return cls(
                grid_digest=payload["grid_digest"],
                config_digest=payload["config_digest"],
                scenarios=tuple(payload["scenarios"]),
                shard_index=int(shard.get("index", 1)),
                shard_count=int(shard.get("count", 1)),
                shard_scenarios=tuple(shard.get("scenarios", ())),
                resolutions=tuple(int(k) for k in grid.get("resolutions", ())),
                sample_rates_hz=tuple(
                    float(r) for r in grid.get("sample_rates_hz", ())
                ),
                modes=tuple(grid.get("modes", ())),
                corners=tuple(grid.get("corners", ())),
                format_version=int(payload.get("format_version", 1)),
            )
        except (json.JSONDecodeError, KeyError, TypeError, ValueError) as exc:
            raise SpecificationError(f"corrupt campaign manifest ({exc})") from exc


def build_manifest(
    grid: CampaignGrid,
    config: FlowConfig,
    shard: tuple[int, int] = (1, 1),
    shard_labels: tuple[str, ...] | None = None,
) -> CampaignManifest:
    """Assemble the manifest for one (grid, config, shard) campaign."""
    labels = tuple(s.label for s in grid.expand())
    if shard_labels is None:
        shard_labels = labels
    return CampaignManifest(
        grid_digest=grid_digest(grid),
        config_digest=config_digest(config),
        scenarios=labels,
        shard_index=shard[0],
        shard_count=shard[1],
        shard_scenarios=tuple(shard_labels),
        resolutions=grid.resolutions,
        sample_rates_hz=grid.sample_rates_hz,
        modes=grid.modes,
        corners=tuple(tag for tag, _ in grid.corners),
    )


def manifest_path(store_dir: str | Path) -> Path:
    """Path of the manifest inside a store directory."""
    return Path(store_dir) / MANIFEST_FILENAME


def write_manifest(manifest: CampaignManifest, store_dir: str | Path) -> Path:
    """Atomically write ``manifest.json`` into the store; returns the path."""
    return atomic_write_bytes(
        manifest_path(store_dir), manifest.to_json().encode("utf-8")
    )


def read_manifest(store_dir: str | Path) -> CampaignManifest | None:
    """Load a store's manifest, or ``None`` when the store has none."""
    path = manifest_path(store_dir)
    try:
        text = path.read_text(encoding="utf-8")
    except FileNotFoundError:
        return None
    return CampaignManifest.from_json(text)


def require_matching_manifest(
    existing: CampaignManifest,
    expected: CampaignManifest,
    store_dir: str | Path,
) -> None:
    """Refuse to resume into a store built for a different campaign.

    Raises :class:`SpecificationError` naming exactly which identity field
    diverged — the error the manifest exists to make loud.
    """
    mismatches: list[str] = []
    if existing.grid_digest != expected.grid_digest:
        mismatches.append(
            "grid digest "
            f"(store {existing.grid_digest[:12]}…, requested "
            f"{expected.grid_digest[:12]}… — different axes or technologies)"
        )
    if existing.config_digest != expected.config_digest:
        mismatches.append(
            "config digest "
            f"(store {existing.config_digest[:12]}…, requested "
            f"{expected.config_digest[:12]}… — different budgets, seeds, "
            "behavioral draws, DC kernel or verification flag)"
        )
    if (existing.shard_index, existing.shard_count) != (
        expected.shard_index,
        expected.shard_count,
    ):
        mismatches.append(
            f"shard (store {existing.shard_index}/{existing.shard_count}, "
            f"requested {expected.shard_index}/{expected.shard_count})"
        )
    if mismatches:
        raise SpecificationError(
            f"cannot resume into {Path(store_dir)}: the store's manifest does "
            "not match the requested campaign — mismatched "
            + "; ".join(mismatches)
            + ".  Use a fresh --out directory (or drop --resume to restart "
            "this one from scratch)."
        )


__all__ = [
    "MANIFEST_FILENAME",
    "MANIFEST_VERSION",
    "CampaignManifest",
    "build_manifest",
    "config_digest",
    "grid_digest",
    "manifest_path",
    "read_manifest",
    "require_matching_manifest",
    "write_manifest",
]
