"""The campaign runner: one batch, many scenarios, shared synthesis state.

``run_campaign`` executes every scenario of a :class:`~repro.campaign.grid.CampaignGrid`
through :func:`~repro.flow.topology.optimize_topology` while sharing three
things across the whole batch that a naive per-spec loop would rebuild per
scenario:

* **one execution backend** — a process/thread pool spins up once for the
  campaign, not once per grid point;
* **one synthesis ledger** (:class:`SynthesisLedger`) — an in-memory,
  fingerprint-keyed store of every block any scenario has synthesized, plus
  the campaign-wide warm-start donor pool.  A later scenario whose spec
  fingerprints identically to an earlier one loads the block instead of
  searching; a later scenario with a merely *similar* spec retargets from
  the nearest earlier design instead of synthesizing cold — the paper's
  retarget economy applied across system specs, not just within one;
* **one persistent block cache directory** (``FlowConfig.cache_dir``) — the
  on-disk layer behind the ledger, so reuse also spans campaign invocations.

Scenarios execute strictly in expansion order (only the work *inside* a
scenario fans out over the backend), and every scenario's synthesis plan is
fixed before dispatch, so campaign records and reports are byte-identical
across backends — the PR 1 determinism guarantee lifted to batches.

Behavioral scenarios (``mode='behavioral'``) close the verification loop:
they look up the topology the same grid point's *synthesis* scenario
selected (or run an analytic screen when the grid has none), simulate it
under seeded Monte-Carlo mismatch (:mod:`repro.behavioral.verify`), and
record the simulated SNDR/ENOB/FoM next to the analytic numbers.  Their
draws derive entirely from ``FlowConfig.behavioral_seed``, which sits in
the manifest's config digest — so behavioral records obey the same
resume/shard/merge byte-identity contract as every other record.
"""

from __future__ import annotations

import dataclasses
import json
import os
import shutil
import socket
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Sequence

from repro.campaign.checkpoint import QUEUE_DIRNAME, CheckpointStore
from repro.campaign.grid import CampaignGrid, Scenario, shard_scenarios
from repro.campaign.manifest import (
    CampaignManifest,
    build_manifest,
    read_manifest,
    require_matching_manifest,
    write_manifest,
)
from repro.campaign.store import (
    META_FILENAME,
    REPORT_FILENAME,
    RESULTS_FILENAME,
    CampaignRecord,
    walden_fom,
    write_records,
)
from repro.behavioral.verify import verify_candidate
from repro.enumeration.candidates import enumerate_candidates
from repro.errors import CampaignInterrupted, SpecificationError
from repro.engine.backend import ExecutionBackend
from repro.engine.cancel import CancelToken
from repro.engine.config import FlowConfig
from repro.engine.persist import digest as persist_digest, sizing_digest
from repro.flow.cache import PersistentBlockCache
from repro.flow.topology import TopologyResult, optimize_topology
from repro.obs import metrics as obs
from repro.obs.trace import TRACE_DIRNAME, TRACE_ENV, configure_tracing, span
from repro.synth.result import SynthesisResult


@dataclass
class SynthesisLedger:
    """Campaign-wide synthesis state shared by every scenario.

    Three layers, consulted most-exact-first:

    * ``memory`` maps content fingerprints (see
      :func:`repro.engine.persist.block_fingerprint`) to results — a hit
      means this *search* (spec, budgets, seeds, donor chain) already ran;
    * ``by_spec`` maps spec digests (spec + technology + verification flag)
      to results — a hit means a block *satisfying* the identical
      specification was already sized somewhere in the campaign, even if
      under different search hyper-parameters.  Only feasible designs
      enter this layer: an infeasible result never satisfied its spec, so
      serving it spec-level would block legitimate re-searches (and defeat
      the scheduler's cold escalation).  This is the paper's block reuse
      applied campaign-wide;
    * ``donors`` is the warm-start pool in admission order, deduplicated by
      sizing digest, seeding retargets for *similar* (not identical) specs.
      Donors are *scoped by technology*: a block sized under one process
      corner is meaningless as a warm start under another (the device
      models differ), so :meth:`donors_for` only hands out donors recorded
      under the requesting scenario's technology.  Corner scoping is also
      what makes corners *ledger-independent* — the property
      :func:`~repro.campaign.grid.shard_scenarios` relies on to split a
      multi-corner synthesis campaign across shards.

    A ledger outlives a single ``run_campaign`` call: pass the same
    instance to a follow-up campaign and it starts from everything the
    first one learned.
    """

    memory: dict[str, SynthesisResult] = field(default_factory=dict)
    by_spec: dict[str, SynthesisResult] = field(default_factory=dict)
    donors: list[SynthesisResult] = field(default_factory=list)
    _donor_digests: set[str] = field(default_factory=set)
    #: Per-donor technology scope, parallel to ``donors``.  The empty
    #: scope (legacy journals predating scoping) is visible everywhere.
    _donor_scopes: list[str] = field(default_factory=list)
    #: Blocks any scenario loaded from the ledger instead of searching.
    shared_hits: int = 0
    #: When set (the runner installs a fresh list per scenario while a
    #: checkpointing store is active), every ``record`` call is journalled
    #: as ``(fingerprint, spec_key, scope, result)`` so the scenario's
    #: ledger contribution can be checkpointed and replayed on resume.
    journal: list[tuple[str, str, str, SynthesisResult]] | None = field(
        default=None, repr=False, compare=False
    )

    def record(
        self,
        fingerprint: str,
        result: SynthesisResult,
        spec_key: str,
        scope: str = "",
    ) -> None:
        """Admit a resolved block into the ledger (idempotent per design).

        ``scope`` is the technology name the block was sized under; it
        gates which scenarios see the design as a warm-start donor (see
        :meth:`donors_for`).  The exact-hit layers need no scoping: both
        keys already digest the technology, so they can never serve a
        block across corners.
        """
        if self.journal is not None:
            self.journal.append((fingerprint, spec_key, scope, result))
        # The dedup metric counts designs the ledger already knew — the
        # campaign-wide reuse the paper's retarget economy buys.
        obs.counter(
            "ledger.dedup" if fingerprint in self.memory else "ledger.records"
        )
        self.memory.setdefault(fingerprint, result)
        if result.feasible:
            self.by_spec.setdefault(spec_key, result)
        digest = sizing_digest(result)
        if digest not in self._donor_digests:
            self._donor_digests.add(digest)
            self.donors.append(result)
            self._donor_scopes.append(scope)

    def donors_for(self, scope: str) -> tuple[SynthesisResult, ...]:
        """The warm-start pool visible to one technology scope.

        Admission order is preserved; unscoped donors (recorded by code or
        journals predating corner scoping) remain visible to every scope.
        """
        return tuple(
            donor
            for donor, donor_scope in zip(self.donors, self._donor_scopes)
            if donor_scope == scope or not donor_scope
        )

    def replay(
        self, journal: Sequence[tuple[str, ...]]
    ) -> None:
        """Re-apply a checkpointed journal, reconstructing ledger state.

        ``record`` is idempotent per design and journal entries preserve
        admission order, so replaying the journals of completed scenarios
        (in scenario order) leaves ``memory``/``by_spec``/``donors`` —
        donor *order and scopes* included — exactly as the original run
        left them.  Legacy three-field entries (written before donor
        scoping existed) replay into the globally visible empty scope.
        """
        for entry in journal:
            if len(entry) == 4:
                fingerprint, spec_key, scope, result = entry
            else:
                (fingerprint, spec_key, result), scope = entry, ""
            self.record(fingerprint, result, spec_key, scope=scope)


@dataclass
class LedgerBackedCache(PersistentBlockCache):
    """Per-scenario block cache wired into the campaign ledger.

    The in-memory reuse-key map stays scenario-local — reuse keys are only
    valid within one system spec — while the fingerprint layers are shared:
    lookups consult the ledger first, then the inherited persistent
    directory, and every admitted block (fresh or loaded) is recorded back
    into the ledger so later scenarios see it as an exact hit or a
    warm-start donor.  Unlike :class:`~repro.flow.cache.PersistentBlockCache`
    the disk tier is optional here: the ledger may be the only shared tier.
    """

    ledger: SynthesisLedger | None = None
    #: Blocks served from the campaign ledger (either layer).
    shared_hits: int = 0

    def __post_init__(self) -> None:
        # Relax the parent's cache_dir requirement (see class docstring).
        pass

    def _spec_key(self, spec: Any) -> str:
        """Digest identifying the block *specification* (not the search)."""
        return persist_digest(
            {
                "spec": spec,
                "tech": self.tech,
                "verify_transient": bool(self.verify_transient),
            }
        )

    def load_persistent(
        self, fingerprint: str, spec: Any = None
    ) -> SynthesisResult | None:
        if self.ledger is not None:
            hit = self.ledger.memory.get(fingerprint)
            if hit is None and spec is not None:
                hit = self.ledger.by_spec.get(self._spec_key(spec))
            if hit is not None:
                self.shared_hits += 1
                self.ledger.shared_hits += 1
                obs.counter("ledger.shared_hits")
                return hit
        if self.cache_dir is not None:
            return super().load_persistent(fingerprint, spec)
        return None

    def admit(
        self,
        key: tuple[int, int],
        result: SynthesisResult,
        fingerprint: str | None = None,
        newly_synthesized: bool = True,
    ) -> None:
        super().admit(key, result, fingerprint, newly_synthesized)
        if self.ledger is not None and fingerprint is not None:
            self.ledger.record(
                fingerprint,
                result,
                self._spec_key(result.spec),
                scope=self.tech.name,
            )

    def _persist(self, fingerprint: str, result: SynthesisResult) -> None:
        if self.cache_dir is not None:
            super()._persist(fingerprint, result)


@dataclass(frozen=True)
class ScenarioResult:
    """One scenario's full outcome: optimization result plus its record."""

    scenario: Scenario
    #: The ranked optimization outcome (in memory; not serialized).  ``None``
    #: when the scenario was replayed from a checkpoint on resume — the
    #: record survives an interruption, the in-memory object does not —
    #: and for behavioral scenarios, which verify a topology rather than
    #: rank one.
    topology: TopologyResult | None
    #: The deterministic JSONL record.
    record: CampaignRecord
    #: Wall time of this scenario [s] — nondeterministic, kept out of the record.
    wall_seconds: float
    #: True when this scenario was served from a checkpoint, not executed.
    replayed: bool = False


@dataclass(frozen=True)
class CampaignResult:
    """Outcome of one ``run_campaign`` call."""

    grid: CampaignGrid
    scenarios: tuple[ScenarioResult, ...]
    #: Backend name the campaign executed on.
    backend_name: str
    #: Total campaign wall time [s].
    wall_seconds: float
    #: (index, count) of the shard this run covered; (1, 1) when unsharded.
    shard: tuple[int, int] = (1, 1)
    #: The store identity written alongside the results (``None`` only for
    #: hand-assembled results; ``run_campaign`` always provides one).
    manifest: CampaignManifest | None = None
    #: Scenarios served from checkpoints instead of executing (resume).
    replayed_scenarios: int = 0

    @property
    def records(self) -> tuple[CampaignRecord, ...]:
        """Per-scenario records in expansion order."""
        return tuple(s.record for s in self.scenarios)

    @property
    def winners(self) -> dict[str, str]:
        """scenario label -> winning candidate label."""
        return {s.record.label: s.record.winner for s in self.scenarios}

    def topology_by_resolution(
        self,
        mode: str = "analytic",
        sample_rate_hz: float | None = None,
        corner: str | None = None,
    ) -> dict[int, TopologyResult]:
        """resolution -> TopologyResult for one (mode, rate, corner) slice.

        ``sample_rate_hz=None`` selects the grid's first rate axis value
        and ``corner=None`` its first corner — the common single-rate,
        nominal-corner case for figure regeneration.
        """
        if sample_rate_hz is None:
            sample_rate_hz = self.grid.sample_rates_hz[0]
        if corner is None:
            corner = self.grid.corners[0][0]
        return {
            s.scenario.spec.resolution_bits: s.topology
            for s in self.scenarios
            if s.topology is not None
            and s.scenario.mode == mode
            and s.scenario.spec.sample_rate_hz == sample_rate_hz
            and s.scenario.corner == corner
        }

    def report(self) -> str:
        """The campaign comparison report (see :mod:`repro.campaign.report`)."""
        from repro.campaign.report import comparison_report

        return comparison_report(self)

    def save(self, store_dir: str | Path) -> dict[str, Path]:
        """Write the results store into ``store_dir``.

        Produces ``results.jsonl`` (deterministic records), ``report.txt``
        (deterministic comparison report), ``manifest.json`` (the store's
        identity — grid/config digests and shard coverage, see
        :mod:`repro.campaign.manifest`) and ``meta.json`` (wall times and
        backend — the one nondeterministic artifact).  Returns the paths.
        """
        directory = Path(store_dir)
        directory.mkdir(parents=True, exist_ok=True)
        results_path = write_records(self.records, directory / RESULTS_FILENAME)
        report_path = directory / REPORT_FILENAME
        report_path.write_text(self.report() + "\n", encoding="utf-8")
        paths = {"results": results_path, "report": report_path}
        if self.manifest is not None:
            paths["manifest"] = write_manifest(self.manifest, directory)
        meta = {
            "backend": self.backend_name,
            "wall_seconds": self.wall_seconds,
            "replayed_scenarios": self.replayed_scenarios,
            "scenario_wall_seconds": {
                s.record.label: s.wall_seconds for s in self.scenarios
            },
        }
        meta_path = directory / META_FILENAME
        meta_path.write_text(json.dumps(meta, indent=2) + "\n", encoding="utf-8")
        paths["meta"] = meta_path
        return paths


def _make_record(
    scenario: Scenario, topology: TopologyResult, cache: LedgerBackedCache | None
) -> CampaignRecord:
    """Build the deterministic record for one completed scenario."""
    best = topology.best
    return CampaignRecord(
        label=scenario.label,
        index=scenario.index,
        resolution_bits=scenario.spec.resolution_bits,
        sample_rate_hz=scenario.spec.sample_rate_hz,
        full_scale=scenario.spec.full_scale,
        tech=scenario.spec.tech.name,
        corner=scenario.corner,
        mode=scenario.mode,
        winner=best.label,
        rankings=tuple((e.label, e.total_power) for e in topology.evaluations),
        fom_j_per_step=walden_fom(
            best.total_power,
            scenario.spec.resolution_bits,
            scenario.spec.sample_rate_hz,
        ),
        all_feasible=all(e.all_feasible for e in topology.evaluations),
        unique_blocks=topology.unique_blocks,
        cold_runs=cache.cold_runs if cache else 0,
        retargeted_runs=cache.retargeted_runs if cache else 0,
        shared_hits=cache.shared_hits if cache else 0,
        persistent_hits=cache.persistent_hits if cache else 0,
        pool_warm_starts=cache.pool_warm_starts if cache else 0,
        pool_escalations=cache.pool_escalations if cache else 0,
    )


def _winner_key(record_or_scenario: Any) -> tuple[int, float, str]:
    """Winner-map key: the (K, rate, corner) point a topology was picked for."""
    if isinstance(record_or_scenario, CampaignRecord):
        return (
            record_or_scenario.resolution_bits,
            record_or_scenario.sample_rate_hz,
            record_or_scenario.corner,
        )
    scenario = record_or_scenario
    return (
        scenario.spec.resolution_bits,
        scenario.spec.sample_rate_hz,
        scenario.corner,
    )


def _behavioral_record(
    scenario: Scenario,
    config: FlowConfig,
    backend: ExecutionBackend | None,
    synthesis_winners: dict[tuple[int, float, str], tuple[str, float]],
) -> CampaignRecord:
    """Verify one grid point's chosen topology in the time domain.

    The topology under test comes from the campaign's own synthesis
    scenario for the same (K, rate, corner) point when the grid has one
    (``winner_source='synthesis'`` — the verification the paper's flow
    leaves open).  Standalone behavioral scenarios fall back to an
    analytic screen of the candidate space (``winner_source='analytic'``).
    Only *synthesis* winners populate the map — analytic screens re-run
    identically anywhere, so the fallback cannot diverge between sharded
    and unsharded executions of the same grid.
    """
    hit = synthesis_winners.get(_winner_key(scenario))
    if hit is not None:
        winner_label, winner_power = hit
        winner_source = "synthesis"
    else:
        screen = optimize_topology(
            scenario.spec, mode="analytic", config=config, backend=backend
        )
        winner_label = screen.best.label
        winner_power = screen.best.total_power
        winner_source = "analytic"
    candidate = next(
        c
        for c in enumerate_candidates(scenario.spec.resolution_bits)
        if c.label == winner_label
    )
    verdict = verify_candidate(
        scenario.spec,
        candidate,
        draws=config.behavioral_draws,
        seed=config.behavioral_seed,
        kernel=config.behavioral_kernel,
    )
    # Walden FoM at the *simulated* effective resolution: same power and
    # rate as the analytic FoM, but 2^ENOB instead of 2^K — the honest
    # energy-per-step the behavioral tier exists to report.
    fom_sim = winner_power / (
        2.0**verdict.enob_mean * scenario.spec.sample_rate_hz
    )
    behavioral = {
        "draws": verdict.draws,
        "seed": verdict.seed,
        "winner_source": winner_source,
        "samples": verdict.samples,
        "cycles": verdict.cycles,
        "sndr_db_mean": float(verdict.sndr_db_mean),
        "sndr_db_min": float(verdict.sndr_db_min),
        "enob_mean": float(verdict.enob_mean),
        "enob_min": float(verdict.enob_min),
        "fom_sim_j_per_step": float(fom_sim),
    }
    return CampaignRecord(
        label=scenario.label,
        index=scenario.index,
        resolution_bits=scenario.spec.resolution_bits,
        sample_rate_hz=scenario.spec.sample_rate_hz,
        full_scale=scenario.spec.full_scale,
        tech=scenario.spec.tech.name,
        corner=scenario.corner,
        mode=scenario.mode,
        winner=winner_label,
        rankings=((winner_label, winner_power),),
        fom_j_per_step=walden_fom(
            winner_power,
            scenario.spec.resolution_bits,
            scenario.spec.sample_rate_hz,
        ),
        all_feasible=True,
        unique_blocks=0,
        cold_runs=0,
        retargeted_runs=0,
        shared_hits=0,
        persistent_hits=0,
        pool_warm_starts=0,
        pool_escalations=0,
        behavioral=behavioral,
    )


def _snapshot_delta(baseline: dict, current: dict) -> dict:
    """``current`` minus ``baseline``: the campaign-window view.

    The registry is process-cumulative (a service scheduler runs many
    campaigns in one process), so the runner's *local* contribution to a
    store's ``metrics.json`` is the delta across the run.  Counters and
    histogram count/total subtract (zeroed entries drop out); gauges keep
    their current value; histogram min/max keep the cumulative extrema —
    the window's own extrema are not recoverable from two snapshots, and
    a widened bound is the honest approximation.
    """
    counters: dict[str, float] = {}
    base_counters = baseline.get("counters", {})
    for name, value in current.get("counters", {}).items():
        diff = value - base_counters.get(name, 0)
        if diff:
            counters[name] = diff
    histograms: dict[str, dict] = {}
    base_hists = baseline.get("histograms", {})
    for name, h in current.get("histograms", {}).items():
        prior = base_hists.get(name, {})
        count = h["count"] - prior.get("count", 0)
        if count <= 0:
            continue
        histograms[name] = {
            "count": count,
            "total": h["total"] - prior.get("total", 0.0),
            "min": h["min"],
            "max": h["max"],
        }
    return {
        "counters": counters,
        "gauges": dict(current.get("gauges", {})),
        "histograms": histograms,
    }


def _write_campaign_metrics(
    store_path: Path, backend: ExecutionBackend, baseline: dict
) -> Path:
    """Aggregate every telemetry channel into ``<store>/metrics.json``.

    Three sources fold into one snapshot (see docs/observability.md):

    * the runner's own live registry, as a delta over ``baseline`` — the
      snapshot taken when the campaign started — so a long-lived process
      (the job service) attributes to each store only what its campaign
      did (serial/thread/queue execution, plus everything the campaign
      layer itself counted);
    * spool files under ``<store>/metrics/`` — process-pool workers rewrite
      their cumulative snapshot after every job (the runner's own file is
      excluded: its live registry already covers it);
    * fleet census records — broker workers piggyback a registry snapshot
      on their census entry, so remote hosts' counters aggregate without
      any shared filesystem (same-process entries are skipped to avoid
      double counting an in-process worker).

    Like ``meta.json`` this artifact is nondeterministic (wall-clock
    histograms, fleet composition) and sits outside the byte-identity
    contract — the deterministic artifacts never mention it.
    """
    snapshots = [_snapshot_delta(baseline, obs.snapshot())]
    sources = {"local": 1, "spooled": 0, "fleet": 0}
    spool_dir = os.environ.get(obs.SPOOL_ENV)
    if spool_dir:
        spooled = obs.read_spool_snapshots(spool_dir, exclude_self=True)
        snapshots.extend(spooled)
        sources["spooled"] = len(spooled)
    workers_fn = getattr(getattr(backend, "broker", None), "workers", None)
    if callable(workers_fn):
        try:
            census = workers_fn()
        except Exception:
            census = []
        me = (socket.gethostname(), os.getpid())
        for record in census:
            if not isinstance(record, dict):
                continue
            snap = record.get("metrics")
            if not isinstance(snap, dict):
                continue
            if (record.get("host"), record.get("pid")) == me:
                continue
            snapshots.append(snap)
            sources["fleet"] += 1
    payload = {
        "schema": 1,
        "telemetry": obs.telemetry_mode(),
        "sources": sources,
        "metrics": obs.aggregate_snapshots(snapshots),
    }
    path = store_path / obs.METRICS_FILENAME
    path.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    return path


def run_campaign(
    grid: CampaignGrid,
    config: FlowConfig | None = None,
    ledger: SynthesisLedger | None = None,
    progress: Callable[[ScenarioResult], None] | None = None,
    *,
    store_dir: str | Path | None = None,
    resume: bool = False,
    shard: tuple[int, int] = (1, 1),
    cancel: CancelToken | None = None,
) -> CampaignResult:
    """Run every scenario of the grid (or of one shard of it) as one batch.

    ``config`` supplies the execution backend, synthesis budgets and the
    persistent cache directory shared by all scenarios.  ``ledger`` defaults
    to a fresh :class:`SynthesisLedger`; pass an existing one to chain
    campaigns.  ``progress`` (if given) is called with each
    :class:`ScenarioResult` as it completes — the CLI uses it for live
    status lines.

    ``store_dir`` switches on the checkpointing layer: a manifest
    identifying the campaign is written up front, every completed scenario
    commits a checkpoint (its record plus its ledger-journal — see
    :mod:`repro.campaign.checkpoint`), and the final store
    (``results.jsonl`` / ``report.txt`` / ``manifest.json`` / ``meta.json``)
    is saved on completion.  With ``resume=True`` an interrupted store's
    checkpointed scenarios replay byte-identically (records *and* their
    ledger contributions, so the remaining scenarios plan the same warm
    starts) instead of re-running; the manifest must match the requested
    campaign or the call refuses with a :class:`SpecificationError`.
    Without ``resume``, stale checkpoints and queue state are cleared.

    ``shard=(k, n)`` runs only the k-th of n deterministic slices of the
    grid (see :func:`repro.campaign.grid.shard_scenarios`); the shard
    stores are fused back into the single-run store by
    :func:`repro.campaign.merge.merge_shards`.

    When the ``'queue'`` backend is selected without an explicit
    ``queue_dir``, its lease/ack directory is placed inside ``store_dir``
    so task-level completions also survive a kill.

    ``cancel`` (a :class:`~repro.engine.cancel.CancelToken`) is polled at
    scenario boundaries: a cancellation raises
    :class:`~repro.errors.CampaignInterrupted` *after* the last finished
    scenario committed its checkpoint, so an honoured cancellation is
    exactly as resumable as a kill — and loses no completed work.  The
    optimization service uses this for graceful drains.
    """
    if config is None:
        config = FlowConfig()
    if ledger is None:
        ledger = SynthesisLedger()
    if resume and store_dir is None:
        raise SpecificationError("resume=True requires store_dir")

    scenarios = shard_scenarios(grid.expand(), *shard)
    manifest = build_manifest(
        grid, config, shard, tuple(s.label for s in scenarios)
    )

    checkpoints: CheckpointStore | None = None
    completed: list = []
    if store_dir is not None:
        store_path = Path(store_dir)
        checkpoints = CheckpointStore(store_path)
        existing = read_manifest(store_path)
        if resume and existing is not None:
            require_matching_manifest(existing, manifest, store_path)
        if not resume:
            # A fresh run starts clean: stale checkpoints *and* stale queue
            # acks (which would otherwise replay results a previous code
            # version computed) are both discarded.
            checkpoints.clear()
            shutil.rmtree(store_path / QUEUE_DIRNAME, ignore_errors=True)
        write_manifest(manifest, store_path)
        if (
            config.backend in ("queue", "broker")
            and config.queue_dir is None
            and config.broker_url is None
        ):
            # Default the task directory into the store: queue acks (and a
            # directory broker's task files) then live and die with the
            # campaign they belong to.  A broker run pointed at a remote
            # HTTP broker (broker_url set) manages no local directory.
            config = dataclasses.replace(
                config, queue_dir=str(store_path / QUEUE_DIRNAME)
            )
        if resume:
            completed = checkpoints.completed_prefix(scenarios)

    # Telemetry is a pure execution knob (see FlowConfig.telemetry): it is
    # applied here — mode, trace sink, and the env vars pool workers
    # inherit — and fully unwound on exit, so one campaign's choice never
    # leaks into the next call or the surrounding process.
    telemetry = getattr(config, "telemetry", "metrics")
    previous_mode = obs.telemetry_mode()
    obs.set_mode(telemetry)
    metrics_baseline = obs.snapshot()
    saved_env: dict[str, str | None] = {}
    tracing_here = False
    if store_dir is not None and telemetry != "off":
        spool_dir = store_path / obs.METRICS_DIRNAME
        if not resume:
            shutil.rmtree(spool_dir, ignore_errors=True)
            shutil.rmtree(store_path / TRACE_DIRNAME, ignore_errors=True)
        saved_env[obs.SPOOL_ENV] = os.environ.get(obs.SPOOL_ENV)
        os.environ[obs.SPOOL_ENV] = str(spool_dir)
        if telemetry == "trace":
            trace_dir = store_path / TRACE_DIRNAME
            saved_env[TRACE_ENV] = os.environ.get(TRACE_ENV)
            os.environ[TRACE_ENV] = str(trace_dir)
            configure_tracing(trace_dir)
            tracing_here = True

    try:
        results: list[ScenarioResult] = []
        #: (K, rate, corner) -> (winner label, winner power) from this run's
        #: synthesis scenarios — live or replayed — feeding the behavioral
        #: tier the topology each synthesis point actually selected.
        synthesis_winners: dict[tuple[int, float, str], tuple[str, float]] = {}
        campaign_start = time.perf_counter()
        for scenario, record, journal in completed:
            ledger.replay(journal)
            obs.counter("campaign.scenarios_replayed")
            if record.mode == "synthesis":
                synthesis_winners[_winner_key(record)] = (
                    record.winner,
                    record.winner_power_w,
                )
            scenario_result = ScenarioResult(
                scenario=scenario,
                topology=None,
                record=record,
                wall_seconds=0.0,
                replayed=True,
            )
            results.append(scenario_result)
            if progress is not None:
                progress(scenario_result)

        backend = config.make_backend()
        try:
            with span(
                "campaign.run",
                scenarios=len(scenarios),
                shard=f"{shard[0]}/{shard[1]}",
                backend=backend.name,
            ):
                for scenario in scenarios[len(completed):]:
                    if cancel is not None and cancel.cancelled:
                        raise CampaignInterrupted(len(results), len(scenarios))
                    if checkpoints is not None:
                        ledger.journal = []
                    try:
                        cache: LedgerBackedCache | None = None
                        topology: TopologyResult | None = None
                        start = time.perf_counter()
                        with span(
                            "campaign.scenario",
                            label=scenario.label,
                            mode=scenario.mode,
                        ):
                            obs.counter("campaign.scenarios")
                            if scenario.mode == "behavioral":
                                record = _behavioral_record(
                                    scenario, config, backend, synthesis_winners
                                )
                            else:
                                if scenario.mode == "synthesis":
                                    cache = LedgerBackedCache(
                                        tech=scenario.spec.tech,
                                        budget=config.budget,
                                        retarget_budget=config.retarget_budget,
                                        seed=config.seed,
                                        retarget_seed=config.retarget_seed,
                                        verify_transient=config.verify_transient,
                                        eval_kernel=config.eval_kernel,
                                        eval_speculation=config.eval_speculation,
                                        dc_kernel=config.dc_kernel,
                                        donor_pool=ledger.donors_for(
                                            scenario.spec.tech.name
                                        ),
                                        ledger=ledger,
                                        cache_dir=config.cache_dir,
                                    )
                                topology = optimize_topology(
                                    scenario.spec,
                                    mode=scenario.mode,
                                    cache=cache,
                                    config=config,
                                    backend=backend,
                                )
                                record = _make_record(scenario, topology, cache)
                                if scenario.mode == "synthesis":
                                    synthesis_winners[_winner_key(scenario)] = (
                                        record.winner,
                                        record.winner_power_w,
                                    )
                        wall = time.perf_counter() - start
                        if checkpoints is not None:
                            checkpoints.write(scenario, record, ledger.journal or [])
                    finally:
                        ledger.journal = None
                    scenario_result = ScenarioResult(
                        scenario=scenario,
                        topology=topology,
                        record=record,
                        wall_seconds=wall,
                    )
                    results.append(scenario_result)
                    if progress is not None:
                        progress(scenario_result)
        finally:
            backend.close()

        campaign = CampaignResult(
            grid=grid,
            scenarios=tuple(results),
            backend_name=backend.name,
            wall_seconds=time.perf_counter() - campaign_start,
            shard=shard,
            manifest=manifest,
            replayed_scenarios=len(completed),
        )
        if store_dir is not None:
            campaign.save(store_dir)
            if telemetry != "off":
                try:
                    _write_campaign_metrics(store_path, backend, metrics_baseline)
                except Exception:
                    pass  # telemetry must never fail the campaign it observes
        return campaign
    finally:
        if tracing_here:
            configure_tracing(None)
        for key, value in saved_env.items():
            if value is None:
                os.environ.pop(key, None)
            else:
                os.environ[key] = value
        obs.set_mode(previous_mode)


__all__ = [
    "CampaignResult",
    "LedgerBackedCache",
    "ScenarioResult",
    "SynthesisLedger",
    "run_campaign",
]
