"""Fuse shard stores back into the single-run campaign store.

The inverse of ``run_campaign(..., shard=(k, n))``: given the ``n`` shard
store directories, validate that they belong to the *same* campaign (equal
grid and config digests), that they are all present exactly once, and that
together they cover every scenario of the grid; then write one merged store
whose ``results.jsonl`` and ``report.txt`` are byte-identical to what a
single unsharded run of the same campaign would have produced.  That
byte-identity is the whole point — it is what lets a CI matrix split a grid
across runners and still assert against a single-machine reference.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable

from repro.campaign.manifest import (
    CampaignManifest,
    read_manifest,
    write_manifest,
)
from repro.campaign.report import compose_report, grid_header
from repro.campaign.store import (
    META_FILENAME,
    REPORT_FILENAME,
    RESULTS_FILENAME,
    CampaignRecord,
    read_records,
    write_records,
)
from repro.errors import SpecificationError


def _load_shard(store_dir: Path) -> tuple[CampaignManifest, tuple[CampaignRecord, ...]]:
    manifest = read_manifest(store_dir)
    if manifest is None:
        raise SpecificationError(
            f"{store_dir} is not a campaign store: no manifest.json "
            "(was it produced by repro-adc campaign --out?)"
        )
    results_path = store_dir / RESULTS_FILENAME
    if not results_path.exists():
        raise SpecificationError(
            f"{store_dir} is incomplete: manifest present but no "
            f"{RESULTS_FILENAME} — the shard run did not finish "
            "(re-run it with --resume)"
        )
    records = read_records(results_path)
    expected = list(manifest.shard_scenarios)
    got = [record.label for record in records]
    if got != expected:
        raise SpecificationError(
            f"{store_dir}: results.jsonl does not match its manifest "
            f"(expected scenarios {expected}, found {got})"
        )
    return manifest, records


def merge_shards(
    shard_dirs: Iterable[str | Path],
    out_dir: str | Path | None = None,
) -> tuple[tuple[CampaignRecord, ...], str, CampaignManifest]:
    """Validate and fuse shard stores; optionally write the merged store.

    Returns ``(records, report_text, merged_manifest)`` with records in
    grid expansion order.  The merged manifest is the unsharded ``(1, 1)``
    manifest of the same campaign, so a merged store is indistinguishable
    from (and byte-identical to, minus ``meta.json``) a single-run store.
    """
    directories = [Path(d) for d in shard_dirs]
    if not directories:
        raise SpecificationError("merge needs at least one shard store")
    shards = [_load_shard(directory) for directory in directories]

    reference = shards[0][0]
    seen_indices: dict[int, Path] = {}
    for directory, (manifest, _) in zip(directories, shards):
        if manifest.grid_digest != reference.grid_digest:
            raise SpecificationError(
                f"cannot merge {directory}: its grid digest "
                f"({manifest.grid_digest[:12]}…) differs from "
                f"{directories[0]} ({reference.grid_digest[:12]}…) — the "
                "shards were run on different grids"
            )
        if manifest.config_digest != reference.config_digest:
            raise SpecificationError(
                f"cannot merge {directory}: its config digest differs from "
                f"{directories[0]} — the shards were run under different "
                "budgets, seeds or verification flags"
            )
        if manifest.shard_count != reference.shard_count:
            raise SpecificationError(
                f"cannot merge {directory}: shard count "
                f"{manifest.shard_count} != {reference.shard_count}"
            )
        if manifest.shard_index in seen_indices:
            raise SpecificationError(
                f"duplicate shard {manifest.shard_index}/"
                f"{manifest.shard_count}: both "
                f"{seen_indices[manifest.shard_index]} and {directory}"
            )
        seen_indices[manifest.shard_index] = directory
    missing = sorted(set(range(1, reference.shard_count + 1)) - set(seen_indices))
    if missing:
        raise SpecificationError(
            f"incomplete shard set: missing shard(s) "
            f"{', '.join(f'{m}/{reference.shard_count}' for m in missing)}"
        )

    by_label = {
        record.label: record for _, records in shards for record in records
    }
    if set(by_label) != set(reference.scenarios):
        extra = sorted(set(by_label) - set(reference.scenarios))
        absent = sorted(set(reference.scenarios) - set(by_label))
        raise SpecificationError(
            "shard records do not cover the grid exactly: "
            f"missing {absent}, unexpected {extra}"
        )
    merged = tuple(by_label[label] for label in reference.scenarios)

    header = grid_header(
        len(merged),
        reference.resolutions,
        reference.sample_rates_hz,
        reference.modes,
        reference.corners,
    )
    report_text = compose_report(header, merged)
    merged_manifest = CampaignManifest(
        grid_digest=reference.grid_digest,
        config_digest=reference.config_digest,
        scenarios=reference.scenarios,
        shard_index=1,
        shard_count=1,
        shard_scenarios=reference.scenarios,
        resolutions=reference.resolutions,
        sample_rates_hz=reference.sample_rates_hz,
        modes=reference.modes,
        corners=reference.corners,
    )

    if out_dir is not None:
        directory = Path(out_dir)
        directory.mkdir(parents=True, exist_ok=True)
        write_records(merged, directory / RESULTS_FILENAME)
        (directory / REPORT_FILENAME).write_text(
            report_text + "\n", encoding="utf-8"
        )
        write_manifest(merged_manifest, directory)
        meta = {
            "merged_from": [str(d) for d in directories],
            "shard_count": reference.shard_count,
        }
        (directory / META_FILENAME).write_text(
            json.dumps(meta, indent=2) + "\n", encoding="utf-8"
        )

    return merged, report_text, merged_manifest


__all__ = ["merge_shards"]
