"""Structured campaign results: JSONL run records and the Walden FoM.

Every scenario of a campaign produces one :class:`CampaignRecord` — a flat,
JSON-serializable summary of the optimization outcome plus the synthesis
accounting needed to audit cross-scenario reuse.  Records deliberately
contain *no wall-clock data*: everything in them is a deterministic function
of the campaign definition, which is what lets the test suite require
byte-identical ``results.jsonl`` files from the serial, thread and process
backends.  Timings live in the separate :class:`repro.campaign.runner.CampaignResult`
object (and the runner's ``meta.json``), where nondeterminism is expected.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable

from repro.errors import SpecificationError

#: Name of the per-scenario record file inside a campaign store directory.
RESULTS_FILENAME = "results.jsonl"

#: Name of the human-readable comparison report.
REPORT_FILENAME = "report.txt"

#: Name of the (nondeterministic) timing/environment sidecar.
META_FILENAME = "meta.json"


def walden_fom(power_w: float, resolution_bits: int, sample_rate_hz: float) -> float:
    """Walden figure of merit: ``P / (2^K * f_s)`` in J per conversion step.

    The classic energy-per-step metric Barrandon et al. use to compare
    pipeline ADC design points; lower is better.  Resolution enters as the
    target K (the flow sizes every block for K-bit settling/noise, so K is
    the design ENOB).
    """
    return power_w / (2.0**resolution_bits * sample_rate_hz)


@dataclass(frozen=True)
class CampaignRecord:
    """Deterministic summary of one scenario's optimization."""

    #: Stable scenario id (see :attr:`repro.campaign.grid.Scenario.label`).
    label: str
    #: Position in the campaign's expansion order.
    index: int
    resolution_bits: int
    sample_rate_hz: float
    full_scale: float
    #: Technology name and corner tag.
    tech: str
    corner: str
    #: Evaluation path used: 'analytic', 'synthesis' or 'behavioral'.
    mode: str
    #: Winning candidate label, e.g. '4-3-2'.
    winner: str
    #: Ranked (label, total front-end power [W]) pairs, best first.
    rankings: tuple[tuple[str, float], ...]
    #: Winner's Walden figure of merit [J/conversion-step].
    fom_j_per_step: float
    #: True when every synthesized block met its constraints.
    all_feasible: bool
    #: Distinct MDAC blocks this scenario synthesized (0 for analytic).
    unique_blocks: int
    #: Fresh searches without / with a warm start.
    cold_runs: int
    retargeted_runs: int
    #: Blocks served from the campaign's shared in-memory ledger.
    shared_hits: int
    #: Blocks served from the on-disk persistent cache.
    persistent_hits: int
    #: Blocks warm-started from earlier scenarios' results.
    pool_warm_starts: int
    #: Pool warm starts that missed feasibility and re-synthesized cold.
    pool_escalations: int
    #: Behavioral-verification outcome (``None`` for analytic/synthesis
    #: records): a flat dict of plain scalars — draws, seed, winner_source,
    #: samples, cycles, simulated SNDR/ENOB aggregates and the simulated
    #: Walden FoM — deterministic like every other field.
    behavioral: dict | None = None

    @property
    def winner_power_w(self) -> float:
        """The winning candidate's total front-end power [W]."""
        return self.rankings[0][1]

    def to_json(self) -> str:
        """One canonical JSON line (sorted keys, no whitespace)."""
        payload = dataclasses.asdict(self)
        payload["rankings"] = [[label, power] for label, power in self.rankings]
        return json.dumps(payload, sort_keys=True, separators=(",", ":"))

    @classmethod
    def from_json(cls, line: str) -> "CampaignRecord":
        """Inverse of :meth:`to_json`."""
        payload = json.loads(line)
        payload["rankings"] = tuple(
            (label, float(power)) for label, power in payload["rankings"]
        )
        return cls(**payload)


def write_records(records: Iterable[CampaignRecord], path: str | Path) -> Path:
    """Write records as JSONL (one scenario per line); returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    text = "".join(record.to_json() + "\n" for record in records)
    path.write_text(text, encoding="utf-8")
    return path


def read_records(path: str | Path) -> tuple[CampaignRecord, ...]:
    """Load a JSONL results store written by :func:`write_records`."""
    path = Path(path)
    records: list[CampaignRecord] = []
    for lineno, line in enumerate(path.read_text(encoding="utf-8").splitlines(), 1):
        if not line.strip():
            continue
        try:
            records.append(CampaignRecord.from_json(line))
        except (json.JSONDecodeError, KeyError, TypeError) as exc:
            raise SpecificationError(
                f"{path}:{lineno}: corrupt campaign record ({exc})"
            ) from exc
    return tuple(records)
