"""Campaign comparison report: rank design points by figure of merit.

The report is the campaign's human-facing deliverable — one table row per
scenario, ordered by the Walden FoM (energy per conversion step, lower is
better), followed by the synthesis-economy summary that shows what the
batch actually shared.  Everything printed here is a deterministic function
of the campaign definition; wall-clock numbers deliberately live elsewhere
(``meta.json``) so reports compare byte-for-byte across execution backends.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable

from repro.campaign.store import CampaignRecord

if TYPE_CHECKING:
    from repro.campaign.runner import CampaignResult

#: Joules/step -> femtojoules/step, the customary FoM display unit.
_FJ = 1e15


def format_records(records: Iterable[CampaignRecord]) -> str:
    """The comparison table for a set of records, best FoM first."""
    ranked = sorted(records, key=lambda r: (r.fom_j_per_step, r.index))
    lines = [
        "Campaign comparison — ranked by Walden FoM (lower is better)",
        f"  {'scenario':<24} {'K':>3} {'rate':>9} {'mode':>9} "
        f"{'winner':>12} {'P [mW]':>8} {'FoM [fJ/step]':>14}",
    ]
    for record in ranked:
        flag = "" if record.all_feasible else "  [INFEASIBLE]"
        lines.append(
            f"  {record.label:<24} {record.resolution_bits:>3} "
            f"{record.sample_rate_hz / 1e6:>7.1f}M {record.mode:>9} "
            f"{record.winner:>12} {record.winner_power_w * 1e3:>8.2f} "
            f"{record.fom_j_per_step * _FJ:>14.1f}{flag}"
        )
    return "\n".join(lines)


def synthesis_summary(records: Iterable[CampaignRecord]) -> str:
    """Campaign-wide synthesis accounting: what the batch shared."""
    records = list(records)
    cold = sum(r.cold_runs for r in records)
    warm = sum(r.retargeted_runs for r in records)
    pool = sum(r.pool_warm_starts for r in records)
    escalated = sum(r.pool_escalations for r in records)
    shared = sum(r.shared_hits for r in records)
    disk = sum(r.persistent_hits for r in records)
    blocks = sum(r.unique_blocks for r in records)
    # Each escalation ran (and discarded) one retarget search on top of the
    # cold/warm runs that produced the kept blocks; blocks not produced by
    # a fresh search came out of a cache tier (an escalated cache-served
    # block can take more than one lookup, so hits are reported per block,
    # lookup counts as detail).
    searches = cold + warm + escalated
    served = blocks - cold - warm
    lines = ["Synthesis economy"]
    if blocks == 0:
        lines.append("  analytic-only campaign: no blocks synthesized")
        return "\n".join(lines)
    lines += [
        f"  unique blocks across scenarios: {blocks}",
        f"  searches: {searches} ({cold} cold, {warm} retargeted; "
        f"{pool} warm-started from earlier scenarios, "
        f"{escalated} escalated back to cold)",
        f"  served without search: {served} blocks "
        f"({shared} ledger lookups, {disk} persistent-cache lookups)",
        f"  cache hit rate: {served / blocks:.0%} of blocks",
    ]
    return "\n".join(lines)


def behavioral_summary(records: Iterable[CampaignRecord]) -> str:
    """Simulated-performance table for the behavioral scenarios, if any.

    Empty string when the campaign ran no behavioral scenarios, so purely
    analytic/synthesis reports keep their exact historical shape.
    """
    rows = [r for r in records if r.behavioral is not None]
    if not rows:
        return ""
    lines = [
        "Behavioral verification — simulated Monte-Carlo performance",
        f"  {'scenario':<26} {'topology':>10} {'from':>9} {'draws':>5} "
        f"{'SNDR mean/min [dB]':>18} {'ENOB mean/min':>14} "
        f"{'FoM_sim [fJ/step]':>17}",
    ]
    for record in sorted(rows, key=lambda r: r.index):
        b = record.behavioral
        lines.append(
            f"  {record.label:<26} {record.winner:>10} "
            f"{b['winner_source']:>9} {b['draws']:>5} "
            f"{b['sndr_db_mean']:>9.2f}/{b['sndr_db_min']:<8.2f} "
            f"{b['enob_mean']:>7.2f}/{b['enob_min']:<6.2f} "
            f"{b['fom_sim_j_per_step'] * _FJ:>17.1f}"
        )
    return "\n".join(lines)


def grid_header(
    scenario_count: int,
    resolutions: Iterable[int],
    sample_rates_hz: Iterable[float],
    modes: Iterable[str],
    corner_tags: Iterable[str],
    shard: tuple[int, int] = (1, 1),
) -> str:
    """The report's first line, built from plain axis values.

    Taking axes (not a :class:`CampaignGrid`) lets the shard ``merge``
    path rebuild the exact unsharded header from a manifest alone — the
    byte-identity contract between merged and single-run reports hangs on
    both paths funnelling through this one function.
    """
    header = (
        f"Campaign: {scenario_count} scenarios "
        f"(K in {{{', '.join(str(k) for k in resolutions)}}}, "
        f"rates {{{', '.join(f'{r / 1e6:g}M' for r in sample_rates_hz)}}}, "
        f"modes {{{', '.join(modes)}}}, "
        f"corners {{{', '.join(corner_tags)}}})"
    )
    if shard != (1, 1):
        header += f" — shard {shard[0]}/{shard[1]}"
    return header


def compose_report(header: str, records: Iterable[CampaignRecord]) -> str:
    """Assemble the full report text from a header and records.

    Both the live campaign path and the shard ``merge`` path funnel
    through this function, which is what keeps merged and single-run
    reports byte-identical — behavioral sections included.
    """
    records = list(records)
    parts = [header, "", format_records(records), "", synthesis_summary(records)]
    behavioral = behavioral_summary(records)
    if behavioral:
        parts += ["", behavioral]
    return "\n".join(parts)


def comparison_report(campaign: "CampaignResult") -> str:
    """The full report for one campaign run."""
    records = campaign.records
    header = grid_header(
        len(records),
        campaign.grid.resolutions,
        campaign.grid.sample_rates_hz,
        campaign.grid.modes,
        [tag for tag, _ in campaign.grid.corners],
        shard=campaign.shard,
    )
    return compose_report(header, records)
