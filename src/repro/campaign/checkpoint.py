"""Per-scenario campaign checkpoints: the work queue's completion records.

A campaign store directory gains a ``checkpoints/`` subdirectory with two
files per *completed* scenario:

* ``NNNNN.ledger.pkl`` — the scenario's ledger journal: every
  ``(fingerprint, spec_key, scope, result)`` admission it made into the
  campaign's :class:`~repro.campaign.runner.SynthesisLedger`, in admission
  order (``scope`` is the donor's technology name; journals written before
  donor scoping carry three-field entries, which replay as unscoped).
  Replaying the journal reconstructs the ledger (donor pool order included)
  exactly as it stood after the scenario finished — which is what makes a
  resumed campaign's *remaining* scenarios plan the same warm starts, and
  therefore produce byte-identical records, as an uninterrupted run.
* ``NNNNN.json`` — the scenario's deterministic record (the exact
  ``results.jsonl`` line) plus its label.  Written *after* the journal via
  an atomic rename, so the JSON file is the commit marker: a kill between
  the two files leaves no visible checkpoint and the scenario simply
  re-runs.

``NNNNN`` is the scenario's index in the grid's expansion order, so
checkpoints sort into execution order lexicographically.
"""

from __future__ import annotations

import json
import pickle
import shutil
from pathlib import Path
from typing import Any

from repro.campaign.grid import Scenario
from repro.campaign.store import CampaignRecord
from repro.engine.persist import atomic_write_bytes

#: Checkpoint subdirectory inside a campaign store.
CHECKPOINT_DIRNAME = "checkpoints"

#: Queue-backend subdirectory inside a campaign store (leases/acks).
QUEUE_DIRNAME = "queue"

#: One ledger-journal entry: (fingerprint, spec_key, scope, result).
JournalEntry = tuple[str, str, str, Any]


class CheckpointStore:
    """Scenario-completion records under one campaign store directory."""

    def __init__(self, store_dir: str | Path):
        self.store_dir = Path(store_dir)
        self.directory = self.store_dir / CHECKPOINT_DIRNAME

    def _record_path(self, index: int) -> Path:
        return self.directory / f"{index:05d}.json"

    def _journal_path(self, index: int) -> Path:
        return self.directory / f"{index:05d}.ledger.pkl"

    def write(
        self,
        scenario: Scenario,
        record: CampaignRecord,
        journal: list[JournalEntry],
    ) -> None:
        """Commit one completed scenario (journal first, record last)."""
        atomic_write_bytes(
            self._journal_path(scenario.index),
            pickle.dumps(tuple(journal), protocol=pickle.HIGHEST_PROTOCOL),
        )
        payload = {
            "index": scenario.index,
            "label": scenario.label,
            "record": record.to_json(),
        }
        atomic_write_bytes(
            self._record_path(scenario.index),
            (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8"),
        )

    def load(
        self, scenario: Scenario
    ) -> tuple[CampaignRecord, tuple[JournalEntry, ...]] | None:
        """Load one scenario's checkpoint, or ``None`` if absent/unusable.

        Any unreadable or mismatching checkpoint degrades to "not
        checkpointed" — the scenario re-runs, which is always safe.
        """
        try:
            payload = json.loads(
                self._record_path(scenario.index).read_text(encoding="utf-8")
            )
            if payload.get("label") != scenario.label:
                return None
            record = CampaignRecord.from_json(payload["record"])
            with open(self._journal_path(scenario.index), "rb") as handle:
                journal = pickle.load(handle)
            return record, tuple(journal)
        except FileNotFoundError:
            return None
        except (
            OSError,
            json.JSONDecodeError,
            KeyError,
            TypeError,
            ValueError,
            pickle.UnpicklingError,
            EOFError,
            AttributeError,
            ImportError,  # a pickled class moved between code versions
        ):
            return None

    def completed_prefix(
        self, scenarios: tuple[Scenario, ...]
    ) -> list[tuple[Scenario, CampaignRecord, tuple[JournalEntry, ...]]]:
        """The longest checkpointed prefix of this run's scenario sequence.

        Scenarios execute strictly in order, so completions always form a
        prefix; stopping at the first gap (rather than cherry-picking later
        checkpoints) keeps the ledger replay order identical to the
        original execution.
        """
        prefix = []
        for scenario in scenarios:
            loaded = self.load(scenario)
            if loaded is None:
                break
            record, journal = loaded
            prefix.append((scenario, record, journal))
        return prefix

    def clear(self) -> None:
        """Delete all checkpoints (a fresh, non-resuming run starts clean)."""
        shutil.rmtree(self.directory, ignore_errors=True)


__all__ = ["CHECKPOINT_DIRNAME", "QUEUE_DIRNAME", "CheckpointStore"]
