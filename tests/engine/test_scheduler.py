"""Scheduler tests: dedup, wave ordering, and backend-independence."""

import pytest

from repro.engine.backend import ProcessPoolBackend, SerialBackend
from repro.engine.config import FlowConfig
from repro.engine.scheduler import execute_plan, plan_synthesis
from repro.enumeration.candidates import PipelineCandidate, enumerate_candidates
from repro.flow.cache import BlockCache
from repro.flow.topology import optimize_topology
from repro.specs.adc import AdcSpec
from repro.specs.stage import plan_stages
from repro.tech import CMOS025

SPEC13 = AdcSpec(resolution_bits=13)


def _all_specs(candidates):
    return [
        mdac
        for cand in candidates
        for mdac in plan_stages(SPEC13, cand).mdacs
    ]


def _small_cache():
    return BlockCache(CMOS025, budget=60, retarget_budget=30, verify_transient=False)


class TestPlan:
    def test_dedup_matches_paper_arithmetic(self):
        # 27 stage instances across the seven 13-bit candidates collapse to
        # 12 unique blocks (paper: ~11).
        specs = _all_specs(enumerate_candidates(13))
        plan = plan_synthesis(specs)
        assert plan.total_instances == 27
        assert plan.unique_blocks == 12
        assert len({node.key for node in plan.nodes}) == 12

    def test_wave_topology(self):
        specs = _all_specs(enumerate_candidates(13))
        plan = plan_synthesis(specs)
        # Exactly one cold synthesis, at wave 0.
        colds = [n for n in plan.nodes if n.is_cold]
        assert len(colds) == 1
        assert colds[0].wave == 0
        # Every donor resolves in a strictly earlier wave.
        for node in plan.nodes:
            if node.donor_index is not None:
                assert plan.nodes[node.donor_index].wave < node.wave
        # Waves partition the nodes and are dense from 0.
        flattened = sorted(i for wave in plan.waves for i in wave)
        assert flattened == list(range(plan.unique_blocks))
        assert plan.max_wave_width >= 2  # real parallelism exists

    def test_plan_is_deterministic(self):
        specs = _all_specs(enumerate_candidates(13))
        assert plan_synthesis(specs) == plan_synthesis(specs)

    def test_existing_results_become_wave0_donors(self):
        cands = [PipelineCandidate((4, 3, 2), 13, 7)]
        cache = _small_cache()
        specs = _all_specs(cands)
        execute_plan(plan_synthesis(specs), cache, SerialBackend())
        assert cache.cold_runs == 1

        # A second candidate planned against the warm cache: nothing cold,
        # and every new node donated by cache entries starts at wave 0.
        more = _all_specs([PipelineCandidate((3, 3, 3), 13, 7)])
        plan2 = plan_synthesis(more, cache.results)
        assert plan2.unique_blocks > 0
        assert all(not node.is_cold for node in plan2.nodes)
        assert all(
            node.wave == 0 for node in plan2.nodes if node.donor_existing is not None
        )

    def test_already_cached_specs_are_skipped(self):
        cands = [PipelineCandidate((4, 3, 2), 13, 7)]
        cache = _small_cache()
        specs = _all_specs(cands)
        execute_plan(plan_synthesis(specs), cache, SerialBackend())
        replans = plan_synthesis(specs, cache.results)
        assert replans.unique_blocks == 0


class TestDonorPool:
    def test_pool_donors_warm_start_without_satisfying_keys(self):
        # Synthesize one candidate's blocks, then plan a *different system
        # spec* with those results as the external donor pool.
        cache = _small_cache()
        specs13 = _all_specs([PipelineCandidate((4, 3, 2), 13, 7)])
        execute_plan(plan_synthesis(specs13), cache, SerialBackend())
        donors = tuple(cache.results.values())

        spec12 = AdcSpec(resolution_bits=12)
        specs12 = [
            m
            for m in plan_stages(spec12, PipelineCandidate((4, 2, 2), 12, 7)).mdacs
        ]
        plan = plan_synthesis(specs12, donors=donors)
        # Every block still gets planned (donors never satisfy reuse keys)…
        assert plan.unique_blocks == len({s.reuse_key for s in specs12})
        # …but nothing synthesizes cold: the pool donates at wave 0.
        assert all(not node.is_cold for node in plan.nodes)
        assert plan.pool_donated > 0
        assert all(
            node.wave == 0
            for node in plan.nodes
            if node.donor_pool_index is not None
        )
        assert plan.donors == donors

    def test_pool_donated_blocks_execute_as_retargets(self):
        cache = _small_cache()
        specs13 = _all_specs([PipelineCandidate((4, 3, 2), 13, 7)])
        execute_plan(plan_synthesis(specs13), cache, SerialBackend())

        spec12 = AdcSpec(resolution_bits=12)
        fresh = BlockCache(
            CMOS025,
            budget=60,
            retarget_budget=30,
            verify_transient=False,
            donor_pool=tuple(cache.results.values()),
        )
        result = optimize_topology(
            spec12,
            mode="synthesis",
            candidates=[PipelineCandidate((4, 2, 2), 12, 7)],
            cache=fresh,
        )
        assert fresh.cold_runs == 0
        assert fresh.pool_warm_starts > 0
        assert fresh.retargeted_runs == result.unique_blocks

    def test_empty_pool_reproduces_legacy_plan(self):
        specs = _all_specs(enumerate_candidates(13))
        assert plan_synthesis(specs, donors=()) == plan_synthesis(specs)


class TestExecutionEquivalence:
    #: Two candidates sharing one reuse key keep the runtime unit-scale.
    CANDIDATES = [
        PipelineCandidate((4, 3, 2), 13, 7),
        PipelineCandidate((3, 3, 3), 13, 7),
    ]

    def test_scheduler_reproduces_legacy_serial_loop(self):
        # The legacy semantics: walk candidates in order, cache.get per stage.
        legacy_cache = _small_cache()
        legacy_powers = {}
        for cand in self.CANDIDATES:
            plan = plan_stages(SPEC13, cand)
            legacy_powers[cand.label] = [legacy_cache.get(m).power for m in plan.mdacs]

        sched_cache = _small_cache()
        specs = _all_specs(self.CANDIDATES)
        resolved = execute_plan(plan_synthesis(specs), sched_cache, SerialBackend())

        assert set(resolved) == set(legacy_cache.results)
        for key, legacy_result in legacy_cache.results.items():
            assert resolved[key].power == legacy_result.power
            assert resolved[key].retargeted == legacy_result.retargeted
        assert sched_cache.cold_runs == legacy_cache.cold_runs
        assert sched_cache.retargeted_runs == legacy_cache.retargeted_runs

    def test_parallel_ranking_matches_serial(self):
        serial_cfg = FlowConfig(budget=60, retarget_budget=30, verify_transient=False)
        process_cfg = FlowConfig(
            backend="process",
            max_workers=2,
            budget=60,
            retarget_budget=30,
            verify_transient=False,
        )
        serial = optimize_topology(
            SPEC13, mode="synthesis", candidates=self.CANDIDATES, config=serial_cfg
        )
        parallel = optimize_topology(
            SPEC13, mode="synthesis", candidates=self.CANDIDATES, config=process_cfg
        )
        assert serial.power_table() == parallel.power_table()
        assert serial.unique_blocks == parallel.unique_blocks
        for s_eval, p_eval in zip(serial.evaluations, parallel.evaluations):
            assert s_eval.stage_powers == p_eval.stage_powers

    def test_parallel_analytic_matches_serial(self):
        serial = optimize_topology(SPEC13)
        parallel = optimize_topology(
            SPEC13, config=FlowConfig(backend="process", max_workers=2)
        )
        assert serial.power_table() == parallel.power_table()


class TestCacheAccounting:
    def test_counters_partition_the_work(self):
        cache = _small_cache()
        cands = [
            PipelineCandidate((4, 3, 2), 13, 7),
            PipelineCandidate((3, 3, 3), 13, 7),
        ]
        result = optimize_topology(
            SPEC13, mode="synthesis", candidates=cands, cache=cache
        )
        # Every unique block was actually searched exactly once...
        assert cache.synthesis_runs == cache.unique_blocks == result.unique_blocks
        assert cache.cold_runs == 1
        assert cache.retargeted_runs == cache.unique_blocks - 1
        # ...and assembling the 6 stage instances hit the in-memory map.
        assert cache.cache_hits == 6

    def test_shared_cache_across_runs_reuses_blocks(self):
        cache = _small_cache()
        cands = [PipelineCandidate((4, 3, 2), 13, 7)]
        optimize_topology(SPEC13, mode="synthesis", candidates=cands, cache=cache)
        runs_after_first = cache.synthesis_runs
        optimize_topology(SPEC13, mode="synthesis", candidates=cands, cache=cache)
        assert cache.synthesis_runs == runs_after_first  # nothing re-searched
