"""Execution-backend contract tests."""

import pytest

from repro.engine.backend import (
    BACKENDS,
    ExecutionBackend,
    ProcessPoolBackend,
    SerialBackend,
    ThreadPoolBackend,
    make_backend,
)
from repro.engine.config import FlowConfig
from repro.errors import SpecificationError


def _square(x: int) -> int:
    """Module-level so the process pool can pickle a reference to it."""
    return x * x


class TestSerialBackend:
    def test_map_preserves_order(self):
        backend = SerialBackend()
        assert backend.map(_square, [3, 1, 2]) == [9, 1, 4]

    def test_close_idempotent(self):
        backend = SerialBackend()
        backend.close()
        backend.close()

    def test_satisfies_protocol(self):
        assert isinstance(SerialBackend(), ExecutionBackend)


class TestProcessPoolBackend:
    def test_map_preserves_order(self):
        with ProcessPoolBackend(max_workers=2) as backend:
            assert backend.map(_square, list(range(8))) == [x * x for x in range(8)]

    def test_single_task_runs_inline(self):
        backend = ProcessPoolBackend(max_workers=2)
        assert backend.map(_square, [5]) == [25]
        # No pool was spun up for a single task.
        assert backend._executor is None
        backend.close()

    def test_pool_reused_across_maps(self):
        with ProcessPoolBackend(max_workers=2) as backend:
            backend.map(_square, [1, 2, 3])
            pool = backend._executor
            backend.map(_square, [4, 5, 6])
            assert backend._executor is pool

    def test_invalid_workers_rejected(self):
        with pytest.raises(SpecificationError):
            ProcessPoolBackend(max_workers=0)
        with pytest.raises(SpecificationError):
            ProcessPoolBackend(chunksize=0)

    def test_satisfies_protocol(self):
        assert isinstance(ProcessPoolBackend(), ExecutionBackend)


class TestThreadPoolBackend:
    def test_map_preserves_order(self):
        with ThreadPoolBackend(max_workers=2) as backend:
            assert backend.map(_square, list(range(8))) == [x * x for x in range(8)]

    def test_single_task_runs_inline(self):
        backend = ThreadPoolBackend(max_workers=2)
        assert backend.map(_square, [5]) == [25]
        assert backend._executor is None
        backend.close()

    def test_unpicklable_tasks_allowed(self):
        # Unlike the process pool, closures and lambdas are fine.
        with ThreadPoolBackend(max_workers=2) as backend:
            offset = 10
            assert backend.map(lambda x: x + offset, [1, 2, 3]) == [11, 12, 13]

    def test_invalid_workers_rejected(self):
        with pytest.raises(SpecificationError):
            ThreadPoolBackend(max_workers=0)
        with pytest.raises(SpecificationError):
            ThreadPoolBackend(chunksize=0)

    def test_satisfies_protocol(self):
        assert isinstance(ThreadPoolBackend(), ExecutionBackend)


class TestFactory:
    def test_registry_names(self):
        assert {"serial", "thread", "process"} <= set(BACKENDS)

    def test_make_backend(self):
        assert isinstance(make_backend("serial"), SerialBackend)
        backend = make_backend("process", max_workers=3)
        assert isinstance(backend, ProcessPoolBackend)
        assert backend.max_workers == 3

    def test_unknown_backend_rejected(self):
        with pytest.raises(SpecificationError):
            make_backend("gpu")


class TestFlowConfig:
    def test_default_is_serial(self):
        assert isinstance(FlowConfig().make_backend(), SerialBackend)

    def test_process_config(self):
        backend = FlowConfig(backend="process", max_workers=2).make_backend()
        assert isinstance(backend, ProcessPoolBackend)
        assert backend.max_workers == 2

    def test_serial_downgrade_for_workers(self):
        cfg = FlowConfig(backend="process", max_workers=4)
        serial = cfg.serial()
        assert serial.backend == "serial"
        # Budgets survive the downgrade; a serial config is returned as-is.
        assert serial.budget == cfg.budget
        assert FlowConfig().serial() is not None

    def test_make_cache_tiers(self, tmp_path):
        from repro.flow.cache import BlockCache, PersistentBlockCache
        from repro.tech import CMOS025

        cfg = FlowConfig(budget=77)
        cache = cfg.make_cache(CMOS025)
        assert type(cache) is BlockCache
        assert cache.budget == 77

        persistent = FlowConfig(cache_dir=str(tmp_path)).make_cache(CMOS025)
        assert isinstance(persistent, PersistentBlockCache)
