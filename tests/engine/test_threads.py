"""BLAS/OpenMP thread pinning for pooled backends."""

from repro.engine.threads import (
    THREAD_ENV_VARS,
    effective_blas_threads,
    pin_blas_threads,
)


class TestPinBlasThreads:
    def test_unset_vars_are_pinned(self, monkeypatch):
        for var in THREAD_ENV_VARS:
            monkeypatch.delenv(var, raising=False)
        effective = pin_blas_threads()
        assert effective == {var: "1" for var in THREAD_ENV_VARS}
        assert effective_blas_threads() == effective

    def test_user_exported_values_win(self, monkeypatch):
        monkeypatch.setenv("OMP_NUM_THREADS", "8")
        monkeypatch.delenv("OPENBLAS_NUM_THREADS", raising=False)
        effective = pin_blas_threads()
        assert effective["OMP_NUM_THREADS"] == "8"
        assert effective["OPENBLAS_NUM_THREADS"] == "1"

    def test_blank_values_are_treated_as_unset(self, monkeypatch):
        for var in THREAD_ENV_VARS:
            monkeypatch.setenv(var, "  ")
        assert pin_blas_threads(2) == {var: "2" for var in THREAD_ENV_VARS}

    def test_picklable_for_pool_initializers(self):
        import pickle

        assert pickle.loads(pickle.dumps(pin_blas_threads)) is pin_blas_threads

    def test_pool_creation_pins_the_parent(self, monkeypatch):
        from repro.engine.backend import ThreadPoolBackend

        for var in THREAD_ENV_VARS:
            monkeypatch.delenv(var, raising=False)
        backend = ThreadPoolBackend(max_workers=2)
        try:
            backend.map(abs, [-1, 2, -3])
            assert effective_blas_threads() == {
                var: "1" for var in THREAD_ENV_VARS
            }
        finally:
            backend.close()
