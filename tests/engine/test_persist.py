"""Persistent block cache: fingerprints, round-trips, corruption handling."""

import pytest

from repro.engine.config import FlowConfig
from repro.engine.persist import (
    block_fingerprint,
    entry_path,
    load_result,
    store_result,
)
from repro.enumeration.candidates import PipelineCandidate
from repro.errors import SpecificationError
from repro.flow.cache import PersistentBlockCache
from repro.flow.topology import optimize_topology
from repro.specs.adc import AdcSpec
from repro.specs.stage import plan_stages
from repro.tech import CMOS025

SPEC13 = AdcSpec(resolution_bits=13)
CANDIDATES = [PipelineCandidate((4, 3, 2), 13, 7)]


def _mdac(index: int = 0):
    return plan_stages(SPEC13, CANDIDATES[0]).mdacs[index]


def _cache(tmp_path, **overrides):
    kwargs = dict(
        tech=CMOS025,
        budget=60,
        retarget_budget=30,
        verify_transient=False,
        cache_dir=str(tmp_path),
    )
    kwargs.update(overrides)
    return PersistentBlockCache(**kwargs)


class TestFingerprint:
    def test_stable_for_identical_inputs(self):
        a = block_fingerprint(_mdac(), CMOS025, budget=60, seed=1, verify_transient=False)
        b = block_fingerprint(_mdac(), CMOS025, budget=60, seed=1, verify_transient=False)
        assert a == b

    def test_sensitive_to_every_knob(self):
        base = dict(budget=60, seed=1, verify_transient=False)
        reference = block_fingerprint(_mdac(), CMOS025, **base)
        assert block_fingerprint(_mdac(1), CMOS025, **base) != reference
        assert (
            block_fingerprint(_mdac(), CMOS025, budget=61, seed=1, verify_transient=False)
            != reference
        )
        assert (
            block_fingerprint(_mdac(), CMOS025, budget=60, seed=2, verify_transient=False)
            != reference
        )
        assert (
            block_fingerprint(_mdac(), CMOS025, budget=60, seed=1, verify_transient=True)
            != reference
        )


class TestDiskLayer:
    def test_store_load_roundtrip(self, tmp_path):
        store_result(tmp_path, "abc123", {"power": 1.5})
        assert load_result(tmp_path, "abc123") == {"power": 1.5}

    def test_missing_entry_is_none(self, tmp_path):
        assert load_result(tmp_path, "nope") is None

    def test_corrupt_entry_degrades_to_miss(self, tmp_path):
        path = entry_path(tmp_path, "bad")
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_bytes(b"not a pickle")
        assert load_result(tmp_path, "bad") is None


class TestPersistentBlockCache:
    def test_requires_cache_dir(self):
        with pytest.raises(SpecificationError):
            PersistentBlockCache(tech=CMOS025)

    def test_roundtrip_through_fresh_cache(self, tmp_path):
        first = _cache(tmp_path)
        result = first.get(_mdac())
        assert first.cold_runs == 1
        assert first.persistent_hits == 0

        # A brand-new cache object over the same directory serves the block
        # from disk: no search, identical design.
        reloaded = _cache(tmp_path)
        warm = reloaded.get(_mdac())
        assert reloaded.persistent_hits == 1
        assert reloaded.cold_runs == 0 and reloaded.retargeted_runs == 0
        assert warm.power == result.power
        assert warm.final.sizing == result.final.sizing

    def test_warm_flow_run_does_no_search(self, tmp_path):
        cfg = FlowConfig(
            budget=60,
            retarget_budget=30,
            verify_transient=False,
            cache_dir=str(tmp_path),
        )
        cold = optimize_topology(
            SPEC13, mode="synthesis", candidates=CANDIDATES, config=cfg
        )

        warm_cache = _cache(tmp_path)
        warm = optimize_topology(
            SPEC13,
            mode="synthesis",
            candidates=CANDIDATES,
            cache=warm_cache,
        )
        assert warm_cache.synthesis_runs == 0
        assert warm_cache.persistent_hits == warm.unique_blocks == cold.unique_blocks
        assert warm.power_table() == cold.power_table()

    def test_corrupt_entry_triggers_resynthesis(self, tmp_path):
        first = _cache(tmp_path)
        first.get(_mdac())
        # Corrupt every entry on disk.
        for entry in tmp_path.iterdir():
            entry.write_bytes(b"garbage")
        again = _cache(tmp_path)
        again.get(_mdac())
        assert again.persistent_hits == 0
        assert again.cold_runs == 1

    def test_budget_change_misses(self, tmp_path):
        _cache(tmp_path).get(_mdac())
        other = _cache(tmp_path, budget=61)
        other.get(_mdac())
        assert other.persistent_hits == 0
        assert other.cold_runs == 1
