"""The file-backed work-queue backend: leases, acks, replay, determinism."""

import os
import pickle
from dataclasses import dataclass

import pytest

from repro.engine.backend import BACKENDS, make_backend
from repro.engine.workqueue import ACK_SUFFIX, LEASE_SUFFIX, QueueBackend, task_key


@dataclass(frozen=True)
class SquareTask:
    value: int


def square(task: SquareTask) -> int:
    return task.value * task.value


@dataclass(frozen=True)
class TrackedTask:
    value: int


CALLS: list[int] = []


def tracked(task: TrackedTask) -> int:
    CALLS.append(task.value)
    return task.value + 100


class TestBackendContract:
    def test_registered_in_backends(self):
        assert "queue" in BACKENDS
        backend = make_backend("queue", max_workers=2)
        try:
            assert backend.name == "queue"
        finally:
            backend.close()

    def test_map_preserves_task_order(self, tmp_path):
        with QueueBackend(max_workers=4, queue_dir=tmp_path) as backend:
            tasks = [SquareTask(v) for v in (5, 3, 9, 1, 7)]
            assert backend.map(square, tasks) == [25, 9, 81, 1, 49]

    def test_matches_serial_backend(self, tmp_path):
        serial = make_backend("serial")
        tasks = [SquareTask(v) for v in range(10)]
        expected = serial.map(square, tasks)
        with QueueBackend(max_workers=3, queue_dir=tmp_path) as backend:
            assert backend.map(square, tasks) == expected

    def test_empty_map(self, tmp_path):
        with QueueBackend(queue_dir=tmp_path) as backend:
            assert backend.map(square, []) == []

    def test_ephemeral_dir_removed_on_close(self):
        backend = QueueBackend(max_workers=1)
        queue_dir = backend.queue_dir
        backend.map(square, [SquareTask(2)])
        assert queue_dir.exists()
        backend.close()
        assert not queue_dir.exists()

    def test_explicit_dir_survives_close(self, tmp_path):
        backend = QueueBackend(max_workers=1, queue_dir=tmp_path)
        backend.map(square, [SquareTask(2)])
        backend.close()
        assert tmp_path.exists()
        assert any(p.name.endswith(ACK_SUFFIX) for p in tmp_path.iterdir())

    def test_invalid_workers_rejected(self):
        from repro.errors import SpecificationError

        with pytest.raises(SpecificationError):
            QueueBackend(max_workers=0)


class TestAckReplay:
    def test_acked_tasks_replay_instead_of_executing(self, tmp_path):
        CALLS.clear()
        tasks = [TrackedTask(v) for v in (1, 2, 3)]
        with QueueBackend(max_workers=1, queue_dir=tmp_path) as first:
            first_results = first.map(tracked, tasks)
            assert first.executed == 3 and first.replayed == 0
        assert sorted(CALLS) == [1, 2, 3]

        CALLS.clear()
        with QueueBackend(max_workers=1, queue_dir=tmp_path) as second:
            second_results = second.map(tracked, tasks)
            assert second.executed == 0 and second.replayed == 3
        assert CALLS == []  # nothing re-executed
        assert second_results == first_results

    def test_partial_acks_execute_only_the_tail(self, tmp_path):
        tasks = [TrackedTask(v) for v in (1, 2, 3, 4)]
        with QueueBackend(max_workers=1, queue_dir=tmp_path) as first:
            first.map(tracked, tasks[:2])
        CALLS.clear()
        with QueueBackend(max_workers=1, queue_dir=tmp_path) as second:
            results = second.map(tracked, tasks)
            assert second.replayed == 2 and second.executed == 2
        assert sorted(CALLS) == [3, 4]
        assert results == [101, 102, 103, 104]

    def test_duplicate_tasks_collapse_to_one_execution(self, tmp_path):
        CALLS.clear()
        with QueueBackend(max_workers=2, queue_dir=tmp_path) as backend:
            results = backend.map(
                tracked, [TrackedTask(5), TrackedTask(5), TrackedTask(5)]
            )
        assert results == [105, 105, 105]
        assert CALLS == [5]

    def test_corrupt_ack_degrades_to_reexecution(self, tmp_path):
        task = TrackedTask(9)
        with QueueBackend(max_workers=1, queue_dir=tmp_path) as first:
            first.map(tracked, [task])
        (ack,) = [p for p in tmp_path.iterdir() if p.name.endswith(ACK_SUFFIX)]
        ack.write_bytes(b"not a pickle")
        CALLS.clear()
        with QueueBackend(max_workers=1, queue_dir=tmp_path) as second:
            assert second.map(tracked, [task]) == [109]
            assert second.executed == 1
        assert CALLS == [9]
        # The entry was rewritten: a third run replays again.
        with QueueBackend(max_workers=1, queue_dir=tmp_path) as third:
            assert third.map(tracked, [task]) == [109]
            assert third.replayed == 1


class TestCrashTolerance:
    def test_stale_lease_is_broken_and_task_reexecuted(self, tmp_path):
        # A lease without an ack is what a SIGKILLed worker leaves behind.
        # Use the pid of a process that has verifiably exited.
        import subprocess

        proc = subprocess.Popen(["true"])
        proc.wait()
        task = TrackedTask(7)
        key = task_key(tracked, task)
        (tmp_path / f"{key}{LEASE_SUFFIX}").write_text(str(proc.pid))
        CALLS.clear()
        with QueueBackend(max_workers=1, queue_dir=tmp_path) as backend:
            assert backend.map(tracked, [task]) == [107]
            assert backend.broken_leases == 1
        assert CALLS == [7]
        assert not (tmp_path / f"{key}{LEASE_SUFFIX}").exists()

    def test_live_foreign_lease_is_waited_on_then_stolen(self, tmp_path):
        # A lease whose claimant pid is alive is NOT broken at dispatch —
        # the worker polls for its ack and only steals after the timeout.
        task = TrackedTask(8)
        key = task_key(tracked, task)
        (tmp_path / f"{key}{LEASE_SUFFIX}").write_text(str(os.getpid()))
        CALLS.clear()
        with QueueBackend(
            max_workers=1, queue_dir=tmp_path, lease_timeout=0.3
        ) as backend:
            assert backend.map(tracked, [task]) == [108]
            assert backend.broken_leases == 0  # sweep left the live lease
        assert CALLS == [8]  # stolen and executed after the timeout

    def test_corrupt_lease_json_is_swept(self, tmp_path):
        # A crash mid-write can leave truncated JSON in the lease; the
        # sweep must treat it as a dead claim, not crash the run.
        task = TrackedTask(11)
        key = task_key(tracked, task)
        (tmp_path / f"{key}{LEASE_SUFFIX}").write_text('{"pid": 12')
        CALLS.clear()
        with QueueBackend(max_workers=1, queue_dir=tmp_path) as backend:
            assert backend.map(tracked, [task]) == [111]
            assert backend.broken_leases == 1
        assert CALLS == [11]
        assert not (tmp_path / f"{key}{LEASE_SUFFIX}").exists()

    def test_binary_garbage_lease_is_swept(self, tmp_path):
        task = TrackedTask(12)
        key = task_key(tracked, task)
        (tmp_path / f"{key}{LEASE_SUFFIX}").write_bytes(b"\x00\xff\xfe{pid")
        CALLS.clear()
        with QueueBackend(max_workers=1, queue_dir=tmp_path) as backend:
            assert backend.map(tracked, [task]) == [112]
            assert backend.broken_leases == 1
        assert CALLS == [12]

    def test_json_lease_with_non_numeric_pid_is_swept(self, tmp_path):
        task = TrackedTask(13)
        key = task_key(tracked, task)
        (tmp_path / f"{key}{LEASE_SUFFIX}").write_text('{"pid": "soon"}')
        with QueueBackend(max_workers=1, queue_dir=tmp_path) as backend:
            assert backend.map(tracked, [task]) == [113]
            assert backend.broken_leases == 1

    def test_recycled_pid_lease_does_not_crash_the_run(self, tmp_path):
        # A stale lease whose recorded pid was recycled by an unrelated
        # live process (pid 1 is the classic case) looks alive to the
        # sweep, so it is conservatively left in place — the worker then
        # waits the lease out and steals it.  The run must complete either
        # way, with the correct result.
        task = TrackedTask(14)
        key = task_key(tracked, task)
        (tmp_path / f"{key}{LEASE_SUFFIX}").write_text('{"pid": 1}')
        CALLS.clear()
        with QueueBackend(
            max_workers=1, queue_dir=tmp_path, lease_timeout=0.3
        ) as backend:
            assert backend.map(tracked, [task]) == [114]
            assert backend.broken_leases == 0  # sweep kept the "live" claim
        assert CALLS == [14]  # stolen after the timeout and executed

    def test_long_task_heartbeats_keep_its_lease(self, tmp_path):
        # A task running past lease_timeout is NOT reclaimable: the executor
        # thread heartbeats its own lease, so a concurrent worker or resumed
        # run sweeping the directory sees a live claim the whole time (the
        # PR 4 pid-alive protection, now preserved under TTL'd leases).
        import threading
        import time

        from repro.engine.broker import DirectoryBroker

        def slow(task):
            time.sleep(0.8)
            return task.value + 100

        task = TrackedTask(21)
        key = task_key(slow, task)
        rival = DirectoryBroker(tmp_path, lease_ttl=0.3)
        lease_path = tmp_path / f"{key}{LEASE_SUFFIX}"
        reclaims = []

        def sweep():
            while not lease_path.exists():
                time.sleep(0.005)
            deadline = time.monotonic() + 0.7  # two TTLs into the run
            while time.monotonic() < deadline:
                if rival.reclaim():
                    reclaims.append(True)
                    return
                time.sleep(0.02)

        thief = threading.Thread(target=sweep)
        thief.start()
        with QueueBackend(
            max_workers=1, queue_dir=tmp_path, lease_timeout=0.3
        ) as backend:
            assert backend.map(slow, [task]) == [121]
            assert backend.executed == 1
        thief.join()
        assert not reclaims

    def test_failed_task_leaves_no_ack(self, tmp_path):
        def explode(task):
            raise RuntimeError("boom")

        with QueueBackend(max_workers=1, queue_dir=tmp_path) as backend:
            with pytest.raises(RuntimeError):
                backend.map(explode, [SquareTask(1)])
        assert not any(p.name.endswith(ACK_SUFFIX) for p in tmp_path.iterdir())
        # ...and no stale lease either: the task is retryable immediately.
        assert not any(p.name.endswith(LEASE_SUFFIX) for p in tmp_path.iterdir())


class TestTaskKeys:
    def test_key_is_stable_and_fn_scoped(self):
        task = SquareTask(3)
        assert task_key(square, task) == task_key(square, task)
        assert task_key(square, task) != task_key(tracked, task)
        assert task_key(square, SquareTask(3)) != task_key(square, SquareTask(4))

    def test_synthesis_job_key_ignores_donor_wall_seconds(self):
        # The donor's wall_seconds is nondeterministic; the queue key must
        # not change across otherwise-identical runs or acks never replay.
        import dataclasses

        from repro.engine.scheduler import SynthesisJob, run_synthesis_job
        from repro.specs import AdcSpec, plan_stages
        from repro.enumeration.candidates import PipelineCandidate
        from repro.synth import synthesize_mdac
        from repro.tech import CMOS025

        spec = AdcSpec(resolution_bits=10)
        plan = plan_stages(spec, PipelineCandidate((3, 2), 10, 5))
        donor = synthesize_mdac(
            plan.mdacs[0], CMOS025, budget=30, seed=1, verify_transient=False
        )
        job = SynthesisJob(
            spec=plan.mdacs[1],
            tech=CMOS025,
            budget=30,
            seed=1,
            verify_transient=False,
            donor=donor,
        )
        twin = dataclasses.replace(
            job, donor=dataclasses.replace(donor, wall_seconds=donor.wall_seconds + 5)
        )
        assert task_key(run_synthesis_job, job) == task_key(run_synthesis_job, twin)
        # ...but kernel knobs share acks deliberately (bit-identical results)
        fast = dataclasses.replace(job, eval_kernel="legacy")
        assert task_key(run_synthesis_job, job) == task_key(run_synthesis_job, fast)
        # ...while a different search does not.
        other = dataclasses.replace(job, seed=2)
        assert task_key(run_synthesis_job, job) != task_key(run_synthesis_job, other)

    def test_undigestable_task_still_executes(self, tmp_path):
        class Opaque:
            def __reduce__(self):  # unpicklable and undigestable leaf
                raise TypeError("no")

            def __repr__(self):
                raise TypeError("no repr either")

        opaque = Opaque()

        def touch(task):
            return 42

        with QueueBackend(max_workers=1, queue_dir=tmp_path) as backend:
            assert backend.map(touch, [opaque]) == [42]
            # No ack was written: nothing stable to key it by.
            assert not any(
                p.name.endswith(ACK_SUFFIX) for p in tmp_path.iterdir()
            )
