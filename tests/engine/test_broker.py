"""Broker protocol: directory broker semantics, worker loop, broker backend."""

import json
import os
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

import repro

from repro.engine.broker import (
    DEFAULT_LEASE_TTL,
    DEFAULT_WAIT_TIMEOUT,
    MAX_RETRIES,
    Broker,
    BrokerBackend,
    DirectoryBroker,
    HttpBroker,
    check_key,
)
from repro.engine.persist import digest
from repro.engine.worker import WorkerLoop, default_worker_id, resolve_task_fn
from repro.engine.workqueue import ACK_SUFFIX, LEASE_SUFFIX, task_key
from repro.errors import SpecificationError
from repro.service import wire


def _key(n: int = 0) -> str:
    return digest({"test-task": n})


def _envelope(task, fn=digest) -> dict:
    return wire.encode_task(fn, task)


def _seed(broker: DirectoryBroker, n: int = 0) -> str:
    """Publish one digest task; returns its key."""
    key = _key(n)
    assert broker.submit(key, _envelope({"test-task": n}))
    return key


class TestCheckKey:
    def test_hex_digests_pass_through(self):
        key = digest({"x": 1})
        assert check_key(key) == key

    @pytest.mark.parametrize(
        "bad", ["", "short", "../../etc/passwd", "ABCDEF123456", "x" * 64, 42]
    )
    def test_malformed_keys_raise(self, bad):
        with pytest.raises(ValueError):
            check_key(bad)


class TestDirectoryBrokerLifecycle:
    def test_submit_lease_ack_result_roundtrip(self, tmp_path):
        broker = DirectoryBroker(tmp_path)
        key = _seed(broker)
        leased = broker.lease("w1")
        assert leased is not None
        got_key, envelope = leased
        assert got_key == key
        fn_name, task = wire.decode_task(envelope)
        assert fn_name == "repro.engine.persist.digest"
        broker.ack(key, wire.encode_result(digest(task)), "w1")
        assert wire.decode_result(broker.result(key)) == digest({"test-task": 0})
        # Ack clears the lease and the pending envelope.
        assert not (tmp_path / f"{key}{LEASE_SUFFIX}").exists()
        assert broker.lease("w1") is None

    def test_submit_is_idempotent(self, tmp_path):
        broker = DirectoryBroker(tmp_path)
        key = _seed(broker)
        assert broker.submit(key, _envelope({"test-task": 0})) is False
        broker.lease("w1")
        broker.ack(key, b"payload", "w1")
        # An acked task is never re-published either.
        assert broker.submit(key, _envelope({"test-task": 0})) is False

    def test_lease_is_exclusive(self, tmp_path):
        broker = DirectoryBroker(tmp_path)
        _seed(broker)
        assert broker.lease("w1") is not None
        assert broker.lease("w2") is None

    def test_nack_counts_retries_and_releases(self, tmp_path):
        broker = DirectoryBroker(tmp_path)
        key = _seed(broker)
        broker.lease("w1")
        assert broker.nack(key, "w1", "boom") == 1
        assert broker.failure(key) == {"retries": 1, "error": "boom"}
        # Released: another worker can lease and fail it again.
        assert broker.lease("w2") is not None
        assert broker.nack(key, "w2", "boom again") == 2

    def test_retry_exhausted_tasks_stop_leasing(self, tmp_path):
        broker = DirectoryBroker(tmp_path)
        key = _seed(broker)
        for _ in range(MAX_RETRIES):
            assert broker.lease("w1") is not None
            broker.nack(key, "w1", "persistent failure")
        assert broker.failure(key)["retries"] == MAX_RETRIES
        assert broker.lease("w1") is None  # poisoned: evidence kept, no re-lease

    def test_discard_reopens_a_completed_task(self, tmp_path):
        broker = DirectoryBroker(tmp_path)
        key = _seed(broker)
        broker.lease("w1")
        broker.ack(key, b"corrupt", "w1")
        broker.discard(key)
        assert broker.result(key) is None

    def test_stats_census(self, tmp_path):
        broker = DirectoryBroker(tmp_path, lease_ttl=5.0)
        _seed(broker, 0)
        _seed(broker, 1)
        broker.lease("w1")
        stats = broker.stats()
        assert stats["pending"] == 2
        assert stats["leases"] == 1
        assert stats["acks"] == 0
        assert stats["submitted"] == 2
        assert stats["lease_ttl"] == 5.0


class TestDirectoryBrokerLeases:
    def test_heartbeat_extends_the_deadline(self, tmp_path):
        broker = DirectoryBroker(tmp_path, lease_ttl=10.0)
        key = _key()
        assert broker.claim(key, "w1")
        lease_path = tmp_path / f"{key}{LEASE_SUFFIX}"
        before = wire.parse_lease(lease_path.read_text())["deadline"]
        time.sleep(0.05)
        assert broker.heartbeat(key, "w1") is True
        after = wire.parse_lease(lease_path.read_text())["deadline"]
        assert after > before

    def test_heartbeat_keeps_a_lease_alive_past_its_ttl(self, tmp_path):
        broker = DirectoryBroker(tmp_path, lease_ttl=0.2)
        key = _key()
        assert broker.claim(key, "w1")
        deadline = time.monotonic() + 0.6  # three TTLs
        while time.monotonic() < deadline:
            assert broker.heartbeat(key, "w1") is True
            assert broker.reclaim() == 0
            time.sleep(0.05)
        # The beat stops; the TTL now runs out and the lease is reclaimed.
        time.sleep(0.3)
        assert broker.reclaim() == 1
        assert broker.claim(key, "w2")

    def test_heartbeat_refuses_a_foreign_worker(self, tmp_path):
        broker = DirectoryBroker(tmp_path)
        key = _key()
        assert broker.claim(key, "w1")
        assert broker.heartbeat(key, "intruder") is False
        assert broker.heartbeat(key, "w1") is True

    def test_heartbeat_reports_a_lost_lease(self, tmp_path):
        broker = DirectoryBroker(tmp_path)
        key = _key()
        assert broker.heartbeat(key, "w1") is False

    def test_live_lease_is_not_reclaimed(self, tmp_path):
        broker = DirectoryBroker(tmp_path, lease_ttl=60.0)
        key = _key()
        assert broker.claim(key, "w1")  # our own live pid, unexpired TTL
        assert broker.reclaim() == 0

    def test_expired_deadline_is_reclaimed_even_with_a_live_pid(self, tmp_path):
        # The recycled-pid case: the worker died, its pid was reused by a
        # live process (pid 1 here), but the lease still dies at TTL expiry.
        broker = DirectoryBroker(tmp_path)
        key = _key()
        lease_path = tmp_path / f"{key}{LEASE_SUFFIX}"
        lease_path.write_text(
            wire.lease_body(
                pid=1, worker="w1", host=broker.host, deadline=time.time() - 1.0
            )
        )
        assert broker.reclaim() == 1
        assert not lease_path.exists()

    def test_dead_local_pid_is_reclaimed_before_the_ttl(self, tmp_path):
        broker = DirectoryBroker(tmp_path)
        key = _key()
        lease_path = tmp_path / f"{key}{LEASE_SUFFIX}"
        proc = subprocess.Popen([sys.executable, "-c", "pass"])
        proc.wait()
        lease_path.write_text(
            wire.lease_body(
                pid=proc.pid,
                worker="w1",
                host=broker.host,
                deadline=time.time() + 3600.0,  # TTL far away: pid check wins
            )
        )
        assert broker.reclaim() == 1

    def test_legacy_pid_only_lease_still_parses(self, tmp_path):
        # PR 4 leases were {"pid": N} with no deadline: keep iff pid alive.
        broker = DirectoryBroker(tmp_path)
        alive, dead = _key(1), _key(2)
        (tmp_path / f"{alive}{LEASE_SUFFIX}").write_text(
            json.dumps({"pid": os.getpid()})
        )
        proc = subprocess.Popen([sys.executable, "-c", "pass"])
        proc.wait()
        (tmp_path / f"{dead}{LEASE_SUFFIX}").write_text(
            json.dumps({"pid": proc.pid})
        )
        assert broker.reclaim() == 1
        assert (tmp_path / f"{alive}{LEASE_SUFFIX}").exists()
        assert not (tmp_path / f"{dead}{LEASE_SUFFIX}").exists()

    def test_sigkilled_claimer_is_reclaimed(self, tmp_path):
        """A worker SIGKILLed mid-task leaves a lease the broker breaks."""
        broker = DirectoryBroker(tmp_path, lease_ttl=60.0)
        key = _seed(broker)
        claimer = subprocess.Popen(
            [
                sys.executable,
                "-c",
                "import sys, time\n"
                "from repro.engine.broker import DirectoryBroker\n"
                f"b = DirectoryBroker({str(tmp_path)!r}, lease_ttl=60.0)\n"
                f"assert b.lease('victim') is not None\n"
                "print('leased', flush=True)\n"
                "time.sleep(600)\n",
            ],
            stdout=subprocess.PIPE,
            env={
                **os.environ,
                "PYTHONPATH": str(Path(repro.__file__).resolve().parents[1]),
            },
        )
        try:
            assert claimer.stdout.readline().strip() == b"leased"
            assert broker.lease("survivor") is None  # exclusively held
            claimer.kill()
            claimer.wait()
            # The pid is dead on this host: reclaimed without waiting the TTL.
            leased = broker.lease("survivor")
            assert leased is not None and leased[0] == key
            assert broker.counters["reclaimed"] == 1
        finally:
            claimer.kill()
            claimer.wait()


class TestLeaseOwnership:
    """A reclaimed worker must not clobber the new holder's lease."""

    def test_nack_from_a_lost_lease_burns_no_retry(self, tmp_path):
        broker = DirectoryBroker(tmp_path)
        key = _seed(broker)
        assert broker.lease("w1") is not None
        broker.release(key)  # reclaim; w2 picks the task up
        assert broker.claim(key, "w2")
        # The zombie's failure report is dropped: no record, no release.
        assert broker.nack(key, "w1", "zombie boom") == 0
        assert broker.failure(key) is None
        assert (tmp_path / f"{key}{LEASE_SUFFIX}").exists()
        # The rightful holder's nack still counts.
        assert broker.nack(key, "w2", "real boom") == 1

    def test_nack_with_no_lease_at_all_burns_no_retry(self, tmp_path):
        broker = DirectoryBroker(tmp_path)
        key = _seed(broker)
        assert broker.nack(key, "w1", "never leased") == 0
        assert broker.failure(key) is None

    def test_three_zombie_nacks_cannot_poison_a_task(self, tmp_path):
        broker = DirectoryBroker(tmp_path)
        key = _seed(broker)
        assert broker.claim(key, "holder")
        for _ in range(MAX_RETRIES):
            broker.nack(key, "zombie", "boom")
        assert broker.failure(key) is None
        assert (tmp_path / f"{key}{LEASE_SUFFIX}").exists()

    def test_ack_from_a_lost_lease_keeps_the_new_holders_claim(self, tmp_path):
        broker = DirectoryBroker(tmp_path)
        key = _seed(broker)
        assert broker.lease("w1") is not None
        broker.release(key)
        assert broker.claim(key, "w2")
        # Results are deterministic, so the zombie's ack is stored — but the
        # live lease stays w2's until its own ack (or the acked-lease sweep).
        broker.ack(key, wire.encode_result(digest({"test-task": 0})), "w1")
        assert broker.result(key) is not None
        info = broker.lease_info(key)
        assert info is not None and info["worker"] == "w2"

    def test_owned_ack_releases_the_lease(self, tmp_path):
        broker = DirectoryBroker(tmp_path)
        key = _seed(broker)
        assert broker.lease("w1") is not None
        broker.ack(key, b"payload", "w1")
        assert not (tmp_path / f"{key}{LEASE_SUFFIX}").exists()

    def test_legacy_workerless_lease_is_owned_by_its_pid(self, tmp_path):
        broker = DirectoryBroker(tmp_path)
        key = _key()
        assert broker.claim(key)  # worker=None: in-process queue-style claim
        assert broker.release_if_owner(key, None) is True
        assert not (tmp_path / f"{key}{LEASE_SUFFIX}").exists()


class TestStatuses:
    def test_statuses_report_ack_lease_and_failure(self, tmp_path):
        broker = DirectoryBroker(tmp_path)
        acked, running, failed, idle = (_seed(broker, n) for n in range(4))
        broker.claim(acked, "w1")
        broker.ack(acked, b"payload", "w1")
        broker.claim(running, "w1")
        broker.claim(failed, "w2")
        broker.nack(failed, "w2", "boom")
        statuses = broker.statuses([acked, running, failed, idle])
        assert statuses[acked]["acked"] is True
        assert statuses[running]["leased"] is True
        assert statuses[failed]["failure"] == {"retries": 1, "error": "boom"}
        assert statuses[idle] == {
            "acked": False,
            "leased": False,
            "failure": None,
        }

    def test_a_stale_lease_does_not_count_as_leased(self, tmp_path):
        broker = DirectoryBroker(tmp_path)
        key = _key()
        (tmp_path / f"{key}{LEASE_SUFFIX}").write_text(
            wire.lease_body(
                pid=1, worker="w1", host=broker.host, deadline=time.time() - 1.0
            )
        )
        assert broker.statuses([key])[key]["leased"] is False

    def test_statuses_validate_keys(self, tmp_path):
        broker = DirectoryBroker(tmp_path)
        with pytest.raises(ValueError):
            broker.statuses(["../../etc/passwd"])


class TestWorkerLoop:
    def test_executes_and_acks(self, tmp_path):
        broker = DirectoryBroker(tmp_path)
        key = _seed(broker)
        loop = WorkerLoop(broker, worker_id="w1", max_tasks=1, poll_interval=0.01)
        counters = loop.run()
        assert counters["executed"] == 1 and counters["failed"] == 0
        assert wire.decode_result(broker.result(key)) == digest({"test-task": 0})

    def test_failing_task_is_nacked_with_the_error(self, tmp_path):
        broker = DirectoryBroker(tmp_path)
        key = digest({"fn": "repro.engine.broker.check_key", "task": "not-hex"})
        broker.submit(key, wire.encode_task(check_key, "not-hex"))
        loop = WorkerLoop(broker, worker_id="w1", max_tasks=1, poll_interval=0.01)
        counters = loop.run()
        assert counters["failed"] == 1
        failure = broker.failure(key)
        assert failure["retries"] == 1
        assert failure["error"].startswith("ValueError:")

    def test_rejects_functions_outside_repro(self, tmp_path):
        broker = DirectoryBroker(tmp_path)
        key = _key()
        envelope = _envelope("echo pwned")
        envelope["fn"] = "os.system"
        broker.submit(key, envelope)
        loop = WorkerLoop(broker, worker_id="w1", idle_exit=0.0, poll_interval=0.01)
        counters = loop.run()
        # The rejection nacks; the loop re-leases until the retry budget is
        # spent, then the task is poisoned and the idle exit fires.
        assert counters["rejected"] == MAX_RETRIES and counters["executed"] == 0
        assert "outside the repro package" in broker.failure(key)["error"]

    def test_rejects_newer_schema_envelopes(self, tmp_path):
        broker = DirectoryBroker(tmp_path)
        key = _key()
        envelope = _envelope({"test-task": 0})
        envelope["schema"] = wire.WIRE_SCHEMA + 1
        broker.submit(key, envelope)
        loop = WorkerLoop(broker, worker_id="w1", idle_exit=0.0, poll_interval=0.01)
        assert loop.run()["rejected"] == MAX_RETRIES

    def test_heartbeats_keep_the_lease_during_a_slow_task(self, tmp_path, monkeypatch):
        # TTL 0.6 with a ~0.2s heartbeat cadence leaves ~0.4s of scheduling
        # slack before a late beat could let the rival reclaim the lease.
        broker = DirectoryBroker(tmp_path, lease_ttl=0.6)
        # The slow task lives in this test module, outside the allow-list;
        # pin the resolver so the loop can still run it.
        monkeypatch.setattr(
            "repro.engine.worker.resolve_task_fn", lambda name: _slow_digest
        )
        key = task_key(_slow_digest, {"n": 1})
        broker.submit(key, wire.encode_task(_slow_digest, {"n": 1}))
        loop = WorkerLoop(
            broker, worker_id="w1", lease_ttl=0.6, max_tasks=1, poll_interval=0.01
        )
        stolen = []
        rival = DirectoryBroker(tmp_path, lease_ttl=0.6)
        lease_path = tmp_path / f"{key}{LEASE_SUFFIX}"

        def _try_steal():
            # Wait for the worker to claim first (racing it for the initial
            # lease is not the point), then poll well past the TTL: the
            # running worker's heartbeats must keep the lease
            # un-reclaimable the whole time.
            while not lease_path.exists():
                time.sleep(0.005)
            deadline = time.monotonic() + 0.9
            while time.monotonic() < deadline:
                if rival.lease("rival") is not None:
                    stolen.append(True)
                    return
                time.sleep(0.02)

        thief = threading.Thread(target=_try_steal)
        thief.start()
        counters = loop.run()
        thief.join()
        assert counters["executed"] == 1
        assert not stolen
        assert wire.decode_result(broker.result(key)) == digest({"n": 1})


def _slow_digest(task):
    """A deliberately slow task (module-level: resolvable by workers)."""
    time.sleep(1.0)
    return digest(task)


class TestBrokerBackend:
    def test_requires_a_broker_source(self):
        with pytest.raises(SpecificationError):
            BrokerBackend()

    def test_map_through_a_worker_thread(self, tmp_path):
        backend = BrokerBackend(queue_dir=tmp_path, poll_interval=0.01)
        worker = WorkerLoop(
            DirectoryBroker(tmp_path),
            worker_id="w1",
            poll_interval=0.01,
            idle_exit=2.0,
        )
        thread = threading.Thread(target=worker.run)
        thread.start()
        tasks = [{"n": i} for i in range(4)] + [{"n": 0}]  # one duplicate
        try:
            results = backend.map(digest, tasks)
        finally:
            thread.join()
        assert results == [digest(t) for t in tasks]
        assert backend.dispatched == 4  # the duplicate shipped once

    def test_map_replays_existing_acks_without_workers(self, tmp_path):
        backend = BrokerBackend(queue_dir=tmp_path, poll_interval=0.01)
        worker = WorkerLoop(
            DirectoryBroker(tmp_path), worker_id="w1", poll_interval=0.01, idle_exit=1.0
        )
        thread = threading.Thread(target=worker.run)
        thread.start()
        tasks = [{"n": i} for i in range(3)]
        first = backend.map(digest, tasks)
        thread.join()
        # Second map: every ack replays; nobody needs to execute anything.
        replay = BrokerBackend(queue_dir=tmp_path)
        assert replay.map(digest, tasks) == first
        assert replay.replayed == 3 and replay.dispatched == 0

    def test_unkeyed_tasks_run_locally(self, tmp_path):
        backend = BrokerBackend(queue_dir=tmp_path, wait_timeout=0.1)
        # Mixed-type dict keys defeat the structural digest, so this task
        # has no stable identity and must execute in-process.
        probe = {1: "a", "b": 2}
        assert task_key(repr, probe) is None
        results = backend.map(repr, [probe])
        assert results == [repr(probe)]
        assert backend.dispatched == 0

    def test_retry_exhaustion_surfaces_the_recorded_error(self, tmp_path):
        broker = DirectoryBroker(tmp_path)
        backend = BrokerBackend(broker, poll_interval=0.01)
        key = task_key(check_key, "not-hex")
        worker = WorkerLoop(broker, worker_id="w1", poll_interval=0.01, idle_exit=2.0)
        thread = threading.Thread(target=worker.run)
        thread.start()
        try:
            with pytest.raises(RuntimeError, match="ValueError"):
                backend.map(check_key, ["not-hex"])
        finally:
            thread.join()
        assert broker.failure(key)["retries"] == MAX_RETRIES

    def test_no_workers_times_out_with_a_hint(self, tmp_path):
        backend = BrokerBackend(
            queue_dir=tmp_path, poll_interval=0.01, wait_timeout=0.05
        )
        with pytest.raises(RuntimeError, match="workers attached"):
            backend.map(digest, [{"n": 1}])

    def test_wait_timeout_defaults_finite(self, tmp_path):
        # --backend broker with zero workers must eventually diagnose, not
        # block map() forever.
        backend = BrokerBackend(queue_dir=tmp_path)
        assert backend.wait_timeout == DEFAULT_WAIT_TIMEOUT

    def test_a_live_lease_counts_as_progress(self, tmp_path):
        # A worker mid-task (holding a live lease) resets the no-progress
        # clock even when no ack lands within wait_timeout.
        broker = DirectoryBroker(tmp_path, lease_ttl=60.0)
        backend = BrokerBackend(broker, poll_interval=0.01, wait_timeout=0.15)
        key = task_key(digest, {"n": 7})

        def _slow_holder():
            # Claim shortly after dispatch, hold well past wait_timeout,
            # then ack — the backend must wait it out, not raise.
            deadline = time.monotonic() + 2.0
            while time.monotonic() < deadline:
                if broker.claim(key, "slow"):
                    break
                time.sleep(0.005)
            time.sleep(0.4)
            broker.ack(key, wire.encode_result(digest({"n": 7})), "slow")

        holder = threading.Thread(target=_slow_holder)
        holder.start()
        try:
            assert backend.map(digest, [{"n": 7}]) == [digest({"n": 7})]
        finally:
            holder.join()

    def test_corrupt_ack_is_discarded_and_reexecuted(self, tmp_path):
        broker = DirectoryBroker(tmp_path)
        key = task_key(digest, {"n": 1})
        (tmp_path / f"{key}{ACK_SUFFIX}").write_bytes(b"not a pickle")
        backend = BrokerBackend(broker, poll_interval=0.01)
        worker = WorkerLoop(broker, worker_id="w1", poll_interval=0.01, idle_exit=2.0)
        thread = threading.Thread(target=worker.run)
        thread.start()
        try:
            assert backend.map(digest, [{"n": 1}]) == [digest({"n": 1})]
        finally:
            thread.join()
        assert backend.replayed == 0 and backend.dispatched == 1


class TestProtocolConformance:
    def test_both_brokers_satisfy_the_protocol(self, tmp_path):
        assert isinstance(DirectoryBroker(tmp_path), Broker)
        assert isinstance(HttpBroker("http://127.0.0.1:1"), Broker)

    def test_default_worker_id_is_host_pid(self):
        assert default_worker_id().endswith(f"-{os.getpid()}")

    def test_resolve_rejects_non_repro_names(self):
        for name in ("os.system", "builtins.eval", "repro_evil.fn", "digest"):
            with pytest.raises(ValueError):
                resolve_task_fn(name)

    def test_default_ttl_matches_the_workqueue_timeout(self):
        assert DEFAULT_LEASE_TTL == 60.0


class TestWorkerCensus:
    def test_first_lease_registers_even_on_an_empty_queue(self, tmp_path):
        broker = DirectoryBroker(tmp_path)
        assert broker.lease("w-1") is None
        (record,) = broker.workers()
        assert record["worker"] == "w-1"
        assert record["last_seen"] >= record["registered_unix"]

    def test_heartbeat_refreshes_last_seen(self, tmp_path):
        broker = DirectoryBroker(tmp_path)
        _seed(broker)
        key, _ = broker.lease("w-1")
        (before,) = broker.workers()
        time.sleep(0.05)
        assert broker.heartbeat(key, "w-1")
        (after,) = broker.workers()
        assert after["last_seen"] > before["last_seen"]
        assert after["registered_unix"] == before["registered_unix"]

    def test_stale_workers_drop_after_missed_ttls(self, tmp_path):
        broker = DirectoryBroker(tmp_path, lease_ttl=0.01)
        broker.register_worker({"worker": "w-old"})
        time.sleep(0.05)  # > STALE_AFTER_TTLS * lease_ttl = 0.03s
        broker.register_worker({"worker": "w-new"})
        assert [r["worker"] for r in broker.workers()] == ["w-new"]
        # The stale record stays on disk: max_age <= 0 lists everything.
        everyone = {r["worker"] for r in broker.workers(max_age=0)}
        assert everyone == {"w-old", "w-new"}

    def test_census_survives_a_broker_restart(self, tmp_path):
        DirectoryBroker(tmp_path).register_worker(
            {"worker": "w-1", "executed": 7}
        )
        reborn = DirectoryBroker(tmp_path)
        (record,) = reborn.workers()
        assert record["worker"] == "w-1" and record["executed"] == 7

    def test_reregistration_merges_and_keeps_registration_time(self, tmp_path):
        broker = DirectoryBroker(tmp_path)
        broker.register_worker({"worker": "w-1", "host": "a", "executed": 1})
        time.sleep(0.02)
        broker.register_worker({"worker": "w-1", "executed": 5})
        (record,) = broker.workers()
        assert record["executed"] == 5
        assert record["host"] == "a"  # untouched fields survive the merge
        assert record["last_seen"] > record["registered_unix"]

    def test_record_requires_a_worker_id(self, tmp_path):
        broker = DirectoryBroker(tmp_path)
        with pytest.raises(ValueError):
            broker.register_worker({"worker": "   "})
        with pytest.raises(ValueError):
            broker.register_worker({})

    def test_worker_ids_are_sanitized_into_the_census_dir(self, tmp_path):
        broker = DirectoryBroker(tmp_path)
        broker.register_worker({"worker": "../../etc/passwd"})
        path = broker._worker_path("../../etc/passwd")
        assert path.parent == tmp_path / "workers"
        assert path.exists()
        (record,) = broker.workers()
        assert record["worker"] == "../../etc/passwd"  # id survives verbatim

    def test_stats_include_the_fleet(self, tmp_path):
        broker = DirectoryBroker(tmp_path)
        broker.register_worker({"worker": "w-1"})
        stats = broker.stats()
        assert [r["worker"] for r in stats["workers"]] == ["w-1"]

    def test_worker_loop_publishes_a_full_census_record(self, tmp_path):
        broker = DirectoryBroker(tmp_path)
        _seed(broker)
        loop = WorkerLoop(broker, worker_id="w-loop", max_tasks=1, poll_interval=0.01)
        loop.run()
        (record,) = broker.workers()
        assert record["worker"] == "w-loop"
        assert record["executed"] == 1 and record["failed"] == 0
        assert record["pid"] == os.getpid()
        assert record["busy_seconds"] >= 0.0
        assert record["current"] is None  # idle after the task acked
        assert isinstance(record["metrics"], dict)
        assert record["metrics"]["counters"]["worker.executed"] == 1
