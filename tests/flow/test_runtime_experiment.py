"""Tests for the retargeting-economy experiment and its formatting."""

from repro.experiments.runtime import RetargetEconomy, format_runtime, retarget_economy


class TestFormatting:
    def test_format_contains_all_fields(self):
        economy = RetargetEconomy(
            cold_evals=500,
            cold_seconds=2.0,
            cold_power_mw=0.5,
            retarget_evals=75,
            retarget_seconds=0.4,
            retarget_power_mw=0.8,
            both_feasible=True,
        )
        text = format_runtime(economy)
        assert "500" in text and "75" in text
        assert "both feasible" in text

    def test_eval_reduction(self):
        economy = RetargetEconomy(400, 1.0, 0.5, 50, 0.2, 0.6, True)
        assert economy.eval_reduction == 8.0


class TestEndToEnd:
    def test_small_budget_run(self):
        # Tiny budgets keep this a unit-scale test; the benchmark runs the
        # full-size version.
        economy = retarget_economy(
            cold_budget=120, retarget_budget=30, seed=3, verify_transient=False
        )
        assert economy.cold_evals > economy.retarget_evals
        assert economy.cold_power_mw > 0
        assert economy.retarget_power_mw > 0
