"""Flow tests: topology optimization, block cache, designer rules, experiments."""

import pytest

from repro.enumeration.candidates import PipelineCandidate
from repro.errors import SpecificationError
from repro.experiments import (
    fig1_stage_powers,
    fig2_total_power,
    fig3_designer_rules,
    format_fig1,
    format_fig2,
    format_fig3,
)
from repro.flow import BlockCache, extract_rules, optimize_topology
from repro.specs import AdcSpec, plan_stages
from repro.tech import CMOS025


class TestTopologyAnalytic:
    def test_best_matches_paper_at_13_bits(self):
        result = optimize_topology(AdcSpec(resolution_bits=13))
        assert result.best.label == "4-3-2"

    def test_evaluations_sorted_ascending(self):
        result = optimize_topology(AdcSpec(resolution_bits=12))
        totals = [e.total_power for e in result.evaluations]
        assert totals == sorted(totals)

    def test_power_table_shape(self):
        result = optimize_topology(AdcSpec(resolution_bits=11))
        table = result.power_table()
        assert len(table) == 4
        assert all(isinstance(label, str) and mw > 0 for label, mw in table)

    def test_unknown_mode_rejected(self):
        with pytest.raises(SpecificationError):
            optimize_topology(AdcSpec(resolution_bits=13), mode="magic")

    def test_candidate_subset(self):
        cands = [PipelineCandidate((4, 3, 2), 13, 7), PipelineCandidate((4, 4), 13, 7)]
        result = optimize_topology(AdcSpec(resolution_bits=13), candidates=cands)
        assert len(result.evaluations) == 2
        assert result.best.label == "4-3-2"


class TestBlockCache:
    def test_cache_hit_on_identical_spec(self):
        cache = BlockCache(CMOS025, budget=120, retarget_budget=40,
                           verify_transient=False)
        spec = AdcSpec(resolution_bits=13)
        plan = plan_stages(spec, PipelineCandidate((4, 2, 2, 2), 13, 7))
        first = cache.get(plan.mdacs[3])
        again = cache.get(plan.mdacs[3])
        assert first is again
        assert cache.cache_hits == 1
        assert cache.cold_runs == 1

    def test_second_spec_is_retargeted(self):
        cache = BlockCache(CMOS025, budget=120, retarget_budget=40,
                           verify_transient=False)
        spec = AdcSpec(resolution_bits=13)
        plan = plan_stages(spec, PipelineCandidate((4, 2, 2, 2), 13, 7))
        cache.get(plan.mdacs[3])
        second = cache.get(plan.mdacs[2])
        assert second.retargeted
        assert cache.retargeted_runs == 1
        assert cache.unique_blocks == 2


class TestDesignerRules:
    def test_rules_cover_sweep(self):
        rules, winners, last2 = extract_rules([10, 11, 12, 13])
        covered = set()
        for rule in rules:
            covered.update(range(rule.k_min, rule.k_max + 1))
        assert covered == {10, 11, 12, 13}
        assert last2

    def test_rule_string(self):
        rules, _, _ = extract_rules([10, 11])
        assert all("first stage" in str(r) for r in rules)

    def test_non_contiguous_resolutions(self):
        # Used to raise KeyError: band compression iterated every integer
        # between k_min and k_max instead of the resolutions actually swept.
        rules, winners, _ = extract_rules([9, 11, 13])
        assert set(winners) == {9, 11, 13}
        labels_in_rules = [w for rule in rules for w in rule.winners]
        # Winner labels come only from swept resolutions, in sweep order.
        assert labels_in_rules == [winners[k] for k in (9, 11, 13)]
        assert len(labels_in_rules) == 3
        # Band boundaries land on swept resolutions, never interpolated ones.
        for rule in rules:
            assert rule.k_min in {9, 11, 13}
            assert rule.k_max in {9, 11, 13}

    def test_first_stage_bits_from_candidate_not_label(self):
        rules, winners, _ = extract_rules([13])
        assert rules[0].first_stage_bits == 4  # 4-3-2 wins at 13 bits
        assert rules[0].winners == (winners[13],)

    def test_unsorted_input_handled(self):
        rules_sorted, winners_sorted, _ = extract_rules([10, 11, 12])
        rules_shuffled, winners_shuffled, _ = extract_rules([12, 10, 11])
        assert winners_sorted == winners_shuffled
        assert [str(r) for r in rules_sorted] == [str(r) for r in rules_shuffled]

    def test_parallel_sweep_matches_serial(self):
        from repro.engine.config import FlowConfig

        serial = extract_rules([10, 11, 12, 13])
        parallel = extract_rules(
            [10, 11, 12, 13], config=FlowConfig(backend="process", max_workers=2)
        )
        assert serial[1] == parallel[1]
        assert [str(r) for r in serial[0]] == [str(r) for r in parallel[0]]
        assert serial[2] == parallel[2]


class TestExperiments:
    def test_fig1_analytic_series(self):
        result = fig1_stage_powers()
        assert set(result.series) == {
            "4-4", "4-3-2", "4-2-2-2", "3-3-3", "3-3-2-2", "3-2-2-2-2", "2-2-2-2-2-2",
        }
        assert len(result.series["2-2-2-2-2-2"]) == 6
        assert "stage-1 spread" in format_fig1(result)

    def test_fig2_matches_paper(self):
        result = fig2_total_power()
        assert result.matches_paper
        assert "winner 4-3-2" in format_fig2(result)

    def test_fig3_bands(self):
        result = fig3_designer_rules([10, 11, 12, 13])
        assert result.winners[13] == "4-3-2"
        assert result.last_stage_always_2bit
        assert "designer rules" in format_fig3(result).lower()


class TestCli:
    def test_cli_explore(self, capsys):
        from repro.cli import main

        assert main(["explore", "--bits", "10"]) == 0
        out = capsys.readouterr().out
        assert "3-2" in out and "optimum" in out

    def test_cli_fig2(self, capsys):
        from repro.cli import main

        assert main(["fig2"]) == 0
        assert "Fig. 2" in capsys.readouterr().out
