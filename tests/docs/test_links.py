"""Markdown link-check: README, docs/ and ROADMAP must not rot.

Every relative link/image target in the checked documents must exist in
the repository, every referenced source path must exist, and the
architecture doc's paper-to-module map must cover every experiment driver.
External (http/https/mailto) targets are skipped — CI has no network.
"""

import re
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]

#: The documents the CI docs job guards.
DOCUMENTS = sorted(
    [
        REPO_ROOT / "README.md",
        REPO_ROOT / "ROADMAP.md",
        *(REPO_ROOT / "docs").glob("*.md"),
    ]
)

#: Markdown inline links/images: [text](target) / ![alt](target).
_LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)\)")

#: Backticked repo paths like ``src/repro/engine/backend.py`` or
#: ``docs/engine.md`` (optionally with ::symbol or trailing slash).
_PATH_RE = re.compile(
    r"`((?:src|docs|tests|benchmarks|examples)/[A-Za-z0-9_./-]+?)(?:::[A-Za-z_]+)?/?`"
)


def _targets(document: Path):
    text = document.read_text(encoding="utf-8")
    for match in _LINK_RE.finditer(text):
        target = match.group(1)
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        yield target.split("#", 1)[0]


@pytest.mark.parametrize("document", DOCUMENTS, ids=lambda p: p.name)
def test_relative_links_resolve(document):
    assert document.exists(), f"missing checked document {document}"
    for target in _targets(document):
        resolved = (document.parent / target).resolve()
        assert resolved.exists(), f"{document.name}: broken link -> {target}"


@pytest.mark.parametrize("document", DOCUMENTS, ids=lambda p: p.name)
def test_backticked_repo_paths_exist(document):
    text = document.read_text(encoding="utf-8")
    for match in _PATH_RE.finditer(text):
        path = REPO_ROOT / match.group(1)
        assert path.exists(), f"{document.name}: dangling path `{match.group(1)}`"


def test_architecture_map_covers_every_experiment_driver():
    """docs/architecture.md must map each experiment driver module."""
    architecture = REPO_ROOT / "docs" / "architecture.md"
    assert architecture.exists(), "docs/architecture.md is missing"
    text = architecture.read_text(encoding="utf-8")
    drivers = sorted(
        p.stem
        for p in (REPO_ROOT / "src" / "repro" / "experiments").glob("*.py")
        if p.stem != "__init__"
    )
    assert drivers, "no experiment drivers found"
    for driver in drivers:
        assert f"experiments/{driver}.py" in text, (
            f"paper-to-module map misses src/repro/experiments/{driver}.py"
        )


def test_docs_pages_exist_and_are_linked_from_readme():
    readme = (REPO_ROOT / "README.md").read_text(encoding="utf-8")
    for page in ("docs/architecture.md", "docs/engine.md"):
        assert (REPO_ROOT / page).exists(), f"{page} is missing"
        assert page in readme, f"README does not link {page}"
