"""Repo-wide fixtures.

The observability registry (:data:`repro.obs.metrics.REGISTRY`) is
process-global state — it backs ``TEMPLATE_STATS``/``NEWTON_STATS`` and
every ``broker.*``/``service.*`` counter — so without a reset between
tests one test's counters leak into the next test's assertions (the
historical failure mode this fixture exists to close: stats accumulated
across tests depending on execution order).
"""

import pytest

from repro.obs import metrics
from repro.obs.trace import configure_tracing


@pytest.fixture(autouse=True)
def _reset_telemetry():
    """Zero every metric and disable tracing around each test."""
    metrics.reset_all()
    configure_tracing(None)
    yield
    metrics.reset_all()
    configure_tracing(None)
