"""Candidate enumeration tests: the paper's Section 2 rules."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.enumeration import enumerate_candidates, enumerate_full_pipelines
from repro.enumeration.candidates import PipelineCandidate
from repro.errors import EnumerationError


class TestPaperCandidateSets:
    def test_13_bit_gives_the_papers_seven(self):
        labels = {c.label for c in enumerate_candidates(13)}
        assert labels == {
            "4-4",
            "4-3-2",
            "4-2-2-2",
            "3-3-3",
            "3-3-2-2",
            "3-2-2-2-2",
            "2-2-2-2-2-2",
        }

    def test_candidate_counts_10_to_13(self):
        # 3, 4, 5 and 7 candidates for 10..13 bits.
        counts = [len(enumerate_candidates(k)) for k in (10, 11, 12, 13)]
        assert counts == [3, 4, 5, 7]

    def test_frontend_resolves_k_minus_7_bits(self):
        for k in (10, 11, 12, 13):
            for cand in enumerate_candidates(k):
                assert cand.frontend_bits == k - 7

    def test_sorted_most_aggressive_first(self):
        labels = [c.label for c in enumerate_candidates(13)]
        assert labels[0] == "4-4"
        assert labels[-1] == "2-2-2-2-2-2"


class TestConstraints:
    def test_max_stage_bits_respected(self):
        for cand in enumerate_candidates(13):
            assert all(m <= 4 for m in cand.resolutions)

    def test_monotone_non_increasing(self):
        for cand in enumerate_candidates(13):
            assert all(a >= b for a, b in zip(cand.resolutions, cand.resolutions[1:]))

    def test_relaxing_monotone_adds_candidates(self):
        strict = enumerate_candidates(13, monotone=True)
        relaxed = enumerate_candidates(13, monotone=False)
        assert len(relaxed) > len(strict)
        labels = {c.label for c in relaxed}
        assert "2-3-4" in labels  # a non-monotone permutation now allowed

    def test_relaxing_max_bits_adds_candidates(self):
        wider = enumerate_candidates(13, max_stage_bits=5)
        assert any(max(c.resolutions) == 5 for c in wider)

    def test_infeasible_target_raises(self):
        with pytest.raises(EnumerationError):
            enumerate_candidates(7)  # equals backend_bits

    def test_bad_stage_bounds_raise(self):
        with pytest.raises(EnumerationError):
            enumerate_candidates(13, min_stage_bits=1)
        with pytest.raises(EnumerationError):
            enumerate_candidates(13, min_stage_bits=4, max_stage_bits=3)


class TestBookkeeping:
    def test_effective_bits(self):
        cand = PipelineCandidate((4, 3, 2), 13, 7)
        assert cand.effective_bits == (3, 2, 1)
        assert cand.frontend_bits == 6

    def test_accuracy_chain(self):
        cand = PipelineCandidate((4, 3, 2), 13, 7)
        assert [cand.input_accuracy_bits(i) for i in range(3)] == [13, 10, 8]
        assert [cand.output_accuracy_bits(i) for i in range(3)] == [10, 8, 7]

    def test_stage_gains(self):
        cand = PipelineCandidate((4, 3, 2), 13, 7)
        assert [cand.stage_gain(i) for i in range(3)] == [8, 4, 2]

    def test_label(self):
        assert PipelineCandidate((4, 2, 2), 12, 7).label == "4-2-2"

    def test_out_of_range_stage_index(self):
        cand = PipelineCandidate((4, 3, 2), 13, 7)
        with pytest.raises(EnumerationError):
            cand.bits_resolved_before(3)

    def test_invalid_candidate_rejected(self):
        with pytest.raises(EnumerationError):
            PipelineCandidate((), 13, 7)
        with pytest.raises(EnumerationError):
            PipelineCandidate((4, 1), 13, 7)


class TestFullPipelines:
    def test_full_pipeline_resolves_all_bits(self):
        for cand in enumerate_full_pipelines(10):
            assert cand.frontend_bits == 10

    def test_full_pipeline_space_is_larger(self):
        assert len(enumerate_full_pipelines(13)) > len(enumerate_candidates(13))


class TestProperties:
    @settings(max_examples=50, deadline=None)
    @given(k=st.integers(min_value=8, max_value=15))
    def test_all_candidates_unique(self, k):
        cands = enumerate_candidates(k)
        assert len({c.resolutions for c in cands}) == len(cands)

    @settings(max_examples=50, deadline=None)
    @given(k=st.integers(min_value=8, max_value=15))
    def test_enumeration_complete_vs_bruteforce(self, k):
        # Brute force all non-increasing tuples over {2,3,4} up to length 8.
        import itertools

        target = k - 7
        expected = set()
        for n in range(1, target + 1):
            for combo in itertools.product((4, 3, 2), repeat=n):
                if sum(m - 1 for m in combo) != target:
                    continue
                if any(a < b for a, b in zip(combo, combo[1:])):
                    continue
                expected.add(combo)
        got = {c.resolutions for c in enumerate_candidates(k)}
        assert got == expected

    @settings(max_examples=30, deadline=None)
    @given(k=st.integers(min_value=8, max_value=15))
    def test_accuracy_bookkeeping_consistent(self, k):
        for cand in enumerate_candidates(k):
            for i in range(cand.stage_count):
                assert (
                    cand.output_accuracy_bits(i)
                    == cand.input_accuracy_bits(i) - cand.effective_bits[i]
                )
            assert cand.output_accuracy_bits(cand.stage_count - 1) == 7
