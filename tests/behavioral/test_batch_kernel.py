"""Kernel equivalence: the batch program IS the scalar walk, bit for bit.

The PR 3/PR 6 contract applied to the behavioral tier: the vectorized
``batch`` kernel must reproduce the ``legacy`` scalar walk exactly —
every stage code, residue, backend code and output word, thermal-noise
streams included — across random error-model draws, and campaign records
must come out byte-identical under either kernel.  The kernel is a pure
speed knob or it is nothing.
"""

import numpy as np
import pytest

from repro.behavioral.batch import BEHAVIORAL_KERNELS, simulate_draws
from repro.behavioral.metrics import sndr_db
from repro.behavioral.pipeline import BehavioralPipeline
from repro.behavioral.signals import full_scale_sine, pick_coherent_cycles
from repro.behavioral.verify import (
    DEFAULT_MISMATCH,
    MismatchSpec,
    draw_error_models,
    verify_candidate,
)
from repro.campaign import CampaignGrid, run_campaign
from repro.engine.config import FlowConfig
from repro.enumeration.candidates import enumerate_candidates
from repro.errors import SpecificationError
from repro.specs.adc import AdcSpec
from repro.specs.stage import plan_stages

SAMPLES = 512
FULL_SCALE = 2.0

TRACE_FIELDS = ("stage_codes", "residues", "backend_codes", "codes")


def _stimulus():
    cycles = pick_coherent_cycles(SAMPLES)
    return cycles, full_scale_sine(SAMPLES, cycles, FULL_SCALE)


def _draws(spec, candidate, draws, seed, mismatch=DEFAULT_MISMATCH):
    plan = plan_stages(spec, candidate)
    return draw_error_models(plan, draws, seed, mismatch)


class TestTraceBitIdentity:
    @pytest.mark.parametrize("resolution", (10, 12))
    @pytest.mark.parametrize("seed", (1, 17))
    def test_batch_equals_legacy_with_noise(self, resolution, seed):
        spec = AdcSpec(resolution_bits=resolution)
        _, stimulus = _stimulus()
        for candidate in list(enumerate_candidates(resolution))[:2]:
            models, rngs_a = _draws(spec, candidate, 6, seed)
            _, rngs_b = _draws(spec, candidate, 6, seed)
            batch = simulate_draws(
                candidate, FULL_SCALE, models, stimulus, rngs=rngs_a, kernel="batch"
            )
            legacy = simulate_draws(
                candidate, FULL_SCALE, models, stimulus, rngs=rngs_b, kernel="legacy"
            )
            for name in TRACE_FIELDS:
                a, b = getattr(batch, name), getattr(legacy, name)
                assert a.dtype == b.dtype, name
                assert np.array_equal(a, b), (candidate.label, name)

    def test_batch_equals_legacy_noiseless(self):
        # No generators at all: the pure-arithmetic paths must also agree.
        spec = AdcSpec(resolution_bits=11)
        candidate = next(iter(enumerate_candidates(11)))
        _, stimulus = _stimulus()
        mismatch = MismatchSpec(noise_sigma=0.0)
        models, _ = _draws(spec, candidate, 4, 5, mismatch)
        batch = simulate_draws(candidate, FULL_SCALE, models, stimulus)
        legacy = simulate_draws(
            candidate, FULL_SCALE, models, stimulus, kernel="legacy"
        )
        for name in TRACE_FIELDS:
            assert np.array_equal(getattr(batch, name), getattr(legacy, name)), name

    def test_legacy_kernel_matches_the_pipeline_walk(self):
        # The legacy kernel is only a *reference* if it is literally the
        # existing scalar pipeline — pin it against convert_array.
        spec = AdcSpec(resolution_bits=10)
        candidate = next(iter(enumerate_candidates(10)))
        _, stimulus = _stimulus()
        models, rngs = _draws(spec, candidate, 3, 9)
        legacy = simulate_draws(
            candidate, FULL_SCALE, models, stimulus, rngs=rngs, kernel="legacy"
        )
        _, fresh_rngs = _draws(spec, candidate, 3, 9)
        for d, stage_errors in enumerate(models):
            pipeline = BehavioralPipeline(
                candidate, FULL_SCALE, stage_errors=stage_errors
            )
            codes = pipeline.convert_array(stimulus, fresh_rngs[d])
            assert np.array_equal(codes, legacy.codes[d])

    def test_metrics_agree_across_kernels(self):
        spec = AdcSpec(resolution_bits=10)
        candidate = next(iter(enumerate_candidates(10)))
        cycles, stimulus = _stimulus()
        models, rngs_a = _draws(spec, candidate, 4, 2)
        _, rngs_b = _draws(spec, candidate, 4, 2)
        batch = simulate_draws(
            candidate, FULL_SCALE, models, stimulus, rngs=rngs_a
        )
        legacy = simulate_draws(
            candidate, FULL_SCALE, models, stimulus, rngs=rngs_b, kernel="legacy"
        )
        for d in range(4):
            assert sndr_db(batch.codes[d], cycles) == sndr_db(
                legacy.codes[d], cycles
            )

    def test_verify_candidate_verdicts_identical(self):
        spec = AdcSpec(resolution_bits=10)
        candidate = next(iter(enumerate_candidates(10)))
        batch = verify_candidate(spec, candidate, draws=4, seed=11)
        legacy = verify_candidate(
            spec, candidate, draws=4, seed=11, kernel="legacy"
        )
        assert batch == legacy


class TestKernelValidation:
    def test_unknown_kernel_is_a_friendly_error(self):
        candidate = next(iter(enumerate_candidates(10)))
        with pytest.raises(SpecificationError, match="behavioral kernel"):
            simulate_draws(candidate, FULL_SCALE, [], [0.0], kernel="vectorized")
        assert set(BEHAVIORAL_KERNELS) == {"batch", "legacy"}

    def test_noise_without_rngs_is_refused(self):
        spec = AdcSpec(resolution_bits=10)
        candidate = next(iter(enumerate_candidates(10)))
        models, _ = _draws(spec, candidate, 2, 1)
        with pytest.raises(SpecificationError, match="rngs"):
            simulate_draws(candidate, FULL_SCALE, models, [0.0, 0.1])

    def test_wrong_model_count_is_refused(self):
        from repro.behavioral.nonideal import StageErrorModel

        candidate = next(
            c for c in enumerate_candidates(10) if c.stage_count > 1
        )
        with pytest.raises(SpecificationError, match="per stage"):
            simulate_draws(
                candidate, FULL_SCALE, [(StageErrorModel.ideal(),)], [0.0]
            )


class TestCampaignRecordsAcrossKernels:
    def test_stores_byte_identical_under_both_kernels(self, tmp_path):
        grid = CampaignGrid(
            resolutions=(10, 11), modes=("analytic", "behavioral")
        )
        stores = {}
        for kernel in BEHAVIORAL_KERNELS:
            out = tmp_path / kernel
            run_campaign(
                grid,
                config=FlowConfig(behavioral_draws=4, behavioral_kernel=kernel),
                store_dir=out,
            )
            stores[kernel] = out
        for name in ("results.jsonl", "report.txt", "manifest.json"):
            assert (stores["batch"] / name).read_bytes() == (
                stores["legacy"] / name
            ).read_bytes(), name
