"""Behavioral pipeline tests: correction, conversion quality, error models."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.behavioral import (
    BehavioralPipeline,
    StageErrorModel,
    combine_codes,
    coherent_sine,
    enob,
    inl_dnl,
    sfdr_db,
    sndr_db,
)
from repro.behavioral.signals import full_scale_sine
from repro.enumeration.candidates import PipelineCandidate
from repro.errors import SpecificationError

CAND_432 = PipelineCandidate((4, 3, 2), 13, 7)
CAND_22 = PipelineCandidate((2, 2), 9, 7)


class TestCombineCodes:
    def test_zero_input_maps_to_midscale(self):
        # All-middle codes + mid backend = 2^(K-1).
        word = combine_codes([7, 3, 1], [4, 3, 2], 64, 7, 13)
        assert word == 2**12

    def test_code_range_clipping(self):
        low = combine_codes([0, 0, 0], [4, 3, 2], 0, 7, 13)
        high = combine_codes([14, 6, 2], [4, 3, 2], 127, 7, 13)
        assert low == 0
        assert high == 2**13 - 1

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(SpecificationError):
            combine_codes([1], [4, 3], 0, 7, 13)

    def test_wrong_backend_bits_rejected(self):
        with pytest.raises(SpecificationError):
            combine_codes([7, 3, 1], [4, 3, 2], 0, 6, 13)

    def test_out_of_range_code_rejected(self):
        with pytest.raises(SpecificationError):
            combine_codes([15, 3, 1], [4, 3, 2], 0, 7, 13)


class TestIdealConversion:
    def test_ideal_pipeline_matches_ideal_quantizer(self):
        pipeline = BehavioralPipeline(CAND_432)
        for vin in np.linspace(-0.97, 0.97, 57):
            code = pipeline.convert(float(vin))
            ideal = int(np.floor((vin / 2.0 + 0.5) * 2**13))
            assert abs(code - ideal) <= 1, vin

    def test_monotone_transfer(self):
        pipeline = BehavioralPipeline(CAND_22)
        codes = [pipeline.convert(float(v)) for v in np.linspace(-0.99, 0.99, 400)]
        assert all(a <= b for a, b in zip(codes, codes[1:]))

    def test_ideal_enob_near_resolution(self):
        pipeline = BehavioralPipeline(CAND_432)
        signal = full_scale_sine(2048, 479, 2.0)
        codes = pipeline.convert_array(signal)
        assert enob(codes, 479) > 12.7

    @settings(max_examples=30, deadline=None)
    @given(vin=st.floats(min_value=-0.95, max_value=0.95))
    def test_every_13bit_candidate_agrees_on_ideal_codes(self, vin):
        from repro.enumeration import enumerate_candidates

        codes = set()
        for cand in enumerate_candidates(13):
            codes.add(BehavioralPipeline(cand).convert(vin))
        assert max(codes) - min(codes) <= 1


class TestRedundancy:
    def test_comparator_offsets_within_margin_are_harmless(self):
        rng = np.random.default_rng(5)
        errors = []
        for m in CAND_432.resolutions:
            tol = 2.0 / 2 ** (m + 1)
            offsets = tuple(rng.uniform(-0.7 * tol, 0.7 * tol, 2**m - 2))
            errors.append(StageErrorModel(comparator_offsets=offsets))
        pipeline = BehavioralPipeline(CAND_432, stage_errors=tuple(errors))
        signal = full_scale_sine(2048, 479, 2.0)
        assert enob(pipeline.convert_array(signal), 479) > 12.5

    def test_oversized_offsets_do_hurt(self):
        # Offsets far beyond the redundancy margin must degrade ENOB.
        errors = []
        for m in CAND_432.resolutions:
            tol = 2.0 / 2 ** (m + 1)
            offsets = tuple([3.0 * tol] * (2**m - 2))
            errors.append(StageErrorModel(comparator_offsets=offsets))
        pipeline = BehavioralPipeline(CAND_432, stage_errors=tuple(errors))
        signal = full_scale_sine(2048, 479, 2.0)
        assert enob(pipeline.convert_array(signal), 479) < 12.0

    def test_uniform_gain_error_cancels_in_correction(self):
        # Instructive pipeline property: a *uniform* interstage gain error
        # cancels in the digital reconstruction (the DAC term added back in
        # the combiner equals the one subtracted in the MDAC), leaving a
        # harmonic-free 1% amplitude compression.  ENOB stays near ideal.
        errors = (StageErrorModel(gain_error=-0.01),) + tuple(
            StageErrorModel.ideal() for _ in range(2)
        )
        pipeline = BehavioralPipeline(CAND_432, stage_errors=errors)
        signal = full_scale_sine(2048, 479, 2.0)
        assert enob(pipeline.convert_array(signal), 479) > 12.5

    def test_dac_level_errors_do_degrade_enob(self):
        # Capacitor-mismatch-style DAC errors are code-dependent and do NOT
        # cancel: they are the mismatch mechanism the matching floor in
        # repro.specs.caps guards against.
        rng = np.random.default_rng(3)
        dac_err = tuple(rng.normal(0.0, 2.0e-3, 2**4 - 1))  # 2 mV rms, stage 1
        errors = (StageErrorModel(dac_level_errors=dac_err),) + tuple(
            StageErrorModel.ideal() for _ in range(2)
        )
        pipeline = BehavioralPipeline(CAND_432, stage_errors=errors)
        signal = full_scale_sine(2048, 479, 2.0)
        assert enob(pipeline.convert_array(signal), 479) < 12.0

    def test_settling_error_at_spec_is_tolerable(self):
        # The spec budgets eps = 2^-(out_acc+1) per stage; at that level the
        # converter should stay within ~1 bit of ideal.
        errors = tuple(
            StageErrorModel(settling_error=2.0 ** -(CAND_432.output_accuracy_bits(i) + 1))
            for i in range(3)
        )
        pipeline = BehavioralPipeline(CAND_432, stage_errors=errors)
        signal = full_scale_sine(2048, 479, 2.0)
        assert enob(pipeline.convert_array(signal), 479) > 11.5


class TestMetrics:
    def test_sndr_of_quantized_sine(self):
        # Quantizing an ideal sine to 10 bits gives SNDR ~ 6.02*10 + 1.76.
        signal = coherent_sine(4096, 101, amplitude=0.499, offset=0.5)
        codes = np.floor(signal * 1024).astype(int)
        sndr = sndr_db(codes, 101)
        assert sndr == pytest.approx(6.02 * 10 + 1.76, abs=1.5)

    def test_sfdr_detects_distortion(self):
        t = np.arange(4096)
        clean = np.sin(2 * np.pi * 101 * t / 4096)
        distorted = clean + 0.01 * np.sin(2 * np.pi * 303 * t / 4096)
        codes = np.floor((distorted / 2 + 0.5) * 4096).astype(int)
        assert sfdr_db(codes, 101) == pytest.approx(-20 * np.log10(0.01), abs=1.0)

    def test_inl_dnl_of_ideal_converter_small(self):
        pipeline = BehavioralPipeline(CAND_22)
        signal = full_scale_sine(60000, 4801, 2.0, backoff_db=0.1)
        codes = pipeline.convert_array(signal)
        inl, dnl = inl_dnl(codes, 9)
        # Bounds reflect the histogram method's own noise floor at this
        # record length, not converter error.
        assert np.max(np.abs(dnl)) < 0.5
        assert np.max(np.abs(inl)) < 1.2

    def test_inl_detects_dac_errors(self):
        # A stage-1 DAC level error must raise measured INL well above the
        # ideal converter's histogram-method noise floor.
        signal = full_scale_sine(60000, 4801, 2.0, backoff_db=0.1)
        ideal_inl, _ = inl_dnl(BehavioralPipeline(CAND_22).convert_array(signal), 9)
        dac_err = (0.0, 0.012, 0.0)  # 12 mV error on the middle DAC level
        errored = BehavioralPipeline(
            CAND_22,
            stage_errors=(StageErrorModel(dac_level_errors=dac_err), StageErrorModel.ideal()),
        )
        err_inl, _ = inl_dnl(errored.convert_array(signal), 9)
        assert np.max(np.abs(err_inl)) > 2.0 * np.max(np.abs(ideal_inl))

    def test_signals_validation(self):
        with pytest.raises(SpecificationError):
            coherent_sine(1024, 512, 1.0)  # not < n/2
        with pytest.raises(SpecificationError):
            coherent_sine(1024, 4, 1.0)  # not coprime


class TestValidation:
    def test_wrong_error_count_rejected(self):
        with pytest.raises(SpecificationError):
            BehavioralPipeline(CAND_432, stage_errors=(StageErrorModel.ideal(),))

    def test_wrong_offset_count_rejected(self):
        from repro.behavioral.pipeline import PipelineStage

        with pytest.raises(SpecificationError):
            PipelineStage(3, 2.0, StageErrorModel(comparator_offsets=(0.0,)))
