"""The fundamental redundancy invariant, as an exact property.

Digital correction makes the pipeline output *independent of the sub-ADC
decisions* as long as each stage's residue stays within the next stage's
range: forcing any stage's code up or down by one (where the residue
permits) must reconstruct to the identical output word.  This is the exact
mechanism that lets comparators be sloppy, and it holds bit-exactly — not
just statistically — in a correct implementation.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.behavioral.correction import combine_codes
from repro.blocks.subadc import FlashSubAdc
from repro.enumeration.candidates import PipelineCandidate

CANDIDATES = [
    PipelineCandidate((4, 3, 2), 13, 7),
    PipelineCandidate((2, 2, 2), 10, 7),
    PipelineCandidate((4, 4), 13, 7),
]


def convert_with_codes(candidate, vin, forced=None):
    """Ideal conversion, optionally forcing one stage's code offset."""
    full_scale = 2.0
    v = vin
    codes = []
    for i, m in enumerate(candidate.resolutions):
        sub = FlashSubAdc(m, full_scale)
        code = sub.quantize(v)
        if forced is not None and forced[0] == i:
            code = code + forced[1]
            levels = 2**m - 1
            if not 0 <= code < levels:
                return None  # forcing not possible at this input
        levels = 2**m - 1
        gain = 2.0 ** (m - 1)
        dac = (code - (levels - 1) / 2.0) * full_scale / 2.0
        v = gain * v - dac
        # Strict inequality: a residue exactly at +-FS/2 sits on the open
        # edge of the next quantizer's range, where the invariant breaks by
        # half an LSB (top-code saturation).
        if abs(v) >= full_scale / 2.0:
            return None  # residue out of range: redundancy exhausted
        codes.append(code)
    backend_bits = candidate.total_bits - candidate.frontend_bits
    n = 2**backend_bits
    backend = max(0, min(n - 1, int(np.floor((v / full_scale + 0.5) * n))))
    return combine_codes(
        codes, list(candidate.resolutions), backend, backend_bits, candidate.total_bits
    )


@settings(max_examples=200, deadline=None)
@given(
    vin=st.floats(min_value=-0.93, max_value=0.93),
    cand_index=st.integers(min_value=0, max_value=len(CANDIDATES) - 1),
    stage=st.integers(min_value=0, max_value=3),
    direction=st.sampled_from([-1, +1]),
)
def test_forced_code_offsets_reconstruct_identically(vin, cand_index, stage, direction):
    candidate = CANDIDATES[cand_index]
    if stage >= candidate.stage_count:
        stage = stage % candidate.stage_count
    baseline = convert_with_codes(candidate, vin)
    assert baseline is not None
    perturbed = convert_with_codes(candidate, vin, forced=(stage, direction))
    if perturbed is None:
        return  # residue left range: that perturbation is outside redundancy
    # Redundancy at work: the output word is bit-exactly unchanged.
    assert perturbed == baseline


@settings(max_examples=100, deadline=None)
@given(vin=st.floats(min_value=-0.99, max_value=0.99))
def test_reconstruction_error_below_one_lsb(vin):
    candidate = CANDIDATES[0]
    word = convert_with_codes(candidate, vin)
    assert word is not None
    reconstructed = (word + 0.5) / 2**candidate.total_bits * 2.0 - 1.0
    assert abs(reconstructed - vin) <= 2.0 / 2**candidate.total_bits
