"""Coherent-sampling audit: cycle selection rules and SNDR ground truth.

The behavioral tier's SNDR numbers are only meaningful if the stimulus is
truly coherent (all carrier energy in one FFT bin, no window, no leakage)
and the FFT metric reproduces the textbook quantization-noise result.
This module pins both: every ``pick_coherent_cycles`` invariant, and the
SNDR of an ideal B-bit quantizer against the closed-form
``6.02·B + 1.76 dB``.
"""

import math

import numpy as np
import pytest

from repro.behavioral.metrics import sndr_db
from repro.behavioral.signals import (
    coherent_sine,
    full_scale_sine,
    pick_coherent_cycles,
)
from repro.errors import SpecificationError

FULL_SCALE = 2.0


def _quantize(samples, bits, full_scale=FULL_SCALE):
    """Ideal mid-rise B-bit quantizer over [-FS/2, +FS/2)."""
    codes = np.floor((samples / full_scale + 0.5) * 2**bits)
    return np.clip(codes, 0, 2**bits - 1).astype(int)


class TestPickCoherentCycles:
    @pytest.mark.parametrize("n_samples", (8, 64, 500, 1024, 2048, 4096))
    @pytest.mark.parametrize("fraction", (0.05, 0.11, 0.234, 0.41, 0.49))
    def test_selection_invariants(self, n_samples, fraction):
        cycles = pick_coherent_cycles(n_samples, fraction)
        assert 0 < cycles < n_samples / 2
        assert cycles % 2 == 1
        assert math.gcd(cycles, n_samples) == 1
        # The pick must be accepted by the generator it feeds.
        coherent_sine(n_samples, cycles, 1.0)

    def test_nearest_valid_count_wins(self):
        # 0.234 * 2048 = 479.2 -> 479 is already odd and coprime.
        assert pick_coherent_cycles(2048) == 479
        # 0.41 * 2048 rounds to 840 (even); 839 is the nearest valid pick.
        assert pick_coherent_cycles(2048, 0.41) == 839

    def test_ties_prefer_the_lower_frequency(self):
        # 0.2 * 15 = 3 shares a factor with 15; both neighbours at delta 1
        # are even, and delta 2 reaches 1 (valid) before 5 (factor of 15).
        assert pick_coherent_cycles(15, 0.2) == 1

    def test_no_valid_count_below_minimum_record(self):
        with pytest.raises(SpecificationError, match="too small"):
            pick_coherent_cycles(4)

    @pytest.mark.parametrize("fraction", (0.0, 0.5, -0.1, 1.0))
    def test_fraction_bounds(self, fraction):
        with pytest.raises(SpecificationError, match="fraction"):
            pick_coherent_cycles(2048, fraction)


class TestCoherentSineValidation:
    def test_non_coprime_cycles_rejected(self):
        with pytest.raises(SpecificationError, match="coprime"):
            coherent_sine(2048, 32, 1.0)

    def test_cycles_beyond_nyquist_rejected(self):
        with pytest.raises(SpecificationError, match="cycles"):
            coherent_sine(64, 32, 1.0)

    def test_full_scale_sine_backoff(self):
        signal = full_scale_sine(2048, 479, FULL_SCALE)
        expected_peak = (FULL_SCALE / 2.0) * 10 ** (-0.5 / 20.0)
        assert np.max(np.abs(signal)) == pytest.approx(expected_peak, rel=1e-6)
        assert np.max(np.abs(signal)) < FULL_SCALE / 2.0


class TestSndrClosedForm:
    @pytest.mark.parametrize("bits", (8, 10, 12))
    @pytest.mark.parametrize("n_samples", (1024, 2048))
    def test_ideal_quantizer_matches_6p02b_plus_1p76(self, bits, n_samples):
        cycles = pick_coherent_cycles(n_samples)
        signal = coherent_sine(n_samples, cycles, FULL_SCALE / 2.0)
        measured = sndr_db(_quantize(signal, bits), cycles)
        assert measured == pytest.approx(6.02 * bits + 1.76, abs=0.5)

    @pytest.mark.parametrize("bits", (8, 10, 12))
    def test_backed_off_stimulus_costs_the_backoff(self, bits):
        cycles = pick_coherent_cycles(2048)
        signal = full_scale_sine(2048, cycles, FULL_SCALE)
        measured = sndr_db(_quantize(signal, bits), cycles)
        assert measured == pytest.approx(6.02 * bits + 1.76 - 0.5, abs=0.6)

    def test_regression_pin_10_bit_2048_point_capture(self):
        # Frozen reference: any drift here means the signal chain or the
        # FFT metric changed, which silently re-baselines every behavioral
        # SNDR in the store.
        cycles = pick_coherent_cycles(2048)
        signal = coherent_sine(2048, cycles, FULL_SCALE / 2.0)
        measured = sndr_db(_quantize(signal, 10), cycles)
        assert measured == pytest.approx(61.992895517212034, abs=1e-9)

    def test_pure_sine_without_quantizer_is_noise_free(self):
        cycles = pick_coherent_cycles(2048)
        signal = coherent_sine(2048, cycles, 1.0)
        assert sndr_db(signal, cycles) == float("inf")
