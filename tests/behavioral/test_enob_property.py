"""ENOB recovery and offset immunity as seeded sweep properties.

Two ground truths the behavioral tier must reproduce before any of its
Monte-Carlo numbers mean anything:

* an all-ideal pipeline is a pure K-bit quantizer, so a coherent
  near-full-scale sine must come back at the quantization-limited ENOB of
  the nominal resolution — across resolutions, stage splits and input
  frequencies;
* redundancy + digital correction make the output word *exactly*
  independent of comparator offsets below the stage's published
  tolerance (half an MSB of the residue range per side, FS/2^(m+1)).
"""

import numpy as np
import pytest

from repro.behavioral.batch import simulate_draws
from repro.behavioral.metrics import enob
from repro.behavioral.nonideal import StageErrorModel
from repro.behavioral.signals import full_scale_sine, pick_coherent_cycles
from repro.behavioral.verify import MismatchSpec, verify_candidate
from repro.enumeration.candidates import enumerate_candidates
from repro.specs.adc import AdcSpec

SAMPLES = 2048
FULL_SCALE = 2.0

#: The 0.5 dB amplitude backoff costs 0.5/6.02 ~ 0.083 bit; anything past
#: ~0.35 bit of loss (or ~0.2 bit of gain) is a correction/metric bug.
ENOB_SLACK_LOW = 0.35
ENOB_SLACK_HIGH = 0.2


def _ideal_models(candidate):
    return (tuple(StageErrorModel.ideal() for _ in candidate.resolutions),)


def _splits(resolution):
    """First and last enumerated stage splits (coarse-first vs all-2-bit)."""
    candidates = list(enumerate_candidates(resolution))
    return candidates if len(candidates) == 1 else [candidates[0], candidates[-1]]


class TestIdealEnobRecovery:
    @pytest.mark.parametrize("resolution", (8, 9, 10, 11, 12))
    @pytest.mark.parametrize("fraction", (0.11, 0.234, 0.41))
    def test_all_ideal_pipeline_hits_quantization_bound(
        self, resolution, fraction
    ):
        cycles = pick_coherent_cycles(SAMPLES, fraction)
        stimulus = full_scale_sine(SAMPLES, cycles, FULL_SCALE)
        for candidate in _splits(resolution):
            result = simulate_draws(
                candidate, FULL_SCALE, _ideal_models(candidate), stimulus
            )
            measured = enob(result.codes[0], cycles)
            assert (
                resolution - ENOB_SLACK_LOW
                <= measured
                <= resolution + ENOB_SLACK_HIGH
            ), (candidate.label, fraction, measured)

    def test_ideal_mismatch_spec_through_verify_candidate(self):
        spec = AdcSpec(resolution_bits=10)
        verdict = verify_candidate(
            spec,
            _splits(10)[0],
            draws=2,
            seed=3,
            mismatch=MismatchSpec.ideal(),
        )
        for value in verdict.enob:
            assert 10 - ENOB_SLACK_LOW <= value <= 10 + ENOB_SLACK_HIGH
        # Ideal draws have no randomness left: every draw is identical.
        assert len(set(verdict.sndr_db)) == 1


class TestOffsetImmunity:
    @pytest.mark.parametrize("resolution", (10, 11, 12))
    @pytest.mark.parametrize("seed", (0, 1, 2))
    def test_offsets_below_tolerance_leave_codes_untouched(
        self, resolution, seed
    ):
        cycles = pick_coherent_cycles(SAMPLES)
        stimulus = full_scale_sine(SAMPLES, cycles, FULL_SCALE)
        rng = np.random.default_rng(seed)
        for candidate in _splits(resolution):
            offset_models = []
            for m in candidate.resolutions:
                tolerance = FULL_SCALE / 2 ** (m + 1)
                offsets = tuple(
                    float(x)
                    for x in 0.9 * tolerance * rng.uniform(-1.0, 1.0, 2**m - 2)
                )
                offset_models.append(StageErrorModel(comparator_offsets=offsets))
            reference = simulate_draws(
                candidate, FULL_SCALE, _ideal_models(candidate), stimulus
            )
            perturbed = simulate_draws(
                candidate, FULL_SCALE, (tuple(offset_models),), stimulus
            )
            # Sub-ADC decisions shift, the corrected word must not.
            assert not np.array_equal(
                reference.stage_codes, perturbed.stage_codes
            ), candidate.label
            assert np.array_equal(reference.codes, perturbed.codes), candidate.label

    def test_offsets_beyond_tolerance_do_corrupt_codes(self):
        # Control: the invariant above is not vacuous — offsets well past
        # the redundancy range must change output words.
        cycles = pick_coherent_cycles(SAMPLES)
        stimulus = full_scale_sine(SAMPLES, cycles, FULL_SCALE)
        candidate = _splits(10)[0]
        models = tuple(
            StageErrorModel(
                comparator_offsets=tuple(
                    3.0 * FULL_SCALE / 2 ** (m + 1) for _ in range(2**m - 2)
                )
            )
            for m in candidate.resolutions
        )
        reference = simulate_draws(
            candidate, FULL_SCALE, _ideal_models(candidate), stimulus
        )
        perturbed = simulate_draws(candidate, FULL_SCALE, (models,), stimulus)
        assert not np.array_equal(reference.codes, perturbed.codes)
