"""Reproduction assertions: the paper's Section 4 findings must hold.

These tests pin the calibrated analytic model to the paper's qualitative
results (see EXPERIMENTS.md for the quantitative comparison):

* Fig. 2 optima: 3-2... (10b), 4-2... (11b), 4-2-2... (12b), 4-3-2... (13b);
* a 2-bit last front-end stage is optimal at every resolution;
* Fig. 1: first-stage power is nearly independent of the first-stage
  resolution for the main 13-bit candidates;
* the 2-2-2-2-2-2 chain is the worst 13-bit configuration by a wide margin.
"""

import pytest

from repro.enumeration import enumerate_candidates
from repro.power import candidate_power
from repro.specs import AdcSpec

PAPER_WINNERS = {10: "3-2", 11: "4-2", 12: "4-2-2", 13: "4-3-2"}


def ranked(k):
    spec = AdcSpec(resolution_bits=k)
    return sorted(
        (candidate_power(spec, c) for c in enumerate_candidates(k)),
        key=lambda cp: cp.total_power,
    )


class TestFig2Winners:
    @pytest.mark.parametrize("k", [10, 11, 12, 13])
    def test_paper_winner(self, k):
        assert ranked(k)[0].candidate.label == PAPER_WINNERS[k]

    @pytest.mark.parametrize("k", [10, 11, 12, 13])
    def test_two_bit_last_stage_is_optimal(self, k):
        assert ranked(k)[0].candidate.resolutions[-1] == 2

    def test_all_2s_chain_is_worst_at_13_bits(self):
        order = ranked(13)
        assert order[-1].candidate.label == "2-2-2-2-2-2"
        # ... by a wide margin: at least 1.5x the runner-up.
        assert order[-1].total_power > 1.5 * order[-2].total_power

    def test_4_4_loses_to_4_3_2_at_13_bits(self):
        powers = {cp.candidate.label: cp.total_power for cp in ranked(13)}
        assert powers["4-3-2"] < powers["4-4"]

    def test_13_bit_magnitude_is_tens_of_mw(self):
        best = ranked(13)[0]
        assert 5e-3 < best.total_power < 100e-3


class TestFig1StageOneFlatness:
    def test_first_stage_power_nearly_independent_of_m1(self):
        spec = AdcSpec(resolution_bits=13)
        stage1 = {
            c.label: candidate_power(spec, c).stage_powers_mw()[0]
            for c in enumerate_candidates(13)
        }
        # Among the main candidates the spread stays within ~50%.
        core = [v for k, v in stage1.items() if k != "2-2-2-2-2-2"]
        assert max(core) / min(core) < 1.5
        # Even including the all-2s outlier the spread is bounded.
        assert max(stage1.values()) / min(stage1.values()) < 2.5

    def test_stage_power_decreases_along_pipeline(self):
        spec = AdcSpec(resolution_bits=13)
        for cand in enumerate_candidates(13):
            mw = candidate_power(spec, cand).stage_powers_mw()
            assert all(a >= b for a, b in zip(mw, mw[1:])), cand.label


class TestResolutionTrend:
    def test_optimal_first_stage_resolution_grows_with_k(self):
        # Fig. 3's designer rule: coarser targets take smaller first stages.
        first_bits = {k: ranked(k)[0].candidate.resolutions[0] for k in (10, 11, 12, 13)}
        assert first_bits[10] == 3
        assert first_bits[11] == first_bits[12] == first_bits[13] == 4

    def test_total_power_monotone_in_resolution(self):
        totals = [ranked(k)[0].total_power for k in (10, 11, 12, 13)]
        assert all(a < b for a, b in zip(totals, totals[1:]))
