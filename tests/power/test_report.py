"""Report-formatting tests."""

from repro.enumeration import enumerate_candidates
from repro.power import candidate_power
from repro.power.report import comparison_table, stage_table
from repro.specs import AdcSpec


def test_stage_table_contains_every_stage():
    spec = AdcSpec(resolution_bits=13)
    cand = next(c for c in enumerate_candidates(13) if c.label == "4-3-2")
    table = stage_table(candidate_power(spec, cand))
    assert "candidate 4-3-2" in table
    assert table.count("\n") >= 4
    assert "total" in table


def test_comparison_table_sorted():
    spec = AdcSpec(resolution_bits=12)
    evals = [candidate_power(spec, c) for c in enumerate_candidates(12)]
    table = comparison_table(evals)
    lines = table.splitlines()[1:]
    totals = [float(line.split()[1]) for line in lines]
    assert totals == sorted(totals)
    assert lines[0].startswith("4-2-2")
