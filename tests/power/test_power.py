"""Power model unit tests."""

import pytest

from repro.enumeration.candidates import PipelineCandidate
from repro.errors import SpecificationError
from repro.power import (
    DEFAULT_POWER_MODEL,
    PowerModel,
    candidate_power,
    mdac_power,
    sub_adc_power,
)
from repro.specs import AdcSpec, plan_stages
from repro.tech import CMOS025


def plan(label="4-3-2", k=13):
    cand = PipelineCandidate(tuple(int(x) for x in label.split("-")), k, 7)
    return plan_stages(AdcSpec(resolution_bits=k), cand)


class TestPowerModel:
    def test_defaults_valid(self):
        assert DEFAULT_POWER_MODEL.gm_over_id > 0

    def test_validation(self):
        with pytest.raises(SpecificationError):
            PowerModel(gm_over_id=0)
        with pytest.raises(SpecificationError):
            PowerModel(topology_current_factor=0.5)
        with pytest.raises(SpecificationError):
            PowerModel(bias_overhead_fraction=1.0)
        with pytest.raises(SpecificationError):
            PowerModel(comparator_e0=-1)


class TestMdacPower:
    def test_branch_current_is_max_of_gm_and_slew(self):
        mdac = plan().mdacs[0]
        p = mdac_power(mdac, CMOS025)
        assert p.branch_current == pytest.approx(max(p.gm_current, p.slew_current))

    def test_gm_current_formula(self):
        mdac = plan().mdacs[0]
        p = mdac_power(mdac, CMOS025)
        assert p.gm_current == pytest.approx(
            mdac.gm_required / DEFAULT_POWER_MODEL.gm_over_id
        )

    def test_total_includes_overheads(self):
        mdac = plan().mdacs[0]
        p = mdac_power(mdac, CMOS025)
        expected_current = (
            p.branch_current
            * DEFAULT_POWER_MODEL.topology_current_factor
            * (1 + DEFAULT_POWER_MODEL.bias_overhead_fraction)
        )
        assert p.total_current == pytest.approx(expected_current)
        assert p.total_power == pytest.approx(
            CMOS025.vdd * expected_current + DEFAULT_POWER_MODEL.fixed_overhead_w
        )

    def test_first_stage_dominates_at_13_bits(self):
        stage_plan = plan()
        powers = [mdac_power(m, CMOS025).total_power for m in stage_plan.mdacs]
        assert powers[0] > powers[1] > powers[2]

    def test_binding_constraint_reported(self):
        mdac = plan().mdacs[0]
        p = mdac_power(mdac, CMOS025)
        assert p.binding_constraint in ("gm", "slew")


class TestSubAdcPower:
    def test_first_stage_has_no_tracking_power(self):
        sub = plan().sub_adcs[0]
        assert sub_adc_power(sub).tracking_power == 0.0

    def test_later_stage_tracking_scales_with_bits(self):
        stage_plan = plan("4-4", 13)
        p2 = sub_adc_power(stage_plan.sub_adcs[1])
        stage_plan2 = plan("4-2-2-2", 13)
        p2_small = sub_adc_power(stage_plan2.sub_adcs[1])
        # 4-bit non-first stage: 14 comparators at 4x difficulty vs 2 at 1x.
        assert p2.tracking_power > 10 * p2_small.tracking_power

    def test_energy_grows_as_tolerance_shrinks(self):
        p4 = sub_adc_power(plan("4-4", 13).sub_adcs[0])
        p2 = sub_adc_power(plan("2-2-2-2-2-2", 13).sub_adcs[0])
        assert p4.energy_per_decision > p2.energy_per_decision

    def test_total_is_sum_of_parts(self):
        sub = plan().sub_adcs[1]
        p = sub_adc_power(sub)
        assert p.total_power == pytest.approx(
            p.comparator_power + p.tracking_power + p.fixed_power
        )


class TestCandidatePower:
    def test_stage_count_matches(self):
        spec = AdcSpec(resolution_bits=13)
        cand = PipelineCandidate((4, 3, 2), 13, 7)
        cp = candidate_power(spec, cand)
        assert len(cp.stages) == 3

    def test_total_is_sum(self):
        spec = AdcSpec(resolution_bits=13)
        cand = PipelineCandidate((4, 3, 2), 13, 7)
        cp = candidate_power(spec, cand)
        assert cp.total_power == pytest.approx(cp.mdac_power + cp.sub_adc_power)
        assert cp.total_power == pytest.approx(sum(s.total_power for s in cp.stages))

    def test_stage_powers_mw(self):
        spec = AdcSpec(resolution_bits=13)
        cand = PipelineCandidate((4, 3, 2), 13, 7)
        mw = candidate_power(spec, cand).stage_powers_mw()
        assert len(mw) == 3
        assert all(0.1 < p < 100 for p in mw)

    def test_power_grows_with_resolution(self):
        cand10 = PipelineCandidate((3, 2), 10, 7)
        cand13 = PipelineCandidate((4, 3, 2), 13, 7)
        p10 = candidate_power(AdcSpec(resolution_bits=10), cand10).total_power
        p13 = candidate_power(AdcSpec(resolution_bits=13), cand13).total_power
        assert p13 > 2 * p10
