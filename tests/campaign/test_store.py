"""Results store: record round-trips, FoM, and file layout."""

import json

import pytest

from repro.campaign import CampaignGrid, run_campaign
from repro.campaign.store import (
    CampaignRecord,
    read_records,
    walden_fom,
    write_records,
)
from repro.errors import SpecificationError


def _campaign(tmp_path=None, **grid_kwargs):
    grid_kwargs.setdefault("resolutions", (10, 11))
    grid_kwargs.setdefault("sample_rates_hz", (40e6,))
    return run_campaign(CampaignGrid(**grid_kwargs))


class TestFom:
    def test_walden_definition(self):
        # 10 mW, 10 bits, 40 MSPS -> 10e-3 / (1024 * 40e6) J/step.
        assert walden_fom(10e-3, 10, 40e6) == pytest.approx(
            10e-3 / (1024 * 40e6)
        )

    def test_records_carry_winner_fom(self):
        record = _campaign().records[0]
        assert record.fom_j_per_step == pytest.approx(
            walden_fom(
                record.winner_power_w,
                record.resolution_bits,
                record.sample_rate_hz,
            )
        )


class TestRoundTrip:
    def test_json_round_trip(self):
        for record in _campaign().records:
            assert CampaignRecord.from_json(record.to_json()) == record

    def test_jsonl_file_round_trip(self, tmp_path):
        records = _campaign().records
        path = write_records(records, tmp_path / "results.jsonl")
        assert read_records(path) == records

    def test_corrupt_line_raises(self, tmp_path):
        path = tmp_path / "results.jsonl"
        path.write_text('{"not": "a record"}\n')
        with pytest.raises(SpecificationError):
            read_records(path)

    def test_rankings_are_sorted_best_first(self):
        for record in _campaign().records:
            powers = [p for _, p in record.rankings]
            assert powers == sorted(powers)
            assert record.winner == record.rankings[0][0]


class TestSave:
    def test_save_writes_store_layout(self, tmp_path):
        campaign = _campaign()
        paths = campaign.save(tmp_path / "store")
        assert paths["results"].exists()
        assert paths["report"].exists()
        assert paths["meta"].exists()
        # results.jsonl has one line per scenario and parses back.
        assert read_records(paths["results"]) == campaign.records
        # report.txt matches the in-memory report.
        assert paths["report"].read_text().rstrip("\n") == campaign.report()
        # meta carries timing/backend, separated from the records.
        meta = json.loads(paths["meta"].read_text())
        assert meta["backend"] == "serial"
        assert set(meta["scenario_wall_seconds"]) == set(campaign.winners)
