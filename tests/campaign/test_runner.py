"""Campaign runner: cross-scenario reuse, ledger chaining, persistence."""

from repro.campaign import CampaignGrid, SynthesisLedger, run_campaign
from repro.engine.config import FlowConfig
from repro.flow.topology import optimize_topology


def _config(**overrides) -> FlowConfig:
    base = dict(budget=60, retarget_budget=30, verify_transient=False)
    base.update(overrides)
    return FlowConfig(**base)


SYNTH_GRID = CampaignGrid(resolutions=(10, 11), modes=("synthesis",))


class TestCrossScenarioReuse:
    def test_later_scenarios_warm_start_from_earlier_ones(self):
        campaign = run_campaign(SYNTH_GRID, config=_config())
        first, second = campaign.records

        # The first scenario pays the one cold synthesis of the batch...
        assert first.cold_runs == 1
        assert first.pool_warm_starts == 0
        # ...and every later block retargets, seeded by the campaign pool.
        assert second.cold_runs == 0
        assert second.retargeted_runs == second.unique_blocks
        assert second.pool_warm_starts > 0

        # A naive standalone run of the second scenario synthesizes cold.
        naive = optimize_topology(
            campaign.scenarios[1].scenario.spec, mode="synthesis", config=_config()
        )
        assert naive.unique_blocks == second.unique_blocks
        total_colds = sum(r.cold_runs for r in campaign.records)
        assert total_colds < 2  # batched: 1 cold for 2 scenarios

    def test_campaign_rankings_match_standalone_runs(self):
        # Warm starts change the search path, not the rankings' validity:
        # every block still meets the same spec.  Here we only require the
        # structural outcome (same candidates, all feasible) to match.
        campaign = run_campaign(SYNTH_GRID, config=_config())
        for scenario_result in campaign.scenarios:
            assert scenario_result.record.all_feasible
            labels = [label for label, _ in scenario_result.record.rankings]
            standalone = optimize_topology(
                scenario_result.scenario.spec, mode="analytic"
            )
            assert sorted(labels) == sorted(
                e.label for e in standalone.evaluations
            )

    def test_ledger_chaining_dedupes_repeat_campaigns(self):
        ledger = SynthesisLedger()
        first = run_campaign(SYNTH_GRID, config=_config(), ledger=ledger)
        first_searches = sum(
            r.cold_runs + r.retargeted_runs for r in first.records
        )
        assert first_searches > 0

        # The same grid against the same ledger: every block is an exact
        # fingerprint hit in the shared memory — zero new searches.
        second = run_campaign(SYNTH_GRID, config=_config(), ledger=ledger)
        assert sum(r.cold_runs + r.retargeted_runs for r in second.records) == 0
        assert all(
            r.shared_hits == r.unique_blocks for r in second.records
        )
        assert second.records[0].rankings == first.records[0].rankings

    def test_persistent_cache_spans_campaign_invocations(self, tmp_path):
        config = _config(cache_dir=str(tmp_path / "blocks"))
        grid = CampaignGrid(resolutions=(10,), modes=("synthesis",))
        first = run_campaign(grid, config=config)
        assert first.records[0].persistent_hits == 0

        # Fresh ledger, same disk cache: blocks load instead of searching.
        second = run_campaign(grid, config=config)
        record = second.records[0]
        assert record.cold_runs == record.retargeted_runs == 0
        assert record.persistent_hits == record.unique_blocks
        assert record.rankings == first.records[0].rankings


class TestFeasibilityEscalation:
    def test_infeasible_pool_warm_starts_escalate_to_cold(self):
        # A starvation-level retarget budget cannot carry a 10-bit donor to
        # a 13-bit block, so the campaign must fall back to cold synthesis
        # instead of keeping an infeasible warm-started design.  In-plan
        # retargets keep the legacy no-escalation semantics, so the scenario
        # may still contain infeasible blocks — but never *more* than a
        # naive standalone run under the same budgets.
        grid = CampaignGrid(resolutions=(10, 13), modes=("synthesis",))
        campaign = run_campaign(grid, config=_config(retarget_budget=2))
        second = campaign.records[1]
        assert second.pool_warm_starts > 0
        assert second.pool_escalations > 0
        # Every cold search of the scenario came from escalation: the pool
        # covered wave 0, and escalation re-ran the misses.
        assert second.cold_runs == second.pool_escalations

        naive = optimize_topology(
            campaign.scenarios[1].scenario.spec,
            mode="synthesis",
            config=_config(retarget_budget=2),
        )
        naive_feasible = sum(e.all_feasible for e in naive.evaluations)
        batched_feasible = sum(
            e.all_feasible for e in campaign.scenarios[1].topology.evaluations
        )
        assert batched_feasible >= naive_feasible

    def test_escalated_blocks_rerun_from_persistent_cache(self, tmp_path):
        # Failed warm attempts are persisted alongside the escalated cold
        # results, so a cache-backed rerun performs *zero* searches: the
        # cached failure routes each escalated block straight to its cold
        # entry instead of re-paying retarget + cold.
        grid = CampaignGrid(resolutions=(10, 13), modes=("synthesis",))
        config = _config(retarget_budget=2, cache_dir=str(tmp_path / "blocks"))
        first = run_campaign(grid, config=config)
        assert sum(r.pool_escalations for r in first.records) > 0

        second = run_campaign(grid, config=config)  # fresh ledger, same disk
        assert sum(r.cold_runs + r.retargeted_runs for r in second.records) == 0
        # Escalated blocks hit disk twice (cached failed attempt + cold
        # entry), so hits are at least one per block.
        assert all(
            r.persistent_hits >= r.unique_blocks for r in second.records
        )
        assert second.records[0].rankings == first.records[0].rankings
        assert second.records[1].rankings == first.records[1].rankings

    def test_infeasible_results_never_enter_the_spec_layer(self):
        # Starved budgets produce infeasible in-plan retargets; those must
        # stay out of the ledger's by_spec layer, or an identical spec in a
        # chained campaign would be "served" a block that never met it
        # (and the cold-escalation rescan would be defeated).
        ledger = SynthesisLedger()
        grid = CampaignGrid(resolutions=(10, 13), modes=("synthesis",))
        campaign = run_campaign(
            grid, config=_config(retarget_budget=2), ledger=ledger
        )
        assert not all(r.all_feasible for r in campaign.records)  # starved
        assert all(result.feasible for result in ledger.by_spec.values())
        # The exact fingerprint layer keeps everything, feasible or not.
        assert any(not result.feasible for result in ledger.memory.values())

    def test_escalation_is_backend_deterministic(self):
        grid = CampaignGrid(resolutions=(10, 13), modes=("synthesis",))
        serial = run_campaign(grid, config=_config(retarget_budget=2))
        threaded = run_campaign(
            grid, config=_config(retarget_budget=2, backend="thread", max_workers=2)
        )
        assert serial.records == threaded.records


class TestAnalyticCampaign:
    def test_records_have_no_synthesis_accounting(self):
        campaign = run_campaign(CampaignGrid(resolutions=(10, 11, 12)))
        for record in campaign.records:
            assert record.mode == "analytic"
            assert record.unique_blocks == 0
            assert record.cold_runs == record.retargeted_runs == 0

    def test_progress_callback_sees_every_scenario(self):
        seen = []
        campaign = run_campaign(
            CampaignGrid(resolutions=(10, 11)), progress=seen.append
        )
        assert [s.record.label for s in seen] == [
            r.label for r in campaign.records
        ]

    def test_mixed_mode_grid(self):
        grid = CampaignGrid(
            resolutions=(10,), modes=("analytic", "synthesis")
        )
        campaign = run_campaign(grid, config=_config())
        by_mode = {r.mode: r for r in campaign.records}
        assert by_mode["analytic"].unique_blocks == 0
        assert by_mode["synthesis"].unique_blocks > 0
        # Both modes rank the same candidate set.
        assert sorted(l for l, _ in by_mode["analytic"].rankings) == sorted(
            l for l, _ in by_mode["synthesis"].rankings
        )
